//! # vr-net — network substrate for the router-virtualization power study
//!
//! This crate provides everything "below" the lookup data structures in the
//! reproduction of *FPGA-based Router Virtualization: A Power Perspective*
//! (Ganegedara & Prasanna, IPDPSW 2012):
//!
//! * [`Ipv4Prefix`] — a canonical IPv4 prefix type used as routing-table key,
//! * [`RoutingTable`] — an IPv4 routing table with a reference (linear-scan)
//!   longest-prefix-match implementation used as the correctness oracle for
//!   the trie and pipeline engines,
//! * [`parser`] — a parser for `bgp.potaroo.net`-style text dumps so real
//!   tables can be dropped in when available,
//! * [`synth`] — seeded synthetic generators standing in for the paper's
//!   real edge-network tables (see DESIGN.md, substitution table), including
//!   K-table *families* with a controllable shared core used to realize a
//!   target merging efficiency α,
//! * [`traffic`] — packet/stream generation across K virtual networks with
//!   per-network utilization weights (Assumption 1 of the paper is the
//!   uniform special case µᵢ = 1/K),
//! * [`models`] — skewed traffic models: seeded Zipf destination sampling
//!   over fixed per-network pools, per-VNID tenant mixes, and flash-crowd
//!   phase shifts (the workloads the hot-path result cache is measured
//!   against),
//! * [`stats`] — prefix-length and coverage statistics.
//!
//! Everything is deterministic under a caller-provided seed; no global RNG
//! state is used anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod models;
pub mod parser;
pub mod prefix;
pub mod stats;
pub mod synth;
pub mod table;
pub mod traffic;
pub mod update;

pub use error::NetError;
pub use models::{FlashCrowdStream, SkewedSpec, SkewedTraffic, ZipfSampler};
pub use update::{RouteUpdate, UpdateMix, UpdateStream};
pub use prefix::Ipv4Prefix;
pub use table::{NextHop, RouteEntry, RoutingTable};
pub use traffic::{Packet, TrafficGenerator, TrafficSpec, VnId};

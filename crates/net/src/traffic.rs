//! Packet and traffic-stream generation across K virtual networks.
//!
//! Assumption 1 of the paper distributes traffic uniformly across the K
//! virtual routers (µᵢ = 1/K). The generator supports that as the default
//! and also arbitrary per-network weights, so "more complex distributions
//! can be modeled by appropriately changing the µᵢ values" (§IV-A) holds
//! here too.

use crate::error::NetError;
use crate::table::RoutingTable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Virtual-network identifier (VNID). The paper tags packets in the merged
/// stream with a VNID used to index per-network NHI vectors (§IV-C).
pub type VnId = u16;

/// Minimum packet size used for throughput accounting (40 bytes, §VI-B).
pub const MIN_PACKET_BYTES: u32 = 40;

/// A packet as seen by the lookup engines: which virtual network it belongs
/// to and its destination address. Payload is irrelevant to Layer-3 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Virtual network the packet belongs to.
    pub vnid: VnId,
    /// Destination IPv4 address.
    pub dst: u32,
    /// Packet size in bytes (≥ 40); used for Gbps accounting.
    pub bytes: u32,
}

/// How destination addresses are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DestinationModel {
    /// Uniform random 32-bit addresses. With a default route everything
    /// still matches; without one, some lookups miss — both paths matter.
    UniformRandom,
    /// Pick a random table entry, then randomize its host bits, so every
    /// packet matches a real route (the paper's throughput experiments
    /// drive the pipeline at full rate with matching traffic).
    CoveredByTable,
}

/// Traffic-stream specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Number of virtual networks K (VNIDs are `0..k`).
    pub k: usize,
    /// Per-network utilization weights µᵢ; need not be normalized.
    /// `None` means uniform (Assumption 1).
    pub utilization: Option<Vec<f64>>,
    /// Destination model.
    pub destinations: DestinationModel,
    /// RNG seed.
    pub seed: u64,
    /// Fixed packet size in bytes (minimum 40).
    pub packet_bytes: u32,
}

impl TrafficSpec {
    /// Uniform traffic over `k` networks with 40-byte minimum packets.
    #[must_use]
    pub fn uniform(k: usize, seed: u64) -> Self {
        Self {
            k,
            utilization: None,
            destinations: DestinationModel::CoveredByTable,
            seed,
            packet_bytes: MIN_PACKET_BYTES,
        }
    }

    /// The effective (normalized) per-network utilization vector µ.
    ///
    /// # Errors
    /// Rejects mismatched lengths, negative or non-finite weights, and an
    /// all-zero weight vector.
    pub fn mu(&self) -> Result<Vec<f64>, NetError> {
        match &self.utilization {
            None => {
                if self.k == 0 {
                    return Err(NetError::InvalidSpec("k must be at least 1"));
                }
                Ok(vec![1.0 / self.k as f64; self.k])
            }
            Some(w) => {
                if w.len() != self.k {
                    return Err(NetError::InvalidSpec("utilization length must equal k"));
                }
                if w.iter().any(|x| *x < 0.0 || !x.is_finite()) {
                    return Err(NetError::InvalidSpec(
                        "utilization weights must be finite and non-negative",
                    ));
                }
                let sum: f64 = w.iter().sum();
                if sum <= 0.0 {
                    return Err(NetError::InvalidSpec(
                        "utilization weights must not be all zero",
                    ));
                }
                Ok(w.iter().map(|x| x / sum).collect())
            }
        }
    }
}

/// A seeded generator producing an endless packet stream for a K-table
/// family. One instance per simulation; cloning restarts nothing (the RNG
/// state is part of the generator).
///
/// ```
/// use vr_net::{RoutingTable, TrafficGenerator, TrafficSpec};
///
/// let tables: Vec<RoutingTable> =
///     vec!["10.0.0.0/8 1\n".parse().unwrap(), "11.0.0.0/8 2\n".parse().unwrap()];
/// let mut gen = TrafficGenerator::new(TrafficSpec::uniform(2, 7), &tables).unwrap();
/// let packet = gen.next_packet();
/// // Covered destinations always match their own network's table.
/// assert!(tables[usize::from(packet.vnid)].lookup(packet.dst).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    mu_cumulative: Vec<f64>,
    /// Per-network prefix pools for `CoveredByTable` destinations.
    pools: Vec<Vec<(u32, u8)>>,
    rng: SmallRng,
}

impl TrafficGenerator {
    /// Builds a generator for `tables` (one table per virtual network).
    ///
    /// # Errors
    /// Rejects a spec whose `k` differs from `tables.len()`, invalid
    /// utilization vectors, sub-minimum packet sizes, and (for
    /// [`DestinationModel::CoveredByTable`]) empty tables.
    pub fn new(spec: TrafficSpec, tables: &[RoutingTable]) -> Result<Self, NetError> {
        if spec.k != tables.len() {
            return Err(NetError::InvalidSpec("spec.k must equal tables.len()"));
        }
        if spec.packet_bytes < MIN_PACKET_BYTES {
            return Err(NetError::InvalidSpec("packet size below 40-byte minimum"));
        }
        let mu = spec.mu()?;
        let mut acc = 0.0;
        let mu_cumulative = mu
            .iter()
            .map(|m| {
                acc += m;
                acc
            })
            .collect();
        let pools: Vec<Vec<(u32, u8)>> = tables
            .iter()
            .map(|t| t.prefixes().map(|p| (p.addr(), p.len())).collect())
            .collect();
        if spec.destinations == DestinationModel::CoveredByTable
            && pools.iter().any(Vec::is_empty)
        {
            return Err(NetError::InvalidSpec(
                "covered-destination traffic requires non-empty tables",
            ));
        }
        let rng = SmallRng::seed_from_u64(spec.seed);
        Ok(Self {
            spec,
            mu_cumulative,
            pools,
            rng,
        })
    }

    /// The spec this generator was built from.
    #[must_use]
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Draws the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let vnid = self
            .mu_cumulative
            .iter()
            .position(|c| x < *c)
            .unwrap_or(self.spec.k - 1) as VnId;
        let dst = match self.spec.destinations {
            DestinationModel::UniformRandom => self.rng.gen::<u32>(),
            DestinationModel::CoveredByTable => {
                let pool = &self.pools[usize::from(vnid)];
                let (addr, len) = pool[self.rng.gen_range(0..pool.len())];
                randomize_host_bits(&mut self.rng, addr, len)
            }
        };
        Packet {
            vnid,
            dst,
            bytes: self.spec.packet_bytes,
        }
    }

    /// Draws a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Draws a packet for a *specific* virtual network, bypassing the µ
    /// weights. Used by capacity (saturation) measurements where every
    /// engine must stay busy with its own network's traffic.
    ///
    /// # Panics
    /// Panics if `vnid` is outside `0..k`.
    pub fn packet_for(&mut self, vnid: VnId) -> Packet {
        assert!(usize::from(vnid) < self.spec.k, "vnid out of range");
        let dst = match self.spec.destinations {
            DestinationModel::UniformRandom => self.rng.gen::<u32>(),
            DestinationModel::CoveredByTable => {
                let pool = &self.pools[usize::from(vnid)];
                let (addr, len) = pool[self.rng.gen_range(0..pool.len())];
                randomize_host_bits(&mut self.rng, addr, len)
            }
        };
        Packet {
            vnid,
            dst,
            bytes: self.spec.packet_bytes,
        }
    }
}

/// Fills the host bits below `len` with random bits, keeping the network
/// part of `addr` intact.
fn randomize_host_bits<R: Rng>(rng: &mut R, addr: u32, len: u8) -> u32 {
    let host_bits = 32 - u32::from(len);
    if host_bits == 0 {
        addr
    } else {
        let mask = ((1u64 << host_bits) - 1) as u32;
        addr | (rng.gen::<u32>() & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TableSpec;

    fn tables(k: usize) -> Vec<RoutingTable> {
        (0..k)
            .map(|i| {
                TableSpec {
                    prefixes: 100,
                    seed: 100 + i as u64,
                    distribution: crate::synth::PrefixLenDistribution::edge_default(),
                    clustering: None,
                    include_default_route: true,
                    next_hops: 4,
                }
                .generate()
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn uniform_mu_sums_to_one() {
        let spec = TrafficSpec::uniform(4, 0);
        let mu = spec.mu().unwrap();
        assert_eq!(mu.len(), 4);
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(mu.iter().all(|m| (m - 0.25).abs() < 1e-12));
    }

    #[test]
    fn weighted_mu_normalizes() {
        let spec = TrafficSpec {
            utilization: Some(vec![1.0, 3.0]),
            ..TrafficSpec::uniform(2, 0)
        };
        let mu = spec.mu().unwrap();
        assert!((mu[0] - 0.25).abs() < 1e-12);
        assert!((mu[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mu_rejects_bad_vectors() {
        let mut spec = TrafficSpec::uniform(2, 0);
        spec.utilization = Some(vec![1.0]);
        assert!(spec.mu().is_err());
        spec.utilization = Some(vec![-1.0, 1.0]);
        assert!(spec.mu().is_err());
        spec.utilization = Some(vec![0.0, 0.0]);
        assert!(spec.mu().is_err());
        let zero_k = TrafficSpec::uniform(0, 0);
        assert!(zero_k.mu().is_err());
    }

    #[test]
    fn vnid_distribution_tracks_mu() {
        let t = tables(3);
        let spec = TrafficSpec {
            utilization: Some(vec![0.0, 1.0, 1.0]),
            ..TrafficSpec::uniform(3, 42)
        };
        let mut g = TrafficGenerator::new(spec, &t).unwrap();
        let batch = g.batch(2000);
        let mut counts = [0usize; 3];
        for p in &batch {
            counts[usize::from(p.vnid)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 800 && counts[2] > 800);
    }

    #[test]
    fn covered_destinations_always_match() {
        let t = tables(2);
        let mut g = TrafficGenerator::new(TrafficSpec::uniform(2, 7), &t).unwrap();
        for p in g.batch(500) {
            assert!(
                t[usize::from(p.vnid)].lookup(p.dst).is_some(),
                "covered packet must match its own table"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = tables(2);
        let mut a = TrafficGenerator::new(TrafficSpec::uniform(2, 5), &t).unwrap();
        let mut b = TrafficGenerator::new(TrafficSpec::uniform(2, 5), &t).unwrap();
        assert_eq!(a.batch(100), b.batch(100));
    }

    #[test]
    fn rejects_mismatched_k_and_small_packets() {
        let t = tables(2);
        assert!(TrafficGenerator::new(TrafficSpec::uniform(3, 0), &t).is_err());
        let mut spec = TrafficSpec::uniform(2, 0);
        spec.packet_bytes = 39;
        assert!(TrafficGenerator::new(spec, &t).is_err());
    }

    #[test]
    fn rejects_empty_table_for_covered_destinations() {
        let t = vec![RoutingTable::new()];
        assert!(TrafficGenerator::new(TrafficSpec::uniform(1, 0), &t).is_err());
        let mut spec = TrafficSpec::uniform(1, 0);
        spec.destinations = DestinationModel::UniformRandom;
        assert!(TrafficGenerator::new(spec, &t).is_ok());
    }
}

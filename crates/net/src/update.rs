//! Route update (announce/withdraw) stream generation.
//!
//! §V-B assumes a 1 % write rate — routing tables change while the engine
//! forwards. The authors' follow-up work (paper ref. [6]) makes those
//! updates incremental on FPGA. This module synthesizes realistic update
//! streams against a K-table family: withdrawals of currently-installed
//! routes, re-announcements with changed next hops, and announcements of
//! new prefixes, at a configurable mix, deterministically seeded.

use crate::error::NetError;
use crate::prefix::Ipv4Prefix;
use crate::table::{NextHop, RoutingTable};
use crate::traffic::VnId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One routing update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteUpdate {
    /// Announce (insert or replace) a route.
    Announce {
        /// Virtual network the update belongs to.
        vnid: VnId,
        /// The prefix announced.
        prefix: Ipv4Prefix,
        /// Its next hop.
        next_hop: NextHop,
    },
    /// Withdraw a route.
    Withdraw {
        /// Virtual network the update belongs to.
        vnid: VnId,
        /// The prefix withdrawn.
        prefix: Ipv4Prefix,
    },
}

impl RouteUpdate {
    /// The virtual network this update targets.
    #[must_use]
    pub fn vnid(&self) -> VnId {
        match self {
            RouteUpdate::Announce { vnid, .. } | RouteUpdate::Withdraw { vnid, .. } => *vnid,
        }
    }
}

/// Mix of update kinds; weights need not be normalized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateMix {
    /// Announce a brand-new prefix.
    pub announce_new: f64,
    /// Re-announce an existing prefix with a (possibly) different next hop
    /// (BGP path change — the most common event in practice).
    pub reannounce: f64,
    /// Withdraw an existing prefix.
    pub withdraw: f64,
}

impl Default for UpdateMix {
    /// Roughly BGP-like: path changes dominate; announcements slightly
    /// outnumber withdrawals so tables drift upward like real ones do.
    fn default() -> Self {
        Self {
            announce_new: 0.25,
            reannounce: 0.55,
            withdraw: 0.20,
        }
    }
}

/// A seeded generator of route updates, tracking the evolving tables so
/// withdrawals always target installed routes.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    tables: Vec<RoutingTable>,
    mix: UpdateMix,
    next_hops: NextHop,
    rng: SmallRng,
}

impl UpdateStream {
    /// Creates a stream over the given starting tables.
    ///
    /// # Errors
    /// Rejects empty input, non-finite/negative/all-zero mixes, and an
    /// empty next-hop pool.
    pub fn new(
        tables: Vec<RoutingTable>,
        mix: UpdateMix,
        next_hops: NextHop,
        seed: u64,
    ) -> Result<Self, NetError> {
        if tables.is_empty() {
            return Err(NetError::InvalidSpec("need at least one table"));
        }
        let weights = [mix.announce_new, mix.reannounce, mix.withdraw];
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(NetError::InvalidSpec(
                "update mix weights must be finite and non-negative",
            ));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(NetError::InvalidSpec("update mix must not be all zero"));
        }
        if next_hops == 0 {
            return Err(NetError::InvalidSpec("next-hop pool must be non-empty"));
        }
        Ok(Self {
            tables,
            mix,
            next_hops,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// The current (evolved) view of the tables.
    #[must_use]
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// Draws the next update and applies it to the tracked tables.
    pub fn next_update(&mut self) -> RouteUpdate {
        let vnid = self.rng.gen_range(0..self.tables.len());
        let table = &self.tables[vnid];
        let weights = [self.mix.announce_new, self.mix.reannounce, self.mix.withdraw];
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        let mut kind = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                kind = i;
                break;
            }
            x -= w;
        }
        // Withdraw/reannounce need an existing route; fall back to a new
        // announcement when the table is empty.
        if table.is_empty() && kind != 0 {
            kind = 0;
        }
        let update = match kind {
            0 => {
                let len = self.rng.gen_range(16..=24u8);
                let prefix = Ipv4Prefix::must(self.rng.gen(), len);
                RouteUpdate::Announce {
                    vnid: vnid as VnId,
                    prefix,
                    next_hop: self.rng.gen_range(0..self.next_hops),
                }
            }
            1 => {
                let idx = self.rng.gen_range(0..table.len());
                let prefix = table.prefixes().nth(idx).expect("index in range");
                RouteUpdate::Announce {
                    vnid: vnid as VnId,
                    prefix,
                    next_hop: self.rng.gen_range(0..self.next_hops),
                }
            }
            _ => {
                let idx = self.rng.gen_range(0..table.len());
                let prefix = table.prefixes().nth(idx).expect("index in range");
                RouteUpdate::Withdraw {
                    vnid: vnid as VnId,
                    prefix,
                }
            }
        };
        match update {
            RouteUpdate::Announce {
                vnid,
                prefix,
                next_hop,
            } => {
                self.tables[usize::from(vnid)].insert(prefix, next_hop);
            }
            RouteUpdate::Withdraw { vnid, prefix } => {
                self.tables[usize::from(vnid)].remove(&prefix);
            }
        }
        update
    }

    /// Draws a batch of `n` updates.
    ///
    /// A batch may carry several updates for the same `(vnid, prefix)`
    /// pair — a route announced, re-announced and withdrawn within one
    /// window. Batch semantics are **last-writer-wins**: applying the
    /// updates in order leaves the final occurrence in effect, and the
    /// tables tracked by [`Self::tables`] evolve exactly that way.
    /// Consumers that coalesce before applying (vr-control's
    /// `coalesce`) must therefore keep only the last update per pair;
    /// dropping any other subset changes the meaning of the batch.
    pub fn batch(&mut self, n: usize) -> Vec<RouteUpdate> {
        (0..n).map(|_| self.next_update()).collect()
    }
}

/// Parses an update trace in the RIS-like text format this crate also
/// emits: one update per line,
///
/// ```text
/// A|<vnid>|<prefix>|<next-hop>     # announce
/// W|<vnid>|<prefix>                # withdraw
/// ```
///
/// Blank lines and `#` comments are skipped. Real BGP update feeds
/// (e.g. RIPE RIS dumps) convert to this format with a one-line awk.
///
/// # Errors
/// [`NetError::InvalidDumpLine`] with a 1-based line number on the first
/// malformed line.
pub fn parse_update_trace(input: &str) -> Result<Vec<RouteUpdate>, NetError> {
    let mut updates = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        let bad = |reason| NetError::InvalidDumpLine {
            line: line_no,
            reason,
        };
        let parse_vnid = |s: &str| s.trim().parse::<VnId>().map_err(|_| bad("bad vnid"));
        match fields.as_slice() {
            ["A", vnid, prefix, next_hop] => updates.push(RouteUpdate::Announce {
                vnid: parse_vnid(vnid)?,
                prefix: prefix.trim().parse()?,
                next_hop: next_hop
                    .trim()
                    .parse()
                    .map_err(|_| bad("next hop must be an integer 0..=255"))?,
            }),
            ["W", vnid, prefix] => updates.push(RouteUpdate::Withdraw {
                vnid: parse_vnid(vnid)?,
                prefix: prefix.trim().parse()?,
            }),
            _ => return Err(bad("expected A|vnid|prefix|nh or W|vnid|prefix")),
        }
    }
    Ok(updates)
}

/// Serializes updates into the [`parse_update_trace`] format.
#[must_use]
pub fn to_update_trace(updates: &[RouteUpdate]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(updates.len() * 28);
    for u in updates {
        match u {
            RouteUpdate::Announce {
                vnid,
                prefix,
                next_hop,
            } => {
                let _ = writeln!(out, "A|{vnid}|{prefix}|{next_hop}");
            }
            RouteUpdate::Withdraw { vnid, prefix } => {
                let _ = writeln!(out, "W|{vnid}|{prefix}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TableSpec;

    fn tables(k: usize) -> Vec<RoutingTable> {
        (0..k)
            .map(|i| {
                let mut spec = TableSpec::paper_worst_case(50 + i as u64);
                spec.prefixes = 200;
                spec.generate().unwrap()
            })
            .collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = UpdateStream::new(tables(2), UpdateMix::default(), 16, 7).unwrap();
        let mut b = UpdateStream::new(tables(2), UpdateMix::default(), 16, 7).unwrap();
        assert_eq!(a.batch(50), b.batch(50));
    }

    #[test]
    fn withdrawals_target_installed_routes() {
        let start = tables(2);
        let mix = UpdateMix {
            announce_new: 0.0,
            reannounce: 0.0,
            withdraw: 1.0,
        };
        let mut s = UpdateStream::new(start.clone(), mix, 16, 3).unwrap();
        let mut shadow = start;
        for update in s.batch(100) {
            match update {
                RouteUpdate::Withdraw { vnid, prefix } => {
                    assert!(
                        shadow[usize::from(vnid)].remove(&prefix).is_some(),
                        "withdrew a route that was not installed"
                    );
                }
                RouteUpdate::Announce { .. } => panic!("mix is withdraw-only"),
            }
        }
    }

    #[test]
    fn tracked_tables_follow_the_stream() {
        let start = tables(2);
        let mut s = UpdateStream::new(start.clone(), UpdateMix::default(), 16, 9).unwrap();
        let mut shadow = start;
        for update in s.batch(300) {
            match update {
                RouteUpdate::Announce {
                    vnid,
                    prefix,
                    next_hop,
                } => {
                    shadow[usize::from(vnid)].insert(prefix, next_hop);
                }
                RouteUpdate::Withdraw { vnid, prefix } => {
                    shadow[usize::from(vnid)].remove(&prefix);
                }
            }
        }
        assert_eq!(s.tables(), &shadow[..]);
    }

    #[test]
    fn empty_table_falls_back_to_announce() {
        let mix = UpdateMix {
            announce_new: 0.0,
            reannounce: 0.0,
            withdraw: 1.0,
        };
        let mut s = UpdateStream::new(vec![RoutingTable::new()], mix, 4, 1).unwrap();
        match s.next_update() {
            RouteUpdate::Announce { .. } => {}
            RouteUpdate::Withdraw { .. } => panic!("cannot withdraw from an empty table"),
        }
        assert_eq!(s.tables()[0].len(), 1);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(UpdateStream::new(vec![], UpdateMix::default(), 16, 0).is_err());
        let zero = UpdateMix {
            announce_new: 0.0,
            reannounce: 0.0,
            withdraw: 0.0,
        };
        assert!(UpdateStream::new(tables(1), zero, 16, 0).is_err());
        let negative = UpdateMix {
            announce_new: -1.0,
            ..UpdateMix::default()
        };
        assert!(UpdateStream::new(tables(1), negative, 16, 0).is_err());
        assert!(UpdateStream::new(tables(1), UpdateMix::default(), 0, 0).is_err());
    }

    #[test]
    fn update_trace_round_trips() {
        let mut s = UpdateStream::new(tables(3), UpdateMix::default(), 16, 5).unwrap();
        let updates = s.batch(200);
        let trace = to_update_trace(&updates);
        let back = parse_update_trace(&trace).unwrap();
        assert_eq!(back, updates);
    }

    #[test]
    fn update_trace_parsing_accepts_comments_and_rejects_garbage() {
        let good = "# header\nA|0|10.0.0.0/8|7\n\nW|1|192.168.0.0/16 # inline\n";
        let updates = parse_update_trace(good).unwrap();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].vnid(), 0);
        assert_eq!(updates[1].vnid(), 1);

        for (bad, line) in [
            ("X|0|10.0.0.0/8|7\n", 1),
            ("A|0|10.0.0.0/8\n", 1),           // missing next hop
            ("A|zero|10.0.0.0/8|7\n", 1),      // bad vnid
            ("A|0|10.0.0.0/8|boom\n", 1),      // bad next hop
            ("A|0|10.0.0.0/8|7\nW|1\n", 2),    // truncated withdraw
        ] {
            match parse_update_trace(bad) {
                Err(NetError::InvalidDumpLine { line: l, .. }) => assert_eq!(l, line, "{bad:?}"),
                other => panic!("{bad:?}: expected line error, got {other:?}"),
            }
        }
        // Prefix errors surface as prefix errors.
        assert!(parse_update_trace("A|0|10.0.0.0/40|7\n").is_err());
    }

    #[test]
    fn update_vnid_accessor() {
        let u = RouteUpdate::Withdraw {
            vnid: 3,
            prefix: "10.0.0.0/8".parse().unwrap(),
        };
        assert_eq!(u.vnid(), 3);
    }
}

//! Synthetic routing tables and table families.
//!
//! The paper evaluates on real edge-network tables from bgp.potaroo.net;
//! the largest one had **3725 prefixes** (whose uni-bit trie had 9726 nodes,
//! 16127 after leaf pushing — §V-E). Real dumps are a data gate for this
//! reproduction, so this module generates *synthetic* tables from a seeded
//! RNG with an edge-style prefix-length distribution, calibrated so the
//! default worst-case table lands in the same size regime. A parser for
//! real dumps exists in [`crate::parser`] for when real data is available.
//!
//! For the virtualization experiments we additionally need **families** of
//! K structurally-similar tables: the merged scheme's cost depends on the
//! node overlap (merging efficiency α, Assumption 4). [`FamilySpec`]
//! generates K tables as `shared core + per-table unique prefixes`; the
//! share of core prefixes monotonically controls the resulting α (the exact
//! α is *measured* on the merged trie in `vr-trie`).

use crate::error::NetError;
use crate::prefix::Ipv4Prefix;
use crate::table::{NextHop, RoutingTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of prefixes in the paper's worst-case edge table (§V-E).
pub const PAPER_TABLE_PREFIXES: usize = 3725;

/// Trie nodes of the paper's worst-case table without leaf pushing (§V-E).
pub const PAPER_TRIE_NODES: usize = 9726;

/// Trie nodes of the paper's worst-case table with leaf pushing (§V-E).
pub const PAPER_TRIE_NODES_LEAF_PUSHED: usize = 16127;

/// A weighted distribution over prefix lengths `0..=32`.
///
/// Weights need not be normalized. Sampling walks the cumulative weights,
/// which is plenty fast for table generation (done once per experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixLenDistribution {
    weights: Vec<f64>, // always exactly 33 entries (lengths 0..=32)
}

impl PrefixLenDistribution {
    /// Builds a distribution from per-length weights.
    ///
    /// # Errors
    /// Rejects negative weights and all-zero weight vectors.
    pub fn new(weights: [f64; 33]) -> Result<Self, NetError> {
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(NetError::InvalidSpec(
                "prefix-length weights must be finite and non-negative",
            ));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(NetError::InvalidSpec(
                "prefix-length weights must not be all zero",
            ));
        }
        Ok(Self {
            weights: weights.to_vec(),
        })
    }

    /// Edge-network distribution modeled on public BGP snapshots: a heavy
    /// peak at /24, secondary mass at /16 and /20–/23, and a light tail of
    /// shorter aggregates. Host routes (/25–/32) are rare at the edge.
    #[must_use]
    pub fn edge_default() -> Self {
        let mut w = [0.0f64; 33];
        w[8] = 0.5;
        w[9] = 0.3;
        w[10] = 0.5;
        w[11] = 0.8;
        w[12] = 1.5;
        w[13] = 1.8;
        w[14] = 2.5;
        w[15] = 2.5;
        w[16] = 10.5;
        w[17] = 3.0;
        w[18] = 4.5;
        w[19] = 7.0;
        w[20] = 8.0;
        w[21] = 7.5;
        w[22] = 9.5;
        w[23] = 8.5;
        w[24] = 30.0;
        w[25] = 0.3;
        w[26] = 0.3;
        w[27] = 0.2;
        w[28] = 0.2;
        w[29] = 0.2;
        w[30] = 0.2;
        w[31] = 0.05;
        w[32] = 0.45;
        Self::new(w).expect("static weights are valid")
    }

    /// Uniform distribution over a length range (useful in tests).
    ///
    /// # Errors
    /// Rejects empty or out-of-range length ranges.
    pub fn uniform(min_len: u8, max_len: u8) -> Result<Self, NetError> {
        if min_len > max_len || max_len > 32 {
            return Err(NetError::InvalidSpec("empty or out-of-range length range"));
        }
        let mut w = [0.0f64; 33];
        for len in min_len..=max_len {
            w[usize::from(len)] = 1.0;
        }
        Self::new(w)
    }

    /// Samples one prefix length.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u8 {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (len, w) in self.weights.iter().enumerate() {
            if x < *w {
                return len as u8;
            }
            x -= w;
        }
        32 // numerically unreachable; guard for fp rounding
    }

    /// The raw weight assigned to a length.
    #[must_use]
    pub fn weight(&self, len: u8) -> f64 {
        self.weights[usize::from(len)]
    }
}

/// Address clustering of a synthetic table.
///
/// Real BGP tables are *clustered*: allocations come from a limited set of
/// registry blocks, so prefixes share long leading bit-strings and the
/// resulting uni-bit trie is compact (the paper's 3725-prefix table yields
/// only 9726 nodes ≈ 2.6 nodes/prefix). Sampling fully random addresses
/// instead produces tries several times larger. This knob reproduces the
/// clustering: prefixes longer than `cluster_len` draw their leading
/// `cluster_len` bits from a pool of `clusters` bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of distinct allocation blocks.
    pub clusters: usize,
    /// Bits shared within a block.
    pub cluster_len: u8,
    /// Mean length of a *run* of consecutive same-length prefixes emitted
    /// from one allocation (registry allocations are contiguous, so real
    /// tables contain long runs of adjacent /24s etc. — that contiguity is
    /// what makes real tries compact).
    pub mean_run: usize,
}

impl ClusterSpec {
    /// Calibrated so a 3725-prefix edge table lands near the paper's trie
    /// shape (§V-E: 9726 nodes, 16127 after leaf pushing — i.e. ~2.6
    /// nodes/prefix with a 1.66× leaf-push growth from long single-child
    /// chains and nested aggregates).
    #[must_use]
    pub fn edge_default(prefixes: usize) -> Self {
        Self {
            clusters: (prefixes / 40).max(4),
            cluster_len: 11,
            mean_run: 8,
        }
    }
}

/// Specification for one synthetic routing table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Number of distinct prefixes to generate.
    pub prefixes: usize,
    /// RNG seed; equal specs generate equal tables.
    pub seed: u64,
    /// Prefix-length distribution.
    pub distribution: PrefixLenDistribution,
    /// Address clustering (`None` = fully random addresses).
    pub clustering: Option<ClusterSpec>,
    /// Whether to include a `0.0.0.0/0` default route (typical at the edge).
    pub include_default_route: bool,
    /// Number of distinct next hops to draw from (edge routers have few
    /// uplinks; the paper's NHI fits in a small field).
    pub next_hops: NextHop,
}

impl TableSpec {
    /// A spec matching the paper's worst-case table (3725 prefixes,
    /// clustered so the trie lands near the published 9726 nodes).
    #[must_use]
    pub fn paper_worst_case(seed: u64) -> Self {
        Self {
            prefixes: PAPER_TABLE_PREFIXES,
            seed,
            distribution: PrefixLenDistribution::edge_default(),
            clustering: Some(ClusterSpec::edge_default(PAPER_TABLE_PREFIXES)),
            include_default_route: true,
            next_hops: 16,
        }
    }

    /// Generates the table.
    ///
    /// # Errors
    /// Rejects a zero next-hop pool and a prefix count that cannot be
    /// realized (astronomically unlikely below 2^24 prefixes).
    pub fn generate(&self) -> Result<RoutingTable, NetError> {
        if self.next_hops == 0 {
            return Err(NetError::InvalidSpec("next-hop pool must be non-empty"));
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let pool = cluster_pool(&mut rng, self.clustering);
        let prefixes = sample_distinct_prefixes(
            &mut rng,
            &self.distribution,
            self.prefixes,
            &[],
            self.clustering,
            &pool,
        )?;
        let mut table = RoutingTable::new();
        if self.include_default_route {
            table.insert(Ipv4Prefix::DEFAULT_ROUTE, 0);
        }
        for p in prefixes {
            let nh = rng.gen_range(0..self.next_hops);
            table.insert(p, nh);
        }
        Ok(table)
    }
}

/// Specification for a family of K structurally-similar tables.
///
/// Each virtual network's table is the union of a *core* shared by all K
/// tables and a per-table unique remainder. All tables have exactly
/// [`FamilySpec::prefixes_per_table`] prefixes (Assumption 2: equal sizes).
/// Per-table next hops for core prefixes differ — different networks
/// forward the same destination differently, which is what forces the
/// merged trie to store K-wide NHI vectors at its leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Number of virtual networks K.
    pub k: usize,
    /// Prefixes per table (identical for all tables, Assumption 2).
    pub prefixes_per_table: usize,
    /// Fraction of each table drawn from the shared core, in `[0, 1]`.
    /// Higher values yield higher merging efficiency α.
    pub shared_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Prefix-length distribution for core and unique parts alike.
    pub distribution: PrefixLenDistribution,
    /// Next-hop pool size per table.
    pub next_hops: NextHop,
}

impl FamilySpec {
    /// A paper-scale family: K tables of 3725 prefixes each.
    #[must_use]
    pub fn paper_worst_case(k: usize, shared_fraction: f64, seed: u64) -> Self {
        Self {
            k,
            prefixes_per_table: PAPER_TABLE_PREFIXES,
            shared_fraction,
            seed,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 16,
        }
    }

    /// Generates the K tables.
    ///
    /// # Errors
    /// Rejects `k == 0`, an out-of-range shared fraction, and specs whose
    /// distinct-prefix demands cannot be realized.
    pub fn generate(&self) -> Result<Vec<RoutingTable>, NetError> {
        if self.k == 0 {
            return Err(NetError::InvalidSpec("family must contain at least one table"));
        }
        if !(0.0..=1.0).contains(&self.shared_fraction) || !self.shared_fraction.is_finite() {
            return Err(NetError::InvalidSpec("shared fraction must be in [0, 1]"));
        }
        if self.next_hops == 0 {
            return Err(NetError::InvalidSpec("next-hop pool must be non-empty"));
        }
        let core_count =
            ((self.prefixes_per_table as f64) * self.shared_fraction).round() as usize;
        let unique_count = self.prefixes_per_table - core_count.min(self.prefixes_per_table);

        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Clustering keeps each table's trie in the paper's compactness
        // regime. The core draws from one shared pool (common allocation
        // blocks); each table's unique part draws from its own pool, so
        // low shared fractions still yield structurally distant tables.
        let core_clustering = (core_count > 0).then(|| ClusterSpec::edge_default(core_count));
        let core_pool = cluster_pool(&mut rng, core_clustering);
        // Shared core prefixes (next hops assigned per table below).
        let core = sample_distinct_prefixes(
            &mut rng,
            &self.distribution,
            core_count,
            &[],
            core_clustering,
            &core_pool,
        )?;

        let mut tables = Vec::with_capacity(self.k);
        let mut taken: Vec<Ipv4Prefix> = core.clone();
        for _ in 0..self.k {
            let unique_clustering =
                (unique_count > 0).then(|| ClusterSpec::edge_default(unique_count));
            let unique_pool = cluster_pool(&mut rng, unique_clustering);
            let unique = sample_distinct_prefixes(
                &mut rng,
                &self.distribution,
                unique_count,
                &taken,
                unique_clustering,
                &unique_pool,
            )?;
            taken.extend_from_slice(&unique);
            let mut table = RoutingTable::new();
            for p in core.iter().chain(unique.iter()) {
                table.insert(*p, rng.gen_range(0..self.next_hops));
            }
            tables.push(table);
        }
        Ok(tables)
    }
}

/// Generates a family of tables of *different* sizes — relaxing the
/// paper's Assumption 2 (equal table sizes) for the utilization study.
///
/// The shared core is sized from the smallest table so it fits inside all
/// of them: `core = round(shared_fraction × min(sizes))`. Each table is
/// core + its own unique remainder from a per-table allocation pool.
///
/// # Errors
/// Same domain checks as [`FamilySpec::generate`].
pub fn generate_heterogeneous(
    sizes: &[usize],
    shared_fraction: f64,
    seed: u64,
    distribution: &PrefixLenDistribution,
    next_hops: NextHop,
) -> Result<Vec<RoutingTable>, NetError> {
    if sizes.is_empty() {
        return Err(NetError::InvalidSpec(
            "family must contain at least one table",
        ));
    }
    if !(0.0..=1.0).contains(&shared_fraction) || !shared_fraction.is_finite() {
        return Err(NetError::InvalidSpec("shared fraction must be in [0, 1]"));
    }
    if next_hops == 0 {
        return Err(NetError::InvalidSpec("next-hop pool must be non-empty"));
    }
    let min_size = *sizes.iter().min().expect("non-empty");
    let core_count = ((min_size as f64) * shared_fraction).round() as usize;

    let mut rng = SmallRng::seed_from_u64(seed);
    let core_clustering = (core_count > 0).then(|| ClusterSpec::edge_default(core_count));
    let core_pool = cluster_pool(&mut rng, core_clustering);
    let core = sample_distinct_prefixes(
        &mut rng,
        distribution,
        core_count,
        &[],
        core_clustering,
        &core_pool,
    )?;

    let mut tables = Vec::with_capacity(sizes.len());
    let mut taken: Vec<Ipv4Prefix> = core.clone();
    for &size in sizes {
        let unique_count = size.saturating_sub(core_count);
        let unique_clustering =
            (unique_count > 0).then(|| ClusterSpec::edge_default(unique_count));
        let unique_pool = cluster_pool(&mut rng, unique_clustering);
        let unique = sample_distinct_prefixes(
            &mut rng,
            distribution,
            unique_count,
            &taken,
            unique_clustering,
            &unique_pool,
        )?;
        taken.extend_from_slice(&unique);
        let mut table = RoutingTable::new();
        for p in core.iter().chain(unique.iter()) {
            table.insert(*p, rng.gen_range(0..next_hops));
        }
        tables.push(table);
    }
    Ok(tables)
}

/// The cluster base addresses for a clustering spec (`None` → empty pool →
/// fully random addresses). The spec, not the pool, travels in configs so
/// equal seeds keep producing equal tables.
fn cluster_pool(rng: &mut SmallRng, clustering: Option<ClusterSpec>) -> Vec<(u32, u8)> {
    match clustering {
        None => Vec::new(),
        Some(spec) => (0..spec.clusters.max(1))
            .map(|_| {
                let base = Ipv4Prefix::must(rng.gen::<u32>(), spec.cluster_len.min(32));
                (base.addr(), base.len())
            })
            .collect(),
    }
}

/// Samples `count` prefixes distinct among themselves and from `exclude`.
///
/// With clustering, prefixes are emitted in **runs of consecutive
/// same-length blocks** anchored in the allocation pool — mirroring how
/// registries hand out contiguous space. Contiguity is what makes real
/// tries compact (the paper's table: 2.6 nodes/prefix); independent random
/// addresses would scatter the trie several-fold wider. Without clustering
/// every prefix is an independent random draw.
fn sample_distinct_prefixes(
    rng: &mut SmallRng,
    dist: &PrefixLenDistribution,
    count: usize,
    exclude: &[Ipv4Prefix],
    clustering: Option<ClusterSpec>,
    pool: &[(u32, u8)],
) -> Result<Vec<Ipv4Prefix>, NetError> {
    use std::collections::HashSet;
    let excluded: HashSet<Ipv4Prefix> = exclude.iter().copied().collect();
    let mut out = Vec::with_capacity(count);
    let mut seen: HashSet<Ipv4Prefix> = HashSet::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(64).max(1 << 16);
    while out.len() < count {
        attempts += 1;
        if attempts > max_attempts {
            return Err(NetError::InvalidSpec(
                "could not realize the requested number of distinct prefixes",
            ));
        }
        let len = dist.sample(rng);
        if len == 0 {
            continue;
        }
        // Block stride at this prefix length.
        let step = 1u32 << (32 - u32::from(len));
        let (start, run) = match (clustering, pool.is_empty()) {
            (Some(spec), false) => {
                let (base, cluster_len) = pool[rng.gen_range(0..pool.len())];
                let anchor = if len > cluster_len {
                    // Dive inside the allocation: random sub-block start.
                    base | (rng.gen::<u32>() & !crate::prefix::mask(cluster_len))
                } else {
                    // Aggregate at or above the allocation: jitter around
                    // the truncated base so repeated draws stay distinct
                    // while remaining near the allocation's neighbourhood.
                    (base & crate::prefix::mask(len))
                        .wrapping_add(step.wrapping_mul(rng.gen_range(0..64)))
                };
                let run = 1 + rng.gen_range(0..spec.mean_run.max(1) * 2);
                (anchor & crate::prefix::mask(len), run)
            }
            _ => (rng.gen::<u32>() & crate::prefix::mask(len), 1),
        };
        // Real allocations nest: an aggregate is announced alongside its
        // more-specifics. Emit the covering block for ~30 % of runs — it
        // lies on an existing trie path, which is what keeps real tables'
        // node-per-prefix ratio low.
        if clustering.is_some() && run > 1 && rng.gen_bool(0.25) {
            let span_bits = usize::BITS - (run - 1).leading_zeros(); // ⌈log2(run)⌉
            let agg_len = len.saturating_sub(span_bits as u8 + rng.gen_range(0..2));
            if agg_len > 0 && out.len() < count {
                let p = Ipv4Prefix::must(start, agg_len);
                if !excluded.contains(&p) && seen.insert(p) {
                    out.push(p);
                }
            }
        }
        for i in 0..run {
            if out.len() >= count {
                break;
            }
            // Punched holes: registries' customers do not announce every
            // block of an allocation; holes create the single-child chain
            // nodes that drive the paper's 1.66× leaf-push growth.
            if clustering.is_some() && i > 0 && rng.gen_bool(0.25) {
                continue;
            }
            let addr = start.wrapping_add(step.wrapping_mul(i as u32));
            let p = Ipv4Prefix::must(addr, len);
            if excluded.contains(&p) || !seen.insert(p) {
                continue;
            }
            out.push(p);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = TableSpec::paper_worst_case(7);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let a = TableSpec::paper_worst_case(1).generate().unwrap();
        let b = TableSpec::paper_worst_case(2).generate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generates_requested_count() {
        let spec = TableSpec {
            prefixes: 500,
            seed: 3,
            distribution: PrefixLenDistribution::edge_default(),
            clustering: None,
            include_default_route: true,
            next_hops: 4,
        };
        let t = spec.generate().unwrap();
        assert_eq!(t.len(), 501); // 500 + default route
        assert!(t.contains(&Ipv4Prefix::DEFAULT_ROUTE));
    }

    #[test]
    fn paper_scale_table_has_paper_scale_size() {
        let t = TableSpec::paper_worst_case(42).generate().unwrap();
        assert_eq!(t.len(), PAPER_TABLE_PREFIXES + 1);
    }

    #[test]
    fn edge_distribution_peaks_at_24() {
        let d = PrefixLenDistribution::edge_default();
        for len in 1..=32u8 {
            if len != 24 {
                assert!(d.weight(24) >= d.weight(len), "w(24) < w({len})");
            }
        }
    }

    #[test]
    fn uniform_distribution_stays_in_range() {
        let d = PrefixLenDistribution::uniform(10, 12).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..200 {
            let len = d.sample(&mut rng);
            assert!((10..=12).contains(&len));
        }
    }

    #[test]
    fn rejects_bad_distributions() {
        assert!(PrefixLenDistribution::new([0.0; 33]).is_err());
        let mut w = [0.0; 33];
        w[8] = -1.0;
        assert!(PrefixLenDistribution::new(w).is_err());
        assert!(PrefixLenDistribution::uniform(12, 10).is_err());
        assert!(PrefixLenDistribution::uniform(10, 40).is_err());
    }

    #[test]
    fn rejects_zero_next_hops() {
        let mut spec = TableSpec::paper_worst_case(1);
        spec.next_hops = 0;
        assert!(spec.generate().is_err());
    }

    #[test]
    fn family_shares_exactly_the_core() {
        let spec = FamilySpec {
            k: 4,
            prefixes_per_table: 300,
            shared_fraction: 0.5,
            seed: 11,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 8,
        };
        let tables = spec.generate().unwrap();
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), 300);
        }
        // Pairwise shared prefixes == core size (150) for every pair.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(tables[i].shared_prefix_count(&tables[j]), 150);
            }
        }
    }

    #[test]
    fn family_extremes() {
        let mk = |frac| FamilySpec {
            k: 3,
            prefixes_per_table: 100,
            shared_fraction: frac,
            seed: 5,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 8,
        };
        let disjoint = mk(0.0).generate().unwrap();
        assert_eq!(disjoint[0].shared_prefix_count(&disjoint[1]), 0);
        let identical = mk(1.0).generate().unwrap();
        assert_eq!(identical[0].shared_prefix_count(&identical[1]), 100);
        // Same prefixes but (almost surely) different next hops somewhere.
        assert_ne!(identical[0], identical[1]);
    }

    #[test]
    fn family_rejects_bad_specs() {
        let mut spec = FamilySpec::paper_worst_case(0, 0.5, 1);
        assert!(spec.generate().is_err());
        spec = FamilySpec::paper_worst_case(2, 1.5, 1);
        assert!(spec.generate().is_err());
        spec = FamilySpec::paper_worst_case(2, 0.5, 1);
        spec.next_hops = 0;
        assert!(spec.generate().is_err());
    }

    #[test]
    fn family_is_deterministic() {
        let spec = FamilySpec::paper_worst_case(3, 0.6, 99);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    #[test]
    fn heterogeneous_sizes_are_honoured() {
        let sizes = [500usize, 200, 100];
        let tables = generate_heterogeneous(
            &sizes,
            0.5,
            7,
            &PrefixLenDistribution::edge_default(),
            8,
        )
        .unwrap();
        assert_eq!(tables.len(), 3);
        for (t, &size) in tables.iter().zip(&sizes) {
            assert_eq!(t.len(), size);
        }
        // Core = 0.5 × min(sizes) = 50 prefixes, shared by every pair.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(tables[i].shared_prefix_count(&tables[j]), 50);
            }
        }
    }

    #[test]
    fn heterogeneous_rejects_bad_specs() {
        let d = PrefixLenDistribution::edge_default();
        assert!(generate_heterogeneous(&[], 0.5, 1, &d, 8).is_err());
        assert!(generate_heterogeneous(&[100], 1.5, 1, &d, 8).is_err());
        assert!(generate_heterogeneous(&[100], 0.5, 1, &d, 0).is_err());
    }

    #[test]
    fn heterogeneous_is_deterministic() {
        let d = PrefixLenDistribution::edge_default();
        let a = generate_heterogeneous(&[300, 100], 0.4, 5, &d, 8).unwrap();
        let b = generate_heterogeneous(&[300, 100], 0.4, 5, &d, 8).unwrap();
        assert_eq!(a, b);
    }
}

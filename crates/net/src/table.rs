//! Routing tables and the reference longest-prefix-match oracle.

use crate::error::NetError;
use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Next-hop information (NHI). The paper stores NHI in trie leaves; 8 bits
/// is the representative width used throughout the evaluation (§V-B uses
/// 18-bit data words per BRAM read, which bundle NHI with node pointers).
pub type NextHop = u8;

/// One routing-table entry: a prefix and its next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Next-hop identifier stored in the lookup engine's leaves.
    pub next_hop: NextHop,
}

impl RouteEntry {
    /// Convenience constructor.
    #[must_use]
    pub fn new(prefix: Ipv4Prefix, next_hop: NextHop) -> Self {
        Self { prefix, next_hop }
    }
}

/// An IPv4 routing table.
///
/// Entries are kept sorted and unique by prefix; inserting the same prefix
/// twice *replaces* the next hop (route update semantics). The table offers
/// a deliberately simple linear-scan [`RoutingTable::lookup`] which serves
/// as the correctness oracle for the trie (`vr-trie`) and the pipeline
/// engines (`vr-engine`) in tests and simulations.
///
/// ```
/// use vr_net::RoutingTable;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.0.0/16 2\n".parse().unwrap();
/// assert_eq!(table.lookup(0x0A01_0203), Some(2)); // longest match wins
/// assert_eq!(table.lookup(0x0A02_0203), Some(1));
/// assert_eq!(table.lookup(0x0B00_0000), None);
/// ```
///
/// Serde note: the table serializes as a *sequence of entries* (not a
/// map), so it works with formats requiring string keys (JSON) and its
/// dumps stay human-diffable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingTable {
    entries: BTreeMap<Ipv4Prefix, NextHop>,
}

impl Serialize for RoutingTable {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<'de> Deserialize<'de> for RoutingTable {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = Vec::<RouteEntry>::deserialize(deserializer)?;
        Ok(Self::from_entries(entries))
    }
}

impl RoutingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from an iterator of entries. Later duplicates replace
    /// earlier ones.
    pub fn from_entries<I: IntoIterator<Item = RouteEntry>>(entries: I) -> Self {
        let mut t = Self::new();
        for e in entries {
            t.insert(e.prefix, e.next_hop);
        }
        t
    }

    /// Inserts or replaces a route. Returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) -> Option<NextHop> {
        self.entries.insert(prefix, next_hop)
    }

    /// Withdraws a route. Returns the removed next hop, if present.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<NextHop> {
        self.entries.remove(prefix)
    }

    /// Whether the table contains an exact entry for `prefix`.
    #[must_use]
    pub fn contains(&self, prefix: &Ipv4Prefix) -> bool {
        self.entries.contains_key(prefix)
    }

    /// Exact-match next hop for `prefix`, if present.
    #[must_use]
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<NextHop> {
        self.entries.get(prefix).copied()
    }

    /// Number of routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the routes in canonical `(addr, len)` order.
    pub fn iter(&self) -> impl Iterator<Item = RouteEntry> + '_ {
        self.entries
            .iter()
            .map(|(&prefix, &next_hop)| RouteEntry { prefix, next_hop })
    }

    /// Iterates just the prefixes in canonical order.
    pub fn prefixes(&self) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.entries.keys().copied()
    }

    /// Reference longest-prefix match: scans every entry and keeps the
    /// longest prefix containing `ip`. O(n) by design — this is the oracle
    /// the fast paths are validated against, so it stays obviously correct.
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        let mut best: Option<(u8, NextHop)> = None;
        for (prefix, &nh) in &self.entries {
            if prefix.contains(ip) && best.is_none_or(|(len, _)| prefix.len() >= len) {
                best = Some((prefix.len(), nh));
            }
        }
        best.map(|(_, nh)| nh)
    }

    /// Histogram of prefix lengths, indexed 0..=32.
    #[must_use]
    pub fn length_histogram(&self) -> [usize; 33] {
        let mut h = [0usize; 33];
        for prefix in self.entries.keys() {
            h[usize::from(prefix.len())] += 1;
        }
        h
    }

    /// Longest prefix length present (0 for an empty table).
    #[must_use]
    pub fn max_prefix_len(&self) -> u8 {
        self.entries.keys().map(Ipv4Prefix::len).max().unwrap_or(0)
    }

    /// Serializes the table in the dump format accepted by
    /// [`crate::parser::parse_dump`] (one `prefix next_hop` per line).
    #[must_use]
    pub fn to_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.len() * 24);
        for e in self.iter() {
            let _ = writeln!(out, "{} {}", e.prefix, e.next_hop);
        }
        out
    }

    /// Merges `other` into `self`; on conflicts `other` wins. Returns the
    /// number of prefixes that were newly added (not replacements).
    pub fn absorb(&mut self, other: &RoutingTable) -> usize {
        let mut added = 0;
        for e in other.iter() {
            if self.insert(e.prefix, e.next_hop).is_none() {
                added += 1;
            }
        }
        added
    }

    /// Number of prefixes present in both tables (structural overlap at the
    /// prefix level; the trie-level overlap α is computed in `vr-trie`).
    #[must_use]
    pub fn shared_prefix_count(&self, other: &RoutingTable) -> usize {
        self.entries
            .keys()
            .filter(|p| other.contains(p))
            .count()
    }

    /// Validates internal invariants; used by property tests. Always true
    /// for tables built through the public API.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        // BTreeMap keys are unique and sorted by construction; verify
        // canonicalization (host bits zero) survived serde round-trips.
        self.entries
            .keys()
            .all(|p| p.addr() & !p.netmask() == 0)
    }
}

impl FromIterator<RouteEntry> for RoutingTable {
    fn from_iter<I: IntoIterator<Item = RouteEntry>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

impl std::str::FromStr for RoutingTable {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_dump(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_replaces_and_remove_withdraws() {
        let mut t = RoutingTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }

    #[test]
    fn lookup_prefers_longest_match() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("0.0.0.0/0"), 9),
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
            RouteEntry::new(p("10.1.2.0/24"), 3),
        ]);
        assert_eq!(t.lookup(0x0A01_0203), Some(3)); // 10.1.2.3
        assert_eq!(t.lookup(0x0A01_0303), Some(2)); // 10.1.3.3
        assert_eq!(t.lookup(0x0A02_0000), Some(1)); // 10.2.0.0
        assert_eq!(t.lookup(0x0B00_0000), Some(9)); // 11.0.0.0 -> default
    }

    #[test]
    fn lookup_without_default_route_can_miss() {
        let t = RoutingTable::from_entries([RouteEntry::new(p("10.0.0.0/8"), 1)]);
        assert_eq!(t.lookup(0x0B00_0000), None);
    }

    #[test]
    fn iteration_is_sorted_and_unique() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("192.168.0.0/16"), 1),
            RouteEntry::new(p("10.0.0.0/8"), 2),
            RouteEntry::new(p("10.0.0.0/8"), 3),
        ]);
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].prefix, p("10.0.0.0/8"));
        assert_eq!(v[0].next_hop, 3);
    }

    #[test]
    fn histogram_counts_lengths() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("11.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
        ]);
        let h = t.length_histogram();
        assert_eq!(h[8], 2);
        assert_eq!(h[16], 1);
        assert_eq!(h.iter().sum::<usize>(), 3);
        assert_eq!(t.max_prefix_len(), 16);
    }

    #[test]
    fn dump_round_trips() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
        ]);
        let back: RoutingTable = t.to_dump().parse().unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn absorb_counts_only_new_prefixes() {
        let mut a = RoutingTable::from_entries([RouteEntry::new(p("10.0.0.0/8"), 1)]);
        let b = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 7),
            RouteEntry::new(p("11.0.0.0/8"), 2),
        ]);
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.get(&p("10.0.0.0/8")), Some(7)); // other wins
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn shared_prefix_count_is_symmetric() {
        let a = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("12.0.0.0/8"), 1),
        ]);
        let b = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 5),
            RouteEntry::new(p("13.0.0.0/8"), 1),
        ]);
        assert_eq!(a.shared_prefix_count(&b), 1);
        assert_eq!(b.shared_prefix_count(&a), 1);
    }

    #[test]
    fn invariants_hold() {
        let t = RoutingTable::from_entries([RouteEntry::new(p("10.128.0.0/9"), 1)]);
        assert!(t.check_invariants());
    }
}

//! Parser for `bgp.potaroo.net`-style routing-table dumps.
//!
//! The paper obtained its edge-network tables from BGP analysis reports
//! (reference [15]). Real dumps are not bundled here, but any table
//! exported as plain text can be loaded with [`parse_dump`]. The accepted
//! grammar per line is:
//!
//! ```text
//! <prefix> [next-hop]     # trailing comment
//! ```
//!
//! * `<prefix>` — `a.b.c.d/len`;
//! * `next-hop` — optional integer `0..=255`; when omitted, a deterministic
//!   next hop is derived from the prefix so that repeated parses agree;
//! * blank lines and lines starting with `#` or `;` are ignored;
//! * a trailing `# comment` on a data line is ignored.

use crate::error::NetError;
use crate::prefix::Ipv4Prefix;
use crate::table::{NextHop, RoutingTable};

/// Derives a stable next hop from a prefix, for dumps that carry no
/// next-hop column. Any deterministic mixing works; this keeps distinct
/// prefixes likely-distinct so forwarding correctness checks stay sharp.
#[must_use]
pub fn derive_next_hop(prefix: &Ipv4Prefix) -> NextHop {
    let x = prefix.addr().wrapping_mul(0x9E37_79B9) ^ u32::from(prefix.len());
    (x >> 24) as NextHop
}

/// Parses a full dump into a [`RoutingTable`].
///
/// # Errors
/// Returns [`NetError::InvalidDumpLine`] (with a 1-based line number) on the
/// first malformed line, or a prefix parse error.
pub fn parse_dump(input: &str) -> Result<RoutingTable, NetError> {
    let mut table = RoutingTable::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find(['#', ';']) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let prefix_str = fields.next().ok_or(NetError::InvalidDumpLine {
            line: line_no,
            reason: "empty data line",
        })?;
        let prefix: Ipv4Prefix = prefix_str.parse()?;
        let next_hop = match fields.next() {
            Some(nh) => nh.parse::<NextHop>().map_err(|_| NetError::InvalidDumpLine {
                line: line_no,
                reason: "next hop must be an integer 0..=255",
            })?,
            None => derive_next_hop(&prefix),
        };
        if fields.next().is_some() {
            return Err(NetError::InvalidDumpLine {
                line: line_no,
                reason: "trailing fields after next hop",
            });
        }
        table.insert(prefix, next_hop);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_dump() {
        let t = parse_dump("10.0.0.0/8 1\n192.168.0.0/16 2\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&"10.0.0.0/8".parse().unwrap()), Some(1));
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let t = parse_dump("# header\n\n; other comment\n10.0.0.0/8 1 # inline\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn derives_next_hop_when_absent() {
        let t = parse_dump("10.0.0.0/8\n").unwrap();
        let p = "10.0.0.0/8".parse().unwrap();
        assert_eq!(t.get(&p), Some(derive_next_hop(&p)));
        // Deterministic across parses.
        let t2 = parse_dump("10.0.0.0/8\n").unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_dump("10.0.0.0/8 1\n10.0.0.0/8 boom\n").unwrap_err();
        assert_eq!(
            err,
            NetError::InvalidDumpLine {
                line: 2,
                reason: "next hop must be an integer 0..=255"
            }
        );
    }

    #[test]
    fn rejects_trailing_fields() {
        assert!(parse_dump("10.0.0.0/8 1 extra\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_next_hop() {
        assert!(parse_dump("10.0.0.0/8 256\n").is_err());
    }

    #[test]
    fn bubbles_up_prefix_errors() {
        assert!(matches!(
            parse_dump("10.0.0.0/99 1\n"),
            Err(NetError::InvalidPrefixLen(99))
        ));
    }

    #[test]
    fn later_duplicate_wins() {
        let t = parse_dump("10.0.0.0/8 1\n10.0.0.0/8 2\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"10.0.0.0/8".parse().unwrap()), Some(2));
    }
}

//! Descriptive statistics over routing tables.
//!
//! Used by the experiment harness to report workload characteristics next
//! to each figure (EXPERIMENTS.md) and by calibration tests that keep the
//! synthetic generator in the paper's size regime.

use crate::table::RoutingTable;
use serde::{Deserialize, Serialize};

/// Summary statistics of one routing table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of routes.
    pub routes: usize,
    /// Histogram over prefix lengths 0..=32.
    pub length_histogram: Vec<usize>,
    /// Mean prefix length (0 for an empty table).
    pub mean_prefix_len: f64,
    /// Longest prefix length present.
    pub max_prefix_len: u8,
    /// Fraction of the IPv4 address space covered by at least one route
    /// (1.0 whenever a default route is present).
    pub coverage: f64,
}

impl TableStats {
    /// Computes statistics for `table`.
    #[must_use]
    pub fn of(table: &RoutingTable) -> Self {
        let hist = table.length_histogram();
        let routes = table.len();
        let mean = if routes == 0 {
            0.0
        } else {
            hist.iter()
                .enumerate()
                .map(|(len, &n)| len as f64 * n as f64)
                .sum::<f64>()
                / routes as f64
        };
        Self {
            routes,
            length_histogram: hist.to_vec(),
            mean_prefix_len: mean,
            max_prefix_len: table.max_prefix_len(),
            coverage: coverage(table),
        }
    }
}

/// Fraction of the 2^32 address space covered by at least one route.
///
/// Computed exactly by sorting the (disjoint-ified) covered ranges: walk
/// prefixes in canonical order and skip prefixes covered by an already
/// accepted shorter one.
#[must_use]
pub fn coverage(table: &RoutingTable) -> f64 {
    let mut covered: u64 = 0;
    let mut last: Option<crate::prefix::Ipv4Prefix> = None;
    for p in table.prefixes() {
        if let Some(prev) = last {
            if prev.covers(&p) {
                continue;
            }
        }
        covered += p.address_count();
        last = Some(p);
    }
    covered as f64 / (1u64 << 32) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;
    use crate::table::RouteEntry;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table_stats() {
        let s = TableStats::of(&RoutingTable::new());
        assert_eq!(s.routes, 0);
        assert_eq!(s.mean_prefix_len, 0.0);
        assert_eq!(s.coverage, 0.0);
    }

    #[test]
    fn coverage_with_default_route_is_one() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("0.0.0.0/0"), 0),
            RouteEntry::new(p("10.0.0.0/8"), 1),
        ]);
        assert!((coverage(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_disjoint_prefixes_adds() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("0.0.0.0/2"), 1),
            RouteEntry::new(p("64.0.0.0/2"), 2),
        ]);
        assert!((coverage(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_ignores_nested_prefixes() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
            RouteEntry::new(p("10.1.2.0/24"), 3),
        ]);
        let expected = 1.0 / 256.0;
        assert!((coverage(&t) - expected).abs() < 1e-12);
    }

    #[test]
    fn mean_and_max_lengths() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
            RouteEntry::new(p("10.1.2.0/24"), 3),
        ]);
        let s = TableStats::of(&t);
        assert!((s.mean_prefix_len - 16.0).abs() < 1e-12);
        assert_eq!(s.max_prefix_len, 24);
        assert_eq!(s.routes, 3);
    }

    #[test]
    fn coverage_handles_sibling_after_nested() {
        // 10.0.0.0/8 covers 10.1.0.0/16; 11.0.0.0/8 must still count.
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
            RouteEntry::new(p("11.0.0.0/8"), 3),
        ]);
        assert!((coverage(&t) - 2.0 / 256.0).abs() < 1e-12);
    }
}

//! Error type shared across the crate.

use std::fmt;

/// Errors produced while parsing or constructing network-layer objects.
///
/// Marked `#[non_exhaustive]` (like every workspace error enum) so
/// downstream wrappers — e.g. `vr-audit`'s error type — can keep matching
/// with a wildcard arm while new variants are added.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A textual prefix could not be parsed (bad dotted quad, missing `/`, ...).
    InvalidPrefix {
        /// The offending input (possibly truncated).
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A prefix length outside `0..=32` was supplied.
    InvalidPrefixLen(u8),
    /// A routing-table dump line could not be interpreted.
    InvalidDumpLine {
        /// 1-based line number in the dump.
        line: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A generator was configured with inconsistent parameters.
    InvalidSpec(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidPrefix { input, reason } => {
                write!(f, "invalid prefix {input:?}: {reason}")
            }
            NetError::InvalidPrefixLen(len) => {
                write!(f, "invalid prefix length {len} (must be 0..=32)")
            }
            NetError::InvalidDumpLine { line, reason } => {
                write!(f, "invalid dump line {line}: {reason}")
            }
            NetError::InvalidSpec(reason) => write!(f, "invalid generator spec: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = NetError::InvalidPrefix {
            input: "1.2.3/8".into(),
            reason: "missing octet",
        };
        assert!(e.to_string().contains("1.2.3/8"));
        assert!(e.to_string().contains("missing octet"));
        assert!(NetError::InvalidPrefixLen(40).to_string().contains("40"));
        let d = NetError::InvalidDumpLine {
            line: 7,
            reason: "no next hop",
        };
        assert!(d.to_string().contains("line 7"));
        assert!(NetError::InvalidSpec("zero tables")
            .to_string()
            .contains("zero tables"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(NetError::InvalidPrefixLen(33));
    }
}

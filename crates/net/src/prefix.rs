//! Canonical IPv4 prefixes.
//!
//! A prefix is stored as a masked 32-bit address plus a length. All
//! constructors canonicalize (zero the host bits), so two prefixes covering
//! the same address range always compare equal — an invariant the trie
//! construction in `vr-trie` relies on.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: a masked network address and a prefix length in `0..=32`.
///
/// Ordering is lexicographic on `(addr, len)`, which groups prefixes sharing
/// a bit-string prefix together — convenient for deterministic table dumps.
///
/// ```
/// use vr_net::Ipv4Prefix;
///
/// let p: Ipv4Prefix = "192.168.1.0/24".parse().unwrap();
/// assert!(p.contains(0xC0A8_0142)); // 192.168.1.66
/// assert!(!p.contains(0xC0A8_0242)); // 192.168.2.66
/// assert_eq!(p.to_string(), "192.168.1.0/24");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT_ROUTE: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a (possibly non-canonical) address and length.
    ///
    /// Host bits below the prefix length are zeroed.
    ///
    /// # Errors
    /// Returns [`NetError::InvalidPrefixLen`] if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::InvalidPrefixLen(len));
        }
        Ok(Self {
            addr: addr & mask(len),
            len,
        })
    }

    /// Creates a prefix, panicking on an invalid length.
    ///
    /// Intended for literals in tests and generators where the length is a
    /// constant known to be valid.
    #[must_use]
    pub fn must(addr: u32, len: u8) -> Self {
        Self::new(addr, len).expect("prefix length must be 0..=32")
    }

    /// The masked network address.
    #[must_use]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length in bits. (A prefix is not a container, so no
    /// `is_empty` counterpart exists; `/0` is the default route.)
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the zero-length default route.
    #[must_use]
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// The netmask corresponding to the prefix length.
    #[must_use]
    pub fn netmask(&self) -> u32 {
        mask(self.len)
    }

    /// Whether `ip` falls inside this prefix.
    #[must_use]
    pub fn contains(&self, ip: u32) -> bool {
        (ip & self.netmask()) == self.addr
    }

    /// Whether `other` is fully covered by `self` (i.e. `self` is shorter or
    /// equal and their masked addresses agree on `self.len` bits).
    #[must_use]
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.addr & self.netmask()) == self.addr
    }

    /// The `i`-th bit of the address counted from the most significant bit
    /// (bit 0 is the MSB). Only bits `0..self.len` are meaningful.
    #[must_use]
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.addr >> (31 - i)) & 1 == 1
    }

    /// Iterator over the meaningful bits, MSB first.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }

    /// The two children of this prefix in the binary trie (one bit longer).
    ///
    /// Returns `None` when the prefix is already a host route (`/32`).
    #[must_use]
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let left = Ipv4Prefix {
            addr: self.addr,
            len,
        };
        let right = Ipv4Prefix {
            addr: self.addr | (1 << (32 - len)),
            len,
        };
        Some((left, right))
    }

    /// The immediate parent (one bit shorter), or `None` for the default route.
    #[must_use]
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Ipv4Prefix {
            addr: self.addr & mask(len),
            len,
        })
    }

    /// Number of host addresses covered (2^(32-len)); saturates for `/0`.
    #[must_use]
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }
}

/// Netmask for a prefix length; `mask(0) == 0`, `mask(32) == u32::MAX`.
#[must_use]
pub fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (a >> 24) & 0xff,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = NetError;

    /// Parses `a.b.c.d/len`. Host bits are canonicalized away.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason| NetError::InvalidPrefix {
            input: s.chars().take(64).collect(),
            reason,
        };
        let (ip_part, len_part) = s.split_once('/').ok_or_else(|| bad("missing '/'"))?;
        let len: u8 = len_part.parse().map_err(|_| bad("non-numeric length"))?;
        if len > 32 {
            return Err(NetError::InvalidPrefixLen(len));
        }
        let mut addr: u32 = 0;
        let mut octets = 0;
        for part in ip_part.split('.') {
            if octets == 4 {
                return Err(bad("too many octets"));
            }
            let octet: u8 = part.parse().map_err(|_| bad("bad octet"))?;
            addr = (addr << 8) | u32::from(octet);
            octets += 1;
        }
        if octets != 4 {
            return Err(bad("too few octets"));
        }
        Self::new(addr, len)
    }
}

/// Parses a dotted-quad IPv4 address (no prefix length).
pub fn parse_ipv4(s: &str) -> Result<u32, NetError> {
    let p: Ipv4Prefix = format!("{s}/32").parse()?;
    Ok(p.addr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_zeroes_host_bits() {
        let p = Ipv4Prefix::must(0xC0A8_01FF, 24);
        assert_eq!(p.addr(), 0xC0A8_0100);
        assert_eq!(p.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn equal_ranges_compare_equal() {
        let a = Ipv4Prefix::must(0x0A00_00FF, 8);
        let b = Ipv4Prefix::must(0x0A12_3456, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.256/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(0x0A01_FFFF));
        assert!(!p.contains(0x0A02_0000));
        let q: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(p.covers(&p));
        assert!(Ipv4Prefix::DEFAULT_ROUTE.covers(&p));
    }

    #[test]
    fn bits_msb_first() {
        let p: Ipv4Prefix = "192.0.0.0/3".parse().unwrap();
        let bits: Vec<bool> = p.bits().collect();
        assert_eq!(bits, vec![true, true, false]);
    }

    #[test]
    fn children_and_parent_are_inverse() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        assert!(Ipv4Prefix::must(0, 32).children().is_none());
        assert!(Ipv4Prefix::DEFAULT_ROUTE.parent().is_none());
    }

    #[test]
    fn mask_extremes() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(32), u32::MAX);
        assert_eq!(mask(1), 0x8000_0000);
        assert_eq!(mask(24), 0xFFFF_FF00);
    }

    #[test]
    fn address_count() {
        assert_eq!(Ipv4Prefix::must(0, 32).address_count(), 1);
        assert_eq!(Ipv4Prefix::must(0, 24).address_count(), 256);
        assert_eq!(Ipv4Prefix::DEFAULT_ROUTE.address_count(), 1u64 << 32);
    }

    #[test]
    fn parse_ipv4_plain_address() {
        assert_eq!(parse_ipv4("1.2.3.4").unwrap(), 0x0102_0304);
        assert!(parse_ipv4("1.2.3").is_err());
    }

    #[test]
    fn ordering_groups_by_address() {
        let mut v = [
            Ipv4Prefix::must(0x0B00_0000, 8),
            Ipv4Prefix::must(0x0A00_0000, 8),
            Ipv4Prefix::must(0x0A00_0000, 16),
        ];
        v.sort();
        assert_eq!(v[0].len(), 8);
        assert_eq!(v[0].addr(), 0x0A00_0000);
        assert_eq!(v[1].len(), 16);
        assert_eq!(v[2].addr(), 0x0B00_0000);
    }
}

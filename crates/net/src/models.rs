//! Skewed traffic models: Zipf destinations, per-VNID tenant mixes, and
//! flash-crowd phase shifts.
//!
//! [`TrafficGenerator`](crate::traffic::TrafficGenerator) draws every
//! destination fresh (random host bits per packet), which is the right
//! model for saturation throughput but has no temporal locality at all —
//! no two packets share an exact destination, so any exact-match result
//! cache in front of the lookup path sees a 0% hit rate by construction.
//! Real router traffic is the opposite: a small set of hot destinations
//! dominates. This module models that regime:
//!
//! * [`ZipfSampler`] — seeded rank sampler with P(r) ∝ 1/(r+1)^s and a
//!   tunable skew exponent `s` (`s = 0` degenerates to uniform),
//! * [`SkewedTraffic`] — per-VN *concrete destination pools* (one or more
//!   fixed addresses per table prefix, host bits randomized once at build
//!   time) drawn through per-VN Zipf samplers, with per-VNID tenant-mix
//!   weights for the VN choice,
//! * [`FlashCrowdStream`] — a phase-shifted wrapper: every `phase_len`
//!   packets the rank→destination mapping rotates by a seeded offset, so
//!   the hot set changes identity abruptly while the skew shape stays
//!   fixed (a flash crowd / cache-adversarial event).
//!
//! Everything is deterministic under the caller-provided seed, matching
//! the rest of vr-net.

use crate::error::NetError;
use crate::table::RoutingTable;
use crate::traffic::{Packet, VnId, MIN_PACKET_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded Zipf rank sampler over `0..n` with P(r) ∝ 1/(r+1)^s.
///
/// The cumulative distribution is precomputed (one `f64` per rank) and
/// sampling is a uniform draw plus a binary search — O(log n) per sample,
/// allocation-free after construction.
///
/// ```
/// use vr_net::models::ZipfSampler;
///
/// let mut z = ZipfSampler::new(1000, 1.0, 42).unwrap();
/// let r = z.sample();
/// assert!(r < 1000);
/// // s = 1.0 concentrates mass on the head: the top 1% of ranks carry
/// // well over a quarter of the probability.
/// assert!(z.cumulative_mass(10) > 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized cumulative weights; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Errors
    /// Rejects `n == 0` and a negative or non-finite `s`.
    pub fn new(n: usize, s: f64, seed: u64) -> Result<Self, NetError> {
        let cdf = zipf_cdf(n, s)?;
        Ok(Self {
            cdf,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never constructible; kept for
    /// the conventional `len`/`is_empty` pairing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Total probability mass carried by ranks `0..=r` (clamped to the
    /// last rank). Useful for sizing caches against a target hit rate.
    #[must_use]
    pub fn cumulative_mass(&self, r: usize) -> f64 {
        self.cdf[r.min(self.cdf.len() - 1)]
    }

    /// Draws the next rank.
    pub fn sample(&mut self) -> usize {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|c| *c <= x).min(self.cdf.len() - 1)
    }
}

/// Builds the normalized Zipf CDF for `n` ranks with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Result<Vec<f64>, NetError> {
    if n == 0 {
        return Err(NetError::InvalidSpec("zipf sampler needs at least 1 rank"));
    }
    if !s.is_finite() || s < 0.0 {
        return Err(NetError::InvalidSpec(
            "zipf exponent must be finite and non-negative",
        ));
    }
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (0..n)
        .map(|r| {
            acc += ((r + 1) as f64).powf(-s);
            acc
        })
        .collect();
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    Ok(cdf)
}

/// Specification of a skewed K-network traffic stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewedSpec {
    /// Number of virtual networks K (VNIDs are `0..k`).
    pub k: usize,
    /// Zipf exponent applied to every network's destination pool.
    /// `0.0` is uniform over the pool; `1.0` is the classic web/router
    /// working-set skew; larger is hotter.
    pub s: f64,
    /// Per-VNID tenant-mix weights (need not be normalized); `None`
    /// means uniform across networks.
    pub tenant_weights: Option<Vec<f64>>,
    /// Concrete destination addresses materialized per table prefix.
    /// Larger values grow the working set without touching the table.
    pub expansions: usize,
    /// RNG seed (pools, rank order, and the draw stream all derive from
    /// it deterministically).
    pub seed: u64,
    /// Fixed packet size in bytes (minimum 40).
    pub packet_bytes: u32,
}

impl SkewedSpec {
    /// Zipf(s) traffic over `k` networks: one concrete destination per
    /// prefix, uniform tenant mix, 40-byte packets.
    #[must_use]
    pub fn zipf(k: usize, s: f64, seed: u64) -> Self {
        Self {
            k,
            s,
            tenant_weights: None,
            expansions: 1,
            seed,
            packet_bytes: MIN_PACKET_BYTES,
        }
    }

    /// Uniform traffic over the same concrete pools (`s = 0`): the
    /// locality-free control for skew sweeps.
    #[must_use]
    pub fn uniform(k: usize, seed: u64) -> Self {
        Self::zipf(k, 0.0, seed)
    }
}

/// A seeded skewed-traffic generator over fixed per-VN destination pools.
///
/// Unlike [`TrafficGenerator`](crate::traffic::TrafficGenerator), the
/// concrete destination addresses are materialized once at build time
/// (host bits randomized under the seed), so the stream *repeats* exact
/// destinations — hot ranks recur with Zipf frequency. Rank order is a
/// seeded shuffle of the pool, decorrelating hotness from table order.
///
/// ```
/// use vr_net::models::{SkewedSpec, SkewedTraffic};
/// use vr_net::RoutingTable;
///
/// let tables: Vec<RoutingTable> =
///     vec!["10.0.0.0/8 1\n".parse().unwrap(), "11.0.0.0/8 2\n".parse().unwrap()];
/// let mut gen = SkewedTraffic::new(SkewedSpec::zipf(2, 1.0, 7), &tables).unwrap();
/// let p = gen.next_packet();
/// assert!(tables[usize::from(p.vnid)].lookup(p.dst).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SkewedTraffic {
    spec: SkewedSpec,
    /// Cumulative tenant-mix weights for the VN draw.
    vn_cdf: Vec<f64>,
    /// Per-VN concrete destinations in rank order (rank 0 = hottest).
    pools: Vec<Vec<u32>>,
    /// Shared Zipf CDF per VN (pool sizes can differ across VNs).
    cdfs: Vec<Vec<f64>>,
    /// Per-VN rank rotation, advanced by [`FlashCrowdStream`] at phase
    /// boundaries; 0 for a plain skewed stream.
    offsets: Vec<usize>,
    rng: SmallRng,
}

impl SkewedTraffic {
    /// Builds a generator for `tables` (one table per virtual network).
    ///
    /// # Errors
    /// Rejects a spec whose `k` differs from `tables.len()`, empty
    /// tables, zero `expansions`, sub-minimum packet sizes, invalid
    /// tenant weights, and an invalid Zipf exponent.
    pub fn new(spec: SkewedSpec, tables: &[RoutingTable]) -> Result<Self, NetError> {
        if spec.k != tables.len() {
            return Err(NetError::InvalidSpec("spec.k must equal tables.len()"));
        }
        if spec.k == 0 {
            return Err(NetError::InvalidSpec("k must be at least 1"));
        }
        if spec.expansions == 0 {
            return Err(NetError::InvalidSpec("expansions must be at least 1"));
        }
        if spec.packet_bytes < MIN_PACKET_BYTES {
            return Err(NetError::InvalidSpec("packet size below 40-byte minimum"));
        }
        let vn_cdf = tenant_cdf(spec.k, spec.tenant_weights.as_deref())?;
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let mut pools = Vec::with_capacity(spec.k);
        let mut cdfs = Vec::with_capacity(spec.k);
        for table in tables {
            let mut pool: Vec<u32> = Vec::new();
            for prefix in table.prefixes() {
                for _ in 0..spec.expansions {
                    pool.push(concrete_destination(&mut rng, prefix.addr(), prefix.len()));
                }
            }
            if pool.is_empty() {
                return Err(NetError::InvalidSpec(
                    "skewed traffic requires non-empty tables",
                ));
            }
            // Exact-match dedup keeps the cache-visible working set
            // honest, then a seeded Fisher–Yates shuffle assigns ranks.
            pool.sort_unstable();
            pool.dedup();
            for i in (1..pool.len()).rev() {
                pool.swap(i, rng.gen_range(0..=i));
            }
            cdfs.push(zipf_cdf(pool.len(), spec.s)?);
            pools.push(pool);
        }
        let offsets = vec![0; spec.k];
        Ok(Self {
            spec,
            vn_cdf,
            pools,
            cdfs,
            offsets,
            rng,
        })
    }

    /// The spec this generator was built from.
    #[must_use]
    pub fn spec(&self) -> &SkewedSpec {
        &self.spec
    }

    /// Total distinct destinations across all networks — the exact-match
    /// working-set size a result cache competes against.
    #[must_use]
    pub fn working_set(&self) -> usize {
        self.pools.iter().map(Vec::len).sum()
    }

    /// Draws the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let vn = self
            .vn_cdf
            .partition_point(|c| *c <= x)
            .min(self.spec.k - 1);
        let cdf = &self.cdfs[vn];
        let y: f64 = self.rng.gen_range(0.0..1.0);
        let rank = cdf.partition_point(|c| *c <= y).min(cdf.len() - 1);
        let pool = &self.pools[vn];
        let dst = pool[(rank + self.offsets[vn]) % pool.len()];
        Packet {
            vnid: vn as VnId,
            dst,
            bytes: self.spec.packet_bytes,
        }
    }

    /// Draws a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Draws `n` packets as the `(vnid, dst)` pairs the lookup engines
    /// consume.
    pub fn pairs(&mut self, n: usize) -> Vec<(VnId, u32)> {
        (0..n)
            .map(|_| {
                let p = self.next_packet();
                (p.vnid, p.dst)
            })
            .collect()
    }

    /// Rotates every network's rank→destination mapping by a seeded
    /// offset: the skew shape is unchanged but the hot set changes
    /// identity. Exposed for [`FlashCrowdStream`]; callers can also
    /// invoke it directly to script their own phase schedule.
    pub fn shift_hot_set(&mut self) {
        for (vn, offset) in self.offsets.iter_mut().enumerate() {
            let len = self.pools[vn].len();
            if len > 1 {
                *offset = (*offset + self.rng.gen_range(1..len)) % len;
            }
        }
    }
}

/// Materializes one concrete address under `prefix`: network bits kept,
/// host bits drawn once at pool-build time (so the stream repeats it).
fn concrete_destination<R: Rng>(rng: &mut R, addr: u32, len: u8) -> u32 {
    let host_bits = 32 - u32::from(len);
    if host_bits == 0 {
        addr
    } else {
        let mask = ((1u64 << host_bits) - 1) as u32;
        addr | (rng.gen::<u32>() & mask)
    }
}

/// Builds the cumulative tenant-mix CDF.
fn tenant_cdf(k: usize, weights: Option<&[f64]>) -> Result<Vec<f64>, NetError> {
    match weights {
        None => Ok((1..=k).map(|i| i as f64 / k as f64).collect()),
        Some(w) => {
            if w.len() != k {
                return Err(NetError::InvalidSpec("tenant_weights length must equal k"));
            }
            if w.iter().any(|x| *x < 0.0 || !x.is_finite()) {
                return Err(NetError::InvalidSpec(
                    "tenant weights must be finite and non-negative",
                ));
            }
            let sum: f64 = w.iter().sum();
            if sum <= 0.0 {
                return Err(NetError::InvalidSpec("tenant weights must not be all zero"));
            }
            let mut acc = 0.0;
            Ok(w.iter()
                .map(|x| {
                    acc += x / sum;
                    acc
                })
                .collect())
        }
    }
}

/// A flash-crowd stream: Zipf-skewed traffic whose hot set abruptly
/// changes identity every `phase_len` packets.
///
/// Each phase boundary calls [`SkewedTraffic::shift_hot_set`], modeling a
/// flash crowd (yesterday's cold destinations become today's hot ones).
/// Caches warmed on the old hot set see a miss burst at every boundary —
/// the adversarial case for any result cache.
///
/// ```
/// use vr_net::models::{FlashCrowdStream, SkewedSpec};
/// use vr_net::RoutingTable;
///
/// let tables: Vec<RoutingTable> = vec!["10.0.0.0/8 1\n10.1.0.0/16 2\n".parse().unwrap()];
/// let mut fc = FlashCrowdStream::new(SkewedSpec::zipf(1, 1.2, 9), &tables, 4).unwrap();
/// for _ in 0..9 {
///     fc.next_packet();
/// }
/// assert_eq!(fc.phase(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FlashCrowdStream {
    inner: SkewedTraffic,
    phase_len: usize,
    sent: usize,
    phase: usize,
}

impl FlashCrowdStream {
    /// Builds a flash-crowd stream shifting every `phase_len` packets.
    ///
    /// # Errors
    /// Rejects `phase_len == 0` and everything [`SkewedTraffic::new`]
    /// rejects.
    pub fn new(
        spec: SkewedSpec,
        tables: &[RoutingTable],
        phase_len: usize,
    ) -> Result<Self, NetError> {
        if phase_len == 0 {
            return Err(NetError::InvalidSpec("phase_len must be at least 1"));
        }
        Ok(Self {
            inner: SkewedTraffic::new(spec, tables)?,
            phase_len,
            sent: 0,
            phase: 0,
        })
    }

    /// Completed phase count (increments at every hot-set shift).
    #[must_use]
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The wrapped skewed generator.
    #[must_use]
    pub fn inner(&self) -> &SkewedTraffic {
        &self.inner
    }

    /// Draws the next packet, shifting the hot set at phase boundaries.
    pub fn next_packet(&mut self) -> Packet {
        if self.sent > 0 && self.sent.is_multiple_of(self.phase_len) {
            self.inner.shift_hot_set();
            self.phase += 1;
        }
        self.sent += 1;
        self.inner.next_packet()
    }

    /// Draws a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Draws `n` packets as `(vnid, dst)` pairs.
    pub fn pairs(&mut self, n: usize) -> Vec<(VnId, u32)> {
        (0..n)
            .map(|_| {
                let p = self.next_packet();
                (p.vnid, p.dst)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TableSpec;

    fn tables(k: usize) -> Vec<RoutingTable> {
        (0..k)
            .map(|i| {
                TableSpec {
                    prefixes: 200,
                    seed: 900 + i as u64,
                    distribution: crate::synth::PrefixLenDistribution::edge_default(),
                    clustering: None,
                    include_default_route: true,
                    next_hops: 4,
                }
                .generate()
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let z = ZipfSampler::new(1000, 1.0, 0).unwrap();
        assert!((z.cumulative_mass(999) - 1.0).abs() < 1e-12);
        assert!(z.cumulative_mass(0) > z.cumulative_mass(999) / 1000.0);
        let mut prev = 0.0;
        for r in 0..1000 {
            let c = z.cumulative_mass(r);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let z = ZipfSampler::new(100, 0.0, 0).unwrap();
        assert!((z.cumulative_mass(49) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zipf_skew_concentrates_head() {
        let mut hot = ZipfSampler::new(10_000, 1.2, 7).unwrap();
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if hot.sample() < 100 {
                head += 1;
            }
        }
        // Top 1% of ranks must dominate at s = 1.2 (analytic mass ≈ 0.77).
        assert!(head as f64 / N as f64 > 0.6, "head share {head}/{N}");
        assert!(hot.cumulative_mass(99) > 0.7);
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(ZipfSampler::new(0, 1.0, 0).is_err());
        assert!(ZipfSampler::new(10, -0.5, 0).is_err());
        assert!(ZipfSampler::new(10, f64::NAN, 0).is_err());
    }

    #[test]
    fn skewed_packets_are_covered_and_deterministic() {
        let t = tables(3);
        let spec = SkewedSpec::zipf(3, 1.0, 11);
        let mut a = SkewedTraffic::new(spec.clone(), &t).unwrap();
        let mut b = SkewedTraffic::new(spec, &t).unwrap();
        let batch = a.batch(500);
        assert_eq!(batch, b.batch(500));
        for p in &batch {
            assert!(t[usize::from(p.vnid)].lookup(p.dst).is_some());
        }
    }

    #[test]
    fn skewed_stream_repeats_destinations() {
        let t = tables(2);
        let mut g = SkewedTraffic::new(SkewedSpec::zipf(2, 1.0, 3), &t).unwrap();
        let batch = g.batch(2000);
        let mut distinct: Vec<(VnId, u32)> = batch.iter().map(|p| (p.vnid, p.dst)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // Temporal locality: far fewer distinct keys than packets.
        assert!(distinct.len() < batch.len() / 2, "{} distinct", distinct.len());
    }

    #[test]
    fn tenant_mix_weights_bias_vn_choice() {
        let t = tables(2);
        let spec = SkewedSpec {
            tenant_weights: Some(vec![1.0, 9.0]),
            ..SkewedSpec::zipf(2, 0.5, 5)
        };
        let mut g = SkewedTraffic::new(spec, &t).unwrap();
        let batch = g.batch(2000);
        let vn1 = batch.iter().filter(|p| p.vnid == 1).count();
        assert!(vn1 > 1600, "vn1 share {vn1}/2000");
    }

    #[test]
    fn skewed_rejects_bad_specs() {
        let t = tables(2);
        assert!(SkewedTraffic::new(SkewedSpec::zipf(3, 1.0, 0), &t).is_err());
        let mut spec = SkewedSpec::zipf(2, 1.0, 0);
        spec.expansions = 0;
        assert!(SkewedTraffic::new(spec, &t).is_err());
        let mut spec = SkewedSpec::zipf(2, 1.0, 0);
        spec.packet_bytes = 39;
        assert!(SkewedTraffic::new(spec, &t).is_err());
        let mut spec = SkewedSpec::zipf(2, 1.0, 0);
        spec.tenant_weights = Some(vec![0.0, 0.0]);
        assert!(SkewedTraffic::new(spec, &t).is_err());
        assert!(SkewedTraffic::new(SkewedSpec::zipf(1, 1.0, 0), &[RoutingTable::new()]).is_err());
    }

    #[test]
    fn expansions_grow_working_set() {
        let t = tables(1);
        let one = SkewedTraffic::new(SkewedSpec::zipf(1, 1.0, 2), &t).unwrap();
        let mut spec = SkewedSpec::zipf(1, 1.0, 2);
        spec.expansions = 4;
        let four = SkewedTraffic::new(spec, &t).unwrap();
        assert!(four.working_set() > 2 * one.working_set());
    }

    #[test]
    fn flash_crowd_shifts_hot_set_each_phase() {
        let t = tables(1);
        let spec = SkewedSpec::zipf(1, 1.5, 13);
        let mut fc = FlashCrowdStream::new(spec.clone(), &t, 1000).unwrap();
        let phase_a = fc.batch(1000);
        let phase_b = fc.batch(1000);
        assert_eq!(fc.phase(), 1);
        let hot = |batch: &[Packet]| -> u32 {
            let mut counts = std::collections::HashMap::new();
            for p in batch {
                *counts.entry(p.dst).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(d, _)| d).unwrap()
        };
        // The dominant destination changes identity across the boundary
        // (the rank-0 slot rotates to a different concrete address).
        assert_ne!(hot(&phase_a), hot(&phase_b));
        // A plain skewed stream over the same spec keeps it stable.
        let mut steady = SkewedTraffic::new(spec, &t).unwrap();
        let s1 = steady.batch(1000);
        let s2 = steady.batch(1000);
        assert_eq!(hot(&s1), hot(&s2));
    }
}

//! Model-check runner: explores every model program (correct and seeded
//! buggy variants) and prints a coverage report. The CI `model-check` job
//! runs this; a non-zero exit means either a correct protocol failed or a
//! seeded bug escaped detection.

use vr_sync::model::{explore, ExplorerConfig, ModelSpec};
use vr_sync::programs::{CacheProbe, PublishVsLookup, ShardWave};

fn run(spec: &dyn ModelSpec, expect_failure: bool) -> bool {
    let report = explore(spec, &ExplorerConfig::default());
    let verdict = match (&report.failure, expect_failure) {
        (None, false) => "OK (all schedules clean)".to_string(),
        (Some(f), true) => format!("OK (seeded bug caught: {f})"),
        (None, true) => "FAIL: seeded bug escaped detection".to_string(),
        (Some(f), false) => format!("FAIL: {f}"),
    };
    println!(
        "{:28} {:>8} interleavings {:>9} steps{}  {}",
        spec.name(),
        report.schedules,
        report.steps,
        if report.capped { " (capped)" } else { "" },
        verdict
    );
    report.failure.is_some() == expect_failure
}

fn main() {
    let mut ok = true;
    ok &= run(&PublishVsLookup::correct(), false);
    ok &= run(&PublishVsLookup::relaxed_gen_store(), true);
    ok &= run(&CacheProbe::correct(), false);
    ok &= run(&CacheProbe::stale_cache_tag(), true);
    ok &= run(&ShardWave::correct(), false);
    ok &= run(&ShardWave::split_wave(), true);
    if !ok {
        std::process::exit(1);
    }
}

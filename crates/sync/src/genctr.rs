//! Generation counters and cache generation tags.
//!
//! [`AtomicGen`] is the only way the workspace is allowed to express an
//! atomic generation counter. Its API is deliberately narrow: acquire
//! loads, release stores, release bumps. A `Relaxed` publication is not
//! expressible — the type is the static proof obligation that lint rule 9
//! (`no-relaxed-publish`) enforces textually and the model checker proves
//! behaviourally (see `programs::publish_vs_lookup` with the
//! `RelaxedGenStore` seeded bug).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic generation counter with publish/observe ordering built in.
#[derive(Debug)]
pub struct AtomicGen(AtomicU64);

impl AtomicGen {
    /// New counter starting at `value` (generation 0 = "nothing published").
    #[inline]
    pub const fn new(value: u64) -> Self {
        AtomicGen(AtomicU64::new(value))
    }

    /// Observe the counter with acquire ordering: everything the publisher
    /// wrote before the matching `store_release`/`bump_release` is visible.
    #[inline]
    pub fn load_acquire(&self) -> u64 {
        #[cfg(vr_model)]
        crate::trace::record("gen.load", "Acquire");
        self.0.load(Ordering::Acquire)
    }

    /// Publish a specific generation value with release ordering.
    #[inline]
    pub fn store_release(&self, value: u64) {
        #[cfg(vr_model)]
        crate::trace::record("gen.store", "Release");
        self.0.store(value, Ordering::Release);
    }

    /// Advance the counter by one and return the *new* generation.
    #[inline]
    pub fn bump_release(&self) -> u64 {
        #[cfg(vr_model)]
        crate::trace::record("gen.bump", "AcqRel");
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Generation tag stored in a cache slot.
///
/// `GenTag::EMPTY` is `u64::MAX`, unreachable by any live generation (the
/// counter starts at 0 and bumps by 1), so an empty slot can never satisfy
/// [`GenTag::matches`] — the property the `no_stale_cache_hit` model
/// program depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct GenTag(u64);

impl GenTag {
    /// Sentinel for "slot never filled / invalidated".
    pub const EMPTY: GenTag = GenTag(u64::MAX);

    /// Tag a cache fill with the generation of the snapshot it came from.
    #[inline]
    pub fn of(generation: u64) -> Self {
        GenTag(generation)
    }

    /// Does this slot's fill generation match the pinned snapshot's?
    /// A mismatch (including `EMPTY`) is a miss — O(1) whole-cache
    /// invalidation falls out of bumping the generation.
    #[inline]
    pub fn matches(self, generation: u64) -> bool {
        self.0 == generation
    }

    /// The raw fill generation (for telemetry / debug assertions).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotonic_and_returns_new_value() {
        let g = AtomicGen::new(0);
        assert_eq!(g.load_acquire(), 0);
        assert_eq!(g.bump_release(), 1);
        assert_eq!(g.bump_release(), 2);
        assert_eq!(g.load_acquire(), 2);
        g.store_release(9);
        assert_eq!(g.load_acquire(), 9);
    }

    #[test]
    fn empty_tag_never_matches_a_live_generation() {
        assert!(!GenTag::EMPTY.matches(0));
        assert!(!GenTag::EMPTY.matches(1));
        assert!(GenTag::of(3).matches(3));
        assert!(!GenTag::of(3).matches(4));
        assert_eq!(GenTag::of(7).raw(), 7);
    }
}

//! vr-sync: the concurrency discipline layer of the workspace.
//!
//! Every lock-free protocol the engine relies on — the RCU-style `Arc`
//! snapshot swap in `LookupService`, the generation-tagged O(1) cache
//! invalidation in `LpmCache`, and the FIFO publish broadcast in
//! `ShardedService` — goes through the wrapper types in this crate instead
//! of touching `std::sync` / `crossbeam` primitives directly:
//!
//! * [`SyncArc<T>`] — shared immutable snapshot handle (a thin `Arc`).
//! * [`Publish<T>`] — the single-writer/multi-reader publication slot used
//!   for RCU snapshot swaps; readers pay one lock + one refcount per batch.
//! * [`AtomicGen`] — a monotonically increasing generation counter with a
//!   deliberately narrow API (`load_acquire` / `store_release` /
//!   `bump_release`): there is no way to express a `Relaxed` publication
//!   through it, which is the whole point.
//! * [`GenTag`] — the generation tag stored in cache slots, with an
//!   unreachable `EMPTY` sentinel that can never match a live generation.
//! * [`spsc_bounded`] / [`spsc_unbounded`] — the single-producer queues
//!   connecting dispatcher to workers and shards.
//!
//! In a normal build the wrappers compile to the underlying primitive with
//! `#[inline]` delegation — zero cost, verified by the bench-regression
//! gate. Under `--cfg vr_model` every operation additionally records an
//! `(op, ordering)` pair into a process-global trace ([`trace`]) so a test
//! can assert the discipline dynamically (no `Relaxed` publication ever
//! reaches the hardware).
//!
//! Independently of the cfg, [`model`] contains a loom-style deterministic
//! executor that exhaustively enumerates bounded interleavings of small
//! model programs ([`programs`]) over a PSO-like store-buffer memory model,
//! proving the never-torn / generation-monotonic / no-stale-cache-hit
//! invariants on every schedule (and catching deliberately seeded bugs,
//! e.g. a `Relaxed` generation store).

mod arc;
mod genctr;
pub mod model;
pub mod programs;
mod publish;
mod spsc;
#[cfg(any(vr_model, test))]
pub mod trace;

pub use arc::SyncArc;
pub use genctr::{AtomicGen, GenTag};
pub use publish::Publish;
pub use spsc::{
    spsc_bounded, spsc_unbounded, SpscReceiver, SpscSender, TryRecvError, TrySendError,
};

//! Model programs: the engine's three lock-free protocols, reduced to
//! their synchronization skeletons and checked by [`crate::model`].
//!
//! Each program exists in a *correct* variant — proven to satisfy its
//! invariants on every explored interleaving — and in deliberately broken
//! variants ([`SeededBug`]) that the explorer must catch, demonstrating
//! the checker has teeth:
//!
//! * [`PublishVsLookup`] — the `LookupService` RCU swap: a publisher
//!   writes the payload then publishes the generation; readers must never
//!   observe a generation newer than the payload (**never-torn**) and
//!   generations must be **monotonic** per reader. `RelaxedGenStore`
//!   downgrades the publication to `Relaxed`, letting the generation
//!   commit out of the store buffer ahead of the payload.
//! * [`CacheProbe`] — `apply_updates` vs. an `LpmCache` probe: a worker
//!   pins a snapshot and probes a generation-tagged cache; a hit must
//!   return the pinned snapshot's value (**no-stale-cache-hit**).
//!   `StaleCacheTag` removes the generation tag check — the exact failure
//!   mode the `GenTag` discipline exists to prevent.
//! * [`ShardWave`] — the `ShardedService` publish broadcast: publishes
//!   and batches share one FIFO queue per shard, so a batch enqueued
//!   after a publish must resolve against that (or a newer) table, and
//!   adopted generations step monotonically. `SplitWave` interleaves the
//!   broadcast with the next batch on one shard.

use crate::model::{Ctx, MemOrdering, ModelSpec, Step};

/// Deliberately introduced protocol bugs the explorer must detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// Publish the generation with `Relaxed` instead of `Release`.
    RelaxedGenStore,
    /// Cache probe skips the generation-tag comparison.
    StaleCacheTag,
    /// Shard broadcast interleaved with the next batch on one shard.
    SplitWave,
}

const DATA: usize = 0;
const GEN: usize = 1;

/// RCU publish vs. concurrent lookups over a payload/generation pair.
pub struct PublishVsLookup {
    /// Number of publishes (generations 1..=publishes).
    pub publishes: usize,
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Generation+payload observations per reader.
    pub rounds: usize,
    /// Optional seeded bug.
    pub bug: Option<SeededBug>,
}

impl PublishVsLookup {
    /// Correct protocol at a size that yields well over 10k distinct
    /// interleavings.
    pub fn correct() -> Self {
        PublishVsLookup {
            publishes: 3,
            readers: 2,
            rounds: 3,
            bug: None,
        }
    }

    /// `Relaxed` generation store — must be caught as a torn read.
    pub fn relaxed_gen_store() -> Self {
        PublishVsLookup {
            bug: Some(SeededBug::RelaxedGenStore),
            ..Self::correct()
        }
    }
}

impl ModelSpec for PublishVsLookup {
    fn name(&self) -> &'static str {
        "publish_vs_lookup"
    }
    fn atomics(&self) -> usize {
        2
    }
    fn threads(&self) -> usize {
        1 + self.readers
    }
    fn step(&self, t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step {
        if t == 0 {
            // Publisher: payload first (Relaxed, buffered), then the
            // generation (Release — drains the payload ahead of itself).
            if pc >= 2 * self.publishes {
                return Step::Done;
            }
            let g = (pc / 2 + 1) as u64;
            if pc.is_multiple_of(2) {
                ctx.store(DATA, g, MemOrdering::Relaxed);
            } else {
                let ord = if self.bug == Some(SeededBug::RelaxedGenStore) {
                    MemOrdering::Relaxed
                } else {
                    MemOrdering::Release
                };
                ctx.store(GEN, g, ord);
            }
            Step::Next
        } else {
            // Reader: observe generation, then payload. reg0 = last
            // observed generation this round, reg1 = previous round's.
            if pc >= 2 * self.rounds {
                return Step::Done;
            }
            if pc.is_multiple_of(2) {
                let g = ctx.load(GEN, MemOrdering::Acquire);
                if g < ctx.reg(1) {
                    return Step::Fail(format!(
                        "generation not monotonic: observed {g} after {}",
                        ctx.reg(1)
                    ));
                }
                ctx.set_reg(0, g);
                ctx.set_reg(1, g);
                Step::Next
            } else {
                let d = ctx.load(DATA, MemOrdering::Relaxed);
                let g = ctx.reg(0);
                if d < g {
                    return Step::Fail(format!(
                        "torn read: generation {g} published but payload still at {d}"
                    ));
                }
                Step::Next
            }
        }
    }
}

const SNAP: usize = 0;

/// Value of the model lookup under snapshot generation `g` — any injective
/// function of `g` works; the checker only needs hits to be attributable.
fn snapshot_value(g: u64) -> u64 {
    g * 7 + 1
}

/// Route updates being published vs. a worker probing a generation-tagged
/// result cache against its pinned snapshot.
pub struct CacheProbe {
    /// Number of publishes (snapshot generations 1..=publishes).
    pub publishes: usize,
    /// Number of concurrent cache-probing workers.
    pub workers: usize,
    /// Probe rounds per worker.
    pub rounds: usize,
    /// Optional seeded bug.
    pub bug: Option<SeededBug>,
}

impl CacheProbe {
    /// Correct generation-tagged cache at ≥10k-interleaving size.
    pub fn correct() -> Self {
        CacheProbe {
            publishes: 5,
            workers: 2,
            rounds: 5,
            bug: None,
        }
    }

    /// Probe without the generation-tag check — must produce a stale hit.
    pub fn stale_cache_tag() -> Self {
        CacheProbe {
            bug: Some(SeededBug::StaleCacheTag),
            ..Self::correct()
        }
    }
}

impl ModelSpec for CacheProbe {
    fn name(&self) -> &'static str {
        "apply_updates_vs_cache_probe"
    }
    fn atomics(&self) -> usize {
        1
    }
    fn threads(&self) -> usize {
        1 + self.workers
    }
    fn step(&self, t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step {
        if t == 0 {
            if pc >= self.publishes {
                return Step::Done;
            }
            ctx.store(SNAP, (pc + 1) as u64, MemOrdering::Release);
            Step::Next
        } else {
            // Worker round: pin the snapshot, probe the per-worker cache
            // (reg0 = fill tag + 1, 0 = empty; reg1 = cached value;
            // reg2 = previously pinned generation).
            if pc >= self.rounds {
                return Step::Done;
            }
            let pinned = ctx.load(SNAP, MemOrdering::Acquire);
            if pinned < ctx.reg(2) {
                return Step::Fail(format!(
                    "pinned generation not monotonic: {pinned} after {}",
                    ctx.reg(2)
                ));
            }
            ctx.set_reg(2, pinned);
            let hit = match self.bug {
                Some(SeededBug::StaleCacheTag) => ctx.reg(0) != 0,
                _ => ctx.reg(0) == pinned + 1,
            };
            let out = if hit {
                ctx.reg(1)
            } else {
                let fresh = snapshot_value(pinned);
                ctx.set_reg(0, pinned + 1);
                ctx.set_reg(1, fresh);
                fresh
            };
            if out != snapshot_value(pinned) {
                return Step::Fail(format!(
                    "stale cache hit: returned {out} for pinned generation {pinned} \
                     (expected {})",
                    snapshot_value(pinned)
                ));
            }
            Step::Next
        }
    }
}

const JOB_PUBLISH: u64 = 1 << 32;
const JOB_BATCH: u64 = 2 << 32;
const JOB_POISON: u64 = 3 << 32;

/// Shard publish wave vs. in-flight batches on per-shard FIFO queues.
pub struct ShardWave {
    /// Publish waves (generations 1..=waves), each followed by one batch.
    pub waves: usize,
    /// Per-shard job-queue capacity.
    pub queue_depth: usize,
    /// Optional seeded bug.
    pub bug: Option<SeededBug>,
    /// Publisher send script, derived from `waves` and `bug`.
    script: Vec<(usize, u64)>,
}

impl ShardWave {
    const SHARDS: usize = 2;

    fn build(waves: usize, queue_depth: usize, bug: Option<SeededBug>) -> Self {
        let mut script = Vec::new();
        for wave in 1..=waves as u64 {
            let publish = JOB_PUBLISH | wave;
            let batch = JOB_BATCH | (wave << 8) | wave; // batch id, expected gen
            let split = bug == Some(SeededBug::SplitWave) && wave == waves as u64;
            if split {
                // Broken broadcast: shard 1 receives the batch that
                // expects generation `wave` before the publish reaches it.
                script.push((0, publish));
                script.push((0, batch));
                script.push((1, batch));
                script.push((1, publish));
            } else {
                script.push((0, publish));
                script.push((1, publish));
                script.push((0, batch));
                script.push((1, batch));
            }
        }
        script.push((0, JOB_POISON));
        script.push((1, JOB_POISON));
        ShardWave {
            waves,
            queue_depth,
            bug,
            script,
        }
    }

    /// Correct FIFO broadcast at ≥10k-interleaving size.
    pub fn correct() -> Self {
        Self::build(3, 2, None)
    }

    /// Publish wave interleaved with the next batch on one shard.
    pub fn split_wave() -> Self {
        Self::build(3, 2, Some(SeededBug::SplitWave))
    }
}

impl ModelSpec for ShardWave {
    fn name(&self) -> &'static str {
        "shard_publish_wave"
    }
    fn atomics(&self) -> usize {
        0
    }
    fn queues(&self) -> Vec<usize> {
        vec![self.queue_depth; Self::SHARDS]
    }
    fn threads(&self) -> usize {
        1 + Self::SHARDS
    }
    fn step(&self, t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step {
        if t == 0 {
            if pc >= self.script.len() {
                return Step::Done;
            }
            let (q, job) = self.script[pc];
            if ctx.send(q, job) {
                Step::Next
            } else {
                Step::Blocked
            }
        } else {
            // Shard: drain the queue; reg0 = adopted generation.
            let q = t - 1;
            let Some(job) = ctx.recv(q) else {
                return Step::Blocked;
            };
            match job & (0xf << 32) {
                JOB_PUBLISH => {
                    let g = job & 0xff;
                    if g != ctx.reg(0) + 1 {
                        return Step::Fail(format!(
                            "shard {q} adopted generation {g} after {}",
                            ctx.reg(0)
                        ));
                    }
                    ctx.set_reg(0, g);
                    Step::Next
                }
                JOB_BATCH => {
                    let expected = job & 0xff;
                    if ctx.reg(0) != expected {
                        return Step::Fail(format!(
                            "shard {q} batch resolved against stale generation {} \
                             (publish {expected} was enqueued first)",
                            ctx.reg(0)
                        ));
                    }
                    Step::Next
                }
                _ => Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{explore, replay, ExplorerConfig};

    fn cfg() -> ExplorerConfig {
        ExplorerConfig::default()
    }

    #[test]
    fn publish_vs_lookup_is_never_torn_and_monotonic() {
        let report = explore(&PublishVsLookup::correct(), &cfg());
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.schedules >= 10_000,
            "only {} interleavings explored",
            report.schedules
        );
    }

    #[test]
    fn relaxed_generation_store_is_caught_and_replayable() {
        let spec = PublishVsLookup::relaxed_gen_store();
        let report = explore(&spec, &cfg());
        let failure = report.failure.expect("relaxed publish must tear");
        assert!(failure.message.contains("torn read"), "{failure}");
        let replayed = replay(&spec, &failure.seed).expect_err("seed must reproduce the tear");
        assert!(replayed.message.contains("torn read"), "{replayed}");
    }

    #[test]
    fn generation_tagged_cache_never_serves_stale_hits() {
        let report = explore(&CacheProbe::correct(), &cfg());
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.schedules >= 10_000,
            "only {} interleavings explored",
            report.schedules
        );
    }

    #[test]
    fn untagged_cache_probe_is_caught_serving_stale_hits() {
        let spec = CacheProbe::stale_cache_tag();
        let report = explore(&spec, &cfg());
        let failure = report.failure.expect("untagged probe must go stale");
        assert!(failure.message.contains("stale cache hit"), "{failure}");
        let replayed = replay(&spec, &failure.seed).expect_err("seed must reproduce");
        assert!(replayed.message.contains("stale cache hit"), "{replayed}");
    }

    #[test]
    fn shard_publish_wave_keeps_batches_on_fresh_tables() {
        let report = explore(&ShardWave::correct(), &cfg());
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.schedules >= 10_000,
            "only {} interleavings explored",
            report.schedules
        );
    }

    #[test]
    fn split_publish_wave_is_caught() {
        let spec = ShardWave::split_wave();
        let report = explore(&spec, &cfg());
        let failure = report.failure.expect("split wave must be detected");
        assert!(failure.message.contains("stale generation"), "{failure}");
        assert!(replay(&spec, &failure.seed).is_err());
    }
}

//! Process-global operation trace, active under `--cfg vr_model` (and in
//! this crate's own tests).
//!
//! The wrappers in this crate record every load/store/swap they perform as
//! an `(op, ordering)` pair. The trace is the dynamic half of the atomics
//! discipline: the static half (vr-audit lint rules 8/9) proves no code
//! outside the sanctioned homes touches raw atomics at all, and the trace
//! proves the wrappers themselves never downgrade a publication to
//! `Relaxed` at runtime. Recording is off (and free) unless a capture is
//! in progress, so even a `vr_model` build only pays one relaxed load per
//! wrapper op outside captures.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded wrapper operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Wrapper operation label, e.g. `"publish.store"` or `"gen.bump"`.
    pub op: &'static str,
    /// Memory-ordering label the wrapper used, e.g. `"Release"`.
    pub ordering: &'static str,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static TRACE: Mutex<Vec<TraceOp>> = Mutex::new(Vec::new());

/// Record one wrapper operation into the active capture (no-op otherwise).
#[inline]
pub fn record(op: &'static str, ordering: &'static str) {
    if ACTIVE.load(Ordering::Relaxed) {
        TRACE.lock().push(TraceOp { op, ordering });
    }
}

/// Run `f` with recording enabled and return everything it recorded.
///
/// Captures are serialized behind a lock so concurrent tests do not bleed
/// into each other's traces; ops recorded by *other* threads during the
/// capture window are intentionally included (that is what makes the
/// discipline check meaningful for the threaded wrappers).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceOp>) {
    static CAPTURE_GATE: Mutex<()> = Mutex::new(());
    let _gate = CAPTURE_GATE.lock();
    TRACE.lock().clear();
    ACTIVE.store(true, Ordering::SeqCst);
    let out = f();
    ACTIVE.store(false, Ordering::SeqCst);
    let ops = std::mem::take(&mut *TRACE.lock());
    (out, ops)
}

/// Assert the discipline over a captured trace: no publication-side op
/// (`publish.*`, `gen.store`, `gen.bump`) may carry a `Relaxed` ordering.
pub fn assert_no_relaxed_publication(ops: &[TraceOp]) {
    for o in ops {
        let publication = o.op.starts_with("publish.") || o.op == "gen.store" || o.op == "gen.bump";
        assert!(
            !(publication && o.ordering == "Relaxed"),
            "relaxed publication recorded: {o:?}"
        );
    }
}

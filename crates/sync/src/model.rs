//! Deterministic schedule-exploring model checker (loom-style, stateless).
//!
//! A [`ModelSpec`] describes a small concurrent program: a fixed set of
//! model atomics, bounded FIFO queues, and threads whose behaviour is a
//! `step(thread, pc, ctx)` function performing **at most one** shared
//! operation per step (enforced at runtime). The explorer enumerates
//! bounded interleavings by depth-first search over scheduling choices,
//! re-executing the program from its initial state along each path
//! (stateless model checking).
//!
//! ## Memory model
//!
//! Committed atomic state lives in `mem`. On top of it sits a PSO-like
//! per-thread **store buffer**:
//!
//! * `store(_, _, Relaxed)` appends to the executing thread's buffer —
//!   invisible to other threads until a separately scheduled *flush*
//!   commits it. The scheduler may flush buffered stores to **different**
//!   objects in any order (store–store reordering), while stores to the
//!   same object commit in program order (per-object coherence).
//! * `store(_, _, Release)` first drains the thread's own buffer in
//!   program order, then commits the store itself — i.e. everything the
//!   thread wrote before a release publication is visible to any thread
//!   that subsequently observes it. This asymmetry is precisely what makes
//!   a `Relaxed` generation store a *detectable* bug: the generation can
//!   commit while the payload is still buffered.
//! * Loads see the newest own-buffered value for the object, else `mem`.
//!   (Load–load reordering is not modelled; store–store reordering is the
//!   hazard class the publish protocol must survive.)
//!
//! Queue operations are internally synchronized (channels), so they act
//! directly on shared state; a failed `try_send`/`try_recv` blocks the
//! thread until a counterpart operation wakes it, which keeps the search
//! space finite and doubles as a deadlock detector.
//!
//! ## Search
//!
//! Plain DFS is pruned with **sleep sets** (DPOR-style): after a choice's
//! subtree is explored it goes to sleep for its siblings and stays asleep
//! down other branches until a *dependent* action executes; two actions
//! are dependent iff they touch a common object and at least one writes
//! it. A configurable **preemption bound** caps involuntary context
//! switches per schedule (flush actions model the memory subsystem and
//! are never counted as preemptions). Every executed schedule is a
//! distinct interleaving; the choice sequence doubles as a replayable
//! seed, printed on failure and accepted by [`replay`].

use std::collections::VecDeque;

/// Memory ordering a model step requests. Mirrors the discipline surface
/// of the real wrappers (`AtomicGen` cannot even express `Relaxed`; model
/// programs can, to seed bugs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOrdering {
    /// Store goes to the store buffer; load has no synchronization role.
    Relaxed,
    /// Load-side of a publication edge.
    Acquire,
    /// Store-side: drains the thread's store buffer before committing.
    Release,
}

/// Outcome of one [`ModelSpec::step`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Advance this thread's program counter.
    Next,
    /// Thread finished; it is never scheduled again.
    Done,
    /// The queue operation attempted this step failed; retry the same pc
    /// once a counterpart queue operation wakes the thread.
    Blocked,
    /// Invariant violation: aborts the exploration with a replayable seed.
    Fail(String),
}

/// A small concurrent program the explorer can check.
pub trait ModelSpec {
    /// Name used in reports and failure messages.
    fn name(&self) -> &'static str;
    /// Number of model atomics (ids `0..atomics()`), all initially 0.
    fn atomics(&self) -> usize;
    /// Capacities of the bounded FIFO queues (ids `0..len`).
    fn queues(&self) -> Vec<usize> {
        Vec::new()
    }
    /// Number of threads (ids `0..threads()`).
    fn threads(&self) -> usize;
    /// Per-thread scratch registers (local state), all initially 0.
    fn regs(&self) -> usize {
        8
    }
    /// Execute one step of thread `t` at program counter `pc`. At most one
    /// shared operation (load/store/send/recv) per step.
    fn step(&self, t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step;
}

/// Object ids for the dependence relation, encoded compactly.
/// Atomics: `obj`; queues: `QUEUE_BASE | q`; store-buffer cells:
/// `BUF_BASE | thread << 12 | obj`.
const QUEUE_BASE: u32 = 0x2000_0000;
const BUF_BASE: u32 = 0x4000_0000;

/// What one scheduled action read and wrote, for dependence checks.
#[derive(Clone, Debug, Default)]
struct ActionSig {
    reads: Vec<u32>,
    writes: Vec<u32>,
}

impl ActionSig {
    fn dependent(&self, other: &ActionSig) -> bool {
        let hits = |a: &[u32], b: &[u32]| a.iter().any(|o| b.contains(o));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&self.reads, &other.writes)
    }
}

/// One scheduling choice: run a thread step, or commit (flush) the oldest
/// buffered store of `thread` to `obj`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    Step(usize),
    Flush { thread: usize, obj: usize },
}

impl Choice {
    fn encode(&self) -> String {
        match self {
            Choice::Step(t) => format!("{t}"),
            Choice::Flush { thread, obj } => format!("f{thread}:{obj}"),
        }
    }

    fn decode(tok: &str) -> Option<Choice> {
        if let Some(rest) = tok.strip_prefix('f') {
            let (t, o) = rest.split_once(':')?;
            Some(Choice::Flush {
                thread: t.parse().ok()?,
                obj: o.parse().ok()?,
            })
        } else {
            Some(Choice::Step(tok.parse().ok()?))
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    BlockedSend(usize),
    BlockedRecv(usize),
    Done,
}

struct QueueState {
    cap: usize,
    items: VecDeque<u64>,
}

/// The mutable world one step executes against. Spec steps use this to
/// touch shared state; the executor uses the recorded effects to build the
/// action signature and wake blocked threads.
pub struct Ctx<'a> {
    thread: usize,
    mem: &'a mut [u64],
    buffer: &'a mut Vec<(usize, u64)>,
    queues: &'a mut [QueueState],
    regs: &'a mut [u64],
    sig: ActionSig,
    ops: usize,
    blocked: Option<ThreadStatus>,
    woke: Vec<(usize, ThreadStatus)>, // (queue, status-to-wake)
}

impl Ctx<'_> {
    fn one_op(&mut self) {
        self.ops += 1;
        assert!(
            self.ops <= 1,
            "model spec bug: thread {} performed more than one shared op in a single step",
            self.thread
        );
    }

    /// Executing thread id.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Atomic load. Sees the thread's own newest buffered store to `obj`
    /// if any, else committed memory.
    pub fn load(&mut self, obj: usize, ord: MemOrdering) -> u64 {
        self.one_op();
        let _ = ord; // loads synchronize via commit order in this model
        self.sig.reads.push(obj as u32);
        self.sig.reads.push(buf_obj(self.thread, obj));
        match self.buffer.iter().rev().find(|(o, _)| *o == obj) {
            Some((_, v)) => *v,
            None => self.mem[obj],
        }
    }

    /// Atomic store. `Relaxed` buffers; `Release` (or stronger) drains the
    /// thread's buffer in program order, then commits.
    pub fn store(&mut self, obj: usize, val: u64, ord: MemOrdering) {
        self.one_op();
        match ord {
            MemOrdering::Relaxed => {
                self.buffer.push((obj, val));
                self.sig.writes.push(buf_obj(self.thread, obj));
            }
            _ => {
                for (o, v) in self.buffer.drain(..) {
                    self.mem[o] = v;
                    self.sig.writes.push(o as u32);
                    self.sig.writes.push(buf_obj(self.thread, o));
                }
                self.mem[obj] = val;
                self.sig.writes.push(obj as u32);
            }
        }
    }

    /// Non-blocking FIFO send; `false` means full — return [`Step::Blocked`].
    pub fn send(&mut self, q: usize, val: u64) -> bool {
        self.one_op();
        let queue = &mut self.queues[q];
        if queue.items.len() < queue.cap {
            queue.items.push_back(val);
            self.sig.writes.push(QUEUE_BASE | q as u32);
            self.woke.push((q, ThreadStatus::BlockedRecv(q)));
            true
        } else {
            self.sig.reads.push(QUEUE_BASE | q as u32);
            self.blocked = Some(ThreadStatus::BlockedSend(q));
            false
        }
    }

    /// Non-blocking FIFO receive; `None` means empty — return [`Step::Blocked`].
    pub fn recv(&mut self, q: usize) -> Option<u64> {
        self.one_op();
        match self.queues[q].items.pop_front() {
            Some(v) => {
                self.sig.writes.push(QUEUE_BASE | q as u32);
                self.woke.push((q, ThreadStatus::BlockedSend(q)));
                Some(v)
            }
            None => {
                self.sig.reads.push(QUEUE_BASE | q as u32);
                self.blocked = Some(ThreadStatus::BlockedRecv(q));
                None
            }
        }
    }

    /// Thread-local scratch register (not a shared op).
    pub fn reg(&self, i: usize) -> u64 {
        self.regs[i]
    }

    /// Set a thread-local scratch register (not a shared op).
    pub fn set_reg(&mut self, i: usize, v: u64) {
        self.regs[i] = v;
    }
}

fn buf_obj(thread: usize, obj: usize) -> u32 {
    BUF_BASE | ((thread as u32) << 12) | obj as u32
}

/// Execution state of one schedule, rebuilt from scratch per path.
struct Exec {
    mem: Vec<u64>,
    buffers: Vec<Vec<(usize, u64)>>,
    queues: Vec<QueueState>,
    regs: Vec<Vec<u64>>,
    pcs: Vec<usize>,
    status: Vec<ThreadStatus>,
    prev_thread: Option<usize>,
    preemptions: usize,
}

impl Exec {
    fn init(spec: &dyn ModelSpec) -> Exec {
        Exec {
            mem: vec![0; spec.atomics()],
            buffers: vec![Vec::new(); spec.threads()],
            queues: spec
                .queues()
                .into_iter()
                .map(|cap| QueueState {
                    cap: cap.max(1),
                    items: VecDeque::new(),
                })
                .collect(),
            regs: vec![vec![0; spec.regs()]; spec.threads()],
            pcs: vec![0; spec.threads()],
            status: vec![ThreadStatus::Runnable; spec.threads()],
            prev_thread: None,
            preemptions: 0,
        }
    }

    fn all_done(&self) -> bool {
        self.status.iter().all(|s| *s == ThreadStatus::Done)
    }

    /// Enabled choices in canonical order, preemption bound applied.
    fn enabled(&self, bound: usize) -> Vec<Choice> {
        let mut out = Vec::new();
        let budget_left = self.preemptions < bound;
        let prev_runnable = self
            .prev_thread
            .map(|p| self.status[p] == ThreadStatus::Runnable)
            .unwrap_or(false);
        for (t, s) in self.status.iter().enumerate() {
            if *s != ThreadStatus::Runnable {
                continue;
            }
            // Out of preemption budget: the previous thread, if still
            // runnable, is the only steppable one (a switch away from a
            // runnable thread is a preemption; switching off a blocked or
            // finished thread is free).
            if !budget_left && prev_runnable && self.prev_thread != Some(t) {
                continue;
            }
            out.push(Choice::Step(t));
        }
        for (t, buf) in self.buffers.iter().enumerate() {
            let mut seen = Vec::new();
            for (obj, _) in buf {
                if !seen.contains(obj) {
                    seen.push(*obj);
                    out.push(Choice::Flush { thread: t, obj: *obj });
                }
            }
        }
        out
    }

    /// Execute one choice; returns its action signature, or an invariant
    /// failure message.
    fn execute(&mut self, spec: &dyn ModelSpec, c: Choice) -> Result<ActionSig, String> {
        match c {
            Choice::Flush { thread, obj } => {
                let buf = &mut self.buffers[thread];
                let idx = buf
                    .iter()
                    .position(|(o, _)| *o == obj)
                    .expect("flush choice for empty buffer cell");
                let (o, v) = buf.remove(idx);
                self.mem[o] = v;
                Ok(ActionSig {
                    reads: vec![buf_obj(thread, o)],
                    writes: vec![o as u32, buf_obj(thread, o)],
                })
            }
            Choice::Step(t) => {
                debug_assert_eq!(self.status[t], ThreadStatus::Runnable);
                if let Some(p) = self.prev_thread {
                    if p != t && self.status[p] == ThreadStatus::Runnable {
                        self.preemptions += 1;
                    }
                }
                self.prev_thread = Some(t);
                let mut ctx = Ctx {
                    thread: t,
                    mem: &mut self.mem,
                    buffer: &mut self.buffers[t],
                    queues: &mut self.queues,
                    regs: &mut self.regs[t],
                    sig: ActionSig::default(),
                    ops: 0,
                    blocked: None,
                    woke: Vec::new(),
                };
                let outcome = spec.step(t, self.pcs[t], &mut ctx);
                let sig = std::mem::take(&mut ctx.sig);
                let blocked = ctx.blocked;
                let woke = std::mem::take(&mut ctx.woke);
                match outcome {
                    Step::Next => {
                        assert!(
                            blocked.is_none(),
                            "model spec bug: step returned Next after a failed queue op"
                        );
                        self.pcs[t] += 1;
                    }
                    Step::Done => {
                        self.status[t] = ThreadStatus::Done;
                    }
                    Step::Blocked => {
                        let status = blocked.expect(
                            "model spec bug: step returned Blocked without a failed queue op",
                        );
                        self.status[t] = status;
                    }
                    Step::Fail(msg) => return Err(msg),
                }
                for (_, wake_status) in woke {
                    for s in self.status.iter_mut() {
                        if *s == wake_status {
                            *s = ThreadStatus::Runnable;
                        }
                    }
                }
                Ok(sig)
            }
        }
    }
}

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Maximum involuntary context switches per schedule.
    pub preemption_bound: usize,
    /// Stop (capped, not failed) after this many executed schedules.
    pub max_schedules: u64,
    /// Per-schedule step guard against runaway specs.
    pub max_steps: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            preemption_bound: 8,
            max_schedules: 200_000,
            max_steps: 10_000,
        }
    }
}

/// Invariant violation (or deadlock) with its replayable schedule.
#[derive(Clone, Debug)]
pub struct ModelFailure {
    /// Space-separated choice sequence, accepted verbatim by [`replay`].
    pub seed: String,
    /// The failing invariant's message.
    pub message: String,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [replay seed: {}]", self.message, self.seed)
    }
}

/// What an exploration covered.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct interleavings executed to completion.
    pub schedules: u64,
    /// Total scheduled actions across all paths.
    pub steps: u64,
    /// True when `max_schedules` stopped the search before exhaustion.
    pub capped: bool,
    /// First invariant violation, if any (search stops on it).
    pub failure: Option<ModelFailure>,
}

struct Node {
    /// Enabled-and-not-sleeping choices at this depth, canonical order.
    candidates: Vec<Choice>,
    /// Index into `candidates` currently being explored.
    cur: usize,
    /// Sleeping (choice, signature) pairs: explored siblings plus
    /// inherited entries still independent of everything executed since.
    sleep: Vec<(Choice, ActionSig)>,
    /// Signature of `candidates[cur]` as executed at this node.
    action: Option<ActionSig>,
}

fn seed_of(stack: &[Node]) -> String {
    stack
        .iter()
        .map(|n| n.candidates[n.cur].encode())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Exhaustively explore bounded interleavings of `spec`.
pub fn explore(spec: &dyn ModelSpec, cfg: &ExplorerConfig) -> ExploreReport {
    let mut report = ExploreReport {
        schedules: 0,
        steps: 0,
        capped: false,
        failure: None,
    };
    let mut stack: Vec<Node> = Vec::new();
    'search: loop {
        // Re-execute the prefix the stack describes, then extend with
        // first-candidate choices until the schedule completes.
        // Only the deepest prefix entry can be a never-executed choice (a
        // freshly advanced sibling), so a failure here is a real finding,
        // not a replay divergence.
        let mut exec = Exec::init(spec);
        let mut prefix_failed = false;
        for depth in 0..stack.len() {
            let c = stack[depth].candidates[stack[depth].cur];
            match exec.execute(spec, c) {
                Ok(sig) => stack[depth].action = Some(sig),
                Err(message) => {
                    stack.truncate(depth + 1);
                    report.failure = Some(ModelFailure {
                        seed: seed_of(&stack),
                        message: format!("{}: {}", spec.name(), message),
                    });
                    prefix_failed = true;
                }
            }
            report.steps += 1;
            if prefix_failed {
                break 'search;
            }
        }
        loop {
            if exec.all_done() {
                report.schedules += 1;
                break;
            }
            let enabled = exec.enabled(cfg.preemption_bound);
            if enabled.is_empty() {
                report.failure = Some(ModelFailure {
                    seed: seed_of(&stack),
                    message: format!("{}: deadlock (threads blocked, none runnable)", spec.name()),
                });
                break 'search;
            }
            // Sleep set for this new node: parent entries still
            // independent of the parent's executed action.
            let sleep: Vec<(Choice, ActionSig)> = match stack.last() {
                Some(parent) => {
                    let pa = parent.action.as_ref().expect("parent executed");
                    parent
                        .sleep
                        .iter()
                        .filter(|(_, sig)| !sig.dependent(pa))
                        .cloned()
                        .collect()
                }
                None => Vec::new(),
            };
            let candidates: Vec<Choice> = enabled
                .into_iter()
                .filter(|c| !sleep.iter().any(|(sc, _)| sc == c))
                .collect();
            if candidates.is_empty() {
                // Everything enabled is sleeping: this continuation is
                // equivalent to one already explored. Prune, don't count.
                break;
            }
            let choice = candidates[0];
            let mut node = Node {
                candidates,
                cur: 0,
                sleep,
                action: None,
            };
            match exec.execute(spec, choice) {
                Ok(sig) => node.action = Some(sig),
                Err(message) => {
                    stack.push(node);
                    report.steps += 1;
                    report.failure = Some(ModelFailure {
                        seed: seed_of(&stack),
                        message: format!("{}: {}", spec.name(), message),
                    });
                    break 'search;
                }
            }
            stack.push(node);
            report.steps += 1;
            if stack.len() > cfg.max_steps {
                report.failure = Some(ModelFailure {
                    seed: seed_of(&stack),
                    message: format!("{}: schedule exceeded max_steps", spec.name()),
                });
                break 'search;
            }
        }
        if report.schedules >= cfg.max_schedules {
            report.capped = true;
            break 'search;
        }
        // Backtrack: put the finished choice to sleep, advance to the next
        // sibling, popping exhausted nodes.
        loop {
            match stack.last_mut() {
                None => break 'search,
                Some(top) => {
                    let c = top.candidates[top.cur];
                    if let Some(sig) = top.action.take() {
                        top.sleep.push((c, sig));
                    }
                    top.cur += 1;
                    if top.cur < top.candidates.len() {
                        continue 'search;
                    }
                    stack.pop();
                }
            }
        }
    }
    report
}

/// Re-execute one exact schedule from a failure seed. Returns the failure
/// it reproduces, `Ok(())` if the schedule now runs clean (e.g. after a
/// fix), or an error describing why the seed no longer applies.
pub fn replay(spec: &dyn ModelSpec, seed: &str) -> Result<(), ModelFailure> {
    let mut exec = Exec::init(spec);
    let mut executed: Vec<Choice> = Vec::new();
    for tok in seed.split_whitespace() {
        let c = Choice::decode(tok).ok_or_else(|| ModelFailure {
            seed: seed.to_string(),
            message: format!("{}: unparseable seed token {tok:?}", spec.name()),
        })?;
        let enabled = exec.enabled(usize::MAX);
        if !enabled.contains(&c) {
            return Err(ModelFailure {
                seed: seed.to_string(),
                message: format!(
                    "{}: seed choice {tok} not enabled after {:?}",
                    spec.name(),
                    executed
                ),
            });
        }
        if let Err(message) = exec.execute(spec, c) {
            return Err(ModelFailure {
                seed: seed.to_string(),
                message: format!("{}: {}", spec.name(), message),
            });
        }
        executed.push(c);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared "counter" non-atomically
    /// (load then store): the classic lost-update race the explorer must
    /// find, plus a sanity check that counting works at all.
    struct LostUpdate;

    impl ModelSpec for LostUpdate {
        fn name(&self) -> &'static str {
            "lost_update"
        }
        fn atomics(&self) -> usize {
            1
        }
        fn threads(&self) -> usize {
            3
        }
        fn step(&self, t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step {
            if t < 2 {
                match pc {
                    0 => {
                        let v = ctx.load(0, MemOrdering::Acquire);
                        ctx.set_reg(0, v);
                        Step::Next
                    }
                    1 => {
                        ctx.store(0, ctx.reg(0) + 1, MemOrdering::Release);
                        Step::Next
                    }
                    _ => Step::Done,
                }
            } else {
                // Checker thread: runs after both writers in *some*
                // schedules; flags the lost update when it observes it.
                match pc {
                    0..=2 => {
                        // Idle steps so the checker's final load can land
                        // after both increments in at least one schedule.
                        ctx.set_reg(1, pc as u64);
                        Step::Next
                    }
                    3 => {
                        let v = ctx.load(0, MemOrdering::Acquire);
                        if v == 1 {
                            return Step::Fail("lost update observed (counter == 1)".into());
                        }
                        Step::Next
                    }
                    _ => Step::Done,
                }
            }
        }
    }

    #[test]
    fn explorer_finds_the_lost_update_race() {
        let report = explore(&LostUpdate, &ExplorerConfig::default());
        let failure = report.failure.expect("race must be found");
        assert!(failure.message.contains("lost update"), "{failure}");
        // The seed replays to the same failure.
        let replayed = replay(&LostUpdate, &failure.seed).expect_err("seed must reproduce");
        assert!(replayed.message.contains("lost update"), "{replayed}");
    }

    /// A single thread writing then reading its own buffered store must
    /// see it (store-buffer forwarding).
    struct OwnBufferForwarding;

    impl ModelSpec for OwnBufferForwarding {
        fn name(&self) -> &'static str {
            "own_buffer_forwarding"
        }
        fn atomics(&self) -> usize {
            1
        }
        fn threads(&self) -> usize {
            1
        }
        fn step(&self, _t: usize, pc: usize, ctx: &mut Ctx<'_>) -> Step {
            match pc {
                0 => {
                    ctx.store(0, 42, MemOrdering::Relaxed);
                    Step::Next
                }
                1 => {
                    let v = ctx.load(0, MemOrdering::Relaxed);
                    if v != 42 {
                        return Step::Fail(format!("own store not forwarded: {v}"));
                    }
                    Step::Next
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn own_buffered_stores_are_forwarded_to_own_loads() {
        let report = explore(&OwnBufferForwarding, &ExplorerConfig::default());
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.schedules >= 1);
    }

    /// Deadlock detection: a consumer on an empty queue with no producer.
    struct StuckConsumer;

    impl ModelSpec for StuckConsumer {
        fn name(&self) -> &'static str {
            "stuck_consumer"
        }
        fn atomics(&self) -> usize {
            0
        }
        fn queues(&self) -> Vec<usize> {
            vec![1]
        }
        fn threads(&self) -> usize {
            1
        }
        fn step(&self, _t: usize, _pc: usize, ctx: &mut Ctx<'_>) -> Step {
            match ctx.recv(0) {
                Some(_) => Step::Next,
                None => Step::Blocked,
            }
        }
    }

    #[test]
    fn deadlock_is_reported_with_a_seed() {
        let report = explore(&StuckConsumer, &ExplorerConfig::default());
        let failure = report.failure.expect("deadlock must be detected");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }
}

//! `Publish<T>`: the RCU-style publication slot.
//!
//! One writer swaps in a freshly built immutable value; any number of
//! readers pin it with a single lock + refcount bump and then work
//! entirely lock-free on their pinned [`SyncArc`]. The slot owns the
//! never-torn guarantee: a reader either sees the old snapshot or the new
//! one, never a mix — `programs::publish_vs_lookup` proves the protocol
//! over every bounded interleaving.

use crate::SyncArc;
use parking_lot::Mutex;
use std::sync::Arc;

/// Single-writer / multi-reader publication slot for immutable snapshots.
pub struct Publish<T> {
    slot: Arc<Mutex<SyncArc<T>>>,
}

impl<T> Publish<T> {
    /// Create a slot holding the initial published value.
    pub fn new(value: T) -> Self {
        Publish {
            slot: Arc::new(Mutex::new(SyncArc::new(value))),
        }
    }

    /// Pin the current snapshot: one lock, one refcount bump, then the
    /// caller works on the returned handle without further coordination.
    #[inline]
    pub fn read(&self) -> SyncArc<T> {
        #[cfg(vr_model)]
        crate::trace::record("publish.read", "Acquire");
        self.slot.lock().clone()
    }

    /// Publish a new snapshot, replacing the current one. In-flight
    /// readers keep their pinned handle; new readers see `next`.
    #[inline]
    pub fn store(&self, next: SyncArc<T>) {
        #[cfg(vr_model)]
        crate::trace::record("publish.store", "Release");
        *self.slot.lock() = next;
    }

    /// Read-modify-publish under one critical section: `f` sees the
    /// current snapshot and returns the replacement plus a result (the
    /// service uses this to derive `generation + 1` atomically with the
    /// swap).
    #[inline]
    pub fn update<R>(&self, f: impl FnOnce(&SyncArc<T>) -> (SyncArc<T>, R)) -> R {
        #[cfg(vr_model)]
        crate::trace::record("publish.update", "AcqRel");
        let mut slot = self.slot.lock();
        let (next, out) = f(&slot);
        *slot = next;
        out
    }

    /// Observe a property of the current snapshot without taking a
    /// refcount (e.g. its generation number).
    #[inline]
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(vr_model)]
        crate::trace::record("publish.peek", "Acquire");
        f(&self.slot.lock())
    }
}

impl<T> Clone for Publish<T> {
    /// Clone the *slot handle* (publisher and readers share one slot),
    /// not the published value.
    #[inline]
    fn clone(&self) -> Self {
        Publish {
            slot: Arc::clone(&self.slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_pin_old_snapshot_across_a_publish() {
        let p = Publish::new(vec![1u32, 2, 3]);
        let pinned = p.read();
        p.store(SyncArc::new(vec![9u32]));
        assert_eq!(*pinned, vec![1, 2, 3], "in-flight reader keeps its pin");
        assert_eq!(*p.read(), vec![9], "new reader sees the publication");
    }

    #[test]
    fn update_swaps_atomically_and_returns_derived_value() {
        let p = Publish::new(10u64);
        let next_gen = p.update(|cur| (SyncArc::new(**cur + 1), **cur + 1));
        assert_eq!(next_gen, 11);
        assert_eq!(*p.read(), 11);
        assert_eq!(p.peek(|v| *v), 11);
    }

    #[test]
    fn clones_share_the_slot() {
        let p = Publish::new(1u32);
        let q = p.clone();
        p.store(SyncArc::new(2));
        assert_eq!(*q.read(), 2);
        assert!(SyncArc::ptr_eq(&p.read(), &q.read()));
    }
}

//! Single-producer queues connecting the dispatcher to workers/shards.
//!
//! Thin wrappers over the crossbeam channels the engine already uses; the
//! newtype makes the producer/consumer topology explicit at type level and
//! gives the lint a sanctioned surface (raw `crossbeam::channel` stays
//! inside this crate and the vendored stand-in). The FIFO property of the
//! bounded queue is what makes the sharded publish wave deterministic —
//! `programs::shard_publish_wave` checks exactly that.

pub use crossbeam::channel::{TryRecvError, TrySendError};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvError, SendError, Sender};

/// Producer half of an SPSC queue.
pub struct SpscSender<T>(Sender<T>);

/// Consumer half of an SPSC queue.
pub struct SpscReceiver<T>(Receiver<T>);

/// Bounded FIFO queue of depth `depth` (at least 1).
pub fn spsc_bounded<T>(depth: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let (tx, rx) = bounded(depth);
    (SpscSender(tx), SpscReceiver(rx))
}

/// Unbounded FIFO queue (completion/return paths that must never stall).
pub fn spsc_unbounded<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    let (tx, rx) = unbounded();
    (SpscSender(tx), SpscReceiver(rx))
}

impl<T> SpscSender<T> {
    /// Blocking send; `Err` means the consumer hung up.
    #[inline]
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        #[cfg(vr_model)]
        crate::trace::record("spsc.send", "Release");
        self.0.send(value)
    }

    /// Non-blocking send; `Full` is the backpressure signal the
    /// dispatcher's stall telemetry counts.
    #[inline]
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        #[cfg(vr_model)]
        crate::trace::record("spsc.try_send", "Release");
        self.0.try_send(value)
    }
}

impl<T> SpscReceiver<T> {
    /// Blocking receive; `Err` means the producer hung up and the queue
    /// drained — the worker-loop shutdown signal.
    #[inline]
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(vr_model)]
        crate::trace::record("spsc.recv", "Acquire");
        self.0.recv()
    }

    /// Non-blocking receive.
    #[inline]
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        #[cfg(vr_model)]
        crate::trace::record("spsc.try_recv", "Acquire");
        self.0.try_recv()
    }

    /// Drain until the producer hangs up.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_preserves_fifo_and_reports_backpressure() {
        let (tx, rx) = spsc_bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn receiver_sees_hangup_after_producer_drops() {
        let (tx, rx) = spsc_unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![7]);
        assert!(rx.recv().is_err());
    }
}

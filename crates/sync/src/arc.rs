//! `SyncArc<T>`: the shared-snapshot handle.
//!
//! A thin newtype over `std::sync::Arc` so that every place a snapshot
//! crosses a thread boundary is visible to the lint (rule 8 bans raw
//! `std::sync` primitives outside this crate) and, under `--cfg vr_model`,
//! to the trace. The newtype compiles away: every method is an `#[inline]`
//! one-liner over the underlying `Arc`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Shared immutable handle to a published value (snapshot, table, …).
pub struct SyncArc<T: ?Sized>(Arc<T>);

impl<T> SyncArc<T> {
    /// Wrap a freshly built value for publication.
    #[inline]
    pub fn new(value: T) -> Self {
        SyncArc(Arc::new(value))
    }
}

impl<T: ?Sized> SyncArc<T> {
    /// Pointer equality: do the two handles name the same published value?
    #[inline]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Number of live handles (mainly useful in tests and audits).
    #[inline]
    pub fn strong_count(this: &Self) -> usize {
        Arc::strong_count(&this.0)
    }
}

impl<T: ?Sized> Clone for SyncArc<T> {
    #[inline]
    fn clone(&self) -> Self {
        #[cfg(vr_model)]
        crate::trace::record("arc.clone", "Acquire");
        SyncArc(Arc::clone(&self.0))
    }
}

impl<T: ?Sized> Deref for SyncArc<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SyncArc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

//! Dynamic atomics-discipline check, active only under `--cfg vr_model`
//! (the model-check CI job). The instrumented wrappers record every
//! operation with its ordering; this test drives the real primitives and
//! asserts no publication-side operation ever carries `Relaxed`.
#![cfg(vr_model)]

use vr_sync::trace;
use vr_sync::{spsc_bounded, AtomicGen, Publish, SyncArc};

#[test]
fn wrapper_trace_records_orderings_and_discipline_holds() {
    let publish = Publish::new(0u64);
    let generation = AtomicGen::new(0);
    let (tx, rx) = spsc_bounded::<u64>(4);

    let ((), ops) = trace::capture(|| {
        // One full publish/observe round through every wrapper.
        let pinned = publish.read();
        let _staged = pinned.clone();
        publish.store(SyncArc::new(*pinned + 1));
        let g = generation.bump_release();
        generation.store_release(g);
        assert_eq!(generation.load_acquire(), g);
        tx.try_send(g).unwrap();
        tx.send(g + 1).unwrap();
        assert_eq!(rx.recv().unwrap(), g);
        assert_eq!(rx.try_recv().unwrap(), g + 1);
        let _ = publish.update(|cur| (SyncArc::new(**cur), ()));
        publish.peek(|v| assert_eq!(*v, 1));
    });

    let recorded: Vec<&str> = ops.iter().map(|o| o.op).collect();
    for expected in [
        "publish.read",
        "arc.clone",
        "publish.store",
        "gen.bump",
        "gen.store",
        "gen.load",
        "spsc.try_send",
        "spsc.send",
        "spsc.recv",
        "spsc.try_recv",
        "publish.update",
        "publish.peek",
    ] {
        assert!(
            recorded.contains(&expected),
            "wrapper op {expected} not recorded in {recorded:?}"
        );
    }
    // The discipline itself: no publication-side op may be Relaxed, and
    // the publish/observe sides carry the orderings the protocol needs.
    trace::assert_no_relaxed_publication(&ops);
    let ordering_of = |op: &str| {
        ops.iter()
            .find(|o| o.op == op)
            .map(|o| o.ordering)
            .unwrap()
    };
    assert_eq!(ordering_of("publish.store"), "Release");
    assert_eq!(ordering_of("gen.store"), "Release");
    assert_eq!(ordering_of("gen.load"), "Acquire");
}

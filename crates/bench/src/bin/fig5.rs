//! Regenerates Fig. 5: total power of NV vs VS vs VM (α ≈ 0.2, 0.8) for
//! both speed grades, K = 1..15. Both the analytical (model) and the
//! simulated post-PAR (experimental) values are printed.

use vr_bench::{config_from_args, emit, opt_num};
use vr_power::experiments::power_sweep;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let points = power_sweep(&cfg).expect("power sweep");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.grade.to_string(),
                p.k.to_string(),
                num(p.model_w, 3),
                num(p.experimental_w, 3),
                opt_num(p.alpha, 3),
            ]
        })
        .collect();
    emit(
        "fig5",
        &[
            "Series",
            "Grade",
            "K",
            "Model (W)",
            "Experimental (W)",
            "measured α",
        ],
        &cells,
        &points,
    );
}

//! `replay_client` — drive a `vr-wire` server with synthetic traffic
//! and report end-to-end throughput and round-trip latency.
//!
//! Two modes:
//!
//! * `--addr HOST:PORT` — replay against an already-running server.
//! * no `--addr` — self-contained: builds a paper-scale family, starts
//!   a [`WireServer`] on a loopback port, replays against it, and (with
//!   `--churn N`) runs a concurrent connection pushing `N` route
//!   updates per batch so the RTT numbers include RCU publishes.
//!
//! Flags: `--model uniform|zipf|flash` (default zipf), `--s EXP` (Zipf
//! exponent, default 1.0), `--batches N`, `--batch-size N`, `--hot-k N`,
//! `--seed N`, `--churn N`, `--quick`. Output lands in
//! `results/wire_replay.{csv,json}` via the standard emit path.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Serialize;
use vr_bench::emit;
use vr_net::synth::FamilySpec;
use vr_net::{RoutingTable, UpdateMix, UpdateStream};
use vr_wire::{
    replay, Message, ReplayConfig, ServerConfig, TrafficModel, WireClient, WireServer,
};

/// Serialized alongside the table for `results/wire_replay.json`.
#[derive(Serialize)]
struct ReplayRow {
    model: String,
    batch_size: usize,
    batches: u64,
    packets: u64,
    overloaded: u64,
    packets_per_sec: f64,
    p50_rtt_ns: u64,
    p99_rtt_ns: u64,
    min_generation: u64,
    max_generation: u64,
    churn_acks: u64,
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");
    let model = match flag_value("--model").as_deref() {
        Some("uniform") => TrafficModel::Uniform,
        Some("flash") => TrafficModel::FlashCrowd {
            s: flag_num("--s", 1.0),
            phase_len: flag_num("--phase-len", 4096),
        },
        _ => TrafficModel::Zipf {
            s: flag_num("--s", 1.0),
        },
    };
    let cfg = ReplayConfig {
        model,
        batch_size: flag_num("--batch-size", 64),
        batches: flag_num("--batches", if quick { 100 } else { 2000 }),
        hot_k: flag_num("--hot-k", 4096),
        seed: flag_num("--seed", 2012),
    };
    let churn_per_batch: usize = flag_num("--churn", 0);

    // The traffic model draws destinations from real tables, so both
    // modes build the same family; in `--addr` mode the server is
    // expected to serve a compatible one (same FamilySpec seed).
    let k = if quick { 2 } else { 4 };
    let family = FamilySpec::paper_worst_case(k, 0.5, cfg.seed)
        .generate()
        .expect("family generation");

    let (stats, churn_acks) = match flag_value("--addr") {
        Some(addr) => {
            let mut client = WireClient::connect_tcp(&addr).expect("connect --addr");
            client.ping().expect("server answers ping");
            let (stats, _) = replay(&mut client, &family, &cfg).expect("replay");
            (stats, 0)
        }
        None => self_contained(family.clone(), &cfg, churn_per_batch),
    };

    let row = ReplayRow {
        model: cfg.model.label().to_string(),
        batch_size: cfg.batch_size,
        batches: stats.responses + stats.overloaded + stats.errors,
        packets: stats.packets,
        overloaded: stats.overloaded,
        packets_per_sec: stats.packets_per_sec(),
        p50_rtt_ns: stats.p50_rtt_ns,
        p99_rtt_ns: stats.p99_rtt_ns,
        min_generation: stats.min_generation,
        max_generation: stats.max_generation,
        churn_acks,
    };
    emit(
        "wire_replay",
        &[
            "model",
            "batch",
            "frames",
            "packets",
            "overloaded",
            "pps",
            "p50_rtt_us",
            "p99_rtt_us",
            "generations",
            "churn_acks",
        ],
        &[vec![
            row.model.clone(),
            row.batch_size.to_string(),
            row.batches.to_string(),
            row.packets.to_string(),
            row.overloaded.to_string(),
            format!("{:.0}", row.packets_per_sec),
            format!("{:.1}", row.p50_rtt_ns as f64 / 1e3),
            format!("{:.1}", row.p99_rtt_ns as f64 / 1e3),
            format!("{}..{}", row.min_generation, row.max_generation),
            row.churn_acks.to_string(),
        ]],
        &row,
    );
}

/// Starts a loopback server over a control plane built from `family`,
/// replays against it (with optional concurrent churn), and shuts it
/// down.
fn self_contained(
    family: Vec<RoutingTable>,
    cfg: &ReplayConfig,
    churn_per_batch: usize,
) -> (vr_wire::ReplayStats, u64) {
    use vr_control::{ControlConfig, ControlPlane};
    use vr_engine::{LookupService, ServiceConfig};

    let service = LookupService::new(family.clone(), ServiceConfig::default()).expect("service");
    let plane = ControlPlane::new(service, ControlConfig::default()).expect("control plane");
    let server = WireServer::serve_tcp("127.0.0.1:0", plane, ServerConfig::default(), None)
        .expect("bind wire server");
    let addr = server.local_addr().expect("tcp addr");

    // Concurrent churn: a second connection streams update batches for
    // the whole replay window so lookups race real publishes.
    let stop = Arc::new(Mutex::new(false));
    let churn_thread = (churn_per_batch > 0).then(|| {
        let stop = Arc::clone(&stop);
        let tables = family.clone();
        let seed = cfg.seed;
        std::thread::spawn(move || {
            let mut acks = 0u64;
            let mut stream = UpdateStream::new(tables, UpdateMix::default(), 16, seed ^ 0x5EED)
                .expect("update stream");
            let Ok(mut client) = WireClient::connect_tcp(addr) else {
                return acks;
            };
            while !*stop.lock().expect("stop flag") {
                let batch = stream.batch(churn_per_batch);
                match client.apply_updates(&batch) {
                    Ok(Message::UpdateAck { .. }) => acks += 1,
                    Ok(_) => {}
                    Err(_) => break,
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            acks
        })
    });

    let mut client = WireClient::connect_tcp(addr).expect("connect loopback");
    let (stats, _) = replay(&mut client, &family, cfg).expect("replay");

    *stop.lock().expect("stop flag") = true;
    let churn_acks = churn_thread
        .and_then(|t| t.join().ok())
        .unwrap_or_default();
    drop(server);
    (stats, churn_acks)
}

//! Regenerates the §V-A static-power summary: 4.5 W (-2) and 3.1 W (-1L)
//! with the ±5 % area-dependent band.

use vr_bench::emit;
use vr_power::experiments::statics_rows;
use vr_power::report::num;

fn main() {
    let rows = statics_rows();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.grade.to_string(),
                num(r.base_w, 2),
                num(r.min_w, 3),
                num(r.max_w, 3),
            ]
        })
        .collect();
    emit(
        "statics",
        &["Grade", "Base (W)", "Min −5% (W)", "Max +5% (W)"],
        &cells,
        &rows,
    );
}

//! `vrpower` — command-line power estimator for virtualized FPGA routers.
//!
//! The downstream-user entry point: feed it routing tables (real dumps or
//! a synthetic family) and get the paper's model outputs for any scheme.
//!
//! ```text
//! vrpower [--k N] [--prefixes N] [--shared F] [--seed S] [--stages N]
//!         [--scheme nv|vs|vm|all] [--grade -2|-1L]
//!         [--tables dump1,dump2,...]
//!
//!   --tables   comma-separated table dump files (one per virtual network,
//!              `prefix [next-hop]` per line); overrides the synthetic
//!              workload flags
//! ```

use std::process::ExitCode;
use vr_fpga::par::ParSimulator;
use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_net::RoutingTable;
use vr_power::efficiency::efficiency_point;
use vr_power::models::{analytical_power, experimental_power_w};
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

#[derive(Debug)]
struct Args {
    k: usize,
    prefixes: usize,
    shared: f64,
    seed: u64,
    stages: usize,
    scheme: Option<SchemeKind>, // None = all
    grade: SpeedGrade,
    tables: Option<Vec<String>>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            k: 4,
            prefixes: 3725,
            shared: 0.6,
            seed: 2012,
            stages: 28,
            scheme: None,
            grade: SpeedGrade::Minus2,
            tables: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--prefixes" => {
                args.prefixes = value("--prefixes")?
                    .parse()
                    .map_err(|e| format!("--prefixes: {e}"))?;
            }
            "--shared" => {
                args.shared = value("--shared")?
                    .parse()
                    .map_err(|e| format!("--shared: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--stages" => {
                args.stages = value("--stages")?
                    .parse()
                    .map_err(|e| format!("--stages: {e}"))?;
            }
            "--scheme" => {
                args.scheme = match value("--scheme")?.to_lowercase().as_str() {
                    "nv" => Some(SchemeKind::NonVirtualized),
                    "vs" => Some(SchemeKind::Separate),
                    "vm" => Some(SchemeKind::Merged),
                    "all" => None,
                    other => return Err(format!("unknown scheme {other:?} (nv|vs|vm|all)")),
                };
            }
            "--grade" => {
                args.grade = match value("--grade")?.as_str() {
                    "-2" | "2" => SpeedGrade::Minus2,
                    "-1L" | "-1l" | "1L" | "1l" => SpeedGrade::Minus1L,
                    other => return Err(format!("unknown grade {other:?} (-2|-1L)")),
                };
            }
            "--tables" => {
                args.tables = Some(
                    value("--tables")?
                        .split(',')
                        .map(str::to_owned)
                        .collect(),
                );
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "vrpower — power estimator for virtualized FPGA routers
  --k N            virtual networks for the synthetic workload (default 4)
  --prefixes N     prefixes per table (default 3725, the paper's worst case)
  --shared F       shared-prefix fraction in [0,1] controlling overlap (0.6)
  --seed S         workload seed (2012)
  --stages N       pipeline stages (28)
  --scheme S       nv | vs | vm | all (default all)
  --grade G        -2 | -1L (default -2)
  --tables F1,F2   load real table dumps instead of the synthetic workload";

fn load_tables(args: &Args) -> Result<Vec<RoutingTable>, String> {
    match &args.tables {
        Some(paths) => paths
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                vr_net::parser::parse_dump(&text).map_err(|e| format!("{path}: {e}"))
            })
            .collect(),
        None => FamilySpec {
            k: args.k,
            prefixes_per_table: args.prefixes,
            shared_fraction: args.shared,
            seed: args.seed,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 16,
        }
        .generate()
        .map_err(|e| e.to_string()),
    }
}

fn report(tables: &[RoutingTable], scheme: SchemeKind, args: &Args) -> Result<(), String> {
    let spec = ScenarioSpec {
        stages: args.stages,
        ..ScenarioSpec::paper_default(scheme, args.grade)
    };
    let scenario =
        Scenario::build(tables, spec, Device::xc6vlx760()).map_err(|e| e.to_string())?;
    let model = analytical_power(&scenario);
    let measured = experimental_power_w(&scenario, &ParSimulator::default());
    let eff = efficiency_point(&scenario);
    let usage = scenario.resources();
    println!("\n{scheme} ({})", args.grade);
    println!("  devices               {}", usage.devices);
    println!("  clock                 {:.1} MHz", scenario.freq_mhz());
    if let Some(alpha) = scenario.alpha() {
        println!("  merging efficiency α  {alpha:.3}");
    }
    println!(
        "  BRAM                  {} × 18Kb blocks/device",
        usage.bram_blocks_per_device
    );
    println!(
        "  power (model)         {:.3} W  (static {:.2} + logic {:.4} + memory {:.4})",
        model.total_w(),
        model.static_w,
        model.logic_w,
        model.memory_w
    );
    println!("  power (post-PAR sim)  {measured:.3} W");
    println!("  capacity              {:.1} Gbps @ 40 B packets", eff.capacity_gbps);
    println!("  efficiency            {:.2} mW/Gbps", eff.mw_per_gbps);
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let tables = load_tables(&args)?;
    println!(
        "workload: K = {} tables, {} routes each (max {})",
        tables.len(),
        tables.first().map_or(0, RoutingTable::len),
        tables.iter().map(RoutingTable::len).max().unwrap_or(0),
    );
    match args.scheme {
        Some(scheme) => report(&tables, scheme, &args)?,
        None => {
            for scheme in SchemeKind::ALL {
                report(&tables, scheme, &args)?;
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vrpower: {msg}");
            ExitCode::FAILURE
        }
    }
}

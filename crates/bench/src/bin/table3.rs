//! Regenerates Table III: the BRAM power model coefficients.

use vr_bench::emit;
use vr_power::experiments::table3_rows;
use vr_power::report::num;

fn main() {
    let rows = table3_rows();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setup.clone(),
                format!("⌈M/block⌉ × {} × f", num(r.uw_per_block_mhz, 2)),
            ]
        })
        .collect();
    emit("table3", &["Setup", "Power (µW)"], &cells, &rows);
}

//! The paper-claims checklist: every quantitative claim re-derived from
//! this reproduction's own sweep, with a pass/fail verdict.

use vr_bench::{config_from_args, emit};
use vr_power::claims::verify_claims;

fn main() {
    let cfg = config_from_args();
    let checks = verify_claims(&cfg).expect("claim checks");
    let cells: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                if c.holds { "✓" } else { "✗" }.to_string(),
                c.id.clone(),
                c.section.clone(),
                c.statement.clone(),
                c.measured.clone(),
            ]
        })
        .collect();
    emit(
        "claims",
        &["", "Claim", "Paper", "Statement", "Measured"],
        &cells,
        &checks,
    );
    let failed = checks.iter().filter(|c| !c.holds).count();
    if failed > 0 {
        eprintln!("{failed} claim(s) FAILED");
        std::process::exit(1);
    }
    println!("all {} claims hold", checks.len());
}

//! Ablation (ours): how much dynamic power the §IV idle-mode mechanisms
//! (logic flags + memory clock gating) save, measured on the cycle-level
//! simulator across offered loads.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::ablation_gating;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let k = 4.min(cfg.k_max);
    let rows = ablation_gating(&cfg, k).expect("gating rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                num(r.offered_load, 2),
                num(r.gated_dynamic_w * 1e3, 3),
                num(r.ungated_dynamic_w * 1e3, 3),
                num(
                    (1.0 - r.gated_dynamic_w / r.ungated_dynamic_w.max(1e-12)) * 100.0,
                    1,
                ),
            ]
        })
        .collect();
    emit(
        "ablation_gating",
        &[
            "Offered load",
            "Gated dynamic (mW)",
            "Ungated dynamic (mW)",
            "Saving (%)",
        ],
        &cells,
        &rows,
    );
}

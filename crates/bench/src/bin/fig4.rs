//! Regenerates Fig. 4: pointer and NHI memory requirements vs K for the
//! merged (α ≈ 0.8, α ≈ 0.2) and separate approaches.

use vr_bench::{config_from_args, emit, opt_num};
use vr_power::experiments::fig4_series;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let points = fig4_series(&cfg).expect("fig4 series");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.k.to_string(),
                num(p.pointer_mbits, 3),
                num(p.nhi_mbits, 3),
                opt_num(p.measured_alpha, 3),
            ]
        })
        .collect();
    emit(
        "fig4",
        &[
            "Series",
            "K",
            "Pointer memory (Mb)",
            "NHI memory (Mb)",
            "measured α",
        ],
        &cells,
        &points,
    );
}

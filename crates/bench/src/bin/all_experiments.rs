//! Runs every table/figure experiment in sequence — the one-shot
//! regeneration entry point backing EXPERIMENTS.md.

use vr_bench::{config_from_args, emit, opt_num};
use vr_power::claims::verify_claims;
use vr_power::experiments::{
    ablation_balance, ablation_gating, ablation_merged_memory, ablation_stride, braiding_study,
    cache_skew_study, device_sweep, fig2_series, fig3_series, fig4_series, full_router_budget,
    latency_comparison, lookup_service_study, merged_scaling, multiway_study,
    optimal_stride_study, power_sweep, queueing_study, statics_rows, table2_rows, table3_rows,
    tcam_comparison, thermal_study, update_cost, utilization_study,
};
use vr_power::report::num;
use vr_power::Device;

fn main() {
    let cfg = config_from_args();

    let t2 = table2_rows(&Device::xc6vlx760());
    emit(
        "table2",
        &["Resource", "Amount"],
        &t2.iter()
            .map(|r| vec![r.resource.clone(), r.amount.clone()])
            .collect::<Vec<_>>(),
        &t2,
    );

    let f2 = fig2_series();
    emit(
        "fig2",
        &["Setup", "Frequency (MHz)", "BRAM power (mW)"],
        &f2.iter()
            .map(|p| {
                vec![
                    format!("{} ({})", p.mode, p.grade),
                    num(p.freq_mhz, 0),
                    num(p.power_mw, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &f2,
    );

    let t3 = table3_rows();
    emit(
        "table3",
        &["Setup", "Power (µW)"],
        &t3.iter()
            .map(|r| {
                vec![
                    r.setup.clone(),
                    format!("⌈M/block⌉ × {} × f", num(r.uw_per_block_mhz, 2)),
                ]
            })
            .collect::<Vec<_>>(),
        &t3,
    );

    let f3 = fig3_series();
    emit(
        "fig3",
        &["Series", "Frequency (MHz)", "Per-stage power (mW)"],
        &f3.iter()
            .map(|p| {
                vec![
                    format!("logic ({})", p.grade),
                    num(p.freq_mhz, 0),
                    num(p.power_mw, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &f3,
    );

    let st = statics_rows();
    emit(
        "statics",
        &["Grade", "Base (W)", "Min −5% (W)", "Max +5% (W)"],
        &st.iter()
            .map(|r| {
                vec![
                    r.grade.to_string(),
                    num(r.base_w, 2),
                    num(r.min_w, 3),
                    num(r.max_w, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &st,
    );

    let f4 = fig4_series(&cfg).expect("fig4");
    emit(
        "fig4",
        &[
            "Series",
            "K",
            "Pointer memory (Mb)",
            "NHI memory (Mb)",
            "measured α",
        ],
        &f4.iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.k.to_string(),
                    num(p.pointer_mbits, 3),
                    num(p.nhi_mbits, 3),
                    opt_num(p.measured_alpha, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &f4,
    );

    let sweep = power_sweep(&cfg).expect("power sweep");
    emit(
        "fig5",
        &[
            "Series",
            "Grade",
            "K",
            "Model (W)",
            "Experimental (W)",
            "measured α",
        ],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.grade.to_string(),
                    p.k.to_string(),
                    num(p.model_w, 3),
                    num(p.experimental_w, 3),
                    opt_num(p.alpha, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &sweep,
    );
    let virtualized: Vec<_> = sweep.iter().filter(|p| p.series != "NV").cloned().collect();
    emit(
        "fig6",
        &[
            "Series",
            "Grade",
            "K",
            "Model (W)",
            "Experimental (W)",
            "measured α",
        ],
        &virtualized
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.grade.to_string(),
                    p.k.to_string(),
                    num(p.model_w, 3),
                    num(p.experimental_w, 3),
                    opt_num(p.alpha, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &virtualized,
    );
    emit(
        "fig7",
        &["Series", "Grade", "K", "Error (%)"],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.grade.to_string(),
                    p.k.to_string(),
                    num(p.error_pct, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &sweep,
    );
    emit(
        "fig8",
        &[
            "Series",
            "Grade",
            "K",
            "Capacity (Gbps)",
            "mW/Gbps",
            "Clock (MHz)",
        ],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.grade.to_string(),
                    p.k.to_string(),
                    num(p.capacity_gbps, 1),
                    num(p.mw_per_gbps, 2),
                    num(p.freq_mhz, 1),
                ]
            })
            .collect::<Vec<_>>(),
        &sweep,
    );

    let ab1 = ablation_merged_memory(&cfg).expect("ablation merged mem");
    emit(
        "ablation_merged_mem",
        &[
            "K",
            "measured α",
            "Eq.5 literal (Mb)",
            "structural (Mb)",
            "literal / structural",
        ],
        &ab1.iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    num(r.alpha, 3),
                    num(r.literal_mbits, 3),
                    num(r.structural_mbits, 3),
                    num(r.literal_mbits / r.structural_mbits.max(1e-12), 2),
                ]
            })
            .collect::<Vec<_>>(),
        &ab1,
    );

    let ab2 = ablation_gating(&cfg, 4.min(cfg.k_max)).expect("ablation gating");
    emit(
        "ablation_gating",
        &[
            "Offered load",
            "Gated dynamic (mW)",
            "Ungated dynamic (mW)",
            "Saving (%)",
        ],
        &ab2.iter()
            .map(|r| {
                vec![
                    num(r.offered_load, 2),
                    num(r.gated_dynamic_w * 1e3, 3),
                    num(r.ungated_dynamic_w * 1e3, 3),
                    num(
                        (1.0 - r.gated_dynamic_w / r.ungated_dynamic_w.max(1e-12)) * 100.0,
                        1,
                    ),
                ]
            })
            .collect::<Vec<_>>(),
        &ab2,
    );

    let stride = ablation_stride(&cfg).expect("ablation stride");
    emit(
        "ablation_stride",
        &[
            "Stride",
            "Stages",
            "Latency (cycles)",
            "Entries",
            "Memory (Mb)",
            "BRAM blocks",
            "Dynamic (mW)",
        ],
        &stride
            .iter()
            .map(|r| {
                vec![
                    r.stride.to_string(),
                    r.stages.to_string(),
                    r.latency_cycles.to_string(),
                    r.entries.to_string(),
                    num(r.memory_mbits, 3),
                    r.bram_blocks.to_string(),
                    num(r.dynamic_w * 1e3, 1),
                ]
            })
            .collect::<Vec<_>>(),
        &stride,
    );

    let balance = ablation_balance(&cfg).expect("ablation balance");
    emit(
        "ablation_balance",
        &[
            "Stages",
            "Even max stage (Kb)",
            "Balanced max stage (Kb)",
            "Critical-stage saving (%)",
            "Even blocks",
            "Balanced blocks",
        ],
        &balance
            .iter()
            .map(|r| {
                vec![
                    r.stages.to_string(),
                    num(r.even_max_kbits, 1),
                    num(r.balanced_max_kbits, 1),
                    num((1.0 - r.balanced_max_kbits / r.even_max_kbits) * 100.0, 1),
                    r.even_blocks.to_string(),
                    r.balanced_blocks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &balance,
    );

    let tcam = tcam_comparison(&cfg).expect("tcam comparison");
    emit(
        "tcam_baseline",
        &["Engine", "K", "Power (W)", "Throughput (Gbps)", "mW/Gbps"],
        &tcam
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.k.to_string(),
                    num(r.power_w, 3),
                    num(r.throughput_gbps, 1),
                    num(r.mw_per_gbps, 2),
                ]
            })
            .collect::<Vec<_>>(),
        &tcam,
    );

    let upd = update_cost(&cfg, 4.min(cfg.k_max)).expect("update cost");
    emit(
        "updates",
        &[
            "Updates",
            "Writes/update",
            "Nodes before",
            "Nodes after",
            "Write rate (%)",
            "Merged BRAM power (mW)",
        ],
        &upd.iter()
            .map(|r| {
                vec![
                    r.updates.to_string(),
                    num(r.mean_writes_per_update, 2),
                    r.nodes_before.to_string(),
                    r.nodes_after.to_string(),
                    num(r.write_rate * 100.0, 3),
                    num(r.bram_power_w * 1e3, 2),
                ]
            })
            .collect::<Vec<_>>(),
        &upd,
    );

    let mw = multiway_study(&cfg).expect("multiway study");
    emit(
        "multiway",
        &[
            "Ways",
            "Stages/way",
            "Total nodes",
            "Balance",
            "Latency (cycles)",
            "Energy/lookup (pJ)",
            "Dynamic (mW)",
        ],
        &mw.iter()
            .map(|r| {
                vec![
                    format!("2^{} = {}", r.split_bits, r.ways),
                    r.stages_per_way.to_string(),
                    r.total_nodes.to_string(),
                    num(r.balance_factor, 2),
                    num(r.latency_cycles, 1),
                    num(r.energy_per_lookup_pj, 1),
                    num(r.dynamic_power_w * 1e3, 1),
                ]
            })
            .collect::<Vec<_>>(),
        &mw,
    );

    let q = queueing_study(&cfg, 4.min(cfg.k_max)).expect("queueing study");
    emit(
        "queueing",
        &[
            "Burst length",
            "Mean wait (cycles)",
            "Max queue depth",
            "Throughput (Gbps)",
            "Correct",
        ],
        &q.iter()
            .map(|r| {
                vec![
                    r.burst_len.to_string(),
                    num(r.mean_wait_cycles, 2),
                    r.max_queue_depth.to_string(),
                    num(r.throughput_gbps, 1),
                    r.fully_correct.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &q,
    );

    let th = thermal_study(&cfg, 8.min(cfg.k_max)).expect("thermal study");
    emit(
        "thermal",
        &[
            "Scheme",
            "Grade",
            "Nominal (W)",
            "Thermal-aware (W)",
            "Junction (°C)",
            "Stable",
        ],
        &th.iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    r.grade.to_string(),
                    num(r.nominal_w, 3),
                    num(r.thermal_w, 3),
                    num(r.junction_c, 1),
                    r.converged.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &th,
    );

    let dv = device_sweep(&cfg, 8.min(cfg.k_max)).expect("device sweep");
    emit(
        "devices",
        &["Device", "Max VS engines", "Fits", "Power (W)", "mW/Gbps"],
        &dv.iter()
            .map(|r| {
                vec![
                    r.device.clone(),
                    r.max_vs_engines.to_string(),
                    r.fits.to_string(),
                    opt_num(r.power_w, 3),
                    opt_num(r.mw_per_gbps, 2),
                ]
            })
            .collect::<Vec<_>>(),
        &dv,
    );

    let lat = latency_comparison(&cfg, 4.min(cfg.k_max)).expect("latency comparison");
    emit(
        "latency",
        &["Engine", "Depth (cycles)", "Clock (MHz)", "Latency (ns)"],
        &lat.iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.cycles.to_string(),
                    num(r.clock_mhz, 1),
                    num(r.latency_ns, 1),
                ]
            })
            .collect::<Vec<_>>(),
        &lat,
    );

    let util = utilization_study(&cfg).expect("utilization study");
    emit(
        "utilization",
        &["Traffic", "Scheme", "Total (W)", "Dynamic (mW)"],
        &util
            .iter()
            .map(|r| {
                vec![
                    r.traffic.clone(),
                    r.scheme.clone(),
                    num(r.total_w, 4),
                    num(r.dynamic_w * 1e3, 2),
                ]
            })
            .collect::<Vec<_>>(),
        &util,
    );

    let br = braiding_study(&cfg).expect("braiding study");
    emit(
        "braiding",
        &[
            "Workload",
            "Plain merge nodes",
            "Braided nodes",
            "Extra saving (%)",
            "Swapped nodes",
        ],
        &br.iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.plain_nodes.to_string(),
                    r.braided_nodes.to_string(),
                    num(r.extra_saving * 100.0, 1),
                    r.braided_node_count.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &br,
    );

    let os = optimal_stride_study(&cfg).expect("optimal stride study");
    emit(
        "optimal_strides",
        &[
            "Depth bound",
            "Uniform entries",
            "Optimal entries",
            "Saving (%)",
            "Schedule",
        ],
        &os.iter()
            .map(|r| {
                vec![
                    r.max_levels.to_string(),
                    r.uniform_entries.to_string(),
                    r.optimal_entries.to_string(),
                    num(r.saving * 100.0, 1),
                    format!("{:?}", r.strides),
                ]
            })
            .collect::<Vec<_>>(),
        &os,
    );

    let fr = full_router_budget();
    emit(
        "full_router",
        &[
            "Device",
            "I/O pins",
            "Lookup-only engines",
            "Full-router engines",
        ],
        &fr.iter()
            .map(|r| {
                vec![
                    r.device.clone(),
                    r.io_pins.to_string(),
                    r.lookup_only_engines.to_string(),
                    r.full_router_engines.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &fr,
    );

    let ms = merged_scaling(&cfg).expect("merged scaling");
    emit(
        "merged_scaling",
        &[
            "K",
            "measured α",
            "Merged memory (Mb)",
            "36Kb blocks",
            "Fits XC6VLX760",
        ],
        &ms.iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    num(r.alpha, 3),
                    num(r.memory_mbits, 2),
                    r.bram_36k.to_string(),
                    r.fits_one_device.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &ms,
    );

    let svc = lookup_service_study(&cfg, 4).expect("lookup service study");
    emit(
        "lookup_service",
        &[
            "K",
            "Workers",
            "Batch width",
            "Mpps",
            "ns/lookup",
            "Speedup",
            "Generations",
        ],
        &svc.iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.workers.to_string(),
                    r.batch_width.to_string(),
                    num(r.packets_per_sec / 1e6, 3),
                    num(r.ns_per_lookup, 1),
                    num(r.speedup_vs_one_worker, 2),
                    r.generations_seen.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &svc,
    );

    let skew = cache_skew_study(&cfg, 4).expect("cache skew study");
    emit(
        "cache_skew",
        &[
            "K",
            "Zipf s",
            "Slots",
            "Hit rate",
            "ns uncached",
            "ns cached",
            "Speedup",
            "Memory W",
            "Cached W",
            "W/Gbps",
            "W/Gbps cached",
        ],
        &skew
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    num(r.zipf_s, 2),
                    r.cache_slots.to_string(),
                    num(r.hit_rate, 3),
                    num(r.ns_uncached, 1),
                    num(r.ns_cached, 1),
                    num(r.speedup, 2),
                    num(r.memory_w, 3),
                    num(r.memory_w_cached, 3),
                    num(r.w_per_gbps_uncached, 3),
                    num(r.w_per_gbps_cached, 3),
                ]
            })
            .collect::<Vec<_>>(),
        &skew,
    );

    let checks = verify_claims(&cfg).expect("claims");
    emit(
        "claims",
        &["", "Claim", "Paper", "Statement", "Measured"],
        &checks
            .iter()
            .map(|c| {
                vec![
                    if c.holds { "✓" } else { "✗" }.to_string(),
                    c.id.clone(),
                    c.section.clone(),
                    c.statement.clone(),
                    c.measured.clone(),
                ]
            })
            .collect::<Vec<_>>(),
        &checks,
    );

    let max_err = sweep
        .iter()
        .map(|p| p.error_pct.abs())
        .fold(0.0f64, f64::max);
    let failed_claims = checks.iter().filter(|c| !c.holds).count();
    println!(
        "\nAll experiments regenerated. Max |model error| = {max_err:.3}% (paper: ≤3%); \
         {}/{} paper claims hold.",
        checks.len() - failed_claims,
        checks.len()
    );
}

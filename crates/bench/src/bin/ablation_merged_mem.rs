//! Ablation (ours): Eq. 5 exactly as printed (merged memory = α·ΣM) vs
//! the structural model derived from actually merging the tries. The two
//! diverge exactly as DESIGN.md §3 documents.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::ablation_merged_memory;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = ablation_merged_memory(&cfg).expect("ablation rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                num(r.alpha, 3),
                num(r.literal_mbits, 3),
                num(r.structural_mbits, 3),
                num(r.literal_mbits / r.structural_mbits.max(1e-12), 2),
            ]
        })
        .collect();
    emit(
        "ablation_merged_mem",
        &[
            "K",
            "measured α",
            "Eq.5 literal (Mb)",
            "structural (Mb)",
            "literal / structural",
        ],
        &cells,
        &rows,
    );
}

//! Multi-way pipelining study (paper ref. [7]): per-lookup energy and
//! latency vs the number of re-rooted sub-pipelines, measured on the
//! cycle-level simulator.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::multiway_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = multiway_study(&cfg).expect("multiway rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("2^{} = {}", r.split_bits, r.ways),
                r.stages_per_way.to_string(),
                r.total_nodes.to_string(),
                num(r.balance_factor, 2),
                num(r.latency_cycles, 1),
                num(r.energy_per_lookup_pj, 1),
                num(r.dynamic_power_w * 1e3, 1),
            ]
        })
        .collect();
    emit(
        "multiway",
        &[
            "Ways",
            "Stages/way",
            "Total nodes",
            "Balance",
            "Latency (cycles)",
            "Energy/lookup (pJ)",
            "Dynamic (mW)",
        ],
        &cells,
        &rows,
    );
}

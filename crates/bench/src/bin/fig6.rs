//! Regenerates Fig. 6: total power among the *virtualized* schemes only
//! (VS and VM at both α targets), both speed grades. The experimental
//! column shows the slight decrease with K caused by synthesis
//! optimizations (§VI-A).

use vr_bench::{config_from_args, emit, opt_num};
use vr_power::experiments::power_sweep;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let points: Vec<_> = power_sweep(&cfg)
        .expect("power sweep")
        .into_iter()
        .filter(|p| p.series != "NV")
        .collect();
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.grade.to_string(),
                p.k.to_string(),
                num(p.model_w, 3),
                num(p.experimental_w, 3),
                opt_num(p.alpha, 3),
            ]
        })
        .collect();
    emit(
        "fig6",
        &[
            "Series",
            "Grade",
            "K",
            "Model (W)",
            "Experimental (W)",
            "measured α",
        ],
        &cells,
        &points,
    );
}

//! Device sweep: right-sizing the FPGA for a K-engine separate design
//! (extension of the paper's §VI device-family exploration).

use vr_bench::{config_from_args, emit, opt_num};
use vr_power::experiments::device_sweep;

fn main() {
    let cfg = config_from_args();
    let k = 8.min(cfg.k_max);
    let rows = device_sweep(&cfg, k).expect("device rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.max_vs_engines.to_string(),
                r.fits.to_string(),
                opt_num(r.power_w, 3),
                opt_num(r.mw_per_gbps, 2),
            ]
        })
        .collect();
    emit(
        "devices",
        &[
            "Device",
            "Max VS engines",
            &format!("Fits K={k}"),
            "Power (W)",
            "mW/Gbps",
        ],
        &cells,
        &rows,
    );
}

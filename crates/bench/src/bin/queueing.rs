//! Queueing study: burstiness vs distributor queueing delay at constant
//! mean load (the Fig. 1 distributor, QoS angle of §I).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::queueing_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let k = 4.min(cfg.k_max);
    let rows = queueing_study(&cfg, k).expect("queueing rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.burst_len.to_string(),
                num(r.mean_wait_cycles, 2),
                r.max_queue_depth.to_string(),
                num(r.throughput_gbps, 1),
                r.fully_correct.to_string(),
            ]
        })
        .collect();
    emit(
        "queueing",
        &[
            "Burst length",
            "Mean wait (cycles)",
            "Max queue depth",
            "Throughput (Gbps)",
            "Correct",
        ],
        &cells,
        &rows,
    );
}

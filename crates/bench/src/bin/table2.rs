//! Regenerates Table II: Virtex-6 XC6VLX760 device specs.

use vr_bench::emit;
use vr_power::experiments::table2_rows;
use vr_power::Device;

fn main() {
    let rows = table2_rows(&Device::xc6vlx760());
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.resource.clone(), r.amount.clone()])
        .collect();
    emit("table2", &["Resource", "Amount"], &cells, &rows);
}

//! Ablation: multi-bit stride width vs pipeline depth, memory and power
//! (the depth-bounded trade-off of the paper's refs. [7][8]).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::ablation_stride;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = ablation_stride(&cfg).expect("stride rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stride.to_string(),
                r.stages.to_string(),
                r.latency_cycles.to_string(),
                r.entries.to_string(),
                num(r.memory_mbits, 3),
                r.bram_blocks.to_string(),
                num(r.dynamic_w * 1e3, 1),
            ]
        })
        .collect();
    emit(
        "ablation_stride",
        &[
            "Stride",
            "Stages",
            "Latency (cycles)",
            "Entries",
            "Memory (Mb)",
            "BRAM blocks",
            "Dynamic (mW)",
        ],
        &cells,
        &rows,
    );
}

//! Regenerates Fig. 8: power per unit throughput (mW/Gbps, 40-byte
//! packets) for every scheme × grade × K. The paper's ordering: separate
//! best, conventional second, merged worst (worse at low α).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::power_sweep;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let points = power_sweep(&cfg).expect("power sweep");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.grade.to_string(),
                p.k.to_string(),
                num(p.capacity_gbps, 1),
                num(p.mw_per_gbps, 2),
                num(p.freq_mhz, 1),
            ]
        })
        .collect();
    emit(
        "fig8",
        &[
            "Series",
            "Grade",
            "K",
            "Capacity (Gbps)",
            "mW/Gbps",
            "Clock (MHz)",
        ],
        &cells,
        &points,
    );
}

//! Utilization study (§IV-A): non-uniform µ over a heterogeneous family —
//! where the traffic lands changes Eq. 4's dynamic power; Eq. 6 is
//! indifferent.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::utilization_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = utilization_study(&cfg).expect("utilization rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.traffic.clone(),
                r.scheme.clone(),
                num(r.total_w, 4),
                num(r.dynamic_w * 1e3, 2),
            ]
        })
        .collect();
    emit(
        "utilization",
        &["Traffic", "Scheme", "Total (W)", "Dynamic (mW)"],
        &cells,
        &rows,
    );
}

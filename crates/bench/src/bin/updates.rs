//! Update-cost experiment (after paper ref. [6]): incremental
//! announce/withdraw churn on the merged trie, and its power price via
//! the write-rate-aware Table III model (§V-B assumed a 1 % write rate).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::update_cost;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let k = 4.min(cfg.k_max);
    let rows = update_cost(&cfg, k).expect("update rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.updates.to_string(),
                num(r.mean_writes_per_update, 2),
                r.nodes_before.to_string(),
                r.nodes_after.to_string(),
                num(r.write_rate * 100.0, 3),
                num(r.bram_power_w * 1e3, 2),
            ]
        })
        .collect();
    emit(
        "updates",
        &[
            "Updates",
            "Writes/update",
            "Nodes before",
            "Nodes after",
            "Write rate (%)",
            "Merged BRAM power (mW)",
        ],
        &cells,
        &rows,
    );
}

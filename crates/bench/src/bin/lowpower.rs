//! Regenerates the §VI-B low-power-FPGA comparison: the -1L grade saves
//! ≈30 % power while delivering essentially the same mW/Gbps as -2 (at
//! lower absolute throughput).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::power_sweep;
use vr_power::report::num;
use vr_power::SpeedGrade;

fn main() {
    let cfg = config_from_args();
    let points = power_sweep(&cfg).expect("power sweep");
    let mut cells = Vec::new();
    let mut raw = Vec::new();
    for series in ["NV", "VS", "VM (α≈0.8)", "VM (α≈0.2)"] {
        for k in 1..=cfg.k_max {
            let hi = points
                .iter()
                .find(|p| p.series == series && p.k == k && p.grade == SpeedGrade::Minus2);
            let lo = points
                .iter()
                .find(|p| p.series == series && p.k == k && p.grade == SpeedGrade::Minus1L);
            if let (Some(hi), Some(lo)) = (hi, lo) {
                let power_saving = 1.0 - lo.model_w / hi.model_w;
                let eff_ratio = lo.mw_per_gbps / hi.mw_per_gbps;
                raw.push((series.to_string(), k, power_saving, eff_ratio));
                cells.push(vec![
                    series.to_string(),
                    k.to_string(),
                    num(power_saving * 100.0, 1),
                    num(eff_ratio, 3),
                ]);
            }
        }
    }
    emit(
        "lowpower",
        &[
            "Series",
            "K",
            "-1L power saving (%)",
            "mW/Gbps ratio (-1L / -2)",
        ],
        &cells,
        &raw,
    );
}

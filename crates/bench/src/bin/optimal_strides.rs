//! Optimal variable-stride study (Srinivasan–Varghese CPE DP; the
//! depth-bounded lever of paper ref. [8]).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::optimal_stride_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = optimal_stride_study(&cfg).expect("stride rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.max_levels.to_string(),
                r.uniform_entries.to_string(),
                r.optimal_entries.to_string(),
                num(r.saving * 100.0, 1),
                format!("{:?}", r.strides),
            ]
        })
        .collect();
    emit(
        "optimal_strides",
        &[
            "Depth bound",
            "Uniform entries",
            "Optimal entries",
            "Saving (%)",
            "Schedule",
        ],
        &cells,
        &rows,
    );
}

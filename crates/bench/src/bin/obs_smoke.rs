//! `obs_smoke` — CI exercise of the observability plane end to end.
//!
//! Builds a paper-scale traced service (K tables of 3725 prefixes),
//! wraps it in the control plane with a flight recorder attached, and
//! serves the vr-obs HTTP plane next to it. Everything is then checked
//! the way an operator would see it — over real TCP:
//!
//! * `/healthz` answers `ok`;
//! * `/metrics` passes `check_prometheus` structural validation;
//! * `/snapshot.json` parses and names the service counters;
//! * `/traces.json` validates as a Chrome trace-event document with at
//!   least one sampled batch in it;
//! * a seeded `WorkerStall` (burst into a depth-1 queue) produces
//!   **exactly one** flight-recorder dump under `results/`, and that
//!   dump itself validates as Chrome trace JSON naming the trigger;
//! * `/flight` reflects the dump.
//!
//! Any violation panics, failing the CI `obs` job.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use vr_bench::results_dir;
use vr_control::{ControlConfig, ControlPlane};
use vr_engine::{LookupService, ServiceConfig};
use vr_net::synth::FamilySpec;
use vr_net::VnId;
use vr_obs::{
    check_chrome_trace, chrome_trace_json, FlightConfig, FlightRecorder, ObsRoutes, ObsServer,
};
use vr_telemetry::export::{check_prometheus, to_prometheus};

/// Virtual networks in the smoke family (each at the paper's 3725
/// worst-case prefixes).
const FAMILY_K: usize = 4;

/// One blocking scrape; asserts the 200 and returns the body.
fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("split head/body");
    assert!(head.starts_with("HTTP/1.1 200"), "GET {path}: {head}");
    body.to_string()
}

fn main() {
    let out = results_dir();
    std::fs::create_dir_all(&out).expect("create results dir");
    // "Exactly one dump" must be checkable against a clean slate.
    FlightRecorder::clean_dir(&out);

    let family = FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
        .generate()
        .expect("family generation");
    // One worker behind a depth-1 queue: the submit burst below is
    // guaranteed to find the queue full and publish the WorkerStall
    // event the flight recorder triggers on. Every batch is traced so
    // the pre/post windows fill deterministically.
    let service = LookupService::new(
        family,
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            trace_sample: Some(1),
            lookup_cache: Some(vr_engine::DEFAULT_CACHE_SLOTS),
            ..ServiceConfig::default()
        },
    )
    .expect("service construction");

    let registry = Arc::clone(service.metrics().expect("telemetry on by default"));
    let tracer = service.tracer().expect("tracing configured").clone();
    let mut plane = ControlPlane::new(service, ControlConfig::default()).expect("control plane");
    plane.attach_flight_recorder(FlightRecorder::new(FlightConfig {
        pre_window: 32,
        post_window: 4,
        max_dumps: 1,
        ..FlightConfig::new(&out)
    }));

    // The recorder lives inside the control plane, so /flight serves
    // the status the plane publishes after each supervised tick.
    let flight_status = Arc::new(Mutex::new(String::from("{}")));
    let metrics_registry = Arc::clone(&registry);
    let snapshot_registry = Arc::clone(&registry);
    let route_tracer = tracer.clone();
    let route_status = Arc::clone(&flight_status);
    let server = ObsServer::start(
        "127.0.0.1:0",
        ObsRoutes {
            metrics: Box::new(move || to_prometheus(&metrics_registry.snapshot())),
            snapshot: Box::new(move || {
                snapshot_registry
                    .snapshot()
                    .to_json_pretty()
                    .unwrap_or_else(|e| format!("{{\"error\": \"{e:?}\"}}"))
            }),
            traces: Box::new(move || chrome_trace_json(&route_tracer.snapshot().traces)),
            flight: Box::new(move || route_status.lock().map(|s| s.clone()).unwrap_or_default()),
        },
    )
    .expect("obs server start");
    let addr = server.addr();
    eprintln!("[obs_smoke] serving on http://{addr}");

    let publish_status = |plane: &ControlPlane, cell: &Arc<Mutex<String>>| {
        if let Some(rec) = plane.flight_recorder() {
            if let (Ok(json), Ok(mut slot)) =
                (serde_json::to_string_pretty(&rec.status()), cell.lock())
            {
                *slot = json;
            }
        }
    };

    // Warm traffic: fill the trace ring and the metric families.
    let packets: Vec<(VnId, u32)> = (0..4096u32)
        .map(|i| ((i as usize % FAMILY_K) as VnId, i.wrapping_mul(0x9E37_79B9)))
        .collect();
    for _ in 0..4 {
        let hits = plane
            .service_mut()
            .process(&packets[..512])
            .iter()
            .filter(|nh| nh.is_some())
            .count();
        assert!(hits > 0, "paper-scale family resolved nothing");
        let _ = plane.apply_batch(&[]).expect("warm control tick");
        publish_status(&plane, &flight_status);
    }

    // Scrape the plane the way Prometheus / curl would.
    assert_eq!(get(addr, "/healthz"), "ok\n");
    let prom = get(addr, "/metrics");
    check_prometheus(&prom).expect("Prometheus exposition validates");
    assert!(
        prom.contains("vr_service_lookups_total"),
        "service counters missing from /metrics"
    );
    let snap = get(addr, "/snapshot.json");
    let parsed = serde_json::parse(&snap).expect("/snapshot.json parses");
    assert!(
        serde_json::to_string(&parsed)
            .map(|s| s.contains("vr_service_lookups_total"))
            .unwrap_or(false),
        "/snapshot.json misses service counters"
    );
    let traces = get(addr, "/traces.json");
    let trace_events = check_chrome_trace(&traces).expect("/traces.json validates");
    assert!(trace_events > 0, "no sampled batches in /traces.json");

    // Seed the anomaly: burst past the depth-1 queue, then let the
    // next supervised ticks observe the stall and fill the
    // post-trigger window.
    for _ in 0..8 {
        let _ = plane.service_mut().submit(packets.clone());
    }
    let _ = plane.service_mut().collect_all();
    for _ in 0..6 {
        let _ = plane.service_mut().process(&packets[..256]);
        let _ = plane.apply_batch(&[]).expect("post-stall control tick");
        publish_status(&plane, &flight_status);
    }

    let dumps = plane
        .flight_recorder()
        .expect("recorder attached")
        .dumps()
        .to_vec();
    assert_eq!(
        dumps.len(),
        1,
        "seeded WorkerStall must produce exactly one dump, got {dumps:?}"
    );
    assert!(
        dumps[0].starts_with(&out),
        "dump {} escaped results/",
        dumps[0].display()
    );
    let dump = std::fs::read_to_string(&dumps[0]).expect("read flight dump");
    let dump_events = check_chrome_trace(&dump).expect("dump validates as Chrome trace JSON");
    assert!(dump_events > 0, "empty flight dump");
    assert!(
        dump.contains("WorkerStall"),
        "dump does not name its trigger"
    );

    // The plane reflects the episode.
    let flight = get(addr, "/flight");
    assert!(flight.contains("flightrec_"), "/flight misses the dump: {flight}");

    drop(server);
    let report = plane.shutdown();
    eprintln!(
        "[obs_smoke] ok: {trace_events} trace events served, dump {} ({} events), {} batches",
        dumps[0].display(),
        dump_events,
        report.batches
    );

    // Leave no artifacts behind: repeated local runs must not pile up
    // flightrec_*.json dumps. CI's obs job sets VR_KEEP_FLIGHT_DUMPS=1
    // because it uploads the dump as a build artifact afterwards.
    if std::env::var_os("VR_KEEP_FLIGHT_DUMPS").is_none() {
        FlightRecorder::clean_dir(&out);
    }
}

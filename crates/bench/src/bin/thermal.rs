//! Thermal study: self-consistent leakage ↔ temperature operating points
//! per scheme (extension of §V-A's temperature note; §II-B's cooling
//! motivation).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::thermal_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let k = 8.min(cfg.k_max);
    let rows = thermal_study(&cfg, k).expect("thermal rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.grade.to_string(),
                num(r.nominal_w, 3),
                num(r.thermal_w, 3),
                num(r.junction_c, 1),
                r.converged.to_string(),
            ]
        })
        .collect();
    emit(
        "thermal",
        &[
            "Scheme",
            "Grade",
            "Nominal (W)",
            "Thermal-aware (W)",
            "Junction (°C)",
            "Stable",
        ],
        &cells,
        &rows,
    );
}

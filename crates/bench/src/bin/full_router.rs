//! Full-router pin budget (§VI-A): how many separate engines fit when
//! the complete parse/lookup/edit/schedule data path claims its pins,
//! per catalog device. Also sweeps the merged scheme's single-device
//! memory wall (§IV-C) at the low merging-efficiency target.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::{full_router_budget, merged_scaling};
use vr_power::report::num;

fn main() {
    let rows = full_router_budget();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.io_pins.to_string(),
                r.lookup_only_engines.to_string(),
                r.full_router_engines.to_string(),
            ]
        })
        .collect();
    emit(
        "full_router",
        &[
            "Device",
            "I/O pins",
            "Lookup-only engines",
            "Full-router engines",
        ],
        &cells,
        &rows,
    );

    let cfg = config_from_args();
    let scaling = merged_scaling(&cfg).expect("merged scaling");
    let cells: Vec<Vec<String>> = scaling
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                num(r.alpha, 3),
                num(r.memory_mbits, 2),
                r.bram_36k.to_string(),
                r.fits_one_device.to_string(),
            ]
        })
        .collect();
    emit(
        "merged_scaling",
        &[
            "K",
            "measured α",
            "Merged memory (Mb)",
            "36Kb blocks",
            "Fits XC6VLX760",
        ],
        &cells,
        &scaling,
    );
}

//! Churn study for the `vr-control` control plane: A/B update
//! throughput (incremental sub-slab patching vs the sanctioned
//! `full_rebuild` clone-and-rebuild fallback) under the paper's ~1 %
//! write mix at paper scale (K=15 × 3,725 prefixes), with
//! oracle-checked mid-churn lookups, the per-batch α / memory-power
//! trajectory, and a forced α-drop phase proving the hysteretic
//! re-merge fires exactly once.
//!
//! `cargo run --release -p vr-bench --bin control_churn` (accepts
//! `--quick` for fewer batches and `--smoke` for a tiny CI-only run
//! that writes `BENCH_control_churn_smoke.json` instead of the
//! committed `BENCH_control_churn.json`). Full and quick runs assert
//! the incremental path clears 5× the naive throughput — the
//! acceptance bar this study exists to demonstrate.

use serde::Serialize;
use std::time::Instant;
use vr_bench::results_dir;
use vr_control::{coalesce, BatchOutcome, ControlConfig, ControlPlane};
use vr_engine::{LookupService, ServiceConfig};
use vr_net::synth::FamilySpec;
use vr_net::{NextHop, RouteUpdate, RoutingTable, UpdateMix, UpdateStream, VnId};
use vr_power::report::write_json;
use vr_telemetry::EventKind;

/// One point of the α / power trajectory.
#[derive(Debug, Serialize)]
struct AlphaPoint {
    batch: usize,
    generation: u64,
    alpha: f64,
    power_delta_w: f64,
    updates_in: usize,
    updates_applied: usize,
    remerged: bool,
}

/// The forced α-drop phase result.
#[derive(Debug, Serialize)]
struct ForcedDrop {
    alpha_before: f64,
    alpha_after_drop: f64,
    generation_before: u64,
    generation_after: u64,
    remerge_events: usize,
}

/// The whole study, persisted as `BENCH_control_churn[_smoke].json`.
#[derive(Debug, Serialize)]
struct ChurnStudy {
    scale: &'static str,
    k: usize,
    prefixes_per_table: usize,
    batches: usize,
    batch_size: usize,
    naive_updates_per_sec: f64,
    incremental_updates_per_sec: f64,
    speedup: f64,
    oracle_checked_lookups: usize,
    incremental_publishes: u64,
    full_rebuild_fallbacks: u64,
    alpha_trajectory: Vec<AlphaPoint>,
    forced_drop: ForcedDrop,
}

/// Deterministic probe set against the *current* shadow tables: one
/// perturbed address per installed prefix, cycled to `count` pairs.
fn probe_set(tables: &[RoutingTable], count: usize, salt: u32) -> Vec<(VnId, u32)> {
    let mut probes = Vec::with_capacity(count);
    let mut vn = 0usize;
    'outer: loop {
        for (v, t) in tables.iter().enumerate() {
            for p in t.prefixes() {
                if probes.len() >= count {
                    break 'outer;
                }
                let scramble = (probes.len() as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(salt);
                probes.push((v as VnId, p.addr() ^ (scramble >> 16)));
                vn = vn.wrapping_add(1);
            }
        }
        if vn == 0 {
            break; // all tables empty
        }
    }
    probes
}

/// Applies one coalesced batch to the shadow (oracle) tables.
fn apply_to_shadow(shadow: &mut [RoutingTable], updates: &[RouteUpdate]) {
    for u in updates {
        match *u {
            RouteUpdate::Announce {
                vnid,
                prefix,
                next_hop,
            } => {
                shadow[usize::from(vnid)].insert(prefix, next_hop);
            }
            RouteUpdate::Withdraw { vnid, prefix } => {
                shadow[usize::from(vnid)].remove(&prefix);
            }
        }
    }
}

/// A/B throughput: replays identical pre-drawn batches through a
/// service on each publish path, oracle-checking the incremental one
/// mid-churn. Returns (naive ups, incremental ups, oracle lookups,
/// incremental publishes, fallbacks).
fn ab_throughput(
    tables: &[RoutingTable],
    batches: &[Vec<RouteUpdate>],
    probes_per_batch: usize,
) -> (f64, f64, usize, u64, u64) {
    let service_cfg = |full_rebuild| ServiceConfig {
        workers: 1,
        batch_width: Some(32),
        full_rebuild,
        ..ServiceConfig::default()
    };
    let mut total_updates = 0usize;

    // Naive: the pre-PR behaviour — clone all K tables, rebuild the
    // whole merged JumpTrie, publish. Timed over apply only.
    let mut naive = LookupService::new(tables.to_vec(), service_cfg(true)).expect("naive service");
    let start = Instant::now();
    for batch in batches {
        let (deduped, _) = coalesce(batch);
        total_updates += deduped.len();
        naive.apply_updates(&deduped).expect("naive apply");
    }
    let naive_secs = start.elapsed().as_secs_f64();
    let _ = naive.shutdown();

    // Incremental: dirty-bucket sub-slab patching. Same batches, same
    // coalescer; lookups are oracle-checked against shadow tables
    // *between* timed sections so the check never pollutes the clock.
    let mut shadow = tables.to_vec();
    let mut inc = LookupService::new(tables.to_vec(), service_cfg(false)).expect("inc service");
    // Materialize the incremental plant (merged trie + sub-slabs) before
    // the clock starts: it is a construction-time cost paid once, the
    // per-batch steady state is what the A/B compares.
    let _ = inc.alpha().expect("plant warm-up");
    let mut oracle_checked = 0usize;
    let mut inc_secs = 0.0f64;
    for (i, batch) in batches.iter().enumerate() {
        let (deduped, _) = coalesce(batch);
        let start = Instant::now();
        inc.apply_updates(&deduped).expect("incremental apply");
        inc_secs += start.elapsed().as_secs_f64();

        apply_to_shadow(&mut shadow, &deduped);
        let probes = probe_set(&shadow, probes_per_batch, i as u32);
        let got = inc.process(&probes);
        for ((vn, addr), nh) in probes.iter().zip(&got) {
            let want: Option<NextHop> = shadow[usize::from(*vn)].lookup(*addr);
            assert_eq!(
                *nh, want,
                "oracle divergence at batch {i}, vn {vn}, addr {addr:#010x}"
            );
        }
        oracle_checked += probes.len();
    }
    assert_eq!(inc.tables(), &shadow[..], "end-state tables diverged");
    let report = inc.shutdown();
    (
        total_updates as f64 / naive_secs,
        total_updates as f64 / inc_secs,
        oracle_checked,
        report.incremental_publishes,
        report.full_rebuilds,
    )
}

/// α / power trajectory: a `ControlPlane` replaying a live stream.
fn trajectory(
    tables: &[RoutingTable],
    seed: u64,
    batches: usize,
    batch_size: usize,
) -> Vec<AlphaPoint> {
    let service = LookupService::new(
        tables.to_vec(),
        ServiceConfig {
            workers: 1,
            batch_width: Some(32),
            ..ServiceConfig::default()
        },
    )
    .expect("trajectory service");
    // Floor at 0 keeps the policy quiet: this phase charts drift, the
    // forced-drop phase exercises the trigger.
    let cfg = ControlConfig {
        alpha_floor: 0.0,
        alpha_rearm: 0.0,
        ..ControlConfig::default()
    };
    let mut plane = ControlPlane::new(service, cfg).expect("control plane");
    let mut stream = UpdateStream::new(tables.to_vec(), UpdateMix::default(), 16, seed ^ 0x5EED)
        .expect("update stream");
    let outcomes: Vec<BatchOutcome> = plane
        .replay(&mut stream, batches, batch_size)
        .expect("trajectory replay");
    let _ = plane.shutdown();
    outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| AlphaPoint {
            batch: i,
            generation: o.generation,
            alpha: o.alpha,
            power_delta_w: o.power_delta_w,
            updates_in: o.coalesce.input,
            updates_applied: o.coalesce.output,
            remerged: o.remerged,
        })
        .collect()
}

/// Forced α-drop: withdraw every route of the last VN so the common
/// node set collapses, and prove the armed trigger re-merges exactly
/// once (hysteresis holds it down afterwards).
fn forced_drop(tables: &[RoutingTable]) -> ForcedDrop {
    let service = LookupService::new(
        tables.to_vec(),
        ServiceConfig {
            workers: 1,
            batch_width: Some(32),
            ..ServiceConfig::default()
        },
    )
    .expect("forced-drop service");
    let cfg = ControlConfig {
        alpha_floor: 0.5,
        alpha_rearm: 0.9,
        cooldown_batches: 1,
        ..ControlConfig::default()
    };
    let mut plane = ControlPlane::new(service, cfg).expect("forced-drop plane");
    let alpha_before = plane.service_mut().alpha().expect("alpha");
    let generation_before = plane.service().generation();
    assert!(
        alpha_before >= 0.5,
        "family must start above the floor (α = {alpha_before})"
    );

    let victim = tables.len() - 1;
    let withdrawals: Vec<RouteUpdate> = tables[victim]
        .prefixes()
        .map(|prefix| RouteUpdate::Withdraw {
            vnid: victim as VnId,
            prefix,
        })
        .collect();
    let drop_outcome = plane.apply_batch(&withdrawals).expect("drop batch");
    assert!(drop_outcome.remerged, "α drop below the floor must re-merge");

    // α stays low; three more quiet batches must not re-trigger.
    for i in 0..3u32 {
        let o = plane
            .apply_batch(&[RouteUpdate::Announce {
                vnid: 0,
                prefix: vr_net::Ipv4Prefix::must(0xC633_6400 | (i << 8), 24),
                next_hop: 1,
            }])
            .expect("quiet batch");
        assert!(!o.remerged, "disarmed trigger fired again");
    }

    let snap = plane
        .service()
        .telemetry_snapshot()
        .expect("telemetry on by default");
    let remerge_events = snap
        .events
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RemergeTriggered { .. }))
        .count();
    assert_eq!(remerge_events, 1, "exactly one RemergeTriggered event");
    let generation_after = plane.service().generation();
    assert!(
        generation_after > generation_before,
        "re-merge must bump the generation"
    );
    let alpha_after_drop = drop_outcome.alpha;
    let _ = plane.shutdown();
    ForcedDrop {
        alpha_before,
        alpha_after_drop,
        generation_before,
        generation_after,
        remerge_events,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");

    // Paper scale: K=15 networks × 3,725 prefixes; a batch is ~1 % of
    // one table (37 updates), the paper's §V-B write-rate assumption.
    let (scale, k, prefixes, batches, probes_per_batch): (&str, usize, usize, usize, usize) =
        if smoke {
            ("smoke", 4, 400, 6, 64)
        } else if quick {
            ("quick", 15, 3725, 20, 128)
        } else {
            ("paper", 15, 3725, 60, 256)
        };
    let batch_size = (prefixes / 100).max(4);

    let spec = FamilySpec {
        prefixes_per_table: prefixes,
        ..FamilySpec::paper_worst_case(k, 0.6, 2026)
    };
    let tables = spec.generate().expect("family generation");
    let mut stream =
        UpdateStream::new(tables.clone(), UpdateMix::default(), 16, 0xC0FFEE).expect("stream");
    let drawn: Vec<Vec<RouteUpdate>> = (0..batches).map(|_| stream.batch(batch_size)).collect();

    eprintln!("[control_churn] {scale}: K={k} × {prefixes} prefixes, {batches} batches of {batch_size}");
    let (naive_ups, inc_ups, oracle_checked, inc_publishes, fallbacks) =
        ab_throughput(&tables, &drawn, probes_per_batch);
    let speedup = inc_ups / naive_ups;
    eprintln!(
        "[control_churn] naive {naive_ups:.0} ups, incremental {inc_ups:.0} ups ({speedup:.1}x), {oracle_checked} oracle lookups clean"
    );
    if !smoke {
        assert!(
            speedup >= 5.0,
            "incremental path must clear 5x naive throughput, got {speedup:.2}x"
        );
    }

    let alpha_trajectory = trajectory(&tables, 2026, batches, batch_size);
    for p in &alpha_trajectory {
        assert!(
            (0.0..=1.0).contains(&p.alpha),
            "alpha out of range at batch {}: {}",
            p.batch,
            p.alpha
        );
    }
    let drop = forced_drop(&tables);
    eprintln!(
        "[control_churn] forced drop: α {:.3} → {:.3}, generation {} → {}, {} re-merge event(s)",
        drop.alpha_before,
        drop.alpha_after_drop,
        drop.generation_before,
        drop.generation_after,
        drop.remerge_events
    );

    let study = ChurnStudy {
        scale,
        k,
        prefixes_per_table: prefixes,
        batches,
        batch_size,
        naive_updates_per_sec: naive_ups,
        incremental_updates_per_sec: inc_ups,
        speedup,
        oracle_checked_lookups: oracle_checked,
        incremental_publishes: inc_publishes,
        full_rebuild_fallbacks: fallbacks,
        alpha_trajectory,
        forced_drop: drop,
    };

    println!(
        "{:<8} {:>4} {:>9} {:>14} {:>14} {:>8} {:>14}",
        "scale", "K", "prefixes", "naive ups", "incr ups", "speedup", "oracle lookups"
    );
    println!(
        "{:<8} {:>4} {:>9} {:>14.0} {:>14.0} {:>7.1}x {:>14}",
        study.scale,
        study.k,
        study.prefixes_per_table,
        study.naive_updates_per_sec,
        study.incremental_updates_per_sec,
        study.speedup,
        study.oracle_checked_lookups
    );

    let file = if smoke {
        "BENCH_control_churn_smoke.json"
    } else {
        "BENCH_control_churn.json"
    };
    let path = results_dir()
        .parent()
        .map_or_else(|| file.into(), |p| p.join(file));
    match write_json(&path, &study) {
        Ok(()) => eprintln!("[control_churn] wrote {}", path.display()),
        Err(e) => eprintln!("[control_churn] could not write {}: {e}", path.display()),
    }
}

//! Regenerates Fig. 2: single-BRAM power vs operating frequency, four
//! curves (18 Kb / 36 Kb × speed grades -2 / -1L).

use vr_bench::emit;
use vr_power::experiments::fig2_series;
use vr_power::report::num;

fn main() {
    let points = fig2_series();
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} ({})", p.mode, p.grade),
                num(p.freq_mhz, 0),
                num(p.power_mw, 3),
            ]
        })
        .collect();
    emit(
        "fig2",
        &["Setup", "Frequency (MHz)", "BRAM power (mW)"],
        &cells,
        &points,
    );
}

//! Regenerates Fig. 3: per-stage logic+signal power vs frequency.

use vr_bench::emit;
use vr_power::experiments::fig3_series;
use vr_power::report::num;

fn main() {
    let points = fig3_series();
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("logic ({})", p.grade),
                num(p.freq_mhz, 0),
                num(p.power_mw, 3),
            ]
        })
        .collect();
    emit(
        "fig3",
        &["Series", "Frequency (MHz)", "Per-stage power (mW)"],
        &cells,
        &points,
    );
}

//! Latency comparison: uni-bit organizations at their achievable clocks
//! vs depth-bounded stride engines (§I's latency-guarantee motivation).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::latency_comparison;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let k = 4.min(cfg.k_max);
    let rows = latency_comparison(&cfg, k).expect("latency rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.cycles.to_string(),
                num(r.clock_mhz, 1),
                num(r.latency_ns, 1),
            ]
        })
        .collect();
    emit(
        "latency",
        &["Engine", "Depth (cycles)", "Clock (MHz)", "Latency (ns)"],
        &cells,
        &rows,
    );
}

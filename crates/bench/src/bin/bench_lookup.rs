//! Lookup datapath microbenchmark: scalar pointer-chasing vs the
//! stage-lockstep `lookup_batch` path, per trie variant and batch size,
//! on a paper-scale table — plus the DIR-16 `JumpTrie` front end, the
//! per-VN (`lookup_vn`) datapath on merged tries, and the concurrent
//! `LookupService` (mode `"service"`). Writes `BENCH_lookup.json` at the
//! workspace root (packets/sec and ns/lookup per row) so the numbers
//! travel with the repo.
//!
//! `cargo run --release -p vr-bench --bin bench_lookup` (accepts
//! `--quick` / `VR_QUICK=1` for a reduced probe set, and `--smoke` for a
//! tiny single-scale run that still covers every variant/mode pair and
//! writes `BENCH_lookup_smoke.json` — used by CI to keep the harness
//! honest without paying for a full measurement).
//!
//! Latency **distribution** columns (`p50_ns`/`p99_ns`) ride along for
//! the jump-trie variants and the service rows: jump rows run a separate
//! chunk-granularity instrumented pass through a detached `vr-telemetry`
//! histogram, service rows read the live `vr_service_lookup_ns`
//! histogram the workers feed. Service mode is measured twice — with the
//! registry attached (`service_jump`) and detached
//! (`service_jump_notel`) — so the record-path overhead is a visible
//! delta in the artifact, not a guess. Under `--smoke` (and the
//! `telemetry` cargo feature, on by default) the run also scrapes a live
//! registry twice, validates the Prometheus exposition, checks counter
//! monotonicity between scrapes, and writes `TELEMETRY_smoke.prom` /
//! `TELEMETRY_smoke.json`.

use serde::Serialize;
use std::cell::Cell;
use std::time::Instant;
use vr_bench::results_dir;
use vr_engine::{LookupService, ServiceConfig};
use vr_telemetry::{Histogram, Stopwatch};
use vr_net::synth::{FamilySpec, TableSpec};
use vr_net::table::NextHop;
use vr_net::VnId;
use vr_power::report::write_json;
use vr_trie::{
    FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedTrie, StrideTrie, UnibitTrie,
};

/// Number of virtual networks in the merged/per-VN and service rows.
const FAMILY_K: usize = 4;

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Row {
    /// `"paper"` (3,725-prefix edge table, cache-resident),
    /// `"backbone"` (262,144 prefixes — slabs exceed L2, where the
    /// stage-lockstep batch path earns its keep), or `"smoke"` (tiny
    /// CI-only table).
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    /// `"scalar"`, `"batch"`, or `"service"`.
    mode: &'static str,
    /// Batch width driven through `lookup_batch` (`null` for scalar;
    /// the sweep-picked width for service rows).
    batch_size: Option<usize>,
    /// Worker-thread count (`null` for the single-threaded modes).
    workers: Option<usize>,
    ns_per_lookup: f64,
    packets_per_sec: f64,
    /// Speedup over the same variant's scalar row (1.0 for scalar).
    /// Service rows compare against the merged jump scalar walk — the
    /// same datapath the workers run, minus threads and channels.
    speedup_vs_scalar: f64,
    /// Median ns/lookup from the instrumented pass (`null` where no
    /// distribution is tracked). Jump rows: chunk-granularity wall time
    /// through a detached histogram. Service rows: the workers' live
    /// `vr_service_lookup_ns` histogram.
    p50_ns: Option<f64>,
    /// 99th-percentile ns/lookup from the same histogram.
    p99_ns: Option<f64>,
}

/// Times `work` (which must process `per_iter` lookups) and returns ns
/// per lookup of the **fastest** iteration. The minimum estimates the
/// uncontended cost: scheduler preemption and noisy neighbours only ever
/// add time, so on shared single-core runners the mean drifts tens of
/// percent between runs while the min stays reproducible.
fn time_ns_per_lookup(per_iter: usize, iters: usize, mut work: impl FnMut() -> usize) -> f64 {
    // Warm-up: populate caches and fault in the slabs.
    let mut sink = 0usize;
    for _ in 0..iters.div_ceil(4).max(1) {
        sink = sink.wrapping_add(work());
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        sink = sink.wrapping_add(work());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    // Keep the accumulated hit count observable so the loop is not elided.
    assert!(sink != usize::MAX);
    best / per_iter as f64
}

/// Chunk width of the scalar-mode instrumented pass: wide enough that
/// the two timer reads (~25 ns each) stay an order of magnitude below
/// the measured chunk, narrow enough that the percentiles still resolve
/// per-probe variation.
const PCTL_SCALAR_CHUNK: usize = 32;

/// Instrumented pass at chunk granularity: walks `probes` in chunks of
/// `width`, times each chunk with a [`Stopwatch`], and folds the chunk
/// wall time into a detached log₂ histogram. Returns `(p50, p99)` as
/// ns/lookup. Runs *separately* from the throughput timing above so the
/// per-chunk timer reads never contaminate the `ns_per_lookup` columns.
fn percentile_pass(
    width: usize,
    probes: &[u32],
    mut work: impl FnMut(&[u32]) -> usize,
) -> (Option<f64>, Option<f64>) {
    let width = width.max(1);
    let hist = Histogram::detached();
    let mut sink = 0usize;
    for chunk in probes.chunks(width) {
        let watch = Stopwatch::start();
        sink = sink.wrapping_add(work(std::hint::black_box(chunk)));
        // Scale partial tail chunks up to full-width ns before bucketing
        // so the tail does not masquerade as a fast chunk.
        let ns = watch.elapsed_ns() * width as u64 / chunk.len().max(1) as u64;
        hist.record(ns);
    }
    assert!(sink != usize::MAX);
    let snap = hist.snapshot("percentile_pass");
    let per_lookup = |v: u64| Some(v as f64 / width as f64);
    (per_lookup(snap.p50), per_lookup(snap.p99))
}

/// Measures the scalar and batched paths of one variant and returns the
/// scalar ns/lookup (the reference for derived rows such as service mode).
#[allow(clippy::too_many_arguments)]
fn push_variant(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    probes: &[u32],
    iters: usize,
    batch_sizes: &[usize],
    track_percentiles: bool,
    scalar: impl Fn(u32) -> Option<NextHop>,
    batch: impl Fn(&[u32], &mut [Option<NextHop>]),
) -> f64 {
    let scalar_ns = time_ns_per_lookup(probes.len(), iters, || {
        probes
            .iter()
            .filter(|&&ip| scalar(std::hint::black_box(ip)).is_some())
            .count()
    });
    let (p50_ns, p99_ns) = if track_percentiles {
        percentile_pass(PCTL_SCALAR_CHUNK, probes, |chunk| {
            chunk.iter().filter(|&&ip| scalar(ip).is_some()).count()
        })
    } else {
        (None, None)
    };
    rows.push(Row {
        scale,
        table_prefixes,
        variant,
        mode: "scalar",
        batch_size: None,
        workers: None,
        ns_per_lookup: scalar_ns,
        packets_per_sec: 1e9 / scalar_ns,
        speedup_vs_scalar: 1.0,
        p50_ns,
        p99_ns,
    });
    let mut out = vec![None; probes.len()];
    for &width in batch_sizes {
        let ns = time_ns_per_lookup(probes.len(), iters, || {
            let mut hits = 0usize;
            for chunk in probes.chunks(width) {
                let slot = &mut out[..chunk.len()];
                batch(std::hint::black_box(chunk), slot);
                hits += slot.iter().filter(|nh| nh.is_some()).count();
            }
            hits
        });
        let (p50_ns, p99_ns) = if track_percentiles {
            percentile_pass(width, probes, |chunk| {
                let slot = &mut out[..chunk.len()];
                batch(chunk, slot);
                slot.iter().filter(|nh| nh.is_some()).count()
            })
        } else {
            (None, None)
        };
        rows.push(Row {
            scale,
            table_prefixes,
            variant,
            mode: "batch",
            batch_size: Some(width),
            workers: None,
            ns_per_lookup: ns,
            packets_per_sec: 1e9 / ns,
            speedup_vs_scalar: scalar_ns / ns,
            p50_ns,
            p99_ns,
        });
    }
    eprintln!("[bench_lookup] {scale}/{variant} done");
    scalar_ns
}

/// Measures `LookupService::process` end to end (channel hops, snapshot
/// clone, scatter/gather) at each worker count.
#[allow(clippy::too_many_arguments)]
fn push_service(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    tables: &[vr_net::RoutingTable],
    probes: &[u32],
    iters: usize,
    worker_counts: &[usize],
    scalar_ref_ns: f64,
    pinned_width: &mut Option<usize>,
) {
    let packets: Vec<(VnId, u32)> = probes
        .iter()
        .enumerate()
        .map(|(i, &ip)| ((i % FAMILY_K) as VnId, ip))
        .collect();
    // Each worker count is measured twice: registry attached
    // (`service_jump`) and detached (`service_jump_notel`). The pair
    // makes the record-path overhead a first-class number in the
    // artifact — the acceptance budget is the attached row staying
    // within 5% of the detached one. The first service constructed at
    // this scale runs the width sweep; every later one (the paired
    // detached row AND all later repetitions) pins that width, so
    // paired rows differ in exactly one thing — the record path — even
    // after the min-merge across repetitions.
    //
    // Service rows get an iteration floor: they carry the overhead
    // acceptance budget, and min-of-N only sees through scheduler noise
    // on multi-threaded runs with enough samples.
    let iters = iters.max(16);
    for &workers in worker_counts {
        for &(variant, telemetry) in &[("service_jump", true), ("service_jump_notel", false)] {
            let cfg = ServiceConfig {
                workers,
                telemetry,
                batch_width: *pinned_width,
                ..ServiceConfig::default()
            };
            let mut service =
                LookupService::new(tables.to_vec(), cfg).expect("service construction");
            let width = service.batch_width();
            *pinned_width = Some(width);
            // One process() call spans only tens of µs — below the
            // scheduler jitter of a multi-threaded path. Time runs of
            // `repeat` back-to-back calls so each sample covers
            // milliseconds and the min converges on steady state
            // instead of on wakeup luck.
            let repeat = (1usize << 16).div_ceil(packets.len().max(1));
            let ns = time_ns_per_lookup(packets.len() * repeat, iters, || {
                let mut hits = 0usize;
                for _ in 0..repeat {
                    hits += service
                        .process(std::hint::black_box(&packets))
                        .iter()
                        .filter(|nh| nh.is_some())
                        .count();
                }
                hits
            });
            // The workers have been feeding vr_service_lookup_ns the
            // whole run; its quantiles are the service's real per-lookup
            // distribution, timer-free on this thread.
            let (p50_ns, p99_ns) = service
                .telemetry_snapshot()
                .and_then(|s| {
                    s.histogram("vr_service_lookup_ns")
                        .map(|h| (Some(h.p50 as f64), Some(h.p99 as f64)))
                })
                .unwrap_or((None, None));
            let _ = service.shutdown();
            rows.push(Row {
                scale,
                table_prefixes,
                variant,
                mode: "service",
                batch_size: Some(width),
                workers: Some(workers),
                ns_per_lookup: ns,
                packets_per_sec: 1e9 / ns,
                speedup_vs_scalar: scalar_ref_ns / ns,
                p50_ns,
                p99_ns,
            });
            eprintln!("[bench_lookup] {scale}/{variant} workers={workers} done");
        }
    }
}

fn run_scale(
    rows: &mut Vec<Row>,
    scale: &'static str,
    spec: &TableSpec,
    probe_count: usize,
    iters: usize,
    worker_counts: &[usize],
    reps: usize,
) {
    let table = spec.generate().unwrap();
    let unibit = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&unibit);
    let flat = FlatTrie::from_leaf_pushed(&pushed);
    let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
    let flat_stride = FlatStrideTrie::from_stride(&stride);
    let jump = JumpTrie::from_leaf_pushed(&pushed);

    // Per-VN datapath inputs: a K-way merged family resolved through
    // `lookup_vn` / `lookup_batch_vn`, cycling the VNID so every
    // NHI-vector column is exercised.
    let family = FamilySpec {
        prefixes_per_table: spec.prefixes,
        ..FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
    }
    .generate()
    .unwrap();
    let merged = MergedTrie::from_tables(&family).unwrap().leaf_pushed();
    let merged_flat = FlatTrie::from_merged(&merged);
    let merged_jump = JumpTrie::from_merged(&merged);

    // Probe set: perturbed prefix addresses cycled to `probe_count`, so
    // walks reach realistic depths instead of missing at the root.
    let seeds: Vec<u32> = table.prefixes().map(|p| p.addr()).collect();
    let probes: Vec<u32> = (0..probe_count)
        .map(|i| seeds[i % seeds.len()] ^ (i as u32).wrapping_mul(0x9E37_79B9) >> 24)
        .collect();

    let n = spec.prefixes;
    let batch_sizes = [8usize, 32, 128, 512];

    // The whole measurement sequence runs `reps` times, minutes apart in
    // wall-clock, and each row keeps its fastest repetition. On shared
    // runners the noise arrives in multi-second bursts that inflate every
    // sample of whichever variant is being timed; repetitions separated
    // by the rest of the sequence are the only way min-timing can see
    // through a burst longer than one row's measurement window.
    let mut best: Vec<Row> = Vec::new();
    let mut service_width: Option<usize> = None;
    for rep in 0..reps.max(1) {
        let mut pass: Vec<Row> = Vec::new();
        measure_scale(
            &mut pass,
            scale,
            n,
            &probes,
            iters,
            &batch_sizes,
            worker_counts,
            &mut service_width,
            &unibit,
            &pushed,
            &flat,
            &stride,
            &flat_stride,
            &jump,
            &merged_flat,
            &merged_jump,
            &family,
        );
        if best.is_empty() {
            best = pass;
        } else {
            for (b, p) in best.iter_mut().zip(pass) {
                if p.ns_per_lookup < b.ns_per_lookup {
                    *b = p;
                }
            }
        }
        eprintln!("[bench_lookup] {scale} rep {}/{} done", rep + 1, reps.max(1));
    }

    // Re-derive throughput and speedups from the merged minima so each
    // ratio compares rows from a consistent timing floor.
    let scalar_ns: Vec<(&'static str, f64)> = best
        .iter()
        .filter(|r| r.mode == "scalar")
        .map(|r| (r.variant, r.ns_per_lookup))
        .collect();
    let lookup_scalar = |variant: &str| {
        scalar_ns
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|&(_, ns)| ns)
    };
    for row in &mut best {
        let reference = match row.mode {
            "scalar" => Some(row.ns_per_lookup),
            // Service rows compare against the merged jump scalar walk.
            "service" => lookup_scalar("merged_jump_vn"),
            _ => lookup_scalar(row.variant),
        };
        row.packets_per_sec = 1e9 / row.ns_per_lookup;
        if let Some(ns) = reference {
            row.speedup_vs_scalar = ns / row.ns_per_lookup;
        }
    }
    rows.append(&mut best);
}

#[allow(clippy::too_many_arguments)]
fn measure_scale(
    rows: &mut Vec<Row>,
    scale: &'static str,
    n: usize,
    probes: &[u32],
    iters: usize,
    batch_sizes: &[usize],
    worker_counts: &[usize],
    pinned_width: &mut Option<usize>,
    unibit: &UnibitTrie,
    pushed: &LeafPushedTrie,
    flat: &FlatTrie,
    stride: &StrideTrie,
    flat_stride: &FlatStrideTrie,
    jump: &JumpTrie,
    merged_flat: &FlatTrie,
    merged_jump: &JumpTrie,
    family: &[vr_net::RoutingTable],
) {
    push_variant(
        rows,
        scale,
        n,
        "unibit",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| unibit.lookup(ip),
        |d, o| unibit.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "leaf_pushed",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| pushed.lookup(ip),
        |d, o| pushed.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| flat.lookup(ip),
        |d, o| flat.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "stride_8888",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| stride.lookup(ip),
        |d, o| stride.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat_stride_8888",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| flat_stride.lookup(ip),
        |d, o| flat_stride.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "jump",
        probes,
        iters,
        batch_sizes,
        true,
        |ip| jump.lookup(ip),
        |d, o| jump.lookup_batch(d, o),
    );

    let vn_scalar = Cell::new(0usize);
    let vn_batch = Cell::new(0usize);
    push_variant(
        rows,
        scale,
        n,
        "merged_flat_vn",
        probes,
        iters,
        batch_sizes,
        false,
        |ip| {
            let vn = vn_scalar.get();
            vn_scalar.set((vn + 1) % FAMILY_K);
            merged_flat.lookup_vn(vn, ip)
        },
        |d, o| {
            let vn = vn_batch.get();
            vn_batch.set((vn + 1) % FAMILY_K);
            merged_flat.lookup_batch_vn(vn, d, o)
        },
    );
    let vn_scalar = Cell::new(0usize);
    let vn_batch = Cell::new(0usize);
    let jump_vn_scalar_ns = push_variant(
        rows,
        scale,
        n,
        "merged_jump_vn",
        probes,
        iters,
        batch_sizes,
        true,
        |ip| {
            let vn = vn_scalar.get();
            vn_scalar.set((vn + 1) % FAMILY_K);
            merged_jump.lookup_vn(vn, ip)
        },
        |d, o| {
            let vn = vn_batch.get();
            vn_batch.set((vn + 1) % FAMILY_K);
            merged_jump.lookup_batch_vn(vn, d, o)
        },
    );

    push_service(
        rows,
        scale,
        n,
        family,
        probes,
        iters,
        worker_counts,
        jump_vn_scalar_ns,
        pinned_width,
    );
}

/// `--smoke` telemetry check: runs a small service with the registry
/// attached, scrapes it twice, and fails loudly unless (a) the
/// Prometheus exposition passes structural validation — one `# TYPE`
/// line per family, cumulative buckets, `+Inf == _count` — and (b) no
/// counter moved backwards between the scrapes. The final scrape is
/// written out as `TELEMETRY_smoke.prom` / `TELEMETRY_smoke.json` so the
/// CI telemetry job can upload real exporter output as artifacts.
#[cfg(feature = "telemetry")]
fn telemetry_smoke() {
    use vr_telemetry::export::{check_prometheus, to_prometheus};
    let family = FamilySpec {
        prefixes_per_table: 256,
        ..FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
    }
    .generate()
    .unwrap();
    let mut service = LookupService::new(
        family,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("smoke service construction");
    let packets: Vec<(VnId, u32)> = (0..512u32)
        .map(|i| ((i as usize % FAMILY_K) as VnId, i.wrapping_mul(0x9E37_79B9)))
        .collect();
    service.process(&packets);
    let first = service.telemetry_snapshot().expect("telemetry on by default");
    service.process(&packets);
    let second = service.telemetry_snapshot().expect("telemetry on by default");
    let _ = service.shutdown();

    let text = to_prometheus(&second);
    if let Err(e) = check_prometheus(&text) {
        panic!("[bench_lookup] telemetry smoke: invalid Prometheus exposition: {e}");
    }
    if let Some(name) = second.first_counter_regression(&first) {
        panic!("[bench_lookup] telemetry smoke: counter {name} regressed between scrapes");
    }
    let root = results_dir()
        .parent()
        .map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    if let Err(e) = std::fs::write(root.join("TELEMETRY_smoke.prom"), &text) {
        eprintln!("[bench_lookup] could not write TELEMETRY_smoke.prom: {e}");
    }
    match second.to_json_pretty() {
        Ok(json) => {
            if let Err(e) = std::fs::write(root.join("TELEMETRY_smoke.json"), json) {
                eprintln!("[bench_lookup] could not write TELEMETRY_smoke.json: {e}");
            }
        }
        Err(e) => eprintln!("[bench_lookup] could not serialize telemetry snapshot: {e}"),
    }
    eprintln!(
        "[bench_lookup] telemetry smoke ok: {} counters, {} gauges, {} histograms, {} events",
        second.counters.len(),
        second.gauges.len(),
        second.histograms.len(),
        second.events.events.len(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");

    let mut rows = Vec::new();
    if smoke {
        // CI harness check: a tiny table and one timed iteration, but the
        // full variant/mode matrix — enough to prove every datapath still
        // builds, runs, and serializes.
        let tiny = TableSpec {
            prefixes: 512,
            ..TableSpec::paper_worst_case(2012)
        };
        run_scale(&mut rows, "smoke", &tiny, 256, 1, &[1, 2], 1);
        #[cfg(feature = "telemetry")]
        telemetry_smoke();
    } else {
        let (probe_count, iters, reps) = if quick {
            (2_048, 4, 2)
        } else {
            (16_384, 40, 3)
        };
        run_scale(
            &mut rows,
            "paper",
            &TableSpec::paper_worst_case(2012),
            probe_count,
            iters,
            &[1, 2, 4],
            reps,
        );
        // A backbone-scale table whose per-level slabs exceed L2: the
        // dependent loads of a scalar walk miss, and the batch path's B
        // independent loads per level pay off. The full iteration count is
        // kept — min-of-N timing needs samples to find a preemption-free
        // window, and measurement is cheap next to trie construction.
        let backbone = TableSpec {
            prefixes: 262_144,
            ..TableSpec::paper_worst_case(2012)
        };
        run_scale(
            &mut rows,
            "backbone",
            &backbone,
            probe_count * 4,
            iters,
            &[1, 2, 4],
            reps,
        );
    }

    println!(
        "{:<9} {:<18} {:>8} {:>8} {:>8} {:>12} {:>16} {:>8} {:>9} {:>9}",
        "scale",
        "variant",
        "mode",
        "batch",
        "workers",
        "ns/lookup",
        "packets/sec",
        "speedup",
        "p50_ns",
        "p99_ns"
    );
    let pctl = |v: Option<f64>| v.map_or_else(|| "-".into(), |p| format!("{p:.1}"));
    for r in &rows {
        println!(
            "{:<9} {:<18} {:>8} {:>8} {:>8} {:>12.2} {:>16.0} {:>7.2}x {:>9} {:>9}",
            r.scale,
            r.variant,
            r.mode,
            r.batch_size.map_or_else(|| "-".into(), |b| b.to_string()),
            r.workers.map_or_else(|| "-".into(), |w| w.to_string()),
            r.ns_per_lookup,
            r.packets_per_sec,
            r.speedup_vs_scalar,
            pctl(r.p50_ns),
            pctl(r.p99_ns),
        );
    }

    // BENCH_lookup.json lives at the workspace root, next to README.md.
    // Smoke runs write a separate file so CI can never clobber the
    // committed measurement.
    let file = if smoke {
        "BENCH_lookup_smoke.json"
    } else {
        "BENCH_lookup.json"
    };
    let path = results_dir()
        .parent()
        .map_or_else(|| file.into(), |p| p.join(file));
    match write_json(&path, &rows) {
        Ok(()) => eprintln!("[bench_lookup] wrote {}", path.display()),
        Err(e) => eprintln!("[bench_lookup] could not write {}: {e}", path.display()),
    }
}

//! Lookup datapath microbenchmark: scalar pointer-chasing vs the
//! stage-lockstep `lookup_batch` path, per trie variant and batch size,
//! on a paper-scale table. Writes `BENCH_lookup.json` at the workspace
//! root (packets/sec and ns/lookup per row) so the numbers travel with
//! the repo.
//!
//! `cargo run --release -p vr-bench --bin bench_lookup` (accepts
//! `--quick` / `VR_QUICK=1` for a reduced probe set).

use serde::Serialize;
use std::time::Instant;
use vr_bench::results_dir;
use vr_net::synth::TableSpec;
use vr_net::table::NextHop;
use vr_power::report::write_json;
use vr_trie::{FlatStrideTrie, FlatTrie, LeafPushedTrie, StrideTrie, UnibitTrie};

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Row {
    /// `"paper"` (3,725-prefix edge table, cache-resident) or
    /// `"backbone"` (262,144 prefixes — slabs exceed L2, where the
    /// stage-lockstep batch path earns its keep).
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    /// `"scalar"` or `"batch"`.
    mode: &'static str,
    /// Batch width driven through `lookup_batch` (`null` for scalar).
    batch_size: Option<usize>,
    ns_per_lookup: f64,
    packets_per_sec: f64,
    /// Speedup over the same variant's scalar row (1.0 for scalar).
    speedup_vs_scalar: f64,
}

/// Times `work` (which must process `per_iter` lookups) long enough to be
/// stable and returns ns per lookup.
fn time_ns_per_lookup(per_iter: usize, iters: usize, mut work: impl FnMut() -> usize) -> f64 {
    // Warm-up: populate caches and fault in the slabs.
    let mut sink = 0usize;
    for _ in 0..iters.div_ceil(4).max(1) {
        sink = sink.wrapping_add(work());
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(work());
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    // Keep the accumulated hit count observable so the loop is not elided.
    assert!(sink != usize::MAX);
    elapsed / (iters as f64 * per_iter as f64)
}

#[allow(clippy::too_many_arguments)]
fn push_variant(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    probes: &[u32],
    iters: usize,
    batch_sizes: &[usize],
    scalar: impl Fn(u32) -> Option<NextHop>,
    batch: impl Fn(&[u32], &mut [Option<NextHop>]),
) {
    let scalar_ns = time_ns_per_lookup(probes.len(), iters, || {
        probes
            .iter()
            .filter(|&&ip| scalar(std::hint::black_box(ip)).is_some())
            .count()
    });
    rows.push(Row {
        scale,
        table_prefixes,
        variant,
        mode: "scalar",
        batch_size: None,
        ns_per_lookup: scalar_ns,
        packets_per_sec: 1e9 / scalar_ns,
        speedup_vs_scalar: 1.0,
    });
    let mut out = vec![None; probes.len()];
    for &width in batch_sizes {
        let ns = time_ns_per_lookup(probes.len(), iters, || {
            let mut hits = 0usize;
            for chunk in probes.chunks(width) {
                let slot = &mut out[..chunk.len()];
                batch(std::hint::black_box(chunk), slot);
                hits += slot.iter().filter(|nh| nh.is_some()).count();
            }
            hits
        });
        rows.push(Row {
            scale,
            table_prefixes,
            variant,
            mode: "batch",
            batch_size: Some(width),
            ns_per_lookup: ns,
            packets_per_sec: 1e9 / ns,
            speedup_vs_scalar: scalar_ns / ns,
        });
    }
    eprintln!("[bench_lookup] {scale}/{variant} done");
}

fn run_scale(
    rows: &mut Vec<Row>,
    scale: &'static str,
    spec: &TableSpec,
    probe_count: usize,
    iters: usize,
) {
    let table = spec.generate().unwrap();
    let unibit = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&unibit);
    let flat = FlatTrie::from_leaf_pushed(&pushed);
    let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
    let flat_stride = FlatStrideTrie::from_stride(&stride);

    // Probe set: perturbed prefix addresses cycled to `probe_count`, so
    // walks reach realistic depths instead of missing at the root.
    let seeds: Vec<u32> = table.prefixes().map(|p| p.addr()).collect();
    let probes: Vec<u32> = (0..probe_count)
        .map(|i| seeds[i % seeds.len()] ^ (i as u32).wrapping_mul(0x9E37_79B9) >> 24)
        .collect();

    let n = spec.prefixes;
    let batch_sizes = [8usize, 32, 128, 512];
    push_variant(
        rows,
        scale,
        n,
        "unibit",
        &probes,
        iters,
        &batch_sizes,
        |ip| unibit.lookup(ip),
        |d, o| unibit.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "leaf_pushed",
        &probes,
        iters,
        &batch_sizes,
        |ip| pushed.lookup(ip),
        |d, o| pushed.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat",
        &probes,
        iters,
        &batch_sizes,
        |ip| flat.lookup(ip),
        |d, o| flat.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "stride_8888",
        &probes,
        iters,
        &batch_sizes,
        |ip| stride.lookup(ip),
        |d, o| stride.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat_stride_8888",
        &probes,
        iters,
        &batch_sizes,
        |ip| flat_stride.lookup(ip),
        |d, o| flat_stride.lookup_batch(d, o),
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");
    let (probe_count, iters) = if quick { (2_048, 4) } else { (16_384, 40) };

    let mut rows = Vec::new();
    run_scale(
        &mut rows,
        "paper",
        &TableSpec::paper_worst_case(2012),
        probe_count,
        iters,
    );
    // A backbone-scale table whose per-level slabs exceed L2: the
    // dependent loads of a scalar walk miss, and the batch path's B
    // independent loads per level pay off.
    let backbone = TableSpec {
        prefixes: 262_144,
        ..TableSpec::paper_worst_case(2012)
    };
    run_scale(
        &mut rows,
        "backbone",
        &backbone,
        probe_count * 4,
        iters.div_ceil(8),
    );

    println!(
        "{:<9} {:<18} {:>8} {:>8} {:>12} {:>16} {:>8}",
        "scale", "variant", "mode", "batch", "ns/lookup", "packets/sec", "speedup"
    );
    for r in &rows {
        println!(
            "{:<9} {:<18} {:>8} {:>8} {:>12.2} {:>16.0} {:>7.2}x",
            r.scale,
            r.variant,
            r.mode,
            r.batch_size.map_or_else(|| "-".into(), |b| b.to_string()),
            r.ns_per_lookup,
            r.packets_per_sec,
            r.speedup_vs_scalar,
        );
    }

    // BENCH_lookup.json lives at the workspace root, next to README.md.
    let path = results_dir()
        .parent()
        .map_or_else(|| "BENCH_lookup.json".into(), |p| p.join("BENCH_lookup.json"));
    match write_json(&path, &rows) {
        Ok(()) => eprintln!("[bench_lookup] wrote {}", path.display()),
        Err(e) => eprintln!("[bench_lookup] could not write {}: {e}", path.display()),
    }
}

//! Lookup datapath microbenchmark: scalar pointer-chasing vs the
//! stage-lockstep `lookup_batch` path, per trie variant and batch size,
//! on a paper-scale table — plus the DIR-16 `JumpTrie` front end, the
//! per-VN (`lookup_vn`) datapath on merged tries, the explicit-width
//! lane stepper (mode `"lane"`, the software analogue of the paper's
//! BRAM pipeline), and the concurrent `LookupService` /
//! `ShardedService` (mode `"service"`). Writes `BENCH_lookup.json` at
//! the workspace root (packets/sec and ns/lookup per row) so the
//! numbers travel with the repo.
//!
//! `cargo run --release -p vr-bench --bin bench_lookup` (accepts
//! `--quick` / `VR_QUICK=1` for a reduced probe set, and `--smoke` for a
//! tiny single-scale run that still covers every variant/mode pair and
//! writes `BENCH_lookup_smoke.json` — used by CI to keep the harness
//! honest without paying for a full measurement). The smoke run also
//! enforces the bench-regression gate: gated datapath rows are compared
//! against the checked-in `crates/bench/bench_gate_baseline.json` and a
//! regression past `VR_BENCH_GATE_TOLERANCE` (default 1.5×) fails the
//! run; `VR_BENCH_GATE=0` disables the gate.
//!
//! Latency **distribution** columns (`p50_ns`/`p99_ns`) ride along for
//! every row except the deliberately registry-free service control:
//! single-threaded rows run a separate chunk-granularity instrumented
//! pass through a detached `vr-telemetry` histogram, service rows read
//! the live `vr_service_lookup_ns` histogram the workers feed. Service
//! mode is measured three ways — registry attached (`service_jump`),
//! detached (`service_jump_notel`), and attached with 1-in-64 batch
//! tracing (`service_jump_traced`) — so the record-path and trace-path
//! overheads are visible deltas in the artifact, not guesses. Under
//! `--smoke` (and the `telemetry` cargo feature, on by default) the run
//! also scrapes a live registry twice, validates the Prometheus
//! exposition, checks counter monotonicity between scrapes, and writes
//! `results/TELEMETRY_smoke.prom` / `.json`.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::time::Instant;
use vr_bench::results_dir;
use vr_engine::service::lookup_batch_mixed;
use vr_engine::{LookupService, LpmCache, ServiceConfig, ShardedConfig, ShardedService};
use vr_telemetry::{Histogram, Stopwatch};
use vr_net::synth::{FamilySpec, TableSpec};
use vr_net::table::NextHop;
use vr_net::{SkewedSpec, SkewedTraffic, VnId};
use vr_power::report::write_json;
use vr_wire::{replay, ReplayConfig, ServerConfig, TrafficModel, WireClient, WireServer};
use vr_trie::{
    lookup_lanes, lookup_lanes_vn, FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedTrie,
    StrideTrie, UnibitTrie,
};

/// Number of virtual networks in the merged/per-VN and service rows.
const FAMILY_K: usize = 4;

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Row {
    /// `"paper"` (3,725-prefix edge table, cache-resident),
    /// `"backbone"` (262,144 prefixes — slabs exceed L2, where the
    /// stage-lockstep batch path earns its keep), or `"smoke"` (tiny
    /// CI-only table).
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    /// `"scalar"`, `"batch"`, `"lane"`, `"service"`, or `"wire"` (the
    /// end-to-end socket path through `vr-wire`).
    mode: &'static str,
    /// Batch width driven through `lookup_batch` (`null` for scalar;
    /// the const-generic lane width W for lane rows; the sweep-picked
    /// width for channel-service rows; the dispatcher chunk width for
    /// sharded rows).
    batch_size: Option<usize>,
    /// Worker/shard-thread count (`null` for the single-threaded modes).
    workers: Option<usize>,
    ns_per_lookup: f64,
    packets_per_sec: f64,
    /// Speedup over the reference scalar row (1.0 for scalar): lane and
    /// batch rows compare against their own trie's scalar walk, service
    /// and sharded rows against the merged jump scalar walk — the same
    /// datapath the workers run, minus threads and channels.
    speedup_vs_scalar: f64,
    /// Median ns/lookup from the instrumented pass. Single-threaded
    /// rows: chunk-granularity wall time through a detached histogram.
    /// Registry-attached service rows: the workers' live
    /// `vr_service_lookup_ns` histogram. The registry-free
    /// `service_jump_notel` control: a separate detached
    /// chunk-granularity pass over `process` — timer-free during the
    /// throughput measurement, so the control stays honest.
    p50_ns: Option<f64>,
    /// 99th-percentile ns/lookup from the same histogram.
    p99_ns: Option<f64>,
    /// Traffic model driving the row: `null` for the synthetic
    /// perturbed-prefix probe cycle, `"uniform"` / `"zipf"` for the
    /// result-cache rows driven by `vr_net::SkewedTraffic`.
    traffic: Option<&'static str>,
    /// Steady-state LPM-cache hit rate (cached rows only), measured
    /// over a stream drawn independently of the warmup stream.
    cache_hit_rate: Option<f64>,
}

/// Times `work` (which must process `per_iter` lookups) and returns ns
/// per lookup of the **fastest** iteration. The minimum estimates the
/// uncontended cost: scheduler preemption and noisy neighbours only ever
/// add time, so on shared single-core runners the mean drifts tens of
/// percent between runs while the min stays reproducible.
fn time_ns_per_lookup(per_iter: usize, iters: usize, mut work: impl FnMut() -> usize) -> f64 {
    // Warm-up: populate caches and fault in the slabs.
    let mut sink = 0usize;
    for _ in 0..iters.div_ceil(4).max(1) {
        sink = sink.wrapping_add(work());
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        sink = sink.wrapping_add(work());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    // Keep the accumulated hit count observable so the loop is not elided.
    assert!(sink != usize::MAX);
    best / per_iter as f64
}

/// Chunk width of the scalar-mode instrumented pass: wide enough that
/// the two timer reads (~25 ns each) stay an order of magnitude below
/// the measured chunk, narrow enough that the percentiles still resolve
/// per-probe variation.
const PCTL_SCALAR_CHUNK: usize = 32;

/// Shared core of every detached chunk-granularity percentile pass:
/// times each chunk with a [`Stopwatch`], scales partial tail chunks up
/// to full `width` before bucketing (so the tail never masquerades as a
/// fast chunk), folds the wall time into a detached log₂ histogram, and
/// reads back `(p50, p99)` as ns/lookup. Always run *separately* from
/// the throughput timing so the per-chunk timer reads never contaminate
/// the `ns_per_lookup` columns.
struct PercentileSampler {
    width: usize,
    hist: Histogram,
    sink: usize,
}

impl PercentileSampler {
    fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
            hist: Histogram::detached(),
            sink: 0,
        }
    }

    /// Times one `work` call covering `len` lookups (`len <= width`;
    /// shorter for the tail chunk) and buckets the scaled wall time.
    fn time_chunk(&mut self, len: usize, work: impl FnOnce() -> usize) {
        let watch = Stopwatch::start();
        self.sink = self.sink.wrapping_add(work());
        let ns = watch.elapsed_ns() * self.width as u64 / len.max(1) as u64;
        self.hist.record(ns);
    }

    fn finish(self, label: &'static str) -> (Option<f64>, Option<f64>) {
        // Keep the accumulated hit count observable so the timed work is
        // not elided.
        assert!(self.sink != usize::MAX);
        let snap = self.hist.snapshot(label);
        let per_lookup = |v: u64| Some(v as f64 / self.width as f64);
        (per_lookup(snap.p50), per_lookup(snap.p99))
    }
}

/// Instrumented pass over a flat probe set: walks `probes` in chunks of
/// `width` through a [`PercentileSampler`].
fn percentile_pass(
    width: usize,
    probes: &[u32],
    mut work: impl FnMut(&[u32]) -> usize,
) -> (Option<f64>, Option<f64>) {
    let mut pass = PercentileSampler::new(width);
    for chunk in probes.chunks(width.max(1)) {
        pass.time_chunk(chunk.len(), || work(std::hint::black_box(chunk)));
    }
    pass.finish("percentile_pass")
}

/// Measures the scalar and batched paths of one variant and returns the
/// scalar ns/lookup (the reference for derived rows such as service mode).
#[allow(clippy::too_many_arguments)]
fn push_variant(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    probes: &[u32],
    iters: usize,
    batch_sizes: &[usize],
    scalar: impl Fn(u32) -> Option<NextHop>,
    batch: impl Fn(&[u32], &mut [Option<NextHop>]),
) -> f64 {
    let scalar_ns = time_ns_per_lookup(probes.len(), iters, || {
        probes
            .iter()
            .filter(|&&ip| scalar(std::hint::black_box(ip)).is_some())
            .count()
    });
    let (p50_ns, p99_ns) = percentile_pass(PCTL_SCALAR_CHUNK, probes, |chunk| {
        chunk.iter().filter(|&&ip| scalar(ip).is_some()).count()
    });
    rows.push(Row {
        scale,
        table_prefixes,
        variant,
        mode: "scalar",
        batch_size: None,
        workers: None,
        ns_per_lookup: scalar_ns,
        packets_per_sec: 1e9 / scalar_ns,
        speedup_vs_scalar: 1.0,
        p50_ns,
        p99_ns,
        traffic: None,
        cache_hit_rate: None,
    });
    let mut out = vec![None; probes.len()];
    for &width in batch_sizes {
        let ns = time_ns_per_lookup(probes.len(), iters, || {
            let mut hits = 0usize;
            for chunk in probes.chunks(width) {
                let slot = &mut out[..chunk.len()];
                batch(std::hint::black_box(chunk), slot);
                hits += slot.iter().filter(|nh| nh.is_some()).count();
            }
            hits
        });
        let (p50_ns, p99_ns) = percentile_pass(width, probes, |chunk| {
            let slot = &mut out[..chunk.len()];
            batch(chunk, slot);
            slot.iter().filter(|nh| nh.is_some()).count()
        });
        rows.push(Row {
            scale,
            table_prefixes,
            variant,
            mode: "batch",
            batch_size: Some(width),
            workers: None,
            ns_per_lookup: ns,
            packets_per_sec: 1e9 / ns,
            speedup_vs_scalar: scalar_ns / ns,
            p50_ns,
            p99_ns,
            traffic: None,
            cache_hit_rate: None,
        });
    }
    eprintln!("[bench_lookup] {scale}/{variant} done");
    scalar_ns
}

/// Chunk width of the lane-mode instrumented pass — matched to the
/// widest batch row so the lane percentiles compare against the batch
/// path at the same measurement granularity.
const PCTL_LANE_CHUNK: usize = 512;

/// Measures the explicit-width lane stepper (`lookup_lanes*::<W>`) over
/// the whole probe set in one call per iteration — the shape that lets
/// the prefetch distance and lane refill amortize — and records it as
/// mode `"lane"` with `batch_size = W`.
#[allow(clippy::too_many_arguments)]
fn push_lane(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    variant: &'static str,
    width: usize,
    probes: &[u32],
    iters: usize,
    scalar_ns: f64,
    work: impl Fn(&[u32], &mut [Option<NextHop>]),
) {
    let mut out = vec![None; probes.len()];
    let ns = time_ns_per_lookup(probes.len(), iters, || {
        work(std::hint::black_box(probes), &mut out);
        out.iter().filter(|nh| nh.is_some()).count()
    });
    let (p50_ns, p99_ns) = percentile_pass(PCTL_LANE_CHUNK, probes, |chunk| {
        let slot = &mut out[..chunk.len()];
        work(chunk, slot);
        slot.iter().filter(|nh| nh.is_some()).count()
    });
    rows.push(Row {
        scale,
        table_prefixes,
        variant,
        mode: "lane",
        batch_size: Some(width),
        workers: None,
        ns_per_lookup: ns,
        packets_per_sec: 1e9 / ns,
        speedup_vs_scalar: scalar_ns / ns,
        p50_ns,
        p99_ns,
        traffic: None,
        cache_hit_rate: None,
    });
    eprintln!("[bench_lookup] {scale}/{variant} W={width} done");
}

/// Sub-batch widths driven through `ShardedService::process_into`: one
/// dispatcher call scatters a chunk across the shard queues, so the
/// width sets the per-shard job size and how far the channel hops
/// amortize.
const SHARDED_CHUNKS: [usize; 2] = [512, 2048];

/// Measures the sharded service end to end (hash scatter, per-shard
/// SPSC queues, gather) at each shards × chunk-width point. Every
/// service at one scale reuses the same prebuilt merged trie
/// (`with_trie`), so construction never shadows the steady-state
/// measurement; p50/p99 come from the live `vr_service_lookup_ns`
/// histogram the shard workers feed.
#[allow(clippy::too_many_arguments)]
fn push_sharded(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    family: &[vr_net::RoutingTable],
    merged_jump: &JumpTrie,
    probes: &[u32],
    iters: usize,
    worker_counts: &[usize],
    scalar_ref_ns: f64,
) {
    let packets: Vec<(VnId, u32)> = probes
        .iter()
        .enumerate()
        .map(|(i, &ip)| ((i % FAMILY_K) as VnId, ip))
        .collect();
    // Same iteration floor as the channel-service rows: the
    // multi-threaded min only sees through scheduler noise with enough
    // samples.
    let iters = iters.max(16);
    for &shards in worker_counts {
        for &chunk in &SHARDED_CHUNKS {
            let cfg = ShardedConfig {
                shards,
                ..ShardedConfig::default()
            };
            let mut service = ShardedService::with_trie(family.to_vec(), merged_jump.clone(), cfg)
                .expect("sharded service construction");
            let mut out = vec![None; chunk.min(packets.len()).max(1)];
            // Like the channel-service rows: back-to-back calls per
            // timed sample so each covers milliseconds, not wakeup luck.
            let repeat = (1usize << 16).div_ceil(packets.len().max(1));
            let ns = time_ns_per_lookup(packets.len() * repeat, iters, || {
                let mut hits = 0usize;
                for _ in 0..repeat {
                    for pchunk in packets.chunks(chunk) {
                        let slot = &mut out[..pchunk.len()];
                        service.process_into(std::hint::black_box(pchunk), slot);
                        hits += slot.iter().filter(|nh| nh.is_some()).count();
                    }
                }
                hits
            });
            let (p50_ns, p99_ns) = service
                .telemetry_snapshot()
                .and_then(|s| {
                    s.histogram("vr_service_lookup_ns")
                        .map(|h| (Some(h.p50 as f64), Some(h.p99 as f64)))
                })
                .unwrap_or((None, None));
            let _ = service.shutdown();
            rows.push(Row {
                scale,
                table_prefixes,
                variant: "sharded_jump",
                mode: "service",
                batch_size: Some(chunk),
                workers: Some(shards),
                ns_per_lookup: ns,
                packets_per_sec: 1e9 / ns,
                speedup_vs_scalar: scalar_ref_ns / ns,
                p50_ns,
                p99_ns,
                traffic: None,
                cache_hit_rate: None,
            });
            eprintln!("[bench_lookup] {scale}/sharded_jump shards={shards} chunk={chunk} done");
        }
    }
}

/// Measures `LookupService::process` end to end (channel hops, snapshot
/// clone, scatter/gather) at each worker count.
#[allow(clippy::too_many_arguments)]
fn push_service(
    rows: &mut Vec<Row>,
    scale: &'static str,
    table_prefixes: usize,
    tables: &[vr_net::RoutingTable],
    probes: &[u32],
    iters: usize,
    worker_counts: &[usize],
    scalar_ref_ns: f64,
    pinned_width: &mut Option<usize>,
) {
    let packets: Vec<(VnId, u32)> = probes
        .iter()
        .enumerate()
        .map(|(i, &ip)| ((i % FAMILY_K) as VnId, ip))
        .collect();
    // Each worker count is measured three times: registry attached
    // (`service_jump`), detached (`service_jump_notel`), and attached
    // with 1-in-64 batch tracing (`service_jump_traced`). The triple
    // makes both observability costs first-class numbers in the
    // artifact — the acceptance budgets are the attached row staying
    // within 5% of the detached one, and the traced row within 5% of
    // the detached one as well. The first service constructed at
    // this scale runs the width sweep; every later one (the paired
    // detached/traced rows AND all later repetitions) pins that width,
    // so paired rows differ in exactly one thing — the record or trace
    // path — even after the min-merge across repetitions.
    //
    // Service rows get an iteration floor: they carry the overhead
    // acceptance budget, and min-of-N only sees through scheduler noise
    // on multi-threaded runs with enough samples.
    let iters = iters.max(16);
    for &workers in worker_counts {
        for &(variant, telemetry, trace_sample) in &[
            ("service_jump", true, None),
            ("service_jump_notel", false, None),
            ("service_jump_traced", true, Some(vr_obs::DEFAULT_SAMPLE)),
        ] {
            let cfg = ServiceConfig {
                workers,
                telemetry,
                trace_sample,
                batch_width: *pinned_width,
                ..ServiceConfig::default()
            };
            let mut service =
                LookupService::new(tables.to_vec(), cfg).expect("service construction");
            let width = service.batch_width();
            *pinned_width = Some(width);
            // One process() call spans only tens of µs — below the
            // scheduler jitter of a multi-threaded path. Time runs of
            // `repeat` back-to-back calls so each sample covers
            // milliseconds and the min converges on steady state
            // instead of on wakeup luck.
            let repeat = (1usize << 16).div_ceil(packets.len().max(1));
            let ns = time_ns_per_lookup(packets.len() * repeat, iters, || {
                let mut hits = 0usize;
                for _ in 0..repeat {
                    hits += service
                        .process(std::hint::black_box(&packets))
                        .iter()
                        .filter(|nh| nh.is_some())
                        .count();
                }
                hits
            });
            // Attached rows: the workers have been feeding
            // vr_service_lookup_ns the whole run; its quantiles are the
            // service's real per-lookup distribution, timer-free on this
            // thread. The registry-free control has no histogram to
            // read, so it gets a *separate* detached chunk-granularity
            // pass — run after the throughput timing above, so the
            // per-chunk timer reads never touch the ns_per_lookup
            // column that carries the overhead budget.
            let (p50_ns, p99_ns) = if telemetry {
                service
                    .telemetry_snapshot()
                    .and_then(|s| {
                        s.histogram("vr_service_lookup_ns")
                            .map(|h| (Some(h.p50 as f64), Some(h.p99 as f64)))
                    })
                    .unwrap_or((None, None))
            } else {
                service_percentile_pass(&mut service, &packets, repeat)
            };
            let _ = service.shutdown();
            rows.push(Row {
                scale,
                table_prefixes,
                variant,
                mode: "service",
                batch_size: Some(width),
                workers: Some(workers),
                ns_per_lookup: ns,
                packets_per_sec: 1e9 / ns,
                speedup_vs_scalar: scalar_ref_ns / ns,
                p50_ns,
                p99_ns,
                traffic: None,
                cache_hit_rate: None,
            });
            eprintln!("[bench_lookup] {scale}/{variant} workers={workers} done");
        }
    }
}

/// Detached percentile pass for the registry-free service control:
/// drives `process` in [`PCTL_LANE_CHUNK`]-wide chunks through a
/// [`PercentileSampler`]. The chunk spans the whole channel round trip,
/// so these quantiles sit above the workers' live
/// `vr_service_lookup_ns` numbers — they bound the dispatch latency the
/// attached rows' worker-side histogram cannot see.
fn service_percentile_pass(
    service: &mut LookupService,
    packets: &[(VnId, u32)],
    repeat: usize,
) -> (Option<f64>, Option<f64>) {
    let mut pass = PercentileSampler::new(PCTL_LANE_CHUNK);
    for _ in 0..repeat.max(1) {
        for chunk in packets.chunks(PCTL_LANE_CHUNK) {
            pass.time_chunk(chunk.len(), || {
                service
                    .process(std::hint::black_box(chunk))
                    .iter()
                    .filter(|nh| nh.is_some())
                    .count()
            });
        }
    }
    pass.finish("service_notel_pctl")
}

/// Maps a derived row's variant to the scalar row its speedup compares
/// against: lane rows against their own trie's scalar walk, service and
/// sharded rows against the merged jump scalar walk — the datapath the
/// workers run, minus threads and channels.
fn scalar_base(variant: &str) -> &str {
    match variant {
        "jump_lane" => "jump",
        "merged_jump_lane_vn" | "service_jump" | "service_jump_notel" | "service_jump_traced"
        | "sharded_jump" => "merged_jump_vn",
        v => v,
    }
}

fn run_scale(
    rows: &mut Vec<Row>,
    scale: &'static str,
    spec: &TableSpec,
    probe_count: usize,
    iters: usize,
    worker_counts: &[usize],
    reps: usize,
) {
    let table = spec.generate().unwrap();
    let unibit = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&unibit);
    let flat = FlatTrie::from_leaf_pushed(&pushed);
    let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
    let flat_stride = FlatStrideTrie::from_stride(&stride);
    let jump = JumpTrie::from_leaf_pushed(&pushed);

    // Per-VN datapath inputs: a K-way merged family resolved through
    // `lookup_vn` / `lookup_batch_vn`, cycling the VNID so every
    // NHI-vector column is exercised.
    let family = FamilySpec {
        prefixes_per_table: spec.prefixes,
        ..FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
    }
    .generate()
    .unwrap();
    let merged = MergedTrie::from_tables(&family).unwrap().leaf_pushed();
    let merged_flat = FlatTrie::from_merged(&merged);
    let merged_jump = JumpTrie::from_merged(&merged);

    // Probe set: perturbed prefix addresses cycled to `probe_count`, so
    // walks reach realistic depths instead of missing at the root.
    let seeds: Vec<u32> = table.prefixes().map(|p| p.addr()).collect();
    let probes: Vec<u32> = (0..probe_count)
        .map(|i| seeds[i % seeds.len()] ^ (i as u32).wrapping_mul(0x9E37_79B9) >> 24)
        .collect();

    let n = spec.prefixes;
    let batch_sizes = [8usize, 32, 128, 512];

    // The whole measurement sequence runs `reps` times, minutes apart in
    // wall-clock, and each row keeps its fastest repetition. On shared
    // runners the noise arrives in multi-second bursts that inflate every
    // sample of whichever variant is being timed; repetitions separated
    // by the rest of the sequence are the only way min-timing can see
    // through a burst longer than one row's measurement window.
    let mut best: Vec<Row> = Vec::new();
    let mut service_width: Option<usize> = None;
    for rep in 0..reps.max(1) {
        let mut pass: Vec<Row> = Vec::new();
        measure_scale(
            &mut pass,
            scale,
            n,
            &probes,
            iters,
            &batch_sizes,
            worker_counts,
            &mut service_width,
            &unibit,
            &pushed,
            &flat,
            &stride,
            &flat_stride,
            &jump,
            &merged_flat,
            &merged_jump,
            &family,
        );
        if best.is_empty() {
            best = pass;
        } else {
            for (b, p) in best.iter_mut().zip(pass) {
                if p.ns_per_lookup < b.ns_per_lookup {
                    *b = p;
                }
            }
        }
        eprintln!("[bench_lookup] {scale} rep {}/{} done", rep + 1, reps.max(1));
    }

    // Re-derive throughput and speedups from the merged minima so each
    // ratio compares rows from a consistent timing floor.
    let scalar_ns: Vec<(&'static str, f64)> = best
        .iter()
        .filter(|r| r.mode == "scalar")
        .map(|r| (r.variant, r.ns_per_lookup))
        .collect();
    let lookup_scalar = |variant: &str| {
        scalar_ns
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|&(_, ns)| ns)
    };
    for row in &mut best {
        let reference = if row.mode == "scalar" {
            Some(row.ns_per_lookup)
        } else {
            lookup_scalar(scalar_base(row.variant))
        };
        row.packets_per_sec = 1e9 / row.ns_per_lookup;
        if let Some(ns) = reference {
            row.speedup_vs_scalar = ns / row.ns_per_lookup;
        }
    }
    rows.append(&mut best);
}

#[allow(clippy::too_many_arguments)]
fn measure_scale(
    rows: &mut Vec<Row>,
    scale: &'static str,
    n: usize,
    probes: &[u32],
    iters: usize,
    batch_sizes: &[usize],
    worker_counts: &[usize],
    pinned_width: &mut Option<usize>,
    unibit: &UnibitTrie,
    pushed: &LeafPushedTrie,
    flat: &FlatTrie,
    stride: &StrideTrie,
    flat_stride: &FlatStrideTrie,
    jump: &JumpTrie,
    merged_flat: &FlatTrie,
    merged_jump: &JumpTrie,
    family: &[vr_net::RoutingTable],
) {
    push_variant(
        rows,
        scale,
        n,
        "unibit",
        probes,
        iters,
        batch_sizes,
        |ip| unibit.lookup(ip),
        |d, o| unibit.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "leaf_pushed",
        probes,
        iters,
        batch_sizes,
        |ip| pushed.lookup(ip),
        |d, o| pushed.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat",
        probes,
        iters,
        batch_sizes,
        |ip| flat.lookup(ip),
        |d, o| flat.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "stride_8888",
        probes,
        iters,
        batch_sizes,
        |ip| stride.lookup(ip),
        |d, o| stride.lookup_batch(d, o),
    );
    push_variant(
        rows,
        scale,
        n,
        "flat_stride_8888",
        probes,
        iters,
        batch_sizes,
        |ip| flat_stride.lookup(ip),
        |d, o| flat_stride.lookup_batch(d, o),
    );
    let jump_scalar_ns = push_variant(
        rows,
        scale,
        n,
        "jump",
        probes,
        iters,
        batch_sizes,
        |ip| jump.lookup(ip),
        |d, o| jump.lookup_batch(d, o),
    );
    // Explicit lane widths through the same jump trie: W = 8 keeps all
    // lanes inside one cache-port burst, W = 16 is the default the batch
    // path uses.
    push_lane(rows, scale, n, "jump_lane", 8, probes, iters, jump_scalar_ns, |d, o| {
        lookup_lanes::<8>(jump, d, o);
    });
    push_lane(rows, scale, n, "jump_lane", 16, probes, iters, jump_scalar_ns, |d, o| {
        lookup_lanes::<16>(jump, d, o);
    });

    let vn_scalar = Cell::new(0usize);
    let vn_batch = Cell::new(0usize);
    push_variant(
        rows,
        scale,
        n,
        "merged_flat_vn",
        probes,
        iters,
        batch_sizes,
        |ip| {
            let vn = vn_scalar.get();
            vn_scalar.set((vn + 1) % FAMILY_K);
            merged_flat.lookup_vn(vn, ip)
        },
        |d, o| {
            let vn = vn_batch.get();
            vn_batch.set((vn + 1) % FAMILY_K);
            merged_flat.lookup_batch_vn(vn, d, o)
        },
    );
    let vn_scalar = Cell::new(0usize);
    let vn_batch = Cell::new(0usize);
    let jump_vn_scalar_ns = push_variant(
        rows,
        scale,
        n,
        "merged_jump_vn",
        probes,
        iters,
        batch_sizes,
        |ip| {
            let vn = vn_scalar.get();
            vn_scalar.set((vn + 1) % FAMILY_K);
            merged_jump.lookup_vn(vn, ip)
        },
        |d, o| {
            let vn = vn_batch.get();
            vn_batch.set((vn + 1) % FAMILY_K);
            merged_jump.lookup_batch_vn(vn, d, o)
        },
    );
    // The merged-VN lane rows cycle the VNID per call exactly like the
    // batch rows above, so every NHI-vector column is exercised.
    let vn_lane = Cell::new(0usize);
    push_lane(
        rows,
        scale,
        n,
        "merged_jump_lane_vn",
        8,
        probes,
        iters,
        jump_vn_scalar_ns,
        |d, o| {
            let vn = vn_lane.get();
            vn_lane.set((vn + 1) % FAMILY_K);
            lookup_lanes_vn::<8>(merged_jump, vn, d, o);
        },
    );
    let vn_lane = Cell::new(0usize);
    push_lane(
        rows,
        scale,
        n,
        "merged_jump_lane_vn",
        16,
        probes,
        iters,
        jump_vn_scalar_ns,
        |d, o| {
            let vn = vn_lane.get();
            vn_lane.set((vn + 1) % FAMILY_K);
            lookup_lanes_vn::<16>(merged_jump, vn, d, o);
        },
    );

    push_service(
        rows,
        scale,
        n,
        family,
        probes,
        iters,
        worker_counts,
        jump_vn_scalar_ns,
        pinned_width,
    );
    push_sharded(
        rows,
        scale,
        n,
        family,
        merged_jump,
        probes,
        iters,
        worker_counts,
        jump_vn_scalar_ns,
    );
}

/// K of the result-cache rows: the paper's 15-network worst case, so
/// the cached/uncached comparison runs at the scale the ISSUE's
/// acceptance numbers are quoted at (15 × 3,725 prefixes).
const CACHE_K: usize = 15;

/// Chunk width the cached/uncached rows drive batches at — matched to
/// the lane-mode percentile chunk so the rows compare against the other
/// lane rows at the same granularity.
const CACHE_CHUNK: usize = 512;

/// Slot count of the benchmarked LPM cache: 2× the engine default, so
/// the ~56k-destination paper-scale working set keeps the direct-mapped
/// collision rate low enough for the ≥ 0.90 Zipf hit-rate promise.
const CACHE_ROW_SLOTS: usize = vr_engine::DEFAULT_CACHE_SLOTS * 2;

/// Result-cache rows at paper scale: a K=15 merged family driven by
/// `vr_net::SkewedTraffic` (uniform and Zipf s = 1.0), each stream
/// measured twice — `jump_lane` walks every packet through
/// `lookup_batch_mixed`; `cached_jump_lane` probes the generation-tagged
/// [`LpmCache`] first and batch-walks only the misses.
///
/// The recorded hit rate is honest: the cache is warmed on one stream
/// from the distribution, stats are reset, and the rate is taken from a
/// single pass over an independently drawn stream — neither cold misses
/// nor a literal replay of the warmup contaminate it. (The throughput
/// loop then re-runs that second stream, as every row in this file
/// does; only the separately measured rate is reported.)
fn run_cached_rows(rows: &mut Vec<Row>, iters: usize) {
    let family = FamilySpec::paper_worst_case(CACHE_K, 0.5, 2012)
        .generate()
        .unwrap();
    let n = family[0].prefixes().count();
    let merged = MergedTrie::from_tables(&family).unwrap().leaf_pushed();
    let jump = JumpTrie::from_merged(&merged);
    // Any fixed generation works when driving the trie directly; the
    // services tag slots with the live RCU publish generation instead.
    const GENERATION: u64 = 1;
    for &(traffic, zipf_s) in &[("uniform", 0.0f64), ("zipf", 1.0)] {
        let spec = if zipf_s > 0.0 {
            SkewedSpec::zipf(CACHE_K, zipf_s, 2012)
        } else {
            SkewedSpec::uniform(CACHE_K, 2012)
        };
        let mut stream = SkewedTraffic::new(spec, &family).expect("skewed traffic");
        // Long enough that even rank-tail destinations are expected at
        // least once per virtual network — the hit rate then measures
        // the steady state, not a half-warmed cache.
        let warm = stream.pairs(1 << 19);
        let packets = stream.pairs(1 << 16);
        let mut out = vec![None; CACHE_CHUNK];

        let uncached_ns = time_ns_per_lookup(packets.len(), iters, || {
            let mut hits = 0usize;
            for chunk in packets.chunks(CACHE_CHUNK) {
                let slot = &mut out[..chunk.len()];
                lookup_batch_mixed(&jump, std::hint::black_box(chunk), slot);
                hits += slot.iter().filter(|nh| nh.is_some()).count();
            }
            hits
        });
        rows.push(Row {
            scale: "paper",
            table_prefixes: n,
            variant: "jump_lane",
            mode: "lane",
            batch_size: Some(CACHE_CHUNK),
            workers: None,
            ns_per_lookup: uncached_ns,
            packets_per_sec: 1e9 / uncached_ns,
            speedup_vs_scalar: 1.0,
            p50_ns: None,
            p99_ns: None,
            traffic: Some(traffic),
            cache_hit_rate: None,
        });

        let mut cache = LpmCache::new(CACHE_ROW_SLOTS).expect("cache construction");
        for chunk in warm.chunks(CACHE_CHUNK) {
            cache.lookup_batch(&jump, GENERATION, chunk, &mut out[..chunk.len()]);
        }
        cache.reset_stats();
        let mut cold = 0usize;
        for chunk in packets.chunks(CACHE_CHUNK) {
            cache.lookup_batch(&jump, GENERATION, chunk, &mut out[..chunk.len()]);
            cold = cold.wrapping_add(out.iter().filter(|nh| nh.is_some()).count());
        }
        assert!(cold != usize::MAX);
        let hit_rate = cache.stats().hit_rate();
        let cached_ns = time_ns_per_lookup(packets.len(), iters, || {
            let mut hits = 0usize;
            for chunk in packets.chunks(CACHE_CHUNK) {
                let slot = &mut out[..chunk.len()];
                cache.lookup_batch(&jump, GENERATION, std::hint::black_box(chunk), slot);
                hits += slot.iter().filter(|nh| nh.is_some()).count();
            }
            hits
        });
        rows.push(Row {
            scale: "paper",
            table_prefixes: n,
            variant: "cached_jump_lane",
            mode: "lane",
            batch_size: Some(CACHE_CHUNK),
            workers: None,
            ns_per_lookup: cached_ns,
            packets_per_sec: 1e9 / cached_ns,
            speedup_vs_scalar: uncached_ns / cached_ns,
            p50_ns: None,
            p99_ns: None,
            traffic: Some(traffic),
            cache_hit_rate: Some(hit_rate),
        });
        eprintln!(
            "[bench_lookup] paper/cached_jump_lane {traffic}: hit rate {hit_rate:.3}, \
             {uncached_ns:.2} -> {cached_ns:.2} ns/lookup"
        );
    }
}

/// Packets per `LookupRequest` frame in the wire rows — matched to the
/// service rows' typical sweep-picked width so `wire_jump` vs
/// `service_jump` isolates the transport, not the batching.
const WIRE_BATCH: usize = 64;

/// End-to-end serving-tier rows: the same merged-jump datapath the
/// `service_jump` rows measure, but reached through the `vr-wire`
/// loopback socket — codec, CRC, syscalls, and the backend channel all
/// included. `ns_per_lookup` here is offered-load throughput seen by a
/// serial client (one frame in flight); the p50/p99 columns carry the
/// frame round-trip time amortized per packet, which is transport
/// latency rather than walk time — compare against service rows'
/// worker-side histograms with that in mind.
fn run_wire_rows(rows: &mut Vec<Row>, scale: &'static str, prefixes: usize, batches: usize) {
    let family = FamilySpec {
        prefixes_per_table: prefixes,
        ..FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
    }
    .generate()
    .unwrap();
    let n = family[0].prefixes().count();
    for &(traffic, model) in &[
        ("uniform", TrafficModel::Uniform),
        ("zipf", TrafficModel::Zipf { s: 1.0 }),
    ] {
        let service = LookupService::new(family.clone(), ServiceConfig::default())
            .expect("service construction");
        let server = WireServer::serve_tcp("127.0.0.1:0", service, ServerConfig::default(), None)
            .expect("wire server");
        let addr = server.local_addr().expect("tcp addr");
        let mut client = WireClient::connect_tcp(addr).expect("wire client");
        let cfg = ReplayConfig {
            model,
            batch_size: WIRE_BATCH,
            batches,
            hot_k: 4096,
            seed: 2012,
        };
        let (stats, _) = replay(&mut client, &family, &cfg).expect("wire replay");
        drop(client);
        drop(server);
        let pps = stats.packets_per_sec();
        let ns = 1e9 / pps.max(f64::MIN_POSITIVE);
        rows.push(Row {
            scale,
            table_prefixes: n,
            variant: "wire_jump",
            mode: "wire",
            batch_size: Some(cfg.batch_size),
            workers: None,
            ns_per_lookup: ns,
            packets_per_sec: pps,
            speedup_vs_scalar: 1.0,
            p50_ns: Some(stats.p50_rtt_ns as f64 / cfg.batch_size as f64),
            p99_ns: Some(stats.p99_rtt_ns as f64 / cfg.batch_size as f64),
            traffic: Some(traffic),
            cache_hit_rate: None,
        });
        eprintln!("[bench_lookup] {scale}/wire_jump {traffic}: {pps:.0} packets/sec end to end");
    }
}

/// `--smoke` cache gate: enforces the result-cache acceptance numbers
/// on the paper-scale rows [`run_cached_rows`] just measured — Zipf
/// s = 1.0 must hit ≥ 90% and run ≥ 2× the uncached walk, and uniform
/// traffic (the cache's worst case) must cost ≤ 10% overhead.
/// `VR_CACHE_GATE=0` disables it, mirroring `VR_BENCH_GATE`.
fn cache_gate(rows: &[Row]) {
    if std::env::var("VR_CACHE_GATE").is_ok_and(|v| v == "0") {
        eprintln!("[bench_lookup] cache gate disabled (VR_CACHE_GATE=0)");
        return;
    }
    let find = |variant: &str, traffic: &str| {
        rows.iter()
            .find(|r| r.variant == variant && r.traffic == Some(traffic))
            .unwrap_or_else(|| {
                panic!("[bench_lookup] cache gate: missing row {variant}/{traffic}")
            })
    };
    let zipf_cached = find("cached_jump_lane", "zipf");
    let zipf_uncached = find("jump_lane", "zipf");
    let uni_cached = find("cached_jump_lane", "uniform");
    let uni_uncached = find("jump_lane", "uniform");
    let hit_rate = zipf_cached.cache_hit_rate.unwrap_or(0.0);
    assert!(
        hit_rate >= 0.90,
        "[bench_lookup] cache gate: Zipf s=1.0 hit rate {hit_rate:.3} below 0.90"
    );
    assert!(
        zipf_cached.packets_per_sec >= 2.0 * zipf_uncached.packets_per_sec,
        "[bench_lookup] cache gate: Zipf cached {:.0} pps is not 2x uncached {:.0} pps",
        zipf_cached.packets_per_sec,
        zipf_uncached.packets_per_sec
    );
    assert!(
        uni_cached.ns_per_lookup <= uni_uncached.ns_per_lookup * 1.1,
        "[bench_lookup] cache gate: uniform cached {:.2} ns exceeds 1.1x uncached {:.2} ns",
        uni_cached.ns_per_lookup,
        uni_uncached.ns_per_lookup
    );
    eprintln!(
        "[bench_lookup] cache gate ok: zipf hit {:.3}, speedup {:.2}x, uniform overhead {:.2}x",
        hit_rate,
        zipf_cached.packets_per_sec / zipf_uncached.packets_per_sec,
        uni_cached.ns_per_lookup / uni_uncached.ns_per_lookup
    );
}

/// `--smoke` telemetry check: runs a small service with the registry
/// attached, scrapes it twice, and fails loudly unless (a) the
/// Prometheus exposition passes structural validation — one `# TYPE`
/// line per family, cumulative buckets, `+Inf == _count` — and (b) no
/// counter moved backwards between the scrapes. The final scrape is
/// written out as `results/TELEMETRY_smoke.prom` / `.json` so the CI
/// telemetry job can upload real exporter output as artifacts alongside
/// the other generated results.
#[cfg(feature = "telemetry")]
fn telemetry_smoke() {
    use vr_telemetry::export::{check_prometheus, to_prometheus};
    let family = FamilySpec {
        prefixes_per_table: 256,
        ..FamilySpec::paper_worst_case(FAMILY_K, 0.5, 2012)
    }
    .generate()
    .unwrap();
    let mut service = LookupService::new(
        family,
        ServiceConfig {
            workers: 2,
            // Cache on, so the vr_cache_* counter families land in the
            // exposition the CI telemetry job validates.
            lookup_cache: Some(vr_engine::DEFAULT_CACHE_SLOTS),
            ..ServiceConfig::default()
        },
    )
    .expect("smoke service construction");
    let packets: Vec<(VnId, u32)> = (0..512u32)
        .map(|i| ((i as usize % FAMILY_K) as VnId, i.wrapping_mul(0x9E37_79B9)))
        .collect();
    service.process(&packets);
    let first = service.telemetry_snapshot().expect("telemetry on by default");
    service.process(&packets);
    let second = service.telemetry_snapshot().expect("telemetry on by default");
    let _ = service.shutdown();
    // The second pass replays the first pass's packets, so the cache
    // must have both filled (misses) and answered (hits) by now.
    for name in ["vr_cache_hits_total", "vr_cache_misses_total", "vr_cache_fills_total"] {
        let v = second.counter(name);
        assert!(
            v.is_some(),
            "[bench_lookup] telemetry smoke: missing cache counter {name}"
        );
    }
    assert!(
        second.counter("vr_cache_hits_total").unwrap_or(0) > 0,
        "[bench_lookup] telemetry smoke: replayed packets produced no cache hits"
    );

    let text = to_prometheus(&second);
    if let Err(e) = check_prometheus(&text) {
        panic!("[bench_lookup] telemetry smoke: invalid Prometheus exposition: {e}");
    }
    if let Some(name) = second.first_counter_regression(&first) {
        panic!("[bench_lookup] telemetry smoke: counter {name} regressed between scrapes");
    }
    let out = results_dir();
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("[bench_lookup] could not create {}: {e}", out.display());
    }
    if let Err(e) = std::fs::write(out.join("TELEMETRY_smoke.prom"), &text) {
        eprintln!("[bench_lookup] could not write TELEMETRY_smoke.prom: {e}");
    }
    match second.to_json_pretty() {
        Ok(json) => {
            if let Err(e) = std::fs::write(out.join("TELEMETRY_smoke.json"), json) {
                eprintln!("[bench_lookup] could not write TELEMETRY_smoke.json: {e}");
            }
        }
        Err(e) => eprintln!("[bench_lookup] could not serialize telemetry snapshot: {e}"),
    }
    eprintln!(
        "[bench_lookup] telemetry smoke ok: {} counters, {} gauges, {} histograms, {} events",
        second.counters.len(),
        second.gauges.len(),
        second.histograms.len(),
        second.events.events.len(),
    );
}

/// A row of the checked-in regression baseline — the same schema as
/// [`Row`], minus the derived columns the gate never compares.
#[derive(Debug, Deserialize)]
struct BaselineRow {
    scale: String,
    variant: String,
    mode: String,
    batch_size: Option<usize>,
    workers: Option<usize>,
    ns_per_lookup: f64,
    /// Traffic model of the row (`"uniform"` / `"zipf"` for the cache
    /// rows) — a matrix axis: the same variant is measured under more
    /// than one stream, so the gate must match on it.
    traffic: Option<String>,
}

/// Datapaths the smoke gate defends: the DIR-16 walk, both lane
/// variants, the cached lane walk, and both service organizations. The
/// slower pedagogical tries (unibit, stride, …) are deliberately
/// ungated — they exist for the trajectory narrative, not as
/// performance promises.
const GATED_VARIANTS: [&str; 7] = [
    "jump",
    "jump_lane",
    "cached_jump_lane",
    "merged_jump_vn",
    "merged_jump_lane_vn",
    "service_jump",
    "sharded_jump",
];

/// `--smoke` regression gate: compares the fresh smoke rows for the
/// gated datapaths against the checked-in baseline
/// (`crates/bench/bench_gate_baseline.json`, recorded by this same
/// binary in `--smoke` mode) and fails the run when any gated row
/// regresses past the tolerance. `VR_BENCH_GATE=0` disables the gate;
/// `VR_BENCH_GATE_TOLERANCE` (default 1.5) rescales it — generous on
/// purpose, because the gate exists to catch datapath regressions, not
/// scheduler noise.
///
/// Absolute ns/lookup varies several-fold between runners (and between
/// minutes on a noisy-neighbour VM), so each comparison is normalized
/// by a machine-speed factor: the geometric-mean drift of the two
/// scalar reference walks vs their baseline rows. A uniformly slow
/// runner inflates scalar and derived rows alike and cancels out; a
/// datapath regression moves its row against the scalar yardstick and
/// fails. The trade is explicit: a regression in *both* scalar walks
/// reads as runner drift — the scalar rows are each other's only gate.
fn bench_gate(rows: &[Row]) {
    if std::env::var("VR_BENCH_GATE").is_ok_and(|v| v == "0") {
        eprintln!("[bench_lookup] bench gate disabled (VR_BENCH_GATE=0)");
        return;
    }
    let tolerance = std::env::var("VR_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench_gate_baseline.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("[bench_lookup] bench gate baseline missing at {path}: {e}"));
    let baseline: Vec<BaselineRow> =
        serde_json::from_str(&text).expect("bench gate baseline parses as bench rows");
    let scalar_drift = |variant: &str| -> Option<f64> {
        let b = baseline
            .iter()
            .find(|b| b.variant == variant && b.mode == "scalar")?;
        let r = rows
            .iter()
            .find(|r| r.variant == variant && r.mode == "scalar")?;
        Some(r.ns_per_lookup / b.ns_per_lookup)
    };
    // Clamped at 1: a faster runner gates against the raw baseline
    // instead of tightening the budget below what was ever promised.
    let machine = match (scalar_drift("jump"), scalar_drift("merged_jump_vn")) {
        (Some(a), Some(b)) => (a * b).sqrt().max(1.0),
        _ => 1.0,
    };
    eprintln!("[bench_lookup] bench gate machine-speed factor {machine:.2} vs baseline");
    let mut checked = 0usize;
    let mut regressions = Vec::new();
    for b in baseline
        .iter()
        .filter(|b| GATED_VARIANTS.contains(&b.variant.as_str()))
    {
        // A baseline row with no counterpart means the harness matrix
        // changed without regenerating the baseline — fail loudly
        // rather than silently gating less than before. The channel
        // service's width is picked by a construction-time sweep, so it
        // is measurement output, not a matrix axis — ignore it there.
        let width_is_tuned = matches!(b.variant.as_str(), "service_jump" | "service_jump_notel");
        let row = rows
            .iter()
            .find(|r| {
                r.scale == b.scale
                    && r.variant == b.variant
                    && r.mode == b.mode
                    && (width_is_tuned || r.batch_size == b.batch_size)
                    && r.workers == b.workers
                    && r.traffic == b.traffic.as_deref()
            })
            .unwrap_or_else(|| {
                panic!(
                    "[bench_lookup] bench gate: baseline row {}/{} batch={:?} workers={:?} has \
                     no counterpart — regenerate crates/bench/bench_gate_baseline.json",
                    b.variant, b.mode, b.batch_size, b.workers
                )
            });
        checked += 1;
        // Service rows cross thread boundaries, so on a small runner
        // they measure the scheduler as much as the datapath; their
        // run-to-run spread is several-fold wider than the in-process
        // walks and they get double the budget.
        let mode_slack = if row.mode == "service" { 2.0 } else { 1.0 };
        let limit = b.ns_per_lookup * machine * tolerance * mode_slack;
        if row.ns_per_lookup > limit {
            regressions.push(format!(
                "{}/{} batch={:?} workers={:?}: {:.2} ns/lookup exceeds {:.2} ns \
                 ({tolerance}x machine-adjusted baseline {:.2} ns x {machine:.2})",
                row.variant, row.mode, row.batch_size, row.workers, row.ns_per_lookup, limit,
                b.ns_per_lookup
            ));
        }
    }
    assert!(checked > 0, "bench gate compared no rows — empty baseline?");
    if regressions.is_empty() {
        eprintln!("[bench_lookup] bench gate ok: {checked} rows within {tolerance}x of baseline");
    } else {
        for r in &regressions {
            eprintln!("[bench_lookup] bench gate REGRESSION: {r}");
        }
        panic!(
            "[bench_lookup] bench gate: {} row(s) regressed past {tolerance}x of baseline",
            regressions.len()
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");

    let mut rows = Vec::new();
    if smoke {
        // CI harness check: a tiny table and a handful of timed
        // iterations, but the full variant/mode matrix — enough to prove
        // every datapath still builds, runs, and serializes, and enough
        // min-of-N samples for the regression gate to be meaningful.
        let tiny = TableSpec {
            prefixes: 512,
            ..TableSpec::paper_worst_case(2012)
        };
        run_scale(&mut rows, "smoke", &tiny, 256, 4, &[1, 2], 1);
        // The cache acceptance numbers are quoted at paper scale, so
        // even the smoke run measures the cached rows there — the K=15
        // family builds in well under a second.
        run_cached_rows(&mut rows, 4);
        // Wire rows ride the smoke matrix at the same tiny scale: they
        // prove the socket path serializes into the artifact, not that
        // it is fast.
        run_wire_rows(&mut rows, "smoke", 512, 100);
        bench_gate(&rows);
        cache_gate(&rows);
        #[cfg(feature = "telemetry")]
        telemetry_smoke();
    } else {
        let (probe_count, iters, reps) = if quick {
            (2_048, 4, 2)
        } else {
            (16_384, 40, 3)
        };
        run_scale(
            &mut rows,
            "paper",
            &TableSpec::paper_worst_case(2012),
            probe_count,
            iters,
            &[1, 2, 4],
            reps,
        );
        // A backbone-scale table whose per-level slabs exceed L2: the
        // dependent loads of a scalar walk miss, and the batch path's B
        // independent loads per level pay off. The full iteration count is
        // kept — min-of-N timing needs samples to find a preemption-free
        // window, and measurement is cheap next to trie construction.
        let backbone = TableSpec {
            prefixes: 262_144,
            ..TableSpec::paper_worst_case(2012)
        };
        run_scale(
            &mut rows,
            "backbone",
            &backbone,
            probe_count * 4,
            iters,
            &[1, 2, 4],
            reps,
        );
        run_cached_rows(&mut rows, iters);
        run_wire_rows(
            &mut rows,
            "paper",
            3725,
            if quick { 200 } else { 2000 },
        );
        cache_gate(&rows);
    }

    println!(
        "{:<9} {:<18} {:>8} {:>8} {:>8} {:>12} {:>16} {:>8} {:>9} {:>9}",
        "scale",
        "variant",
        "mode",
        "batch",
        "workers",
        "ns/lookup",
        "packets/sec",
        "speedup",
        "p50_ns",
        "p99_ns"
    );
    let pctl = |v: Option<f64>| v.map_or_else(|| "-".into(), |p| format!("{p:.1}"));
    for r in &rows {
        println!(
            "{:<9} {:<18} {:>8} {:>8} {:>8} {:>12.2} {:>16.0} {:>7.2}x {:>9} {:>9}",
            r.scale,
            r.variant,
            r.mode,
            r.batch_size.map_or_else(|| "-".into(), |b| b.to_string()),
            r.workers.map_or_else(|| "-".into(), |w| w.to_string()),
            r.ns_per_lookup,
            r.packets_per_sec,
            r.speedup_vs_scalar,
            pctl(r.p50_ns),
            pctl(r.p99_ns),
        );
    }

    // BENCH_lookup.json lives at the workspace root, next to README.md.
    // Smoke runs write a separate file so CI can never clobber the
    // committed measurement.
    let file = if smoke {
        "BENCH_lookup_smoke.json"
    } else {
        "BENCH_lookup.json"
    };
    let path = results_dir()
        .parent()
        .map_or_else(|| file.into(), |p| p.join(file));
    match write_json(&path, &rows) {
        Ok(()) => eprintln!("[bench_lookup] wrote {}", path.display()),
        Err(e) => eprintln!("[bench_lookup] could not write {}: {e}", path.display()),
    }
}

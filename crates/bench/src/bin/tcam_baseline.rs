//! Baseline: the paper's FPGA trie engine vs TCAM organizations (§II-B,
//! refs. [20][10]) on one power / throughput / mW-per-Gbps axis.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::tcam_comparison;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = tcam_comparison(&cfg).expect("tcam rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.k.to_string(),
                num(r.power_w, 3),
                num(r.throughput_gbps, 1),
                num(r.mw_per_gbps, 2),
            ]
        })
        .collect();
    emit(
        "tcam_baseline",
        &["Engine", "K", "Power (W)", "Throughput (Gbps)", "mW/Gbps"],
        &cells,
        &rows,
    );
}

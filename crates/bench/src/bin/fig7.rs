//! Regenerates Fig. 7: percentage error of the model estimation vs the
//! (simulated) post place-and-route measurement, for every scheme × grade
//! × K. The paper's claim: |error| ≤ 3 %, larger for the merged scheme.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::power_sweep;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let points = power_sweep(&cfg).expect("power sweep");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.grade.to_string(),
                p.k.to_string(),
                num(p.error_pct, 3),
            ]
        })
        .collect();
    emit(
        "fig7",
        &["Series", "Grade", "K", "Error (%)"],
        &cells,
        &points,
    );
    let max = points
        .iter()
        .map(|p| p.error_pct.abs())
        .fold(0.0f64, f64::max);
    println!("maximum |error| = {max:.3}% (paper: ≤ 3%)");
}

//! `wire_smoke` — CI gate for the `vr-wire` serving tier, exercised
//! the way an operator's client would see it: over real localhost TCP.
//!
//! Phase 1 — **oracle parity under concurrent churn**: a replay client
//! streams Zipf lookup batches while a second connection pushes route
//! -update batches through the same server. Every `UpdateAck`
//! generation is snapshotted against a local table mirror, and after
//! the run every response batch must match the mirror of the largest
//! recorded generation ≤ its tagged generation — **bit-identically**.
//! A response torn across a publish, a stale snapshot, or any codec
//! corruption fails the job.
//!
//! Phase 2 — **forced overload**: a rate-limited server is flooded;
//! the job asserts explicit `Overloaded(RateLimited)` frames come back
//! (no stall: every request gets *some* reply), the same connection
//! keeps working afterwards (no disconnect storm), and the
//! observability plane's `/healthz` stays green throughout.
//!
//! Any violation panics, failing the CI `wire` job.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use vr_control::{ControlConfig, ControlPlane};
use vr_engine::{LookupService, ServiceConfig};
use vr_net::synth::FamilySpec;
use vr_net::{RouteUpdate, RoutingTable, UpdateMix, UpdateStream};
use vr_obs::{ObsRoutes, ObsServer};
use vr_telemetry::export::to_prometheus;
use vr_telemetry::MetricsRegistry;
use vr_wire::{
    replay, Message, OverloadReason, ReplayConfig, ReplayRecord, ServerConfig, TrafficModel,
    WireClient, WireServer,
};

/// Virtual networks in the smoke family.
const FAMILY_K: usize = 3;
/// Update batches the churn connection pushes.
const CHURN_BATCHES: usize = 40;
/// Updates per churn batch.
const CHURN_BATCH_LEN: usize = 24;

fn family() -> Vec<RoutingTable> {
    FamilySpec::paper_worst_case(FAMILY_K, 0.5, 4177)
        .generate()
        .expect("family generation")
}

fn control_plane(tables: Vec<RoutingTable>) -> ControlPlane {
    let service = LookupService::new(tables, ServiceConfig::default()).expect("lookup service");
    ControlPlane::new(service, ControlConfig::default()).expect("control plane")
}

/// Applies one wire update to the local mirror (the oracle's view).
fn mirror_apply(mirror: &mut [RoutingTable], update: &RouteUpdate) {
    match update {
        RouteUpdate::Announce {
            vnid,
            prefix,
            next_hop,
        } => {
            mirror[*vnid as usize].insert(*prefix, *next_hop);
        }
        RouteUpdate::Withdraw { vnid, prefix } => {
            mirror[*vnid as usize].remove(prefix);
        }
    }
}

/// Checks one response batch against the oracle snapshot for its
/// generation; returns the number of mismatched packets.
fn verify_record(record: &ReplayRecord, oracle: &BTreeMap<u64, Vec<RoutingTable>>) -> usize {
    let (snap_gen, tables) = oracle
        .range(..=record.generation)
        .next_back()
        .unwrap_or_else(|| panic!("no oracle snapshot at or below gen {}", record.generation));
    record
        .packets
        .iter()
        .zip(record.results.iter())
        .filter(|(&(vn, dst), &got)| {
            let want = tables
                .get(vn as usize)
                .and_then(|table| table.lookup(dst));
            if want != got {
                eprintln!(
                    "[wire_smoke] MISMATCH vn={vn} dst={dst:#010x} gen={} (oracle gen {snap_gen}): wire={got:?} oracle={want:?}",
                    record.generation
                );
            }
            want != got
        })
        .count()
}

/// One blocking `/healthz` probe against the obs plane.
fn healthz(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    if write!(stream, "GET /healthz HTTP/1.1\r\nHost: obs\r\n\r\n").is_err() {
        return false;
    }
    let mut response = String::new();
    if stream.read_to_string(&mut response).is_err() {
        return false;
    }
    response.starts_with("HTTP/1.1 200") && response.contains("ok")
}

fn phase1_oracle_parity(obs_addr: SocketAddr, registry: &Arc<MetricsRegistry>) {
    let tables = family();
    let server = WireServer::serve_tcp(
        "127.0.0.1:0",
        control_plane(tables.clone()),
        ServerConfig::default(),
        Some(registry),
    )
    .expect("bind wire server");
    let addr = server.local_addr().expect("tcp addr");

    // Churn connection: apply batches, snapshotting the mirror at every
    // acked generation. Runs concurrently with the replay below.
    let churn = std::thread::spawn(move || {
        let mut client = WireClient::connect_tcp(addr).expect("churn connect");
        let mut stream = UpdateStream::new(family(), UpdateMix::default(), 16, 0x0C0DE)
            .expect("update stream");
        let mut mirror = family();
        let mut snapshots: BTreeMap<u64, Vec<RoutingTable>> = BTreeMap::new();
        for _ in 0..CHURN_BATCHES {
            let batch = stream.batch(CHURN_BATCH_LEN);
            match client.apply_updates(&batch).expect("churn reply") {
                Message::UpdateAck { generation, .. } => {
                    // The server saw exactly these updates in this
                    // order, so the mirror *is* the table state the
                    // acked generation serves.
                    for update in &batch {
                        mirror_apply(&mut mirror, update);
                    }
                    snapshots.insert(generation, mirror.clone());
                }
                Message::Overloaded { .. } => {
                    // Default config has no rate limit; queue-full is
                    // possible under CI load — the batch was dropped,
                    // so the mirror must not advance.
                }
                other => panic!("churn got unexpected reply {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        snapshots
    });

    // Replay lookups over a separate connection while churn runs.
    let mut client = WireClient::connect_tcp(addr).expect("replay connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // Seed the oracle with the pre-churn generation.
    let first = client.lookup(&[(0, 0x0101_0101)]).expect("probe lookup");
    let Message::LookupResponse { generation: g0, .. } = first else {
        panic!("probe got {first:?}");
    };
    let replay_cfg = ReplayConfig {
        model: TrafficModel::Zipf { s: 1.0 },
        batch_size: 32,
        batches: 400,
        hot_k: 2048,
        seed: 0xFEED,
    };
    let (stats, records) = replay(&mut client, &tables, &replay_cfg).expect("replay run");
    let mut oracle = churn.join().expect("churn thread");
    oracle.entry(g0).or_insert(tables);

    assert_eq!(
        stats.responses as usize, replay_cfg.batches,
        "default config must admit the whole replay (overloaded={}, errors={})",
        stats.overloaded, stats.errors
    );
    assert!(
        oracle.len() > 1,
        "churn produced no acked generations — nothing raced"
    );
    assert!(
        stats.max_generation > stats.min_generation,
        "replay never crossed a publish (gen {}..{}): churn did not interleave",
        stats.min_generation,
        stats.max_generation
    );
    let mismatches: usize = records.iter().map(|r| verify_record(r, &oracle)).sum();
    assert_eq!(mismatches, 0, "wire results diverged from the oracle");
    assert!(healthz(obs_addr), "/healthz not green during phase 1");

    drop(server);
    eprintln!(
        "[wire_smoke] phase 1 ok: {} packets bit-identical across generations {}..{} ({} churn snapshots)",
        stats.packets,
        stats.min_generation,
        stats.max_generation,
        oracle.len()
    );
}

fn phase2_forced_overload(obs_addr: SocketAddr, registry: &Arc<MetricsRegistry>) {
    let cfg = ServerConfig {
        // Tight budget: a burst of single-packet lookups must overrun it.
        rate_limit_pps: 200,
        rate_burst: 16,
        retry_after_ms: 5,
        ..ServerConfig::default()
    };
    let server = WireServer::serve_tcp(
        "127.0.0.1:0",
        control_plane(family()),
        cfg,
        Some(registry),
    )
    .expect("bind overload server");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = WireClient::connect_tcp(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");

    let flood = 200;
    let mut served = 0u64;
    let mut shed = 0u64;
    for _ in 0..flood {
        // No stall: every frame gets an explicit reply, shed or served.
        match client.lookup(&[(0, 0x0A0A_0A0A)]).expect("flood reply") {
            Message::LookupResponse { .. } => served += 1,
            Message::Overloaded {
                reason: OverloadReason::RateLimited,
                ..
            } => shed += 1,
            other => panic!("flood got unexpected reply {other:?}"),
        }
    }
    assert!(shed > 0, "flood never tripped the rate limiter");
    assert!(served > 0, "rate limiter starved every request");

    // No disconnect storm: the shed connection is still the same live
    // socket, and nobody was cut for slow reading.
    client.ping().expect("connection survived the overload");
    assert_eq!(server.active_connections(), 1, "connection was dropped");
    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(
        counter("vr_wire_slow_reader_disconnects_total"),
        0,
        "overload must shed with frames, not disconnects"
    );
    assert!(
        counter("vr_wire_shed_rate_limited_total") >= shed,
        "shed counter disagrees with observed Overloaded frames"
    );

    // Service stays live for the control plane too: an update batch
    // still lands once the bucket refills.
    std::thread::sleep(Duration::from_millis(200));
    let update = RouteUpdate::Announce {
        vnid: 0,
        prefix: vr_net::Ipv4Prefix::new(0xC0A8_0000, 16).expect("prefix"),
        next_hop: 3,
    };
    let ack = client.apply_updates(&[update]).expect("post-overload update");
    assert!(
        matches!(ack, Message::UpdateAck { .. }),
        "post-overload update refused: {ack:?}"
    );

    assert!(healthz(obs_addr), "/healthz not green during overload");
    drop(server);
    eprintln!("[wire_smoke] phase 2 ok: {served} served, {shed} shed with Overloaded, connection survived");
}

fn main() {
    // One registry + obs plane across both phases: CI asserts the
    // health endpoint the operator would actually watch.
    let registry = Arc::new(MetricsRegistry::new(8));
    let metrics_registry = Arc::clone(&registry);
    let snapshot_registry = Arc::clone(&registry);
    let obs = ObsServer::start(
        "127.0.0.1:0",
        ObsRoutes {
            metrics: Box::new(move || to_prometheus(&metrics_registry.snapshot())),
            snapshot: Box::new(move || {
                snapshot_registry
                    .snapshot()
                    .to_json_pretty()
                    .unwrap_or_else(|e| format!("{{\"error\": \"{e:?}\"}}"))
            }),
            traces: Box::new(|| "[]".to_string()),
            flight: Box::new(|| "{}".to_string()),
        },
    )
    .expect("obs server start");
    let obs_addr = obs.addr();
    assert!(healthz(obs_addr), "obs plane not green at startup");

    phase1_oracle_parity(obs_addr, &registry);
    phase2_forced_overload(obs_addr, &registry);

    // The wire metrics surface through the same exposition CI scrapes.
    let prom = to_prometheus(&registry.snapshot());
    assert!(
        prom.contains("vr_wire_connections_total"),
        "wire counters missing from /metrics exposition"
    );
    drop(obs);
    eprintln!("[wire_smoke] ok");
}

//! Diagnostic: characteristics of the synthetic worst-case workload vs the
//! paper's published numbers (§V-E: 3725 prefixes → 9726 trie nodes →
//! 16127 leaf-pushed nodes).

use vr_net::stats::TableStats;
use vr_net::synth::{TableSpec, PAPER_TRIE_NODES, PAPER_TRIE_NODES_LEAF_PUSHED};
use vr_trie::{LeafPushedTrie, UnibitTrie};

fn main() {
    let spec = TableSpec::paper_worst_case(2012);
    let table = spec.generate().expect("generation");
    let stats = TableStats::of(&table);
    let trie = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&trie);

    println!("synthetic worst-case table (seed {}):", spec.seed);
    println!("  prefixes            {}", stats.routes);
    println!("  mean prefix length  {:.2}", stats.mean_prefix_len);
    println!("  coverage            {:.4}", stats.coverage);
    println!(
        "  trie nodes          {}   (paper: {})",
        trie.node_count(),
        PAPER_TRIE_NODES
    );
    println!(
        "  leaf-pushed nodes   {}   (paper: {})",
        pushed.node_count(),
        PAPER_TRIE_NODES_LEAF_PUSHED
    );
    println!(
        "  leaves / internal   {} / {}",
        pushed.leaf_count(),
        pushed.internal_count()
    );
}

//! Ablation: memory-balanced level→stage partitioning vs the even split
//! (after the paper's refs. [7][8] — the critical stage bounds clock and
//! BRAM waste).

use vr_bench::{config_from_args, emit};
use vr_power::experiments::ablation_balance;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = ablation_balance(&cfg).expect("balance rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stages.to_string(),
                num(r.even_max_kbits, 1),
                num(r.balanced_max_kbits, 1),
                num(
                    (1.0 - r.balanced_max_kbits / r.even_max_kbits) * 100.0,
                    1,
                ),
                r.even_blocks.to_string(),
                r.balanced_blocks.to_string(),
            ]
        })
        .collect();
    emit(
        "ablation_balance",
        &[
            "Stages",
            "Even max stage (Kb)",
            "Balanced max stage (Kb)",
            "Critical-stage saving (%)",
            "Even blocks",
            "Balanced blocks",
        ],
        &cells,
        &rows,
    );
}

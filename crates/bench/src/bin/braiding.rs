//! Braiding study (paper ref. [17]): plain overlay merging vs trie
//! braiding, including the mirrored-tables showcase.

use vr_bench::{config_from_args, emit};
use vr_power::experiments::braiding_study;
use vr_power::report::num;

fn main() {
    let cfg = config_from_args();
    let rows = braiding_study(&cfg).expect("braiding rows");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.plain_nodes.to_string(),
                r.braided_nodes.to_string(),
                num(r.extra_saving * 100.0, 1),
                r.braided_node_count.to_string(),
            ]
        })
        .collect();
    emit(
        "braiding",
        &[
            "Workload",
            "Plain merge nodes",
            "Braided nodes",
            "Extra saving (%)",
            "Swapped nodes",
        ],
        &cells,
        &rows,
    );
}

//! # vr-bench — experiment harness and benchmarks
//!
//! One binary per table/figure of the paper (see DESIGN.md §5):
//! `cargo run --release -p vr-bench --bin fig5` prints the series the
//! paper plots and writes CSV + JSON under `results/`.
//!
//! Every binary accepts `--quick` (or env `VR_QUICK=1`) to run the reduced
//! configuration used by the test suite instead of the full paper scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;
use vr_power::experiments::ExperimentConfig;
use vr_power::report::{render_table, to_csv, write_json};

/// Resolves the experiment configuration from CLI args / environment.
#[must_use]
pub fn config_from_args() -> ExperimentConfig {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VR_QUICK").is_ok_and(|v| v == "1");
    if quick {
        eprintln!("[vr-bench] running QUICK configuration");
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    }
}

/// Directory experiment outputs are written to (`results/` next to the
/// workspace root, falling back to the current directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; workspace root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    root.join("results")
}

/// Prints an experiment as an aligned table and persists CSV + JSON under
/// `results/<name>.{csv,json}`.
pub fn emit<T: Serialize>(name: &str, headers: &[&str], rows: &[Vec<String>], raw: &T) {
    println!("== {name} ==");
    println!("{}", render_table(headers, rows));
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let csv_path = dir.join(format!("{name}.csv"));
        if std::fs::write(&csv_path, to_csv(headers, rows)).is_ok() {
            eprintln!("[vr-bench] wrote {}", csv_path.display());
        }
        let json_path = dir.join(format!("{name}.json"));
        if write_json(&json_path, raw).is_ok() {
            eprintln!("[vr-bench] wrote {}", json_path.display());
        }
    }
}

/// Formats an `Option<f64>` cell.
#[must_use]
pub fn opt_num(value: Option<f64>, digits: usize) -> String {
    value.map_or_else(|| "-".to_string(), |v| format!("{v:.digits$}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_points_into_workspace() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn opt_num_formats() {
        assert_eq!(opt_num(None, 2), "-");
        assert_eq!(opt_num(Some(1.234), 2), "1.23");
    }
}

//! Criterion: construction and operation costs of the extension
//! structures — stride tries, partitioning, braiding, and merged-trie
//! update churn.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use vr_net::synth::{FamilySpec, PrefixLenDistribution, TableSpec};
use vr_net::{UpdateMix, UpdateStream};
use vr_trie::{BraidedTrie, MergedTrie, PartitionedTrie, StrideTrie, UnibitTrie};

fn bench_advanced(c: &mut Criterion) {
    let table = TableSpec::paper_worst_case(2012).generate().unwrap();

    // Stride tries: build + lookup across widths.
    let mut group = c.benchmark_group("stride");
    for stride in [2u8, 4, 8] {
        group.bench_with_input(BenchmarkId::new("build", stride), &stride, |b, &s| {
            b.iter(|| {
                StrideTrie::from_table(black_box(&table), &vec![s; 32 / usize::from(s)]).unwrap()
            })
        });
        let trie = StrideTrie::from_table(&table, &vec![stride; 32 / usize::from(stride)]).unwrap();
        let probes: Vec<u32> = table.prefixes().map(|p| p.addr() | 1).take(1024).collect();
        group.bench_with_input(BenchmarkId::new("lookup_1k", stride), &trie, |b, t| {
            b.iter(|| {
                let mut hits = 0u32;
                for &ip in &probes {
                    if t.lookup(black_box(ip)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();

    // Optimal stride DP.
    let unibit = UnibitTrie::from_table(&table);
    c.bench_function("stride/optimal_schedule_dp", |b| {
        b.iter(|| vr_trie::multibit::optimal_strides(black_box(&unibit), 8, 16).unwrap())
    });

    // Partitioning for multi-way pipelines.
    c.bench_function("partition/split_16_ways", |b| {
        b.iter(|| PartitionedTrie::from_table(black_box(&table), 4).unwrap())
    });

    // Braiding vs plain merging at K = 4.
    let tables = FamilySpec {
        k: 4,
        prefixes_per_table: 1000,
        shared_fraction: 0.5,
        seed: 2012,
        distribution: PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .unwrap();
    c.bench_function("merge/plain_k4", |b| {
        b.iter(|| MergedTrie::from_tables(black_box(&tables)).unwrap())
    });
    c.bench_function("merge/braided_k4", |b| {
        b.iter(|| BraidedTrie::from_tables(black_box(&tables)).unwrap())
    });

    // Update churn on the merged trie.
    let merged = MergedTrie::from_tables(&tables).unwrap();
    c.bench_function("merge/apply_1k_updates", |b| {
        b.iter_batched(
            || {
                (
                    merged.clone(),
                    UpdateStream::new(tables.clone(), UpdateMix::default(), 16, 7).unwrap(),
                )
            },
            |(mut m, mut stream)| {
                for update in stream.batch(1000) {
                    match update {
                        vr_net::RouteUpdate::Announce {
                            vnid,
                            prefix,
                            next_hop,
                        } => {
                            m.insert(usize::from(vnid), prefix, next_hop);
                        }
                        vr_net::RouteUpdate::Withdraw { vnid, prefix } => {
                            m.remove(usize::from(vnid), &prefix);
                        }
                    }
                }
                m
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_advanced);
criterion_main!(benches);

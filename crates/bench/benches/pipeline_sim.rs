//! Criterion: cycle-level simulator throughput (simulated cycles per
//! second of host time), for single and merged engines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vr_engine::{EngineConfig, PipelineEngine};
use vr_net::synth::{FamilySpec, PrefixLenDistribution, TableSpec};
use vr_trie::merge::merge_tables;
use vr_trie::pipeline_map::{MemoryLayout, PAPER_PIPELINE_STAGES};
use vr_trie::{LeafPushedTrie, PipelineProfile, UnibitTrie};

const PACKETS: usize = 4096;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    group.throughput(Throughput::Elements(PACKETS as u64));

    // Single-table engine.
    let table = TableSpec::paper_worst_case(2012).generate().unwrap();
    let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
    let profile =
        PipelineProfile::for_single(&lp, PAPER_PIPELINE_STAGES, MemoryLayout::default()).unwrap();
    let single = PipelineEngine::new_single(lp, &profile, EngineConfig::paper_default()).unwrap();
    let base_probes: Vec<u32> = table.prefixes().map(|p| p.addr() | 1).collect();
    let probes: Vec<u32> = base_probes.iter().copied().cycle().take(PACKETS).collect();

    group.bench_function("single_engine_saturated", |b| {
        b.iter(|| {
            let mut engine = single.clone();
            let mut done = 0u64;
            for &ip in &probes {
                if engine.tick(Some((0, black_box(ip)))).is_some() {
                    done += 1;
                }
            }
            done + engine.drain().len() as u64
        })
    });

    // Merged engine over 4 networks.
    let tables = FamilySpec {
        k: 4,
        prefixes_per_table: 1000,
        shared_fraction: 0.6,
        seed: 2012,
        distribution: PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .unwrap();
    let (_, pushed) = merge_tables(&tables).unwrap();
    let mprofile =
        PipelineProfile::for_merged(&pushed, PAPER_PIPELINE_STAGES, MemoryLayout::default())
            .unwrap();
    let merged =
        PipelineEngine::new_merged(pushed, &mprofile, EngineConfig::paper_default()).unwrap();
    let base_mixed: Vec<(u16, u32)> = tables
        .iter()
        .enumerate()
        .flat_map(|(vn, t)| {
            t.prefixes()
                .map(move |p| (vn as u16, p.addr() | 1))
                .collect::<Vec<_>>()
        })
        .collect();
    let mixed: Vec<(u16, u32)> = base_mixed.iter().copied().cycle().take(PACKETS).collect();

    group.bench_function("merged_engine_saturated_k4", |b| {
        b.iter(|| {
            let mut engine = merged.clone();
            let mut done = 0u64;
            for &(vn, ip) in &mixed {
                if engine.tick(Some((vn, black_box(ip)))).is_some() {
                    done += 1;
                }
            }
            done + engine.drain().len() as u64
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

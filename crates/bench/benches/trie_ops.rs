//! Criterion: trie construction and transformation costs at paper scale
//! (3725-prefix edge tables, §V-E).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vr_net::synth::TableSpec;
use vr_trie::{LeafPushedTrie, UnibitTrie};

fn bench_trie_ops(c: &mut Criterion) {
    let table = TableSpec::paper_worst_case(2012).generate().unwrap();
    let trie = UnibitTrie::from_table(&table);

    c.bench_function("trie/build_paper_table", |b| {
        b.iter(|| UnibitTrie::from_table(black_box(&table)))
    });

    c.bench_function("trie/leaf_push_paper_table", |b| {
        b.iter(|| LeafPushedTrie::from_unibit(black_box(&trie)))
    });

    c.bench_function("trie/incremental_insert_withdraw", |b| {
        let prefix: vr_net::Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
        b.iter_batched(
            || trie.clone(),
            |mut t| {
                t.insert(black_box(prefix), 7);
                t.remove(black_box(&prefix));
                t
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_trie_ops);
criterion_main!(benches);

//! Criterion: longest-prefix-match throughput — the uni-bit trie and the
//! leaf-pushed trie against the linear-scan oracle, on paper-scale tables.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vr_net::synth::TableSpec;
use vr_trie::{LeafPushedTrie, UnibitTrie};

fn bench_lookup(c: &mut Criterion) {
    let table = TableSpec::paper_worst_case(2012).generate().unwrap();
    let trie = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&trie);
    let probes: Vec<u32> = table
        .prefixes()
        .map(|p| p.addr() ^ 0x5A5A)
        .take(1024)
        .collect();

    let mut group = c.benchmark_group("lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));

    group.bench_function("unibit_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if trie.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("leaf_pushed_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if pushed.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    // The O(n)-per-lookup oracle, on a reduced probe set to keep the bench
    // short — the point is the orders-of-magnitude gap.
    let few: Vec<u32> = probes.iter().copied().take(32).collect();
    group.throughput(Throughput::Elements(few.len() as u64));
    group.bench_function("linear_scan_oracle", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &few {
                if table.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);

//! Criterion: longest-prefix-match throughput — scalar pointer-chasing
//! tries vs the stage-lockstep `lookup_batch` path vs the flat
//! level-ordered layouts, against the linear-scan oracle, on paper-scale
//! tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vr_net::synth::TableSpec;
use vr_trie::{FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, StrideTrie, UnibitTrie};

fn bench_lookup(c: &mut Criterion) {
    let table = TableSpec::paper_worst_case(2012).generate().unwrap();
    let trie = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&trie);
    let flat = FlatTrie::from_leaf_pushed(&pushed);
    let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
    let flat_stride = FlatStrideTrie::from_stride(&stride);
    let jump = JumpTrie::from_leaf_pushed(&pushed);
    let probes: Vec<u32> = table
        .prefixes()
        .map(|p| p.addr() ^ 0x5A5A)
        .take(1024)
        .collect();

    let mut group = c.benchmark_group("lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));

    group.bench_function("unibit_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if trie.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("leaf_pushed_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if pushed.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("flat_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if flat.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("stride_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if stride.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("flat_stride_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if flat_stride.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.bench_function("jump_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if jump.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    // The O(n)-per-lookup oracle, on a reduced probe set to keep the bench
    // short — the point is the orders-of-magnitude gap.
    let few: Vec<u32> = probes.iter().copied().take(32).collect();
    group.throughput(Throughput::Elements(few.len() as u64));
    group.bench_function("linear_scan_oracle", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &few {
                if table.lookup(black_box(ip)).is_some() {
                    acc += 1;
                }
            }
            acc
        })
    });

    group.finish();

    // Stage-lockstep batched path: the whole probe set in one call,
    // one level of the trie advanced per pass over the batch.
    let mut out = vec![None; probes.len()];
    let mut batched = c.benchmark_group("lookup_batch");
    batched.throughput(Throughput::Elements(probes.len() as u64));

    batched.bench_function("unibit_trie", |b| {
        b.iter(|| {
            trie.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });
    batched.bench_function("leaf_pushed_trie", |b| {
        b.iter(|| {
            pushed.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });
    batched.bench_function("flat_trie", |b| {
        b.iter(|| {
            flat.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });
    batched.bench_function("stride_trie", |b| {
        b.iter(|| {
            stride.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });
    batched.bench_function("flat_stride_trie", |b| {
        b.iter(|| {
            flat_stride.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });
    batched.bench_function("jump_trie", |b| {
        b.iter(|| {
            jump.lookup_batch(black_box(&probes), &mut out);
            out.iter().filter(|nh| nh.is_some()).count()
        })
    });

    // Batch-size sensitivity on the flat layout: how wide does the batch
    // need to be before the per-level slab scans amortise?
    for width in [8usize, 32, 128, 512] {
        batched.throughput(Throughput::Elements(probes.len() as u64));
        batched.bench_with_input(
            BenchmarkId::new("flat_trie_width", width),
            &width,
            |b, &width| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for chunk in probes.chunks(width) {
                        let slot = &mut out[..chunk.len()];
                        flat.lookup_batch(black_box(chunk), slot);
                        hits += slot.iter().filter(|nh| nh.is_some()).count();
                    }
                    hits
                })
            },
        );
    }

    batched.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);

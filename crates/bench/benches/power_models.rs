//! Criterion: analytical model evaluation cost — scenario construction
//! (dominated by trie building) vs the equation evaluation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_power::models::analytical_power;
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

fn bench_models(c: &mut Criterion) {
    let tables = FamilySpec {
        k: 6,
        prefixes_per_table: 1000,
        shared_fraction: 0.6,
        seed: 2012,
        distribution: PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .unwrap();

    for scheme in SchemeKind::ALL {
        c.bench_function(format!("scenario_build/{scheme}"), |b| {
            b.iter(|| {
                Scenario::build(
                    black_box(&tables),
                    ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
                    Device::xc6vlx760(),
                )
                .unwrap()
            })
        });
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .unwrap();
        c.bench_function(format!("eq_evaluation/{scheme}"), |b| {
            b.iter(|| analytical_power(black_box(&scenario)))
        });
    }
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

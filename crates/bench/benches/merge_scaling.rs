//! Criterion: K-way trie merging cost as K grows (the virtualized-merged
//! scheme's build-time side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_trie::MergedTrie;

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for k in [2usize, 4, 8] {
        let tables = FamilySpec {
            k,
            prefixes_per_table: 1000,
            shared_fraction: 0.6,
            seed: 2012,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 16,
        }
        .generate()
        .unwrap();
        group.bench_with_input(BenchmarkId::new("k_way_merge", k), &tables, |b, tables| {
            b.iter(|| MergedTrie::from_tables(black_box(tables)).unwrap())
        });
        let merged = MergedTrie::from_tables(&tables).unwrap();
        group.bench_with_input(BenchmarkId::new("leaf_push_merged", k), &merged, |b, m| {
            b.iter(|| black_box(m).leaf_pushed())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

//! Temperature-dependent leakage and the thermal operating point.
//!
//! §V-A notes static power is proportional to "the operating temperature
//! (which affects the leakage current)", and §II-B motivates the whole
//! study with "cooling of equipment has become a major issue". This module
//! closes that loop: leakage grows exponentially with junction
//! temperature, junction temperature grows with dissipated power through
//! the package's thermal resistance, and the self-consistent operating
//! point is the fixed point of the two — which may not exist (thermal
//! runaway) when cooling is inadequate.
//!
//! The `thermal` bench uses this to show a consolidation nuance the paper
//! leaves implicit: virtualization *concentrates* heat in one device, so
//! the single shared FPGA runs hotter (and leaks more) than any one of
//! the NV devices — yet still far below their sum.

use serde::{Deserialize, Serialize};

/// Junction temperature above which we declare thermal runaway (Virtex-6
/// commercial-grade maximum).
pub const MAX_JUNCTION_C: f64 = 125.0;

/// Package/heatsink thermal model and leakage temperature coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Junction-to-ambient thermal resistance, in °C/W (heatsinked
    /// FF1760-class package ≈ 1.5–3 °C/W).
    pub theta_ja_c_per_w: f64,
    /// Ambient air temperature, in °C (telecom racks run warm).
    pub ambient_c: f64,
    /// Junction temperature at which the §V-A static-power figures hold.
    pub reference_junction_c: f64,
    /// Exponential leakage coefficient, per °C (leakage roughly doubles
    /// every ~55 °C on this process generation).
    pub leakage_beta_per_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self {
            theta_ja_c_per_w: 2.0,
            ambient_c: 40.0,
            reference_junction_c: 50.0,
            leakage_beta_per_c: 0.0125,
        }
    }
}

/// A solved (or failed) thermal operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalOperatingPoint {
    /// Junction temperature, in °C.
    pub junction_c: f64,
    /// Total power at the operating point, in watts.
    pub total_w: f64,
    /// Temperature-corrected static power, in watts.
    pub static_w: f64,
    /// Whether the fixed point converged below [`MAX_JUNCTION_C`].
    pub converged: bool,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl ThermalModel {
    /// Leakage at junction temperature `t_c`, given the reference value.
    #[must_use]
    pub fn leakage_at(&self, static_ref_w: f64, t_c: f64) -> f64 {
        static_ref_w * (self.leakage_beta_per_c * (t_c - self.reference_junction_c)).exp()
    }

    /// Solves the self-consistent operating point of one device given its
    /// (temperature-independent) dynamic power and its reference leakage.
    ///
    /// Fixed-point iteration `T ← ambient + θ·(P_dyn + P_L(T))`; declared
    /// runaway when the junction exceeds [`MAX_JUNCTION_C`] or the
    /// iteration fails to settle.
    #[must_use]
    pub fn solve(&self, dynamic_w: f64, static_ref_w: f64) -> ThermalOperatingPoint {
        let mut t = self.ambient_c.max(self.reference_junction_c.min(self.ambient_c + 20.0));
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let static_w = self.leakage_at(static_ref_w, t);
            let total = dynamic_w + static_w;
            let next = self.ambient_c + self.theta_ja_c_per_w * total;
            if next > MAX_JUNCTION_C || !next.is_finite() {
                return ThermalOperatingPoint {
                    junction_c: next.min(f64::MAX),
                    total_w: total,
                    static_w,
                    converged: false,
                    iterations,
                };
            }
            if (next - t).abs() < 1e-6 {
                return ThermalOperatingPoint {
                    junction_c: next,
                    total_w: total,
                    static_w,
                    converged: true,
                    iterations,
                };
            }
            if iterations >= 200 {
                return ThermalOperatingPoint {
                    junction_c: next,
                    total_w: total,
                    static_w,
                    converged: false,
                    iterations,
                };
            }
            t = next;
        }
    }

    /// The largest dissipation (W) a device can sustain before the
    /// junction passes `limit_c`, ignoring the leakage feedback — a quick
    /// budget figure for capacity planning.
    #[must_use]
    pub fn power_budget_w(&self, limit_c: f64) -> f64 {
        ((limit_c - self.ambient_c) / self.theta_ja_c_per_w).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_exponentially() {
        let m = ThermalModel::default();
        let base = m.leakage_at(4.5, m.reference_junction_c);
        assert!((base - 4.5).abs() < 1e-12);
        let hot = m.leakage_at(4.5, m.reference_junction_c + 55.0);
        assert!((1.8..2.2).contains(&(hot / base)), "ratio {}", hot / base);
        let cold = m.leakage_at(4.5, m.reference_junction_c - 25.0);
        assert!(cold < base);
    }

    #[test]
    fn typical_operating_point_converges_warm() {
        let m = ThermalModel::default();
        let point = m.solve(0.2, 4.5);
        assert!(point.converged);
        // ~5 W through 2 °C/W above 40 °C ambient: around 50 °C.
        assert!((45.0..60.0).contains(&point.junction_c), "{}", point.junction_c);
        // Leakage correction is visible but small near the reference.
        assert!(point.static_w > 4.3 && point.static_w < 5.2);
        assert!(point.total_w > 4.5);
    }

    #[test]
    fn concentrated_power_runs_hotter_than_distributed() {
        // One device carrying 8 engines' dynamic power runs hotter (and
        // leaks more) than each of 8 devices carrying 1/8th — but its
        // total is still ~1/8 of the NV fleet's.
        let m = ThermalModel::default();
        let k = 8.0;
        let per_engine_dyn = 0.2;
        let nv_device = m.solve(per_engine_dyn / k, 4.5);
        let vs_device = m.solve(per_engine_dyn, 4.5);
        assert!(vs_device.junction_c > nv_device.junction_c);
        assert!(vs_device.static_w > nv_device.static_w);
        assert!(vs_device.total_w < k * nv_device.total_w / 4.0);
    }

    #[test]
    fn inadequate_cooling_causes_runaway() {
        let m = ThermalModel {
            theta_ja_c_per_w: 12.0, // no heatsink
            ambient_c: 55.0,
            ..ThermalModel::default()
        };
        let point = m.solve(1.0, 4.5);
        assert!(!point.converged, "junction {}", point.junction_c);
    }

    #[test]
    fn power_budget() {
        let m = ThermalModel::default();
        // (125 − 40) / 2 = 42.5 W.
        assert!((m.power_budget_w(MAX_JUNCTION_C) - 42.5).abs() < 1e-12);
        assert_eq!(m.power_budget_w(10.0), 0.0); // limit below ambient
    }

    #[test]
    fn low_power_grade_buys_thermal_headroom() {
        let m = ThermalModel {
            theta_ja_c_per_w: 6.0,
            ambient_c: 50.0,
            ..ThermalModel::default()
        };
        let hi = m.solve(0.2, 4.5); // -2 grade reference leakage
        let lo = m.solve(0.13, 3.1); // -1L
        assert!(lo.junction_c < hi.junction_c);
        match (hi.converged, lo.converged) {
            (false, true) => {} // the interesting case: -1L survives
            (a, b) => assert!(a <= b, "-1L must never be worse"),
        }
    }
}

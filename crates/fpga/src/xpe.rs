//! XPower-Estimator-style design evaluation.
//!
//! The paper evaluates designs "from a power standpoint at resource type
//! level and at different operational frequencies" with the Xilinx XPA/XPE
//! tools. This module is the simulated equivalent: feed it a design
//! description, get a per-resource-type power report, with device-fit
//! checks (BRAM blocks, logic, I/O pins) along the way.
//!
//! The report is *full-activity* power: utilization/duty scaling (the µᵢ
//! weights of Eqs. 2/4) is applied by the analytical models in `vr-power`
//! and by the cycle-level simulator in `vr-engine`, not here — exactly as
//! XPE reports activity-based power for the activity you configure.

use crate::bram::{blocks_for_stages, bram_power_w, BramMode};
use crate::device::Device;
use crate::grade::SpeedGrade;
use crate::io;
use crate::logic::{pipeline_logic_power_w, total_resources, PeProfile};
use crate::static_power::{area_utilization, static_power_w};
use crate::FpgaError;
use serde::{Deserialize, Serialize};

/// A lookup design to evaluate: `engines` identical pipelines, each with
/// the same per-stage memory map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Speed grade.
    pub grade: SpeedGrade,
    /// BRAM granularity the stage memories map onto.
    pub bram_mode: BramMode,
    /// Per-stage memory requirement of ONE engine, in bits (Mᵢ,ⱼ).
    pub stage_memories_bits: Vec<u64>,
    /// Number of identical parallel engines on the device.
    pub engines: usize,
    /// Operating frequency in MHz.
    pub freq_mhz: f64,
    /// Per-stage processing-element resource profile.
    pub pe: PeProfile,
}

impl DesignSpec {
    /// Convenience constructor with the paper's PE profile.
    #[must_use]
    pub fn new(
        grade: SpeedGrade,
        bram_mode: BramMode,
        stage_memories_bits: Vec<u64>,
        engines: usize,
        freq_mhz: f64,
    ) -> Self {
        Self {
            grade,
            bram_mode,
            stage_memories_bits,
            engines,
            freq_mhz,
            pe: PeProfile::PAPER_UNIBIT,
        }
    }

    /// Stages per engine.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stage_memories_bits.len()
    }

    /// BRAM blocks (in the design's granularity) for the whole design.
    #[must_use]
    pub fn bram_blocks(&self) -> u64 {
        blocks_for_stages(self.bram_mode, &self.stage_memories_bits) * self.engines as u64
    }

    /// BRAM consumption expressed in 36 Kb block equivalents (two 18 Kb
    /// halves share one 36 Kb block).
    #[must_use]
    pub fn bram_36k_equivalents(&self) -> u64 {
        match self.bram_mode {
            BramMode::K36 => self.bram_blocks(),
            BramMode::K18 => self.bram_blocks().div_ceil(2),
        }
    }

    /// Evaluates the design on `device`.
    ///
    /// # Errors
    /// * [`FpgaError::InvalidParameter`] for non-positive frequency or a
    ///   zero-engine design;
    /// * [`FpgaError::ResourceExhausted`] when BRAM, logic, or I/O pins
    ///   don't fit.
    pub fn evaluate(&self, device: &Device) -> Result<PowerReport, FpgaError> {
        if self.engines == 0 {
            return Err(FpgaError::InvalidParameter("design must have ≥1 engine"));
        }
        if !self.freq_mhz.is_finite() || self.freq_mhz <= 0.0 {
            return Err(FpgaError::InvalidParameter("frequency must be positive"));
        }
        // Fit: BRAM.
        let bram_36k = self.bram_36k_equivalents();
        if bram_36k > device.bram_36k_blocks {
            return Err(FpgaError::ResourceExhausted {
                resource: "36 Kb BRAM blocks",
                requested: bram_36k,
                available: device.bram_36k_blocks,
            });
        }
        // Fit: logic.
        let logic = total_resources(self.pe, self.engines, self.stages());
        if logic.slice_registers > device.slice_registers {
            return Err(FpgaError::ResourceExhausted {
                resource: "slice registers",
                requested: logic.slice_registers,
                available: device.slice_registers,
            });
        }
        if logic.total_luts() > device.slice_luts {
            return Err(FpgaError::ResourceExhausted {
                resource: "slice LUTs",
                requested: logic.total_luts(),
                available: device.slice_luts,
            });
        }
        // Fit: I/O pins.
        io::check(device, self.engines)?;

        let utilization = area_utilization(device, &logic, bram_36k);
        let static_w = static_power_w(self.grade, utilization) * device.static_power_scale;
        let logic_w =
            pipeline_logic_power_w(self.grade, self.stages(), self.freq_mhz) * self.engines as f64;
        let bram_w = bram_power_w(
            self.bram_mode,
            self.grade,
            self.bram_blocks(),
            self.freq_mhz,
        );
        Ok(PowerReport {
            static_w,
            logic_w,
            bram_w,
            bram_blocks: self.bram_blocks(),
            utilization,
        })
    }
}

/// Per-resource-type power report (XPE-style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Leakage power in watts.
    pub static_w: f64,
    /// Logic + signal dynamic power in watts (full activity).
    pub logic_w: f64,
    /// BRAM dynamic power in watts (full activity).
    pub bram_w: f64,
    /// Number of BRAM blocks used (design granularity).
    pub bram_blocks: u64,
    /// Device area utilization in `[0, 1]`.
    pub utilization: f64,
}

impl PowerReport {
    /// Total power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.logic_w + self.bram_w
    }

    /// Dynamic (non-leakage) power in watts.
    #[must_use]
    pub fn dynamic_w(&self) -> f64 {
        self.logic_w + self.bram_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_design(engines: usize) -> DesignSpec {
        // 28 stages, ~10 Kb per stage: a paper-scale single-table engine.
        DesignSpec::new(
            SpeedGrade::Minus2,
            BramMode::K18,
            vec![10 * 1024; 28],
            engines,
            350.0,
        )
    }

    #[test]
    fn evaluates_single_engine() {
        let report = paper_like_design(1).evaluate(&Device::xc6vlx760()).unwrap();
        // 28 blocks × 13.65 µW × 350 MHz ≈ 0.134 W.
        assert!((report.bram_w - 28.0 * 13.65 * 350.0 * 1e-6).abs() < 1e-9);
        // 28 stages × 5.18 µW × 350 MHz ≈ 0.0508 W.
        assert!((report.logic_w - 28.0 * 5.180 * 350.0 * 1e-6).abs() < 1e-9);
        // Static near the 4.5 W base (low utilization → −5 % side).
        assert!((4.2..=4.5).contains(&report.static_w));
        assert!(report.total_w() > report.dynamic_w());
    }

    #[test]
    fn power_scales_with_engines() {
        let device = Device::xc6vlx760();
        let one = paper_like_design(1).evaluate(&device).unwrap();
        let four = paper_like_design(4).evaluate(&device).unwrap();
        assert!((four.logic_w - 4.0 * one.logic_w).abs() < 1e-12);
        assert!((four.bram_w - 4.0 * one.bram_w).abs() < 1e-12);
        // Static grows only through the ±5 % area band.
        assert!(four.static_w > one.static_w);
        assert!(four.static_w < one.static_w * 1.15);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let device = Device::xc6vlx760();
        let mut d = paper_like_design(1);
        d.engines = 0;
        assert!(d.evaluate(&device).is_err());
        let mut d = paper_like_design(1);
        d.freq_mhz = 0.0;
        assert!(d.evaluate(&device).is_err());
        d.freq_mhz = f64::NAN;
        assert!(d.evaluate(&device).is_err());
    }

    #[test]
    fn detects_bram_exhaustion() {
        let device = Device::test_small(); // 16 × 36 Kb blocks
        let d = DesignSpec::new(
            SpeedGrade::Minus2,
            BramMode::K36,
            vec![36 * 1024; 28], // 28 blocks > 16
            1,
            200.0,
        );
        assert!(matches!(
            d.evaluate(&device),
            Err(FpgaError::ResourceExhausted {
                resource: "36 Kb BRAM blocks",
                ..
            })
        ));
    }

    #[test]
    fn detects_pin_exhaustion() {
        let device = Device::xc6vlx760();
        let d = paper_like_design(16); // > 15-engine pin limit
        assert!(matches!(
            d.evaluate(&device),
            Err(FpgaError::ResourceExhausted {
                resource: "I/O pins",
                ..
            })
        ));
    }

    #[test]
    fn detects_logic_exhaustion() {
        let mut device = Device::xc6vlx760();
        device.slice_registers = 1000; // below one engine's 1689 × 28
        assert!(matches!(
            paper_like_design(1).evaluate(&device),
            Err(FpgaError::ResourceExhausted {
                resource: "slice registers",
                ..
            })
        ));
    }

    #[test]
    fn half_blocks_consolidate_into_36k_equivalents() {
        let d = DesignSpec::new(
            SpeedGrade::Minus2,
            BramMode::K18,
            vec![1024; 3], // 3 half-blocks
            1,
            100.0,
        );
        assert_eq!(d.bram_blocks(), 3);
        assert_eq!(d.bram_36k_equivalents(), 2);
    }

    #[test]
    fn low_power_grade_reduces_every_component() {
        let device = Device::xc6vlx760();
        let hi = paper_like_design(1).evaluate(&device).unwrap();
        let mut lo_spec = paper_like_design(1);
        lo_spec.grade = SpeedGrade::Minus1L;
        let lo = lo_spec.evaluate(&device).unwrap();
        assert!(lo.static_w < hi.static_w);
        assert!(lo.logic_w < hi.logic_w);
        assert!(lo.bram_w < hi.bram_w);
    }
}

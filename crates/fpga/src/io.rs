//! I/O pin accounting (§VI-A).
//!
//! The paper caps the separate scheme at 15 virtual networks because "the
//! I/O pin requirement exceeded when the number of virtual networks was
//! increased". Each lookup engine needs its own data-in/data-out pins on
//! top of a shared clock/control budget; with the pin counts below, the
//! 1200-pin XC6VLX760 fits exactly 15 engines — reproducing the paper's
//! limit.

use crate::device::Device;
use crate::FpgaError;

/// Pins per lookup engine: 32 destination-address in + 16 VNID/metadata in
/// + 8 NHI out + 16 handshake/flow control.
pub const PINS_PER_ENGINE: u64 = 72;

/// Shared pins: clocking, reset, configuration, update interface.
pub const SHARED_PINS: u64 = 60;

/// Total user I/O pins required by `engines` parallel lookup engines.
#[must_use]
pub fn pins_required(engines: usize) -> u64 {
    SHARED_PINS + PINS_PER_ENGINE * engines as u64
}

/// Checks that the pin budget of `device` accommodates `engines`.
///
/// # Errors
/// [`FpgaError::ResourceExhausted`] naming the I/O pins when it does not.
pub fn check(device: &Device, engines: usize) -> Result<(), FpgaError> {
    let requested = pins_required(engines);
    if requested > device.io_pins {
        return Err(FpgaError::ResourceExhausted {
            resource: "I/O pins",
            requested,
            available: device.io_pins,
        });
    }
    Ok(())
}

/// The largest engine count that fits the device's pin budget.
#[must_use]
pub fn max_engines(device: &Device) -> usize {
    if device.io_pins < SHARED_PINS {
        return 0;
    }
    ((device.io_pins - SHARED_PINS) / PINS_PER_ENGINE) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_limit_of_15_engines_is_reproduced() {
        let d = Device::xc6vlx760();
        assert_eq!(max_engines(&d), 15);
        assert!(check(&d, 15).is_ok());
        assert!(matches!(
            check(&d, 16),
            Err(FpgaError::ResourceExhausted {
                resource: "I/O pins",
                ..
            })
        ));
    }

    #[test]
    fn pins_required_is_affine() {
        assert_eq!(pins_required(0), SHARED_PINS);
        assert_eq!(pins_required(1), SHARED_PINS + PINS_PER_ENGINE);
        assert_eq!(pins_required(10) - pins_required(9), PINS_PER_ENGINE);
    }

    #[test]
    fn tiny_device_fits_fewer_engines() {
        let d = Device::test_small(); // 200 pins
        assert_eq!(max_engines(&d), 1);
        assert!(check(&d, 1).is_ok());
        assert!(check(&d, 2).is_err());
    }

    #[test]
    fn device_smaller_than_shared_budget_fits_nothing() {
        let mut d = Device::test_small();
        d.io_pins = 10;
        assert_eq!(max_engines(&d), 0);
        assert!(check(&d, 0).is_err());
    }
}

//! Logic & signal power (§V-C, Fig. 3) and the per-stage PE profile.
//!
//! The paper measures logic at the granularity of one processing element
//! (PE) per pipeline stage — stage registers plus the logic doing the
//! memory access and per-stage computation — and reports that logic power
//! grows linearly with both stage count and frequency.

use crate::grade::SpeedGrade;
use serde::{Deserialize, Serialize};

/// Resource consumption of one pipeline-stage processing element, as
/// measured by the paper for its uni-bit trie engine (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeProfile {
    /// Slice registers used as flip-flops.
    pub slice_registers: u64,
    /// Slice LUTs used as logic.
    pub luts_logic: u64,
    /// Slice LUTs used as memory (distributed RAM).
    pub luts_memory: u64,
    /// Slice LUTs used as routing.
    pub luts_routing: u64,
}

impl PeProfile {
    /// The paper's measured uni-bit trie PE: 1689 FF, 336 logic LUTs,
    /// 126 memory LUTs, 376 routing LUTs.
    pub const PAPER_UNIBIT: PeProfile = PeProfile {
        slice_registers: 1689,
        luts_logic: 336,
        luts_memory: 126,
        luts_routing: 376,
    };

    /// Total LUTs of any kind.
    #[must_use]
    pub fn total_luts(&self) -> u64 {
        self.luts_logic + self.luts_memory + self.luts_routing
    }
}

/// Per-stage logic+signal power at `freq_mhz`, in watts (§V-C):
/// 5.180·f µW (-2) or 3.937·f µW (-1L).
#[must_use]
pub fn stage_logic_power_w(grade: SpeedGrade, freq_mhz: f64) -> f64 {
    grade.logic_stage_uw_per_mhz() * freq_mhz * 1e-6
}

/// Logic power of a whole pipeline: linear in the stage count, as the
/// paper observed.
#[must_use]
pub fn pipeline_logic_power_w(grade: SpeedGrade, stages: usize, freq_mhz: f64) -> f64 {
    stages as f64 * stage_logic_power_w(grade, freq_mhz)
}

/// Per-stage logic power in mW, Fig. 3's y-axis.
#[must_use]
pub fn stage_logic_power_mw(grade: SpeedGrade, freq_mhz: f64) -> f64 {
    stage_logic_power_w(grade, freq_mhz) * 1e3
}

/// Total logic resources of `engines` pipelines of `stages` stages each
/// (Lᵢ,ⱼ summed): used for area-driven static power and fit checks.
#[must_use]
pub fn total_resources(pe: PeProfile, engines: usize, stages: usize) -> PeProfile {
    let n = (engines * stages) as u64;
    PeProfile {
        slice_registers: pe.slice_registers * n,
        luts_logic: pe.luts_logic * n,
        luts_memory: pe.luts_memory * n,
        luts_routing: pe.luts_routing * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pe_profile_numbers() {
        let pe = PeProfile::PAPER_UNIBIT;
        assert_eq!(pe.slice_registers, 1689);
        assert_eq!(pe.total_luts(), 336 + 126 + 376);
    }

    #[test]
    fn stage_power_formula_is_exact() {
        let w = stage_logic_power_w(SpeedGrade::Minus2, 350.0);
        assert!((w - 5.180 * 350.0 * 1e-6).abs() < 1e-15);
        let w = stage_logic_power_w(SpeedGrade::Minus1L, 250.0);
        assert!((w - 3.937 * 250.0 * 1e-6).abs() < 1e-15);
    }

    #[test]
    fn pipeline_power_is_linear_in_stages() {
        let one = pipeline_logic_power_w(SpeedGrade::Minus2, 1, 300.0);
        let twenty_eight = pipeline_logic_power_w(SpeedGrade::Minus2, 28, 300.0);
        assert!((twenty_eight - 28.0 * one).abs() < 1e-12);
    }

    #[test]
    fn fig3_magnitudes() {
        // Fig. 3 plots roughly 0.5..2.6 mW per stage over 100..500 MHz.
        assert!((stage_logic_power_mw(SpeedGrade::Minus2, 500.0) - 2.59).abs() < 0.01);
        assert!((stage_logic_power_mw(SpeedGrade::Minus1L, 100.0) - 0.3937).abs() < 0.001);
    }

    #[test]
    fn total_resources_scale_with_engines_and_stages() {
        let pe = PeProfile::PAPER_UNIBIT;
        let total = total_resources(pe, 3, 28);
        assert_eq!(total.slice_registers, 1689 * 84);
        assert_eq!(total.luts_logic, 336 * 84);
    }
}

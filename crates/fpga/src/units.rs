//! Unit-typed wrappers for power and frequency quantities.
//!
//! The power models in this crate and in `vr-power` mix three scales —
//! watts for static/report totals, µW-per-MHz for the Table III dynamic
//! coefficients, and MHz for clocks. A bare `4.5` in an expression says
//! nothing about which scale it is on, and a literal on the wrong scale
//! is exactly the kind of silent 10³/10⁶ bug a power study cannot
//! afford. These newtypes make the scale part of the constant's type:
//! calibration values are declared through [`Watts`],
//! [`MicroWattsPerMegahertz`] and [`Megahertz`] constructors (see
//! `grade.rs`), and the `vr-audit lint` pass flags raw `f64` power
//! literals elsewhere in `crates/fpga` / `crates/core` that bypass them.
//!
//! The wrappers are `const`-constructible and deliberately minimal: model
//! arithmetic still happens on `f64` (via [`Watts::value`] and friends),
//! so no public `-> f64` API changes shape — the types gate where
//! *literals* may appear, not how math is written.

use serde::{Deserialize, Serialize};

/// A power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Watts(pub f64);

impl Watts {
    /// The wrapped value in watts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The same power expressed in milliwatts.
    #[must_use]
    pub const fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The same power expressed in microwatts.
    #[must_use]
    pub const fn as_microwatts(self) -> f64 {
        self.0 * 1e6
    }
}

/// A dynamic-power coefficient in µW per MHz (numerically equal to a
/// pJ-per-cycle energy, which is how the cycle-level simulator reads it).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MicroWattsPerMegahertz(pub f64);

impl MicroWattsPerMegahertz {
    /// The wrapped coefficient in µW/MHz.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The dissipation at a given clock, in watts.
    #[must_use]
    pub fn at(self, clock: Megahertz) -> Watts {
        Watts(self.0 * clock.value() * 1e-6)
    }
}

/// A clock frequency in MHz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Megahertz(pub f64);

impl Megahertz {
    /// The wrapped frequency in MHz.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_conversions_are_exact() {
        let p = Watts(4.5);
        assert_eq!(p.value(), 4.5);
        assert_eq!(p.as_milliwatts(), 4500.0);
        assert_eq!(p.as_microwatts(), 4.5e6);
    }

    #[test]
    fn coefficient_times_clock_lands_in_watts() {
        // 13.65 µW/MHz at 400 MHz = 5.46 mW.
        let w = MicroWattsPerMegahertz(13.65).at(Megahertz(400.0));
        assert!((w.value() - 5.46e-3).abs() < 1e-12);
    }

    #[test]
    fn units_serialize_transparently_enough() {
        let json = serde_json::to_string(&Watts(3.1)).unwrap();
        let back: Watts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Watts(3.1));
    }
}

//! TCAM-based IP lookup as a power baseline (§II-B, refs. [20][10]).
//!
//! The paper's related work contrasts trie pipelines with Ternary CAMs:
//! "TCAMs are known to be power hungry due to its massively parallel
//! search", mitigated by partitioning so a lookup only triggers a subset
//! of entries (ref. [20]'s multi-chip load balancing), or replaced by
//! set-associative memories (ref. [10], IPStash, "35 % power savings
//! compared to state-of-the-art TCAM solutions").
//!
//! This module models that baseline so the `tcam_baseline` bench can put
//! the paper's trie engines and the TCAM family on one mW/Gbps axis. The
//! constants are literature-representative (documented below), not
//! vendor-measured — the comparison is about the order-of-magnitude gap
//! and the partitioning trend, which are robust to the exact values.

use serde::{Deserialize, Serialize};

/// Search energy per *triggered* entry, in pJ. Derived from commonly
/// quoted 18 Mb TCAM figures (~15 W at ~350 Msps over ~256 K entries).
pub const SEARCH_PJ_PER_ENTRY: f64 = 0.17;

/// Static power per TCAM chip, in watts.
pub const STATIC_W_PER_CHIP: f64 = 2.0;

/// Entries per chip (18 Mb of 72-bit ternary slots).
pub const ENTRIES_PER_CHIP: usize = 256 * 1024;

/// Maximum search rate, in million searches per second (generation-
/// contemporary TCAMs; lower than the paper's FPGA pipeline clock).
pub const MAX_SEARCH_RATE_MSPS: f64 = 250.0;

/// A TCAM-based lookup engine configuration.
///
/// ```
/// use vr_fpga::tcam::TcamSpec;
///
/// let mono = TcamSpec::monolithic(50_000);
/// let parts = TcamSpec::partitioned(50_000, 8);
/// // Partitioning triggers 1/8 of the entries per search (ref. [20]).
/// assert!(parts.dynamic_power_w() < mono.dynamic_power_w() / 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcamSpec {
    /// Installed (active) entries.
    pub entries: usize,
    /// Partitions: a search triggers only `entries / partitions` entries
    /// (ref. [20]'s organization); 1 = monolithic.
    pub partitions: usize,
    /// Search rate in Msps (≤ [`MAX_SEARCH_RATE_MSPS`]).
    pub search_rate_msps: f64,
    /// Relative dynamic-power scaling vs plain TCAM cells (1.0 = TCAM;
    /// 0.65 models IPStash's reported 35 % saving).
    pub cell_efficiency: f64,
}

impl TcamSpec {
    /// A monolithic TCAM sized for `entries` at full search rate.
    #[must_use]
    pub fn monolithic(entries: usize) -> Self {
        Self {
            entries,
            partitions: 1,
            search_rate_msps: MAX_SEARCH_RATE_MSPS,
            cell_efficiency: 1.0,
        }
    }

    /// A partitioned TCAM (ref. [20]): each search triggers one partition.
    #[must_use]
    pub fn partitioned(entries: usize, partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
            ..Self::monolithic(entries)
        }
    }

    /// An IPStash-like set-associative organization (ref. [10]): modeled
    /// as a TCAM with 35 % lower dynamic energy per triggered entry.
    #[must_use]
    pub fn ipstash(entries: usize) -> Self {
        Self {
            cell_efficiency: 0.65,
            ..Self::monolithic(entries)
        }
    }

    /// Chips required to hold the entries.
    #[must_use]
    pub fn chips(&self) -> usize {
        self.entries.div_ceil(ENTRIES_PER_CHIP).max(1)
    }

    /// Entries triggered per search.
    #[must_use]
    pub fn triggered_entries(&self) -> usize {
        self.entries.div_ceil(self.partitions.max(1))
    }

    /// Dynamic power at the configured search rate, in watts.
    #[must_use]
    pub fn dynamic_power_w(&self) -> f64 {
        self.triggered_entries() as f64
            * SEARCH_PJ_PER_ENTRY
            * self.cell_efficiency
            * self.search_rate_msps
            * 1e-6 // pJ × Msps → W
    }

    /// Static power (chips × per-chip leakage), in watts.
    #[must_use]
    pub fn static_power_w(&self) -> f64 {
        self.chips() as f64 * STATIC_W_PER_CHIP
    }

    /// Total power, in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.static_power_w() + self.dynamic_power_w()
    }

    /// Throughput at 40-byte packets (one lookup per search), in Gbps.
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        crate::timing::GBPS_PER_MHZ * self.search_rate_msps
    }

    /// The §VI-B efficiency metric, in mW/Gbps.
    #[must_use]
    pub fn mw_per_gbps(&self) -> f64 {
        crate::timing::mw_per_gbps(self.total_power_w(), self.throughput_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_triggers_everything() {
        let t = TcamSpec::monolithic(3725);
        assert_eq!(t.triggered_entries(), 3725);
        assert_eq!(t.chips(), 1);
        assert!(t.dynamic_power_w() > 0.0);
    }

    #[test]
    fn partitioning_cuts_dynamic_power() {
        let mono = TcamSpec::monolithic(50_000);
        let parts = TcamSpec::partitioned(50_000, 8);
        assert_eq!(parts.triggered_entries(), 6250);
        assert!(parts.dynamic_power_w() < mono.dynamic_power_w() / 7.0);
        // Static power is unchanged (same chips).
        assert_eq!(parts.static_power_w(), mono.static_power_w());
    }

    #[test]
    fn ipstash_saves_35_percent_dynamic() {
        let tcam = TcamSpec::monolithic(100_000);
        let stash = TcamSpec::ipstash(100_000);
        let saving = 1.0 - stash.dynamic_power_w() / tcam.dynamic_power_w();
        assert!((saving - 0.35).abs() < 1e-12);
    }

    #[test]
    fn chips_scale_with_entries() {
        assert_eq!(TcamSpec::monolithic(1).chips(), 1);
        assert_eq!(TcamSpec::monolithic(ENTRIES_PER_CHIP).chips(), 1);
        assert_eq!(TcamSpec::monolithic(ENTRIES_PER_CHIP + 1).chips(), 2);
    }

    #[test]
    fn tcam_is_power_hungrier_than_the_paper_trie_engine() {
        // §II-B's qualitative claim, quantified: a K=15 merged-table TCAM
        // vs the paper's ~5 W / 112 Gbps separate FPGA engine.
        let tcam = TcamSpec::monolithic(15 * 3725);
        let fpga_mw_per_gbps = 4_700.0 / 112.0; // ≈ 42 (one engine, K=1)
        assert!(
            tcam.mw_per_gbps() > fpga_mw_per_gbps,
            "tcam {} vs fpga {}",
            tcam.mw_per_gbps(),
            fpga_mw_per_gbps
        );
        // And its search rate (hence throughput) is lower than the FPGA's
        // base clock.
        assert!(tcam.throughput_gbps() < 112.0);
    }

    #[test]
    fn zero_partitions_is_clamped() {
        let t = TcamSpec::partitioned(1000, 0);
        assert_eq!(t.triggered_entries(), 1000);
    }
}

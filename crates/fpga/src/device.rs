//! Device resource catalogs (Table II).
//!
//! The paper's platform is the Virtex-6 XC6VLX760, chosen for its abundant
//! on-chip resources: 758 K logic cells, 8 Mb distributed RAM, 26 Mb block
//! RAM and 1200 I/O pins (Table II). BRAM is organized in 36 Kb blocks
//! that each contain two independently usable 18 Kb halves (§V-B).

use serde::{Deserialize, Serialize};

/// One kilobit, in bits.
pub const KBIT: u64 = 1024;

/// Capacity of one full BRAM block in bits (36 Kb).
pub const BRAM_36K_BITS: u64 = 36 * KBIT;

/// Capacity of one BRAM half-block in bits (18 Kb).
pub const BRAM_18K_BITS: u64 = 18 * KBIT;

/// Static description of an FPGA device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing name, e.g. `XC6VLX760`.
    pub name: String,
    /// Logic cells available.
    pub logic_cells: u64,
    /// Slice registers (flip-flops) available.
    pub slice_registers: u64,
    /// Slice LUTs available.
    pub slice_luts: u64,
    /// Maximum distributed RAM in bits.
    pub distributed_ram_bits: u64,
    /// Number of 36 Kb BRAM blocks.
    pub bram_36k_blocks: u64,
    /// Maximum user I/O pins.
    pub io_pins: u64,
    /// Leakage relative to the XC6VLX760 (static power scales with die
    /// area; the §V-A figures are LX760 figures).
    pub static_power_scale: f64,
}

impl Device {
    /// The paper's device: Virtex-6 XC6VLX760 (Table II).
    ///
    /// 720 × 36 Kb blocks ≈ 26 Mb of BRAM; 8 Mb max distributed RAM;
    /// 1200 I/O pins; 758 K logic cells. Register/LUT counts follow the
    /// Virtex-6 family data sheet (118 560 slices × 8 FF / × 4 LUT).
    #[must_use]
    pub fn xc6vlx760() -> Self {
        Self {
            name: "XC6VLX760".to_owned(),
            logic_cells: 758_784,
            slice_registers: 948_480,
            slice_luts: 474_240,
            distributed_ram_bits: 8 * KBIT * KBIT,
            bram_36k_blocks: 720,
            io_pins: 1200,
            static_power_scale: 1.0,
        }
    }

    /// Mid-size Virtex-6: XC6VLX550T (extension; the paper's §VI explores
    /// device families — the smaller die leaks proportionally less).
    #[must_use]
    pub fn xc6vlx550t() -> Self {
        Self {
            name: "XC6VLX550T".to_owned(),
            logic_cells: 549_888,
            slice_registers: 687_360,
            slice_luts: 343_680,
            distributed_ram_bits: 6200 * KBIT,
            bram_36k_blocks: 632,
            io_pins: 1200,
            static_power_scale: 0.72,
        }
    }

    /// Small Virtex-6: XC6VLX240T.
    #[must_use]
    pub fn xc6vlx240t() -> Self {
        Self {
            name: "XC6VLX240T".to_owned(),
            logic_cells: 241_152,
            slice_registers: 301_440,
            slice_luts: 150_720,
            distributed_ram_bits: 3650 * KBIT,
            bram_36k_blocks: 416,
            io_pins: 720,
            static_power_scale: 0.33,
        }
    }

    /// The catalog the device-sweep experiment walks, largest first.
    #[must_use]
    pub fn catalog() -> Vec<Device> {
        vec![
            Device::xc6vlx760(),
            Device::xc6vlx550t(),
            Device::xc6vlx240t(),
        ]
    }

    /// A deliberately tiny device used in tests to trigger resource
    /// exhaustion without paper-scale workloads.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            name: "TEST-SMALL".to_owned(),
            logic_cells: 10_000,
            slice_registers: 20_000,
            slice_luts: 10_000,
            distributed_ram_bits: 64 * KBIT,
            bram_36k_blocks: 16,
            io_pins: 200,
            static_power_scale: 0.02,
        }
    }

    /// Total BRAM capacity in bits.
    #[must_use]
    pub fn bram_bits(&self) -> u64 {
        self.bram_36k_blocks * BRAM_36K_BITS
    }

    /// Number of independently usable 18 Kb half-blocks.
    #[must_use]
    pub fn bram_18k_blocks(&self) -> u64 {
        self.bram_36k_blocks * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc6vlx760_matches_table_ii() {
        let d = Device::xc6vlx760();
        // Table II: 758K logic cells, 26 Mb BRAM, 8 Mb dist RAM, 1200 pins.
        assert_eq!(d.logic_cells, 758_784);
        assert_eq!(d.io_pins, 1200);
        let bram_mbits = d.bram_bits() as f64 / (KBIT * KBIT) as f64;
        assert!((25.0..=26.5).contains(&bram_mbits), "{bram_mbits} Mb");
        assert_eq!(d.distributed_ram_bits, 8 * 1024 * 1024);
    }

    #[test]
    fn half_blocks_double_full_blocks() {
        let d = Device::xc6vlx760();
        assert_eq!(d.bram_18k_blocks(), 1440);
        assert_eq!(BRAM_36K_BITS, 2 * BRAM_18K_BITS);
    }

    #[test]
    fn test_device_is_small() {
        let d = Device::test_small();
        assert!(d.bram_bits() < Device::xc6vlx760().bram_bits() / 10);
    }

    #[test]
    fn catalog_is_ordered_largest_first() {
        let catalog = Device::catalog();
        assert_eq!(catalog.len(), 3);
        for pair in catalog.windows(2) {
            assert!(pair[0].logic_cells > pair[1].logic_cells);
            assert!(pair[0].static_power_scale > pair[1].static_power_scale);
            assert!(pair[0].bram_36k_blocks >= pair[1].bram_36k_blocks);
        }
        // Leakage scale roughly tracks die size.
        for d in &catalog {
            let cells_ratio = d.logic_cells as f64 / Device::xc6vlx760().logic_cells as f64;
            assert!((d.static_power_scale - cells_ratio).abs() < 0.1, "{}", d.name);
        }
    }
}

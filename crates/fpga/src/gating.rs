//! Clock gating and duty-cycle handling (§IV).
//!
//! "When the router is not serving any packets, the logic or memory
//! resources can be sent to an idle mode. Hence, during the off period of
//! the duty cycle, the dynamic power can be assumed to be zero, but the
//! static power is dissipated constantly." Turning resources off uses
//! flags (logic) and clock gating (memory). Without gating, dynamic power
//! burns regardless of utilization — the contrast the ablation bench
//! `ablation_gating` sweeps.

use crate::FpgaError;
use serde::{Deserialize, Serialize};

/// A validated duty cycle in `[0, 1]` — the fraction of time an engine is
/// actively serving packets (µᵢ under Assumption 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycle(f64);

impl DutyCycle {
    /// Always-on.
    pub const FULL: DutyCycle = DutyCycle(1.0);

    /// Creates a duty cycle.
    ///
    /// # Errors
    /// Rejects values outside `[0, 1]` or non-finite values.
    pub fn new(fraction: f64) -> Result<Self, FpgaError> {
        if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
            return Err(FpgaError::InvalidParameter("duty cycle must be in [0, 1]"));
        }
        Ok(Self(fraction))
    }

    /// The duty fraction.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0
    }
}

/// Power-management configuration of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingPolicy {
    /// Logic idles via service-required flags (§IV).
    pub logic_flags: bool,
    /// Memories idle via clock gating (§IV).
    pub memory_clock_gating: bool,
}

impl GatingPolicy {
    /// The paper's assumed configuration: both mechanisms on.
    pub const PAPER: GatingPolicy = GatingPolicy {
        logic_flags: true,
        memory_clock_gating: true,
    };

    /// No power management: dynamic power is burned continuously.
    pub const NONE: GatingPolicy = GatingPolicy {
        logic_flags: false,
        memory_clock_gating: false,
    };
}

/// Effective logic dynamic power under `policy` at `duty`.
#[must_use]
pub fn effective_logic_power_w(raw_w: f64, duty: DutyCycle, policy: GatingPolicy) -> f64 {
    if policy.logic_flags {
        raw_w * duty.fraction()
    } else {
        raw_w
    }
}

/// Effective memory dynamic power under `policy` at `duty`.
#[must_use]
pub fn effective_memory_power_w(raw_w: f64, duty: DutyCycle, policy: GatingPolicy) -> f64 {
    if policy.memory_clock_gating {
        raw_w * duty.fraction()
    } else {
        raw_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_validation() {
        assert!(DutyCycle::new(0.0).is_ok());
        assert!(DutyCycle::new(1.0).is_ok());
        assert!(DutyCycle::new(0.5).unwrap().fraction() == 0.5);
        assert!(DutyCycle::new(-0.1).is_err());
        assert!(DutyCycle::new(1.1).is_err());
        assert!(DutyCycle::new(f64::NAN).is_err());
    }

    #[test]
    fn gated_power_scales_with_duty() {
        let duty = DutyCycle::new(0.25).unwrap();
        assert_eq!(effective_logic_power_w(4.0, duty, GatingPolicy::PAPER), 1.0);
        assert_eq!(effective_memory_power_w(8.0, duty, GatingPolicy::PAPER), 2.0);
    }

    #[test]
    fn ungated_power_ignores_duty() {
        let duty = DutyCycle::new(0.25).unwrap();
        assert_eq!(effective_logic_power_w(4.0, duty, GatingPolicy::NONE), 4.0);
        assert_eq!(effective_memory_power_w(8.0, duty, GatingPolicy::NONE), 8.0);
    }

    #[test]
    fn mixed_policy() {
        let duty = DutyCycle::new(0.5).unwrap();
        let policy = GatingPolicy {
            logic_flags: true,
            memory_clock_gating: false,
        };
        assert_eq!(effective_logic_power_w(2.0, duty, policy), 1.0);
        assert_eq!(effective_memory_power_w(2.0, duty, policy), 2.0);
    }

    #[test]
    fn idle_engine_with_gating_burns_nothing_dynamic() {
        let idle = DutyCycle::new(0.0).unwrap();
        assert_eq!(effective_logic_power_w(5.0, idle, GatingPolicy::PAPER), 0.0);
        assert_eq!(effective_memory_power_w(5.0, idle, GatingPolicy::PAPER), 0.0);
    }
}

//! Speed-grade-dependent constants.
//!
//! Every number here is taken from the paper's own calibration:
//!
//! * static power: 4.5 W (-2) / 3.1 W (-1L), ±5 % with area (§V-A);
//! * BRAM dynamic power coefficients (Table III), in µW per block per MHz;
//! * per-stage logic+signal power: 5.180·f (-2) / 3.937·f (-1L) µW (§V-C);
//!
//! plus one *calibrated* value of ours — the base pipeline clock — since
//! the paper reports relative throughput behaviour, not an absolute clock.
//! 350 MHz (-2) / 250 MHz (-1L) is representative of published Virtex-6
//! trie pipelines and yields mW/Gbps magnitudes inside Fig. 8's axis range
//! (see DESIGN.md §8).

use crate::units::{Megahertz, MicroWattsPerMegahertz, Watts};
use serde::{Deserialize, Serialize};

/// Calibration table for one speed grade, every entry unit-typed. This is
/// the **only** place (together with `units.rs`) where raw power/clock
/// literals are allowed — `vr-audit lint` flags power literals elsewhere
/// in `crates/fpga` and `crates/core` that bypass these constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradeCalibration {
    /// Base static power of the XC6VLX760 (§V-A).
    pub static_base: Watts,
    /// Table III: dynamic coefficient per 18 Kb BRAM block.
    pub bram_18k: MicroWattsPerMegahertz,
    /// Table III: dynamic coefficient per 36 Kb BRAM block.
    pub bram_36k: MicroWattsPerMegahertz,
    /// §V-C: per-pipeline-stage logic+signal coefficient.
    pub logic_stage: MicroWattsPerMegahertz,
    /// Calibrated base pipeline clock (ours; see module docs).
    pub base_clock: Megahertz,
}

/// §V-A / Table III / §V-C calibration for the `-2` grade.
pub const MINUS2: GradeCalibration = GradeCalibration {
    static_base: Watts(4.5),
    bram_18k: MicroWattsPerMegahertz(13.65),
    bram_36k: MicroWattsPerMegahertz(24.60),
    logic_stage: MicroWattsPerMegahertz(5.180),
    base_clock: Megahertz(350.0),
};

/// §V-A / Table III / §V-C calibration for the `-1L` grade.
pub const MINUS1L: GradeCalibration = GradeCalibration {
    static_base: Watts(3.1),
    bram_18k: MicroWattsPerMegahertz(11.00),
    bram_36k: MicroWattsPerMegahertz(19.70),
    logic_stage: MicroWattsPerMegahertz(3.937),
    base_clock: Megahertz(250.0),
};

/// Xilinx Virtex-6 speed grades evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedGrade {
    /// `-2`: the high-performance grade.
    Minus2,
    /// `-1L`: the low-power grade (≈2000 mA lower supply current, §V-A).
    Minus1L,
}

impl SpeedGrade {
    /// All grades, in the order the paper plots them.
    pub const ALL: [SpeedGrade; 2] = [SpeedGrade::Minus2, SpeedGrade::Minus1L];

    /// Display label used in figures ("-2" / "-1L").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpeedGrade::Minus2 => "-2",
            SpeedGrade::Minus1L => "-1L",
        }
    }

    /// The grade's full unit-typed calibration table.
    #[must_use]
    pub const fn calibration(self) -> &'static GradeCalibration {
        match self {
            SpeedGrade::Minus2 => &MINUS2,
            SpeedGrade::Minus1L => &MINUS1L,
        }
    }

    /// Base static power of the XC6VLX760 in watts (§V-A).
    #[must_use]
    pub fn static_base_w(self) -> f64 {
        self.calibration().static_base.value()
    }

    /// Table III: µW per 18 Kb BRAM block per MHz.
    #[must_use]
    pub fn bram_18k_uw_per_mhz(self) -> f64 {
        self.calibration().bram_18k.value()
    }

    /// Table III: µW per 36 Kb BRAM block per MHz.
    #[must_use]
    pub fn bram_36k_uw_per_mhz(self) -> f64 {
        self.calibration().bram_36k.value()
    }

    /// §V-C: per-pipeline-stage logic+signal power in µW per MHz.
    #[must_use]
    pub fn logic_stage_uw_per_mhz(self) -> f64 {
        self.calibration().logic_stage.value()
    }

    /// Calibrated base pipeline clock in MHz (ours; see module docs).
    #[must_use]
    pub fn base_clock_mhz(self) -> f64 {
        self.calibration().base_clock.value()
    }
}

impl std::fmt::Display for SpeedGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_coefficients_are_exact() {
        assert_eq!(SpeedGrade::Minus2.bram_18k_uw_per_mhz(), 13.65);
        assert_eq!(SpeedGrade::Minus2.bram_36k_uw_per_mhz(), 24.60);
        assert_eq!(SpeedGrade::Minus1L.bram_18k_uw_per_mhz(), 11.00);
        assert_eq!(SpeedGrade::Minus1L.bram_36k_uw_per_mhz(), 19.70);
    }

    #[test]
    fn low_power_grade_is_cheaper_but_slower() {
        let hi = SpeedGrade::Minus2;
        let lo = SpeedGrade::Minus1L;
        assert!(lo.static_base_w() < hi.static_base_w());
        assert!(lo.logic_stage_uw_per_mhz() < hi.logic_stage_uw_per_mhz());
        assert!(lo.base_clock_mhz() < hi.base_clock_mhz());
    }

    #[test]
    fn static_bases_match_section_v_a() {
        assert_eq!(SpeedGrade::Minus2.static_base_w(), 4.5);
        assert_eq!(SpeedGrade::Minus1L.static_base_w(), 3.1);
    }

    #[test]
    fn labels() {
        assert_eq!(SpeedGrade::Minus2.to_string(), "-2");
        assert_eq!(SpeedGrade::Minus1L.to_string(), "-1L");
    }
}

//! Clock and throughput models.
//!
//! The paper's engines do one lookup per cycle, so throughput in Gbps at
//! minimum packet size (40 bytes, §VI-B) is `0.32 × f(MHz)` per pipeline.
//! The achievable clock is where the schemes differ (§VI-B):
//!
//! * **merged** engines slow down markedly as K grows — each stage's BRAM
//!   grows with the number of virtual routers, deepening the read muxes
//!   ("the operating frequency decreases significantly");
//! * **separate** engines suffer mild congestion as more engines share the
//!   fabric;
//! * **non-virtualized** engines (one per device) run at the base clock.
//!
//! The degradation coefficients are shape calibrations (DESIGN.md §8): the
//! paper reports the consequences (Fig. 8's ordering and growth), not the
//! raw curves.

use crate::grade::SpeedGrade;
use serde::{Deserialize, Serialize};

/// Gbps carried per MHz of pipeline clock at 40-byte packets:
/// 40 B × 8 = 320 bits per lookup, one lookup per cycle.
pub const GBPS_PER_MHZ: f64 = 0.32;

/// Per-K clock degradation rate of the merged scheme.
pub const MERGED_DEGRADATION_PER_VN: f64 = 0.08;

/// Per-engine clock degradation rate of the separate scheme.
pub const SEPARATE_DEGRADATION_PER_ENGINE: f64 = 0.005;

/// Floor on the achievable clock as a fraction of the base clock.
pub const MIN_CLOCK_FRACTION: f64 = 0.15;

/// What the timing model needs to know about a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingContext {
    /// Number of parallel lookup engines on the device (1 for NV/merged).
    pub parallel_engines: usize,
    /// Number of virtual networks sharing one merged engine (1 if not
    /// merged).
    pub merged_arity: usize,
}

impl TimingContext {
    /// A single dedicated engine (the NV case and each VS engine's view).
    pub const SINGLE: TimingContext = TimingContext {
        parallel_engines: 1,
        merged_arity: 1,
    };
}

/// Achievable pipeline clock in MHz for `ctx` on `grade`.
#[must_use]
pub fn clock_mhz(grade: SpeedGrade, ctx: TimingContext) -> f64 {
    let base = grade.base_clock_mhz();
    let engines = ctx.parallel_engines.max(1) as f64;
    let arity = ctx.merged_arity.max(1) as f64;
    let merged_factor = 1.0 / (1.0 + MERGED_DEGRADATION_PER_VN * (arity - 1.0));
    let congestion_factor = 1.0 - SEPARATE_DEGRADATION_PER_ENGINE * (engines - 1.0);
    (base * merged_factor * congestion_factor).max(base * MIN_CLOCK_FRACTION)
}

/// Throughput of one pipeline at `freq_mhz`, in Gbps (40-byte packets).
#[must_use]
pub fn throughput_gbps(freq_mhz: f64) -> f64 {
    GBPS_PER_MHZ * freq_mhz
}

/// Aggregate capacity of `engines` identical pipelines, in Gbps.
#[must_use]
pub fn aggregate_throughput_gbps(freq_mhz: f64, engines: usize) -> f64 {
    throughput_gbps(freq_mhz) * engines as f64
}

/// The power-efficiency metric of §VI-B: mW per Gbps (lower is better).
#[must_use]
pub fn mw_per_gbps(power_w: f64, throughput_gbps: f64) -> f64 {
    if throughput_gbps <= 0.0 {
        return f64::INFINITY;
    }
    power_w * 1e3 / throughput_gbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_engine_runs_at_base_clock() {
        for grade in SpeedGrade::ALL {
            assert_eq!(clock_mhz(grade, TimingContext::SINGLE), grade.base_clock_mhz());
        }
    }

    #[test]
    fn merged_clock_decreases_with_arity() {
        let mut prev = f64::INFINITY;
        for k in 1..=15 {
            let f = clock_mhz(
                SpeedGrade::Minus2,
                TimingContext {
                    parallel_engines: 1,
                    merged_arity: k,
                },
            );
            assert!(f < prev, "k={k}");
            prev = f;
        }
        // "decreases significantly": less than half the base by K = 15.
        assert!(prev < 0.5 * SpeedGrade::Minus2.base_clock_mhz());
    }

    #[test]
    fn separate_clock_degrades_mildly() {
        let f15 = clock_mhz(
            SpeedGrade::Minus2,
            TimingContext {
                parallel_engines: 15,
                merged_arity: 1,
            },
        );
        let base = SpeedGrade::Minus2.base_clock_mhz();
        assert!(f15 < base);
        assert!(f15 > 0.9 * base, "separate degradation must stay mild");
    }

    #[test]
    fn clock_never_falls_below_floor() {
        let f = clock_mhz(
            SpeedGrade::Minus2,
            TimingContext {
                parallel_engines: 1,
                merged_arity: 1000,
            },
        );
        assert!(f >= MIN_CLOCK_FRACTION * SpeedGrade::Minus2.base_clock_mhz() - 1e-12);
    }

    #[test]
    fn throughput_at_min_packets() {
        // 350 MHz × 320 bits = 112 Gbps.
        assert!((throughput_gbps(350.0) - 112.0).abs() < 1e-9);
        assert!((aggregate_throughput_gbps(350.0, 4) - 448.0).abs() < 1e-9);
    }

    #[test]
    fn mw_per_gbps_metric() {
        assert!((mw_per_gbps(4.5, 112.0) - 40.178_571_428).abs() < 1e-6);
        assert_eq!(mw_per_gbps(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn low_power_grade_is_slower() {
        let hi = clock_mhz(SpeedGrade::Minus2, TimingContext::SINGLE);
        let lo = clock_mhz(SpeedGrade::Minus1L, TimingContext::SINGLE);
        assert!(lo < hi);
    }
}

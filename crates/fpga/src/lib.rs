//! # vr-fpga — simulated FPGA substrate
//!
//! The paper's experiments run on a Xilinx Virtex-6 XC6VLX760 under speed
//! grades -2 (high performance) and -1L (low power), with power numbers
//! from the XPower Analyzer / Estimator tools and post place-and-route
//! results. None of that silicon or tooling is available to a pure-Rust
//! reproduction, so this crate *is* the substitute substrate (see
//! DESIGN.md):
//!
//! * [`device`] — the resource catalog of Table II (logic cells, BRAM
//!   blocks, distributed RAM, I/O pins);
//! * [`grade`] — speed-grade-dependent constants, all taken from the
//!   paper's own calibration (§V-A..C, Table III);
//! * [`bram`] — BRAM block quantization (36 Kb blocks, two independent
//!   18 Kb halves) and the Table III power model;
//! * [`logic`] — the per-stage processing-element resource profile and the
//!   Fig. 3 logic+signal power model;
//! * [`static_power`] — leakage with the ±5 % area-dependent band (§V-A);
//! * [`xpe`] — an XPower-Estimator-style façade evaluating a whole design;
//! * [`timing`] — achievable clock vs. resource pressure, and the
//!   40-byte-packet throughput metric (§VI-B);
//! * [`io`] — I/O pin accounting that reproduces the K ≈ 15 separate-
//!   engine limit (§VI-A);
//! * [`par`] — a deterministic place-and-route *simulator* producing
//!   "experimental" power with the bounded, scheme-dependent deviation
//!   structure of Fig. 7;
//! * [`gating`] — clock gating / duty-cycle handling (§IV: idle resources
//!   dissipate no dynamic power).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bram;
pub mod device;
pub mod gating;
pub mod grade;
pub mod io;
pub mod logic;
pub mod par;
pub mod static_power;
pub mod tcam;
pub mod thermal;
pub mod timing;
pub mod units;
pub mod xpe;

pub use bram::BramMode;
pub use device::Device;
pub use grade::SpeedGrade;
pub use par::{ParSimulator, SchemeKind};
pub use units::{Megahertz, MicroWattsPerMegahertz, Watts};
pub use xpe::{DesignSpec, PowerReport};

/// Errors from the FPGA substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// The design does not fit on the device (message names the resource).
    ResourceExhausted {
        /// Which resource ran out ("BRAM blocks", "I/O pins", ...).
        resource: &'static str,
        /// Amount requested.
        requested: u64,
        /// Amount available on the device.
        available: u64,
    },
    /// A parameter was out of its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for FpgaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpgaError::ResourceExhausted {
                resource,
                requested,
                available,
            } => write!(
                f,
                "design needs {requested} {resource} but the device has {available}"
            ),
            FpgaError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = FpgaError::ResourceExhausted {
            resource: "I/O pins",
            requested: 1300,
            available: 1200,
        };
        assert!(e.to_string().contains("1300"));
        assert!(e.to_string().contains("I/O pins"));
        assert!(FpgaError::InvalidParameter("x").to_string().contains('x'));
    }
}

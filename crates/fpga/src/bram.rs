//! BRAM block quantization and the Table III power model.
//!
//! "Despite how small the amount of memory required, a BRAM block has to
//! be assigned to serve the purpose. Therefore, BRAM power is determined
//! by the number of blocks used rather than the total size of memory."
//! (§V-B.) Power per block grows linearly with operating frequency; the
//! per-block coefficients are Table III's, encoded in [`SpeedGrade`].

use crate::device::{BRAM_18K_BITS, BRAM_36K_BITS};
use crate::grade::SpeedGrade;
use serde::{Deserialize, Serialize};

/// Which block granularity a design maps its stage memories onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BramMode {
    /// 18 Kb half-blocks.
    K18,
    /// 36 Kb full blocks.
    K36,
}

impl BramMode {
    /// Both modes, for sweeps like Fig. 2 / Table III.
    pub const ALL: [BramMode; 2] = [BramMode::K18, BramMode::K36];

    /// Capacity of one block in bits.
    #[must_use]
    pub fn block_bits(self) -> u64 {
        match self {
            BramMode::K18 => BRAM_18K_BITS,
            BramMode::K36 => BRAM_36K_BITS,
        }
    }

    /// Table III coefficient for this mode, in µW per block per MHz.
    #[must_use]
    pub fn uw_per_block_mhz(self, grade: SpeedGrade) -> f64 {
        match self {
            BramMode::K18 => grade.bram_18k_uw_per_mhz(),
            BramMode::K36 => grade.bram_36k_uw_per_mhz(),
        }
    }

    /// Number of blocks needed for `bits` of memory: ⌈M / block⌉ (§V-B).
    /// Zero bits need zero blocks (an absent stage memory maps to nothing).
    #[must_use]
    pub fn blocks_for(self, bits: u64) -> u64 {
        bits.div_ceil(self.block_bits())
    }

    /// Display label used in figures ("18Kb" / "36Kb").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BramMode::K18 => "18Kb",
            BramMode::K36 => "36Kb",
        }
    }
}

impl std::fmt::Display for BramMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Table III: dynamic power of `blocks` BRAM blocks at `freq_mhz`, in
/// watts. `P(µW) = blocks × coeff × f`.
///
/// ```
/// use vr_fpga::bram::bram_power_w;
/// use vr_fpga::{BramMode, SpeedGrade};
///
/// // One 18 Kb block at 350 MHz on the -2 grade: 13.65 µW/MHz × 350.
/// let w = bram_power_w(BramMode::K18, SpeedGrade::Minus2, 1, 350.0);
/// assert!((w - 13.65 * 350.0 * 1e-6).abs() < 1e-12);
/// ```
#[must_use]
pub fn bram_power_w(mode: BramMode, grade: SpeedGrade, blocks: u64, freq_mhz: f64) -> f64 {
    blocks as f64 * mode.uw_per_block_mhz(grade) * freq_mhz * 1e-6
}

/// Convenience: blocks then power for a memory of `bits` at `freq_mhz`.
#[must_use]
pub fn memory_power_w(mode: BramMode, grade: SpeedGrade, bits: u64, freq_mhz: f64) -> f64 {
    bram_power_w(mode, grade, mode.blocks_for(bits), freq_mhz)
}

/// The write rate the paper calibrated Table III at (§V-B: "We assumed a
/// write rate of 1 % (low update rate)").
pub const REFERENCE_WRITE_RATE: f64 = 0.01;

/// Relative power cost of a write vs a read port cycle. XPE reports BRAM
/// writes marginally more expensive than reads; 0.3 keeps the correction
/// second-order, consistent with the paper treating 1 % as negligible.
pub const WRITE_POWER_FACTOR: f64 = 0.3;

/// Table III power adjusted for a route-update write rate other than the
/// 1 % the coefficients were calibrated at (extension; used by the
/// `updates` bench to price update-heavy deployments).
///
/// `write_rate` is the fraction of cycles performing a table write, in
/// `[0, 1]`. At exactly [`REFERENCE_WRITE_RATE`] this returns the plain
/// Table III power.
#[must_use]
pub fn bram_power_w_with_writes(
    mode: BramMode,
    grade: SpeedGrade,
    blocks: u64,
    freq_mhz: f64,
    write_rate: f64,
) -> f64 {
    let write_rate = write_rate.clamp(0.0, 1.0);
    let base = bram_power_w(mode, grade, blocks, freq_mhz);
    base * (1.0 + WRITE_POWER_FACTOR * (write_rate - REFERENCE_WRITE_RATE))
}

/// Power of a single BRAM block at `freq_mhz` (Fig. 2's y-axis), in mW.
#[must_use]
pub fn single_block_power_mw(mode: BramMode, grade: SpeedGrade, freq_mhz: f64) -> f64 {
    bram_power_w(mode, grade, 1, freq_mhz) * 1e3
}

/// Total blocks for a per-stage memory map (one entry per pipeline stage):
/// each stage has its own independently accessible memory, so each stage's
/// requirement is rounded up to whole blocks separately (§V-D).
#[must_use]
pub fn blocks_for_stages(mode: BramMode, stage_bits: &[u64]) -> u64 {
    stage_bits.iter().map(|&bits| mode.blocks_for(bits)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_quantization() {
        assert_eq!(BramMode::K18.blocks_for(0), 0);
        assert_eq!(BramMode::K18.blocks_for(1), 1);
        assert_eq!(BramMode::K18.blocks_for(BRAM_18K_BITS), 1);
        assert_eq!(BramMode::K18.blocks_for(BRAM_18K_BITS + 1), 2);
        assert_eq!(BramMode::K36.blocks_for(BRAM_36K_BITS * 3), 3);
    }

    #[test]
    fn table_iii_formula_is_exact() {
        // 18Kb (-2): ⌈M/18K⌉ × 13.65 × f µW, e.g. one block at 400 MHz.
        let w = bram_power_w(BramMode::K18, SpeedGrade::Minus2, 1, 400.0);
        assert!((w - 13.65 * 400.0 * 1e-6).abs() < 1e-12);
        let w = bram_power_w(BramMode::K36, SpeedGrade::Minus1L, 2, 100.0);
        assert!((w - 2.0 * 19.70 * 100.0 * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn power_is_monotonic_in_frequency_and_size() {
        // The paper observed BRAM power monotonically increasing with both.
        let p100 = memory_power_w(BramMode::K18, SpeedGrade::Minus2, 50_000, 100.0);
        let p200 = memory_power_w(BramMode::K18, SpeedGrade::Minus2, 50_000, 200.0);
        assert!(p200 > p100);
        let small = memory_power_w(BramMode::K18, SpeedGrade::Minus2, 10_000, 100.0);
        let large = memory_power_w(BramMode::K18, SpeedGrade::Minus2, 500_000, 100.0);
        assert!(large > small);
    }

    #[test]
    fn two_halves_cost_more_than_one_full_block() {
        // 13.65 × 2 > 24.60: packing into 36 Kb blocks is cheaper per bit,
        // matching Fig. 2's curve ordering.
        for grade in SpeedGrade::ALL {
            assert!(
                2.0 * BramMode::K18.uw_per_block_mhz(grade)
                    > BramMode::K36.uw_per_block_mhz(grade)
            );
        }
    }

    #[test]
    fn low_power_grade_is_cheaper_per_block() {
        for mode in BramMode::ALL {
            assert!(
                mode.uw_per_block_mhz(SpeedGrade::Minus1L)
                    < mode.uw_per_block_mhz(SpeedGrade::Minus2)
            );
        }
    }

    #[test]
    fn per_stage_quantization_exceeds_pooled() {
        // 28 stages of 1 Kb each: per-stage rounding needs 28 blocks;
        // pooled rounding would need only ⌈28K/18K⌉ = 2.
        let stages = vec![1024u64; 28];
        assert_eq!(blocks_for_stages(BramMode::K18, &stages), 28);
        assert_eq!(BramMode::K18.blocks_for(28 * 1024), 2);
    }

    #[test]
    fn single_block_mw_matches_fig2_magnitudes() {
        // Fig. 2 plots fractions of a mW up to ~10 mW over 100..500 MHz.
        let p = single_block_power_mw(BramMode::K36, SpeedGrade::Minus2, 500.0);
        assert!((p - 12.3).abs() < 0.01, "{p} mW"); // 24.60 × 500 µW
        let p = single_block_power_mw(BramMode::K18, SpeedGrade::Minus1L, 100.0);
        assert!((p - 1.1).abs() < 0.01, "{p} mW");
    }

    #[test]
    fn labels() {
        assert_eq!(BramMode::K18.to_string(), "18Kb");
        assert_eq!(BramMode::K36.to_string(), "36Kb");
    }

    #[test]
    fn write_rate_adjustment_is_anchored_at_one_percent() {
        let base = bram_power_w(BramMode::K18, SpeedGrade::Minus2, 10, 300.0);
        let at_ref = bram_power_w_with_writes(
            BramMode::K18,
            SpeedGrade::Minus2,
            10,
            300.0,
            REFERENCE_WRITE_RATE,
        );
        assert!((base - at_ref).abs() < 1e-15);
        // Heavier updates cost more; a read-only table costs slightly less.
        let heavy =
            bram_power_w_with_writes(BramMode::K18, SpeedGrade::Minus2, 10, 300.0, 0.20);
        let read_only =
            bram_power_w_with_writes(BramMode::K18, SpeedGrade::Minus2, 10, 300.0, 0.0);
        assert!(heavy > base);
        assert!(read_only < base);
        // The correction stays second-order even at an absurd 100 % rate.
        let max = bram_power_w_with_writes(BramMode::K18, SpeedGrade::Minus2, 10, 300.0, 1.0);
        assert!(max < base * 1.31);
        // Out-of-range rates are clamped.
        let clamped =
            bram_power_w_with_writes(BramMode::K18, SpeedGrade::Minus2, 10, 300.0, 7.0);
        assert_eq!(clamped, max);
    }
}

//! Deterministic place-and-route simulator.
//!
//! Fig. 7 validates the analytical models against post place-and-route
//! measurements: errors stay within ±3 %, are larger for the merged scheme
//! (more BRAM per stage → more placement/routing optimization by the
//! tool), and measured power *decreases slightly* with the number of
//! parallel architectures "due to various hardware optimizations" (§VI-A).
//!
//! We cannot run Xilinx synthesis, so this module simulates exactly that
//! deviation structure: a scheme-dependent systematic optimization gain
//! that grows (bounded) with K, plus a bounded deterministic pseudo-noise
//! term seeded from the configuration. The resulting model-vs-experimental
//! percentage error has Fig. 7's envelope by construction — which is the
//! property the validation code path in `vr-power` asserts.

use crate::grade::SpeedGrade;
use serde::{Deserialize, Serialize};

/// The three router organizations of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Non-virtualized: one engine per device, K devices (NV).
    NonVirtualized,
    /// Virtualized-separate: K engines space-sharing one device (VS).
    Separate,
    /// Virtualized-merged: one engine time-shared by K networks (VM).
    Merged,
}

impl SchemeKind {
    /// All schemes in the paper's plotting order.
    pub const ALL: [SchemeKind; 3] = [
        SchemeKind::NonVirtualized,
        SchemeKind::Separate,
        SchemeKind::Merged,
    ];

    /// Figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::NonVirtualized => "Non-virtualized",
            SchemeKind::Separate => "Virtualized-separate",
            SchemeKind::Merged => "Virtualized-merged",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deviation envelope of one scheme: measured = model × (1 − systematic) ×
/// (1 + noise), noise ∈ [−amplitude, +amplitude].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviationEnvelope {
    /// Per-K systematic optimization gain rate.
    pub systematic_per_k: f64,
    /// Cap on the systematic gain.
    pub systematic_cap: f64,
    /// Amplitude of the pseudo-noise term.
    pub noise_amplitude: f64,
}

impl DeviationEnvelope {
    /// The envelope used for a scheme (calibrated to Fig. 7's structure).
    #[must_use]
    pub fn for_scheme(scheme: SchemeKind) -> Self {
        match scheme {
            // Independent devices: no cross-engine optimization, tiny noise.
            SchemeKind::NonVirtualized => DeviationEnvelope {
                systematic_per_k: 0.0,
                systematic_cap: 0.0,
                noise_amplitude: 0.008,
            },
            // Parallel engines: shared-fabric optimizations grow with K
            // (net of the ±5 % area-dependent leakage variation, which
            // they outweigh — §VI-A's decreasing measured power).
            SchemeKind::Separate => DeviationEnvelope {
                systematic_per_k: 0.0018,
                systematic_cap: 0.020,
                noise_amplitude: 0.005,
            },
            // Merged: most BRAM per stage, most tool freedom, most noise.
            SchemeKind::Merged => DeviationEnvelope {
                systematic_per_k: 0.0015,
                systematic_cap: 0.018,
                noise_amplitude: 0.010,
            },
        }
    }

    /// Systematic gain at `k` virtual networks.
    #[must_use]
    pub fn systematic(self, k: usize) -> f64 {
        (self.systematic_per_k * (k.saturating_sub(1)) as f64).min(self.systematic_cap)
    }
}

/// Deterministic PAR simulator. The same `(seed, scheme, k, grade)` always
/// produces the same "measurement" — experiments are reproducible, which
/// is what lets Fig. 7 be regenerated bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParSimulator {
    /// Simulation seed (a different seed = a different synthesis run).
    pub seed: u64,
}

impl Default for ParSimulator {
    fn default() -> Self {
        Self { seed: 0x2012_0526 }
    }
}

impl ParSimulator {
    /// Creates a simulator with an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The noise draw in `[-1, 1]` for a configuration.
    #[must_use]
    pub fn noise(&self, scheme: SchemeKind, k: usize, grade: SpeedGrade) -> f64 {
        let tag = match scheme {
            SchemeKind::NonVirtualized => 1u64,
            SchemeKind::Separate => 2,
            SchemeKind::Merged => 3,
        };
        let gtag = match grade {
            SpeedGrade::Minus2 => 11u64,
            SpeedGrade::Minus1L => 13,
        };
        let h = splitmix64(
            self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (k as u64) << 32 ^ gtag << 56,
        );
        // Map to [-1, 1].
        (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Simulated post-PAR ("experimental") power for a design whose
    /// analytical model predicts `analytical_w`.
    #[must_use]
    pub fn measured_power_w(
        &self,
        scheme: SchemeKind,
        k: usize,
        grade: SpeedGrade,
        analytical_w: f64,
    ) -> f64 {
        let env = DeviationEnvelope::for_scheme(scheme);
        let systematic = env.systematic(k);
        let noise = env.noise_amplitude * self.noise(scheme, k, grade);
        analytical_w * (1.0 - systematic) * (1.0 + noise)
    }
}

/// Fig. 7's metric: `(model − experimental) / experimental × 100 %`.
#[must_use]
pub fn percentage_error(model_w: f64, experimental_w: f64) -> f64 {
    (model_w - experimental_w) / experimental_w * 100.0
}

/// SplitMix64: the standard 64-bit finalizer-based PRNG step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let sim = ParSimulator::default();
        let a = sim.measured_power_w(SchemeKind::Merged, 8, SpeedGrade::Minus2, 5.0);
        let b = sim.measured_power_w(SchemeKind::Merged, 8, SpeedGrade::Minus2, 5.0);
        assert_eq!(a, b);
        let other_seed = ParSimulator::new(42);
        let c = other_seed.measured_power_w(SchemeKind::Merged, 8, SpeedGrade::Minus2, 5.0);
        assert_ne!(a, c);
    }

    #[test]
    fn error_stays_within_three_percent_everywhere() {
        // The paper's headline validation claim (Fig. 7): |error| ≤ 3 %.
        let sim = ParSimulator::default();
        for scheme in SchemeKind::ALL {
            for grade in SpeedGrade::ALL {
                for k in 1..=15 {
                    let model = 5.0;
                    let exp = sim.measured_power_w(scheme, k, grade, model);
                    let err = percentage_error(model, exp);
                    assert!(
                        err.abs() <= 3.0,
                        "{scheme} {grade} K={k}: error {err:.2}%"
                    );
                }
            }
        }
    }

    #[test]
    fn merged_errors_are_larger_than_nv() {
        let sim = ParSimulator::default();
        let max_err = |scheme| {
            (1..=15)
                .map(|k| {
                    let exp = sim.measured_power_w(scheme, k, SpeedGrade::Minus2, 5.0);
                    percentage_error(5.0, exp).abs()
                })
                .fold(0.0f64, f64::max)
        };
        assert!(max_err(SchemeKind::Merged) > max_err(SchemeKind::NonVirtualized));
    }

    #[test]
    fn virtualized_measurements_trend_below_model_as_k_grows() {
        // §VI-A: experimental power decreases (relative to the model) with
        // more parallel architectures.
        let sim = ParSimulator::default();
        for scheme in [SchemeKind::Separate, SchemeKind::Merged] {
            let env = DeviationEnvelope::for_scheme(scheme);
            assert!(env.systematic(15) > env.systematic(1));
            let avg_hi_k: f64 = (10..=15)
                .map(|k| sim.measured_power_w(scheme, k, SpeedGrade::Minus2, 5.0))
                .sum::<f64>()
                / 6.0;
            assert!(avg_hi_k < 5.0, "{scheme}: {avg_hi_k}");
        }
    }

    #[test]
    fn systematic_gain_is_capped() {
        let env = DeviationEnvelope::for_scheme(SchemeKind::Separate);
        assert_eq!(env.systematic(1), 0.0);
        assert!(env.systematic(1000) <= env.systematic_cap);
    }

    #[test]
    fn noise_is_bounded_and_varies() {
        let sim = ParSimulator::default();
        let mut distinct = std::collections::HashSet::new();
        for k in 1..=30 {
            let n = sim.noise(SchemeKind::Merged, k, SpeedGrade::Minus2);
            assert!((-1.0..=1.0).contains(&n));
            distinct.insert((n * 1e9) as i64);
        }
        assert!(distinct.len() > 20, "noise must vary with k");
    }

    #[test]
    fn percentage_error_sign_convention() {
        // Model above experimental => positive error (paper's formula).
        assert!(percentage_error(5.1, 5.0) > 0.0);
        assert!(percentage_error(4.9, 5.0) < 0.0);
        assert_eq!(percentage_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::NonVirtualized.to_string(), "Non-virtualized");
        assert_eq!(SchemeKind::Merged.label(), "Virtualized-merged");
    }
}

//! Static (leakage) power with the ±5 % area-dependent band (§V-A).
//!
//! Static power is frequency independent but proportional to the area the
//! design occupies: the paper reports 4.5 W (-2) and 3.1 W (-1L) with "a
//! maximum of ±5 % deviation ... based on the amount of resources used".
//! We model exactly that band: the base value scaled linearly from −5 % at
//! zero utilization to +5 % at full utilization.

use crate::device::Device;
use crate::grade::SpeedGrade;
use crate::logic::PeProfile;

/// Fractional device-area utilization of a design, in `[0, 1]`.
///
/// A coarse composite of the three resource classes the paper's designs
/// consume (registers, LUTs, BRAM), each normalized to the device and
/// capped at 1.
#[must_use]
pub fn area_utilization(device: &Device, logic: &PeProfile, bram_36k_blocks: u64) -> f64 {
    let reg = logic.slice_registers as f64 / device.slice_registers as f64;
    let lut = logic.total_luts() as f64 / device.slice_luts as f64;
    let bram = bram_36k_blocks as f64 / device.bram_36k_blocks as f64;
    ((reg + lut + bram) / 3.0).min(1.0)
}

/// Static power in watts: base × (0.95 + 0.10 × utilization), i.e. the
/// §V-A ±5 % band anchored at the reported base values.
#[must_use]
pub fn static_power_w(grade: SpeedGrade, utilization: f64) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    grade.static_base_w() * (0.95 + 0.10 * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_is_plus_minus_five_percent() {
        for grade in SpeedGrade::ALL {
            let base = grade.static_base_w();
            assert!((static_power_w(grade, 0.0) - base * 0.95).abs() < 1e-12);
            assert!((static_power_w(grade, 1.0) - base * 1.05).abs() < 1e-12);
            assert!((static_power_w(grade, 0.5) - base).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_is_clamped() {
        let a = static_power_w(SpeedGrade::Minus2, -3.0);
        let b = static_power_w(SpeedGrade::Minus2, 0.0);
        assert_eq!(a, b);
        let c = static_power_w(SpeedGrade::Minus2, 7.0);
        let d = static_power_w(SpeedGrade::Minus2, 1.0);
        assert_eq!(c, d);
    }

    #[test]
    fn area_utilization_composite() {
        let device = Device::xc6vlx760();
        let none = area_utilization(&device, &PeProfile::PAPER_UNIBIT, 0);
        assert!(none > 0.0 && none < 0.01, "one PE is a tiny fraction");
        // Saturate BRAM only: utilization approaches 1/3.
        let zero_logic = PeProfile {
            slice_registers: 0,
            luts_logic: 0,
            luts_memory: 0,
            luts_routing: 0,
        };
        let bram_full = area_utilization(&device, &zero_logic, device.bram_36k_blocks);
        assert!((bram_full - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        let device = Device::test_small();
        let huge = PeProfile {
            slice_registers: u64::MAX / 4,
            luts_logic: u64::MAX / 4,
            luts_memory: 0,
            luts_routing: 0,
        };
        assert_eq!(area_utilization(&device, &huge, 10_000), 1.0);
    }

    #[test]
    fn low_power_grade_has_lower_static_power_everywhere() {
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(
                static_power_w(SpeedGrade::Minus1L, u) < static_power_w(SpeedGrade::Minus2, u)
            );
        }
    }
}

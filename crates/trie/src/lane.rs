//! Lane-interleaved batch stepping over [`JumpTrie`] — the software
//! analogue of the paper's stage-overlapped BRAM pipeline.
//!
//! The hardware engine sustains one lookup per cycle because stage `s`
//! reads memory for packet *i+1* while stage `s+1` computes on packet
//! *i*: the pipeline hides every memory latency behind useful work. A
//! scalar software walk cannot do that — each `words[...]` load depends
//! on the previous one, so the core stalls for the full cache/DRAM
//! round-trip at every level.
//!
//! This module recovers the overlap with **lanes**: a fixed-width group
//! of `W` in-flight keys advanced one DIR-16 + sub-slab stage per
//! iteration. Each lane's next slab word is *prefetched* one stage
//! ahead (issued when the address becomes known, consumed on the next
//! iteration), so by the time a lane is stepped its word is already in
//! flight or resident — `W` independent memory accesses overlap instead
//! of serializing. That is exactly the paper's pipeline occupancy
//! argument, with the cache hierarchy standing in for the 28 BRAM
//! stages.
//!
//! Keys diverge wildly in cost: at edge scale the overwhelming majority
//! resolve in the single DIR-16 root load, and only a minority survive
//! into the sub-slabs where dependent chasing (and latency hiding)
//! matters. The stepper is therefore **two-phase, per block of keys**:
//!
//! 1. a dense root sweep retires every direct hit in a tight,
//!    branch-predictable loop (the root entry `ROOT_AHEAD` keys ahead is
//!    prefetched each step), parking the survivors' first sub-slab word
//!    index — already prefetched — in a fixed stack buffer;
//! 2. the survivors are chased with `W` lanes that **retire and
//!    refill**: when a lane's key bottoms out it writes its result and
//!    pulls the next parked survivor, and the group compacts as the
//!    tail drains — so the block never stalls on its deepest member.
//!
//! Keeping the phases per-block (rather than sweeping the whole batch
//! first) bounds the parking buffer on the stack — the walk stays
//! allocation-free — and starts phase 2 while the phase-1 prefetches
//! are still landing.
//!
//! The prefetch intrinsic (`_mm_prefetch`) is confined to this module
//! by a `vr-audit` lint rule; everything else in the workspace keeps
//! `unsafe_code = forbid`. On non-x86_64 targets the hint is a no-op
//! and the stepper degrades to plain interleaved (still allocation-free
//! and branch-light) stepping.

use crate::jump::{decode_nhi, JumpTrie, JUMP_BITS, LEAF_BIT, PAYLOAD_MASK};
use vr_net::table::NextHop;

/// Lane width used by [`JumpTrie::lookup_batch`] and the service
/// datapath. 16 keys keep enough independent loads in flight to cover
/// L2 latency without spilling the lane state out of registers/L1.
pub const DEFAULT_LANE_WIDTH: usize = 16;

/// How many keys ahead of the refill cursor the DIR-16 root entry is
/// prefetched. Root loads are independent random accesses into a
/// 256 KiB table, so a short lead is enough.
const ROOT_AHEAD: usize = 8;

/// Best-effort prefetch of `slab[idx]` into all cache levels.
///
/// Safe wrapper: the index is bounds-checked (out-of-range silently
/// skips — prefetch is advisory, never load-bearing) and the pointer is
/// derived from a live borrow, so the hint can never fault on memory
/// the slice does not own. On non-x86_64 targets this is a no-op.
#[inline(always)]
pub fn prefetch_index<T>(slab: &[T], idx: u32) {
    #[cfg(target_arch = "x86_64")]
    if let Some(word) = slab.get(idx as usize) {
        let ptr: *const T = word;
        // SAFETY: `ptr` points into a live slice borrow; `_mm_prefetch`
        // only hints the cache hierarchy and performs no access that
        // could fault or race.
        #[allow(unsafe_code)]
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr.cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slab, idx);
    }
}

/// Keys per two-phase block: large enough that the phase-1 root sweep
/// amortizes its loop and the earliest survivor prefetches have landed
/// when phase 2 starts, small enough that the parking buffers (2 KiB)
/// sit comfortably on the stack.
const BLOCK: usize = 256;

/// Chases the parked sub-slab survivors of one block with `W`
/// interleaved lanes. Every survivor enters at the same depth
/// (`JUMP_BITS + 1` — its root entry consumed address bit 16 and its
/// first sub-slab word is already prefetched). A lane that bottoms out
/// writes its result and refills from the parked list; once the list is
/// dry the group compacts, so the tail drains at full occupancy.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn step_lanes<const W: usize>(
    words: &[u32],
    nhis: &[u16],
    k: usize,
    vnid: usize,
    dsts: &[u32],
    out: &mut [Option<NextHop>],
    base: usize,
    pend_key: &[u32],
    pend_load: &[u32],
) {
    // Per-lane state: the batch index being chased (parked keys are
    // block-relative, rebased here), the pending `words` index (already
    // prefetched), and the address-bit level the *next* step consumes.
    // Lanes `0..live` are in flight.
    let mut lane_key = [0usize; W];
    let mut lane_load = [0u32; W];
    let mut lane_level = [0u32; W];
    let mut next = 0usize;
    let mut live = 0usize;
    while live < W && next < pend_key.len() {
        lane_key[live] = base + pend_key[next] as usize;
        lane_load[live] = pend_load[next];
        lane_level[live] = JUMP_BITS + 1;
        next += 1;
        live += 1;
    }

    while live > 0 {
        let mut l = 0usize;
        while l < live {
            // The load consumed here was prefetched one iteration ago
            // (or during the phase-1 sweep), so the W chases overlap in
            // the memory system instead of serializing.
            let word = words[lane_load[l] as usize];
            if word & LEAF_BIT == 0 {
                let level = lane_level[l];
                debug_assert!(level < 32, "full trie deeper than address width");
                let bit = (dsts[lane_key[l]] >> (31 - level)) & 1;
                let load_at = word + bit;
                prefetch_index(words, load_at);
                lane_load[l] = load_at;
                lane_level[l] = level + 1;
                l += 1;
            } else {
                out[lane_key[l]] = decode_nhi(nhis[(word & PAYLOAD_MASK) as usize * k + vnid]);
                if next < pend_key.len() {
                    lane_key[l] = base + pend_key[next] as usize;
                    lane_load[l] = pend_load[next];
                    lane_level[l] = JUMP_BITS + 1;
                    next += 1;
                    // The survivor's word was prefetched back in phase
                    // 1; give it an iteration before stepping the lane.
                    l += 1;
                } else {
                    // Compact: swap the last live lane into this slot.
                    // It has not been stepped this pass, so leaving `l`
                    // in place gives it its turn.
                    live -= 1;
                    lane_key[l] = lane_key[live];
                    lane_load[l] = lane_load[live];
                    lane_level[l] = lane_level[live];
                }
            }
        }
    }
}

/// Lane-interleaved batched longest-prefix match in one virtual
/// network: element `i` of `out` receives exactly
/// `trie.lookup_vn(vnid, dsts[i])`.
///
/// Per block of [`BLOCK`] keys, a dense DIR-16 root sweep retires the
/// direct hits (prefetching the root entry `ROOT_AHEAD` keys ahead) and
/// parks the sub-slab survivors — first word already prefetched — then
/// `W` interleaved lanes chase the survivors, prefetching each next
/// level as soon as its address is known and refilling/compacting as
/// keys bottom out. The whole walk is allocation-free: parking and lane
/// state live in fixed stack arrays.
///
/// # Panics
/// If `dsts` and `out` differ in length.
pub fn lookup_lanes_vn<const W: usize>(
    trie: &JumpTrie,
    vnid: usize,
    dsts: &[u32],
    out: &mut [Option<NextHop>],
) {
    assert_eq!(
        dsts.len(),
        out.len(),
        "batch destination and output slices must match"
    );
    assert!(W > 0, "lane width must be nonzero");
    let parts = trie.raw_parts();
    let (root, words, nhis, k) = (parts.root, parts.words, parts.nhis, parts.k);
    debug_assert!(vnid < k);

    let mut pend_key = [0u32; BLOCK];
    let mut pend_load = [0u32; BLOCK];
    let mut base = 0usize;
    while base < dsts.len() {
        let block_len = (dsts.len() - base).min(BLOCK);
        let mut npend = 0usize;
        // Phase 1: dense root sweep. Direct hits retire immediately;
        // survivors park their first sub-slab word index, prefetched.
        let last = dsts.len() - 1;
        for i in base..base + block_len {
            // Clamped lookahead (a cmov, not a branch): the final keys
            // harmlessly re-prefetch the last root entry.
            let ahead = dsts[(i + ROOT_AHEAD).min(last)];
            prefetch_index(root, ahead >> JUMP_BITS);
            let dst = dsts[i];
            let entry = root[(dst >> JUMP_BITS) as usize];
            if entry & LEAF_BIT != 0 {
                out[i] = decode_nhi(nhis[(entry & PAYLOAD_MASK) as usize * k + vnid]);
            } else {
                // Survives into the sub-slab: the root entry is the
                // child base of the depth-16 node, consuming bit 16.
                let bit = (dst >> (31 - JUMP_BITS)) & 1;
                let load_at = entry + bit;
                prefetch_index(words, load_at);
                pend_key[npend] = (i - base) as u32;
                pend_load[npend] = load_at;
                npend += 1;
            }
        }
        // Phase 2: interleaved chase of this block's survivors.
        step_lanes::<W>(
            words,
            nhis,
            k,
            vnid,
            dsts,
            out,
            base,
            &pend_key[..npend],
            &pend_load[..npend],
        );
        base += block_len;
    }
}

/// VN-0 convenience over [`lookup_lanes_vn`].
///
/// # Panics
/// If `dsts` and `out` differ in length.
pub fn lookup_lanes<const W: usize>(trie: &JumpTrie, dsts: &[u32], out: &mut [Option<NextHop>]) {
    lookup_lanes_vn::<W>(trie, 0, dsts, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::RoutingTable;

    fn probes(table: &RoutingTable, extra: u32) -> Vec<u32> {
        let mut probes: Vec<u32> = table
            .prefixes()
            .flat_map(|p| [p.addr(), p.addr() | 0xFF, p.addr().wrapping_sub(1)])
            .collect();
        probes.extend((0..extra).map(|i| i.wrapping_mul(0x9E37_79B9)));
        probes
    }

    fn assert_parity<const W: usize>(trie: &JumpTrie, vnid: usize, dsts: &[u32]) {
        let mut got = vec![Some(0xAB); dsts.len()];
        lookup_lanes_vn::<W>(trie, vnid, dsts, &mut got);
        for (i, &ip) in dsts.iter().enumerate() {
            assert_eq!(
                got[i],
                trie.lookup_vn(vnid, ip),
                "W={W} vn={vnid} ip {ip:#010x}"
            );
        }
    }

    #[test]
    fn lane_matches_scalar_at_paper_scale() {
        let t = TableSpec::paper_worst_case(7).generate().unwrap();
        let trie = JumpTrie::from_table(&t);
        let dsts = probes(&t, 1000);
        assert_parity::<8>(&trie, 0, &dsts);
        assert_parity::<16>(&trie, 0, &dsts);
    }

    #[test]
    fn batches_not_multiple_of_width_and_shorter_than_width() {
        let t: RoutingTable = "10.0.0.0/8 1\n10.1.1.0/24 2\n10.1.1.128/25 3\n"
            .parse()
            .unwrap();
        let trie = JumpTrie::from_table(&t);
        let dsts = probes(&t, 64);
        for len in [0, 1, 2, 7, 8, 9, 15, 16, 17, 23, dsts.len()] {
            assert_parity::<8>(&trie, 0, &dsts[..len]);
            assert_parity::<16>(&trie, 0, &dsts[..len]);
        }
    }

    #[test]
    fn all_miss_batches_clear_previous_results() {
        // No default route and probes outside every prefix: every lane
        // must overwrite the stale Some() the caller left in `out`.
        let t: RoutingTable = "10.0.0.0/8 1\n".parse().unwrap();
        let trie = JumpTrie::from_table(&t);
        let dsts: Vec<u32> = (0..40).map(|i| 0xC000_0000 | i).collect();
        let mut out = vec![Some(9); dsts.len()];
        lookup_lanes::<16>(&trie, &dsts, &mut out);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn width_one_degenerates_to_scalar_order() {
        let t = TableSpec::paper_worst_case(3).generate().unwrap();
        let trie = JumpTrie::from_table(&t);
        assert_parity::<1>(&trie, 0, &probes(&t, 100));
    }

    #[test]
    fn merged_vns_resolve_per_network() {
        let tables = [
            "10.0.0.0/8 1\n10.1.1.0/24 2\n".parse().unwrap(),
            "10.0.0.0/8 7\n172.16.0.0/12 8\n172.16.5.0/26 9\n"
                .parse()
                .unwrap(),
            RoutingTable::new(),
        ];
        let merged = crate::MergedTrie::from_tables(&tables).unwrap();
        let trie = JumpTrie::from_merged(&merged.leaf_pushed());
        for (vn, table) in tables.iter().enumerate() {
            assert_parity::<8>(&trie, vn, &probes(table, 128));
        }
    }

    #[test]
    fn prefetch_out_of_range_is_harmless() {
        prefetch_index::<u32>(&[], 0);
        prefetch_index(&[1u32, 2, 3], 2);
        prefetch_index(&[1u32, 2, 3], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "batch destination and output slices must match")]
    fn mismatched_lengths_panic() {
        let trie = JumpTrie::from_table(&RoutingTable::new());
        let mut out = [None; 2];
        lookup_lanes::<8>(&trie, &[1, 2, 3], &mut out);
    }
}

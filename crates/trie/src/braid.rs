//! Trie braiding (paper ref. \[17\]: Song et al., "Building scalable
//! virtual routers with trie braiding", INFOCOM 2010).
//!
//! Plain merging (our [`crate::MergedTrie`]) overlays tries *as laid out*:
//! two structurally identical tries that differ only by left/right
//! orientation at some nodes share nothing below the first mismatch.
//! Braiding fixes that: each (virtual network, node) pair carries a
//! **braid bit** that swaps the node's children for that network, letting
//! the mapper twist every trie onto a common shape and recover the
//! overlap. Lookup stays O(1) per stage: the hardware XORs the braid bit
//! into the address bit before indexing the child pointer.
//!
//! Song et al. compute optimal braid bits with a tree-matching DP; the
//! full DP is quadratic, so we run a *budget-bounded* version of it per
//! node: the orientation score explores both orientations recursively
//! (exactly the DP recurrence) under a visit budget, and ties break
//! straight. Ties happen precisely in locally complete regions, where
//! orientation is irrelevant (complete subtrees are orientation-
//! invariant), so bounded lookahead loses nothing there; in sparse
//! regions — where alignment matters — the horizon easily covers the
//! structure. The `braiding` bench quantifies the saving against plain
//! merging.

use crate::unibit::{NodeId, UnibitTrie};
use crate::TrieError;
use vr_net::table::NextHop;
use vr_net::RoutingTable;

/// Maximum arity (shared with plain merging: 64-bit masks).
pub const MAX_BRAID_ARITY: usize = crate::merge::MAX_MERGE_ARITY;

#[derive(Debug, Clone)]
struct BraidNode {
    /// Children in the *shape* orientation.
    children: [Option<NodeId>; 2],
    /// Bit k set ⇔ VN k occupies this node.
    presence: u64,
    /// Bit k set ⇔ VN k traverses this node with swapped children.
    braid: u64,
    /// Per-VN prefix NHI at this node.
    nhis: Vec<Option<NextHop>>,
}

impl BraidNode {
    fn empty(k: usize) -> Self {
        Self {
            children: [None, None],
            presence: 0,
            braid: 0,
            nhis: vec![None; k],
        }
    }
}

/// A K-way braided merge of uni-bit tries.
#[derive(Debug, Clone)]
pub struct BraidedTrie {
    nodes: Vec<BraidNode>,
    k: usize,
    per_vn_nodes: Vec<usize>,
}

impl BraidedTrie {
    /// Braids the tries of `tables` (VNID = index) onto a common shape.
    ///
    /// # Errors
    /// Rejects arity 0 and arity above [`MAX_BRAID_ARITY`].
    pub fn from_tables(tables: &[RoutingTable]) -> Result<Self, TrieError> {
        if tables.is_empty() || tables.len() > MAX_BRAID_ARITY {
            return Err(TrieError::BadMergeArity(tables.len()));
        }
        let k = tables.len();
        let mut braided = Self {
            nodes: vec![BraidNode::empty(k)],
            k,
            per_vn_nodes: vec![0; k],
        };
        for (vnid, table) in tables.iter().enumerate() {
            let trie = UnibitTrie::from_table(table);
            braided.weave(vnid, &trie);
        }
        Ok(braided)
    }

    /// Number of virtual networks.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Total merged (shape) node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Shape nodes VN `vnid` occupies.
    #[must_use]
    pub fn vn_node_count(&self, vnid: usize) -> usize {
        self.per_vn_nodes[vnid]
    }

    /// Nodes where at least one VN uses a swapped orientation.
    #[must_use]
    pub fn braided_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.braid != 0).count()
    }

    /// Node saving vs keeping the K tries separate.
    #[must_use]
    pub fn node_saving(&self) -> f64 {
        let total: usize = self.per_vn_nodes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.node_count() as f64 / total as f64
    }

    /// Longest-prefix match for `ip` in VN `vnid`: the braid bit of each
    /// visited node is XOR-ed into the address bit before descending.
    #[must_use]
    pub fn lookup(&self, vnid: usize, ip: u32) -> Option<NextHop> {
        debug_assert!(vnid < self.k);
        let vbit = 1u64 << vnid;
        let mut cur = 0usize;
        if self.nodes[cur].presence & vbit == 0 {
            return None;
        }
        let mut best = self.nodes[cur].nhis[vnid];
        for depth in 0..32u8 {
            let node = &self.nodes[cur];
            let raw = ((ip >> (31 - depth)) & 1) as usize;
            let effective = raw ^ usize::from(node.braid & vbit != 0);
            match node.children[effective] {
                Some(child) if self.nodes[child.idx()].presence & vbit != 0 => {
                    cur = child.idx();
                    if let Some(nh) = self.nodes[cur].nhis[vnid] {
                        best = Some(nh);
                    }
                }
                _ => break,
            }
        }
        best
    }

    /// Maps VN `vnid`'s trie onto the shape, choosing each node's
    /// orientation by canonical-signature matching.
    fn weave(&mut self, vnid: usize, trie: &UnibitTrie) {
        let trie_sigs = trie_signatures(trie);
        let shape_sigs = self.shape_signatures();
        self.weave_at(0, vnid, trie, NodeId::ROOT, &trie_sigs, &shape_sigs);
    }

    #[allow(clippy::too_many_arguments)]
    fn weave_at(
        &mut self,
        shape: usize,
        vnid: usize,
        trie: &UnibitTrie,
        tnode: NodeId,
        trie_sigs: &[Signature],
        shape_sigs: &[Signature],
    ) {
        let vbit = 1u64 << vnid;
        if self.nodes[shape].presence & vbit == 0 {
            self.nodes[shape].presence |= vbit;
            self.per_vn_nodes[vnid] += 1;
        }
        self.nodes[shape].nhis[vnid] = trie.node_next_hop(tnode);

        let [tl, tr] = trie.children(tnode);
        if tl.is_none() && tr.is_none() {
            return;
        }
        // Two-tier orientation rule. Tier 1: exact canonical equality —
        // a matching pair aligns perfectly under braiding, worth its
        // whole subtree; whoever wins on exact matches wins outright.
        // Tier 2 (no exact signal on either side): a min-size proxy, but
        // a swap must beat straight by 2× — partial-similarity proxies
        // are noisy and a misplaced swap costs real alignment, so the
        // bar is high and ties always stay straight.
        let sc = self.nodes[shape].children;
        let ssig = |c: Option<NodeId>| {
            c.and_then(|id| shape_sigs.get(id.idx()).copied())
                .unwrap_or(EMPTY_SIG)
        };
        let tsig = |c: Option<NodeId>| {
            c.map_or(EMPTY_SIG, |id| trie_sigs[id.raw() as usize])
        };
        let exact = |s: Signature, t: Signature| -> u64 {
            if s.size > 0 && s == t {
                u64::from(s.size)
            } else {
                0
            }
        };
        let proxy = |s: Signature, t: Signature| -> u64 {
            if s.size == 0 || t.size == 0 {
                0
            } else {
                u64::from(s.size.min(t.size))
            }
        };
        let straight_exact = exact(ssig(sc[0]), tsig(tl)) + exact(ssig(sc[1]), tsig(tr));
        let swapped_exact = exact(ssig(sc[0]), tsig(tr)) + exact(ssig(sc[1]), tsig(tl));
        let swap = if straight_exact != swapped_exact {
            swapped_exact > straight_exact
        } else {
            let straight_proxy =
                proxy(ssig(sc[0]), tsig(tl)) + proxy(ssig(sc[1]), tsig(tr));
            let swapped_proxy =
                proxy(ssig(sc[0]), tsig(tr)) + proxy(ssig(sc[1]), tsig(tl));
            swapped_proxy > 2 * straight_proxy + 4
        };
        if swap {
            self.nodes[shape].braid |= vbit;
        }
        let (first, second) = if swap { (tr, tl) } else { (tl, tr) };
        for (side, tchild) in [(0usize, first), (1usize, second)] {
            if let Some(tchild) = tchild {
                let shape_child = match self.nodes[shape].children[side] {
                    Some(c) => c.idx(),
                    None => {
                        let id = NodeId::from_raw(
                            u32::try_from(self.nodes.len())
                                .expect("braided trie exceeds u32 nodes"),
                        );
                        self.nodes.push(BraidNode::empty(self.k));
                        self.nodes[shape].children[side] = Some(id);
                        id.idx()
                    }
                };
                self.weave_at(shape_child, vnid, trie, tchild, trie_sigs, shape_sigs);
            }
        }
    }

    /// Canonical signatures of the current shape nodes (recomputed once
    /// per weave; nodes created during the weave score as empty, which is
    /// correct — a fresh subtree imposes no orientation preference).
    fn shape_signatures(&self) -> Vec<Signature> {
        let mut sigs = vec![EMPTY_SIG; self.nodes.len()];
        self.shape_sig_rec(0, &mut sigs);
        sigs
    }

    fn shape_sig_rec(&self, idx: usize, sigs: &mut [Signature]) -> Signature {
        let children = self.nodes[idx].children;
        let sl = children[0].map_or(EMPTY_SIG, |c| self.shape_sig_rec(c.idx(), sigs));
        let sr = children[1].map_or(EMPTY_SIG, |c| self.shape_sig_rec(c.idx(), sigs));
        let sig = combine(sl, sr);
        sigs[idx] = sig;
        sig
    }
}

/// Orientation-invariant structural signature of a subtree: children
/// contribute in canonical (descending) order, so two subtrees that are
/// isomorphic under child swaps get identical signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Signature {
    size: u32,
    height: u32,
    hash: u64,
}

const EMPTY_SIG: Signature = Signature {
    size: 0,
    height: 0,
    hash: 0x9E37_79B9_7F4A_7C15,
};

fn combine(a: Signature, b: Signature) -> Signature {
    let (first, second) = if b > a { (b, a) } else { (a, b) };
    Signature {
        size: 1 + first.size + second.size,
        height: 1 + first.height.max(second.height),
        hash: mix(first.hash, second.hash),
    }
}

/// Canonical signatures of every trie node, indexed by raw node id.
fn trie_signatures(trie: &UnibitTrie) -> Vec<Signature> {
    let len = trie
        .walk()
        .map(|(id, _)| id.raw() as usize + 1)
        .max()
        .unwrap_or(1);
    let mut sigs = vec![EMPTY_SIG; len];
    rec(trie, NodeId::ROOT, &mut sigs);
    return sigs;

    fn rec(trie: &UnibitTrie, id: NodeId, sigs: &mut [Signature]) -> Signature {
        let [l, r] = trie.children(id);
        let sl = l.map_or(EMPTY_SIG, |c| rec(trie, c, sigs));
        let sr = r.map_or(EMPTY_SIG, |c| rec(trie, c, sigs));
        let sig = combine(sl, sr);
        sigs[id.raw() as usize] = sig;
        sig
    }
}

/// Order-dependent hash combiner (inputs arrive in canonical order).
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .rotate_left(17)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 29;
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergedTrie;
    use vr_net::synth::{FamilySpec, TableSpec};
    use vr_net::{Ipv4Prefix, RouteEntry};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// Mirrors a prefix's bits (the braiding showcase: mirrored tables
    /// share nothing under plain merging, everything under braiding).
    fn mirror(prefix: Ipv4Prefix) -> Ipv4Prefix {
        let len = prefix.len();
        let mut addr = 0u32;
        for i in 0..len {
            if !prefix.bit(i) {
                addr |= 1 << (31 - i);
            }
        }
        Ipv4Prefix::must(addr, len)
    }

    #[test]
    fn arity_bounds() {
        assert!(matches!(
            BraidedTrie::from_tables(&[]),
            Err(TrieError::BadMergeArity(0))
        ));
        let too_many = vec![RoutingTable::new(); 65];
        assert!(BraidedTrie::from_tables(&too_many).is_err());
    }

    #[test]
    fn lookups_match_oracle() {
        let tables = FamilySpec {
            k: 3,
            prefixes_per_table: 300,
            shared_fraction: 0.5,
            seed: 81,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let braided = BraidedTrie::from_tables(&tables).unwrap();
        for (vnid, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(150) {
                for probe in [prefix.addr(), prefix.addr() | 1] {
                    assert_eq!(
                        braided.lookup(vnid, probe),
                        table.lookup(probe),
                        "vn {vnid} probe {probe:#010x}"
                    );
                }
            }
        }
    }

    #[test]
    fn braiding_recovers_mirrored_structure() {
        // Table B is table A with every prefix bit-mirrored: plain
        // merging shares almost nothing, braiding shares everything by
        // swapping at every node on the paths.
        let mut spec = TableSpec::paper_worst_case(82);
        spec.prefixes = 500;
        spec.include_default_route = false;
        let a = spec.generate().unwrap();
        let b = RoutingTable::from_entries(
            a.iter().map(|e| RouteEntry::new(mirror(e.prefix), e.next_hop)),
        );
        let tables = [a.clone(), b.clone()];
        let plain = MergedTrie::from_tables(&tables).unwrap();
        let braided = BraidedTrie::from_tables(&tables).unwrap();
        assert!(
            (braided.node_count() as f64) < 0.6 * plain.node_count() as f64,
            "braided {} vs plain {}",
            braided.node_count(),
            plain.node_count()
        );
        assert!(braided.braided_node_count() > 0);
        // And stays correct for both networks.
        for (vnid, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(100) {
                let probe = prefix.addr() | 1;
                assert_eq!(braided.lookup(vnid, probe), table.lookup(probe));
            }
        }
    }

    #[test]
    fn braiding_never_loses_to_separate_storage() {
        let tables = FamilySpec {
            k: 4,
            prefixes_per_table: 250,
            shared_fraction: 0.3,
            seed: 83,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let braided = BraidedTrie::from_tables(&tables).unwrap();
        let per_vn_total: usize = (0..4).map(|v| braided.vn_node_count(v)).sum();
        assert!(braided.node_count() <= per_vn_total);
        assert!(braided.node_saving() >= 0.0);
    }

    #[test]
    fn identical_tables_share_everything_without_braiding() {
        let t = TableSpec::paper_worst_case(84).generate().unwrap();
        let braided = BraidedTrie::from_tables(&[t.clone(), t.clone()]).unwrap();
        let single = crate::UnibitTrie::from_table(&t);
        assert_eq!(braided.node_count(), single.node_count());
        // Canonicalization flips some nodes, but identically for both
        // networks - lookups agree everywhere.
        for prefix in t.prefixes().take(100) {
            let probe = prefix.addr() | 1;
            assert_eq!(braided.lookup(0, probe), braided.lookup(1, probe));
            assert_eq!(braided.lookup(0, probe), t.lookup(probe));
        }
    }

    #[test]
    fn single_network_braids_trivially() {
        let t = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("192.168.0.0/16"), 2),
        ]);
        let braided = BraidedTrie::from_tables(std::slice::from_ref(&t)).unwrap();
        assert_eq!(braided.lookup(0, 0x0A00_0001), Some(1));
        assert_eq!(braided.lookup(0, 0xC0A8_0001), Some(2));
        assert_eq!(braided.lookup(0, 0x7F00_0001), None);
        assert_eq!(
            braided.node_count(),
            crate::UnibitTrie::from_table(&t).node_count()
        );
    }
}

//! Level→stage mapping and per-stage memory sizing (Mᵢ,ⱼ).
//!
//! Each trie level maps onto one pipeline stage with an independently
//! accessible memory (§V-D, refs. \[7\]\[11\]\[8\]). The paper fixes the
//! pipeline length at **28 stages** (§VI); a uni-bit IPv4 trie has up to 33
//! levels, so the mapping evenly assigns consecutive levels to stages when
//! levels exceed stages (and leaves trailing stages empty when shorter).
//!
//! Per-stage memory is split exactly as Fig. 4 splits it:
//! * **pointer memory** — internal nodes × pointer word width;
//! * **NHI memory** — leaves × NHI width × K (merged leaves store a K-wide
//!   next-hop vector indexed by VNID; K = 1 for non-merged engines).

use crate::stats::TrieStats;
use crate::{LeafPushedTrie, MergedLeafPushed, TrieError};
use serde::{Deserialize, Serialize};

/// The paper's pipeline depth N (§VI: "for all pipelines we assume a
/// length of 28 stages").
pub const PAPER_PIPELINE_STAGES: usize = 28;

/// Word widths used when translating node counts into bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Bits per internal (pointer) node word. The paper reads 18-bit wide
    /// data per BRAM access (§V-B), which is the default here.
    pub pointer_bits: u32,
    /// Bits per next-hop entry (per virtual network).
    pub nhi_bits: u32,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        Self {
            pointer_bits: 18,
            nhi_bits: 8,
        }
    }
}

/// Memory profile of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage index (0-based).
    pub stage: usize,
    /// Trie levels mapped to this stage: `[first, last]` inclusive, or
    /// `None` for an empty trailing stage.
    pub levels: Option<(u8, u8)>,
    /// Internal nodes stored in this stage.
    pub pointer_nodes: usize,
    /// Leaves stored in this stage.
    pub leaf_nodes: usize,
    /// Pointer memory in bits.
    pub pointer_bits: u64,
    /// NHI memory in bits (already multiplied by K for merged engines).
    pub nhi_bits: u64,
}

impl StageProfile {
    /// Total memory of the stage (Mᵢ,ⱼ) in bits.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.pointer_bits + self.nhi_bits
    }
}

/// Memory profile of a whole lookup pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineProfile {
    /// Per-stage profiles, length = configured stage count.
    pub stages: Vec<StageProfile>,
    /// K for merged engines (NHI width multiplier); 1 otherwise.
    pub nhi_width_multiplier: usize,
    /// Word widths used.
    pub layout: MemoryLayout,
}

impl PipelineProfile {
    /// Builds a profile from per-level statistics.
    ///
    /// # Errors
    /// Rejects zero stages and a zero NHI multiplier.
    pub fn from_stats(
        stats: &TrieStats,
        n_stages: usize,
        nhi_width_multiplier: usize,
        layout: MemoryLayout,
    ) -> Result<Self, TrieError> {
        if n_stages == 0 {
            return Err(TrieError::ZeroStages);
        }
        if nhi_width_multiplier == 0 {
            return Err(TrieError::InvalidParameter(
                "NHI width multiplier must be at least 1",
            ));
        }
        let depth = stats.depth();
        let mut stages = Vec::with_capacity(n_stages);
        for stage in 0..n_stages {
            let first = stage * depth / n_stages;
            let last = (stage + 1) * depth / n_stages;
            let (mut pointer_nodes, mut leaf_nodes) = (0usize, 0usize);
            for level in first..last {
                pointer_nodes += stats.internal_at_level(level);
                leaf_nodes += stats.leaves_at_level(level);
            }
            let levels = if first < last {
                Some((first as u8, (last - 1) as u8))
            } else {
                None
            };
            stages.push(StageProfile {
                stage,
                levels,
                pointer_nodes,
                leaf_nodes,
                pointer_bits: pointer_nodes as u64 * u64::from(layout.pointer_bits),
                nhi_bits: leaf_nodes as u64
                    * u64::from(layout.nhi_bits)
                    * nhi_width_multiplier as u64,
            });
        }
        Ok(Self {
            stages,
            nhi_width_multiplier,
            layout,
        })
    }

    /// Profile of a single-network (NV or per-VS-engine) pipeline.
    ///
    /// # Errors
    /// Rejects zero stages.
    pub fn for_single(
        trie: &LeafPushedTrie,
        n_stages: usize,
        layout: MemoryLayout,
    ) -> Result<Self, TrieError> {
        Self::from_stats(&trie.stats(), n_stages, 1, layout)
    }

    /// Profile of a merged pipeline: leaves carry K-wide NHI vectors.
    ///
    /// # Errors
    /// Rejects zero stages.
    pub fn for_merged(
        trie: &MergedLeafPushed,
        n_stages: usize,
        layout: MemoryLayout,
    ) -> Result<Self, TrieError> {
        Self::from_stats(&trie.stats(), n_stages, trie.arity(), layout)
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total pointer memory across stages, in bits (Fig. 4 left axis).
    #[must_use]
    pub fn pointer_memory_bits(&self) -> u64 {
        self.stages.iter().map(|s| s.pointer_bits).sum()
    }

    /// Total NHI memory across stages, in bits (Fig. 4 right axis).
    #[must_use]
    pub fn nhi_memory_bits(&self) -> u64 {
        self.stages.iter().map(|s| s.nhi_bits).sum()
    }

    /// Total memory (pointer + NHI) in bits.
    #[must_use]
    pub fn total_memory_bits(&self) -> u64 {
        self.pointer_memory_bits() + self.nhi_memory_bits()
    }

    /// Per-stage total memory in bits, Mᵢ,ⱼ for j = 0..N.
    #[must_use]
    pub fn per_stage_memory_bits(&self) -> Vec<u64> {
        self.stages.iter().map(StageProfile::memory_bits).collect()
    }

    /// The largest stage memory — relevant to timing: the critical stage
    /// bounds the clock (used by `vr-fpga`'s frequency model).
    #[must_use]
    pub fn max_stage_memory_bits(&self) -> u64 {
        self.per_stage_memory_bits().into_iter().max().unwrap_or(0)
    }

    /// Builds a **memory-balanced** profile: trie levels are partitioned
    /// into contiguous stage groups minimizing the *maximum* stage memory
    /// (the classic linear-partition DP). The paper's refs. \[7\]\[8\]
    /// balance per-stage memory exactly because the critical stage bounds
    /// both the clock and the BRAM waste; the `ablation_balance` bench
    /// quantifies the win over the even level-per-stage split.
    ///
    /// # Errors
    /// Rejects zero stages and a zero NHI multiplier.
    pub fn balanced(
        stats: &TrieStats,
        n_stages: usize,
        nhi_width_multiplier: usize,
        layout: MemoryLayout,
    ) -> Result<Self, TrieError> {
        if n_stages == 0 {
            return Err(TrieError::ZeroStages);
        }
        if nhi_width_multiplier == 0 {
            return Err(TrieError::InvalidParameter(
                "NHI width multiplier must be at least 1",
            ));
        }
        let depth = stats.depth();
        // Per-level memory bits.
        let level_bits: Vec<u64> = (0..depth)
            .map(|l| {
                stats.internal_at_level(l) as u64 * u64::from(layout.pointer_bits)
                    + stats.leaves_at_level(l) as u64
                        * u64::from(layout.nhi_bits)
                        * nhi_width_multiplier as u64
            })
            .collect();
        let boundaries = partition_min_max(&level_bits, n_stages.min(depth.max(1)));

        let mut stages = Vec::with_capacity(n_stages);
        for stage in 0..n_stages {
            let (first, last) = boundaries
                .get(stage)
                .copied()
                .unwrap_or((depth, depth)); // empty trailing stage
            let (mut pointer_nodes, mut leaf_nodes) = (0usize, 0usize);
            for level in first..last {
                pointer_nodes += stats.internal_at_level(level);
                leaf_nodes += stats.leaves_at_level(level);
            }
            let levels = if first < last {
                Some((first as u8, (last - 1) as u8))
            } else {
                None
            };
            stages.push(StageProfile {
                stage,
                levels,
                pointer_nodes,
                leaf_nodes,
                pointer_bits: pointer_nodes as u64 * u64::from(layout.pointer_bits),
                nhi_bits: leaf_nodes as u64
                    * u64::from(layout.nhi_bits)
                    * nhi_width_multiplier as u64,
            });
        }
        Ok(Self {
            stages,
            nhi_width_multiplier,
            layout,
        })
    }
}

/// Partitions `weights` into at most `parts` contiguous groups minimizing
/// the maximum group sum; returns half-open `(first, last)` ranges, one
/// per non-empty group. Standard O(parts × n²) DP — n ≤ 33 here.
fn partition_min_max(weights: &[u64], parts: usize) -> Vec<(usize, usize)> {
    let n = weights.len();
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    // prefix[i] = sum of weights[..i]
    let mut prefix = vec![0u64; n + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // sum of [a, b)

    // dp[p][i] = minimal max-group-sum splitting weights[..i] into p groups.
    let inf = u64::MAX;
    let mut dp = vec![vec![inf; n + 1]; parts + 1];
    let mut cut = vec![vec![0usize; n + 1]; parts + 1];
    dp[0][0] = 0;
    for p in 1..=parts {
        for i in 1..=n {
            for j in (p - 1)..i {
                if dp[p - 1][j] == inf {
                    continue;
                }
                let candidate = dp[p - 1][j].max(seg(j, i));
                if candidate < dp[p][i] {
                    dp[p][i] = candidate;
                    cut[p][i] = j;
                }
            }
        }
    }
    // Reconstruct boundaries.
    let mut bounds = Vec::with_capacity(parts);
    let mut i = n;
    let mut p = parts;
    while p > 0 {
        let j = cut[p][i];
        bounds.push((j, i));
        i = j;
        p -= 1;
    }
    bounds.reverse();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_tables;
    use crate::unibit::UnibitTrie;
    use vr_net::synth::{FamilySpec, TableSpec};

    fn single_profile(seed: u64, n_stages: usize) -> (LeafPushedTrie, PipelineProfile) {
        let table = TableSpec::paper_worst_case(seed).generate().unwrap();
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let profile = PipelineProfile::for_single(&lp, n_stages, MemoryLayout::default()).unwrap();
        (lp, profile)
    }

    #[test]
    fn zero_stages_is_rejected() {
        let (lp, _) = single_profile(1, 28);
        assert!(matches!(
            PipelineProfile::for_single(&lp, 0, MemoryLayout::default()),
            Err(TrieError::ZeroStages)
        ));
    }

    #[test]
    fn all_nodes_are_assigned_exactly_once() {
        let (lp, profile) = single_profile(5, PAPER_PIPELINE_STAGES);
        let pointer_total: usize = profile.stages.iter().map(|s| s.pointer_nodes).sum();
        let leaf_total: usize = profile.stages.iter().map(|s| s.leaf_nodes).sum();
        assert_eq!(pointer_total, lp.internal_count());
        assert_eq!(leaf_total, lp.leaf_count());
    }

    #[test]
    fn memory_accounts_match_node_counts() {
        let (lp, profile) = single_profile(6, PAPER_PIPELINE_STAGES);
        let layout = MemoryLayout::default();
        assert_eq!(
            profile.pointer_memory_bits(),
            lp.internal_count() as u64 * u64::from(layout.pointer_bits)
        );
        assert_eq!(
            profile.nhi_memory_bits(),
            lp.leaf_count() as u64 * u64::from(layout.nhi_bits)
        );
        assert_eq!(
            profile.total_memory_bits(),
            profile.pointer_memory_bits() + profile.nhi_memory_bits()
        );
    }

    #[test]
    fn more_stages_than_levels_leaves_trailing_stages_empty() {
        let (_, profile) = single_profile(7, 64);
        assert_eq!(profile.stage_count(), 64);
        let empty = profile.stages.iter().filter(|s| s.levels.is_none()).count();
        assert!(empty >= 64 - 33, "at most 33 levels exist for IPv4");
        for s in profile.stages.iter().filter(|s| s.levels.is_none()) {
            assert_eq!(s.memory_bits(), 0);
        }
    }

    #[test]
    fn fewer_stages_than_levels_covers_all_levels() {
        let (lp, profile) = single_profile(8, 4);
        let covered: usize = profile
            .stages
            .iter()
            .filter_map(|s| s.levels)
            .map(|(a, b)| usize::from(b) - usize::from(a) + 1)
            .sum();
        assert_eq!(covered, lp.stats().depth());
        // Ranges must be contiguous and non-overlapping.
        let mut next = 0u8;
        for s in &profile.stages {
            if let Some((a, b)) = s.levels {
                assert_eq!(a, next);
                assert!(b >= a);
                next = b + 1;
            }
        }
    }

    #[test]
    fn merged_profile_multiplies_nhi_width_by_k() {
        let tables = FamilySpec {
            k: 4,
            prefixes_per_table: 300,
            shared_fraction: 0.5,
            seed: 9,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let (_, pushed) = merge_tables(&tables).unwrap();
        let profile =
            PipelineProfile::for_merged(&pushed, PAPER_PIPELINE_STAGES, MemoryLayout::default())
                .unwrap();
        assert_eq!(profile.nhi_width_multiplier, 4);
        assert_eq!(
            profile.nhi_memory_bits(),
            pushed.leaf_count() as u64 * 8 * 4
        );
    }

    #[test]
    fn max_stage_memory_is_max_of_per_stage() {
        let (_, profile) = single_profile(10, PAPER_PIPELINE_STAGES);
        let per = profile.per_stage_memory_bits();
        assert_eq!(
            profile.max_stage_memory_bits(),
            per.iter().copied().max().unwrap()
        );
        assert_eq!(per.len(), PAPER_PIPELINE_STAGES);
    }

    #[test]
    fn zero_nhi_multiplier_is_rejected() {
        let (lp, _) = single_profile(11, 28);
        assert!(PipelineProfile::from_stats(&lp.stats(), 28, 0, MemoryLayout::default()).is_err());
        assert!(PipelineProfile::balanced(&lp.stats(), 28, 0, MemoryLayout::default()).is_err());
        assert!(matches!(
            PipelineProfile::balanced(&lp.stats(), 0, 1, MemoryLayout::default()),
            Err(TrieError::ZeroStages)
        ));
    }

    #[test]
    fn balanced_mapping_never_worsens_the_critical_stage() {
        for seed in [1u64, 5, 9] {
            for n_stages in [4usize, 8, 16, 28] {
                let (lp, even) = single_profile(seed, n_stages);
                let balanced = PipelineProfile::balanced(
                    &lp.stats(),
                    n_stages,
                    1,
                    MemoryLayout::default(),
                )
                .unwrap();
                assert!(
                    balanced.max_stage_memory_bits() <= even.max_stage_memory_bits(),
                    "seed {seed} N={n_stages}: balanced {} > even {}",
                    balanced.max_stage_memory_bits(),
                    even.max_stage_memory_bits()
                );
                // Same total memory, every node assigned exactly once.
                assert_eq!(balanced.total_memory_bits(), even.total_memory_bits());
                let nodes: usize = balanced
                    .stages
                    .iter()
                    .map(|s| s.pointer_nodes + s.leaf_nodes)
                    .sum();
                assert_eq!(nodes, lp.node_count());
            }
        }
    }

    #[test]
    fn balanced_mapping_improves_skewed_tries_substantially() {
        // Paper-scale tries are bottom-heavy: the even split leaves one
        // stage holding the bulge. Balancing must cut the critical stage.
        let (lp, even) = single_profile(3, 8);
        let balanced =
            PipelineProfile::balanced(&lp.stats(), 8, 1, MemoryLayout::default()).unwrap();
        assert!(
            (balanced.max_stage_memory_bits() as f64)
                < 0.9 * even.max_stage_memory_bits() as f64,
            "balanced {} vs even {}",
            balanced.max_stage_memory_bits(),
            even.max_stage_memory_bits()
        );
    }

    #[test]
    fn balanced_ranges_are_contiguous_and_ordered() {
        let (lp, _) = single_profile(7, 12);
        let balanced =
            PipelineProfile::balanced(&lp.stats(), 12, 1, MemoryLayout::default()).unwrap();
        let mut next = 0u8;
        for s in &balanced.stages {
            if let Some((a, b)) = s.levels {
                assert_eq!(a, next);
                assert!(b >= a);
                next = b + 1;
            }
        }
        assert_eq!(usize::from(next), lp.stats().depth());
    }

    mod partition_props {
        use super::super::partition_min_max;
        use proptest::prelude::*;

        /// Brute-force optimal max-group-sum by trying every cut set.
        fn brute_force(weights: &[u64], parts: usize) -> u64 {
            fn rec(weights: &[u64], parts: usize) -> u64 {
                if parts == 1 {
                    return weights.iter().sum();
                }
                let mut best = u64::MAX;
                // First group = weights[..i], i ≥ 1, leaving enough items.
                for i in 1..=(weights.len() - (parts - 1)) {
                    let head: u64 = weights[..i].iter().sum();
                    let rest = rec(&weights[i..], parts - 1);
                    best = best.min(head.max(rest));
                }
                best
            }
            rec(weights, parts.min(weights.len()))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn dp_matches_brute_force(
                weights in prop::collection::vec(0u64..1000, 1..9),
                parts in 1usize..5,
            ) {
                let bounds = partition_min_max(&weights, parts);
                // Covers every item exactly once, in order.
                let mut next = 0usize;
                for &(a, b) in &bounds {
                    prop_assert_eq!(a, next);
                    prop_assert!(b > a);
                    next = b;
                }
                prop_assert_eq!(next, weights.len());
                // Achieves the optimal max group sum.
                let achieved = bounds
                    .iter()
                    .map(|&(a, b)| weights[a..b].iter().sum::<u64>())
                    .max()
                    .unwrap();
                prop_assert_eq!(achieved, brute_force(&weights, parts));
            }
        }
    }

    #[test]
    fn partition_handles_edge_shapes() {
        // One giant level dominates: it must sit alone in its group.
        let weights = [1u64, 1, 1000, 1, 1];
        let bounds = partition_min_max(&weights, 3);
        assert_eq!(bounds.iter().map(|(a, b)| b - a).sum::<usize>(), 5);
        let max_group: u64 = bounds
            .iter()
            .map(|&(a, b)| weights[a..b].iter().sum::<u64>())
            .max()
            .unwrap();
        assert_eq!(max_group, 1000);
        // More parts than items degrades gracefully.
        assert_eq!(partition_min_max(&[5, 5], 10).len(), 2);
        assert!(partition_min_max(&[], 3).is_empty());
    }
}

//! Per-level trie statistics.
//!
//! The pipeline mapping assigns trie levels to stages, so everything the
//! power models need from a trie reduces to *per-level node counts* split
//! into leaves (NHI words) and internal nodes (pointer words).

use serde::{Deserialize, Serialize};

/// Node counts for one trie level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Nodes at this level with no children (leaves).
    pub leaves: usize,
    /// Nodes at this level with at least one child.
    pub internal: usize,
    /// Nodes at this level storing a prefix (pre-leaf-pushing property).
    pub prefix_nodes: usize,
}

impl LevelStats {
    /// Total nodes at this level.
    #[must_use]
    pub fn total(&self) -> usize {
        self.leaves + self.internal
    }
}

/// Aggregated per-level statistics for a trie.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrieStats {
    /// One entry per populated level, index = depth.
    pub levels: Vec<LevelStats>,
    /// Total node count.
    pub total_nodes: usize,
    /// Total leaf count.
    pub leaves: usize,
    /// Total internal-node count.
    pub internal: usize,
    /// Total nodes carrying a prefix.
    pub prefix_nodes: usize,
}

impl TrieStats {
    /// Records one node at `depth`.
    pub fn record(&mut self, depth: u8, is_leaf: bool, has_prefix: bool) {
        let depth = usize::from(depth);
        if self.levels.len() <= depth {
            self.levels.resize(depth + 1, LevelStats::default());
        }
        let level = &mut self.levels[depth];
        self.total_nodes += 1;
        if is_leaf {
            level.leaves += 1;
            self.leaves += 1;
        } else {
            level.internal += 1;
            self.internal += 1;
        }
        if has_prefix {
            level.prefix_nodes += 1;
            self.prefix_nodes += 1;
        }
    }

    /// Number of populated levels (max depth + 1); 0 for a statless trie.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total nodes at `level` (0 when the level is beyond the trie).
    #[must_use]
    pub fn nodes_at_level(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, LevelStats::total)
    }

    /// Leaves at `level`.
    #[must_use]
    pub fn leaves_at_level(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, |l| l.leaves)
    }

    /// Internal nodes at `level`.
    #[must_use]
    pub fn internal_at_level(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, |l| l.internal)
    }

    /// Cross-checks the aggregate counters against the per-level entries.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let leaves: usize = self.levels.iter().map(|l| l.leaves).sum();
        let internal: usize = self.levels.iter().map(|l| l.internal).sum();
        let prefixes: usize = self.levels.iter().map(|l| l.prefix_nodes).sum();
        leaves == self.leaves
            && internal == self.internal
            && prefixes == self.prefix_nodes
            && leaves + internal == self.total_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrieStats::default();
        s.record(0, false, false);
        s.record(1, true, true);
        s.record(1, true, false);
        assert_eq!(s.total_nodes, 3);
        assert_eq!(s.leaves, 2);
        assert_eq!(s.internal, 1);
        assert_eq!(s.prefix_nodes, 1);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.nodes_at_level(1), 2);
        assert_eq!(s.leaves_at_level(1), 2);
        assert_eq!(s.internal_at_level(0), 1);
        assert!(s.check_invariants());
    }

    #[test]
    fn sparse_levels_are_zero_filled() {
        let mut s = TrieStats::default();
        s.record(3, true, false);
        assert_eq!(s.depth(), 4);
        assert_eq!(s.nodes_at_level(0), 0);
        assert_eq!(s.nodes_at_level(2), 0);
        assert_eq!(s.nodes_at_level(3), 1);
        assert_eq!(s.nodes_at_level(99), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn invariant_detects_corruption() {
        let mut s = TrieStats::default();
        s.record(0, true, false);
        s.total_nodes = 5;
        assert!(!s.check_invariants());
    }
}

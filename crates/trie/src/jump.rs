//! DIR-16 jump-table front end: a 2^16-entry direct-index root table
//! fused with level-ordered sub-trie slabs.
//!
//! The flat level-slab tries ([`FlatTrie`]) fixed the *layout* of the
//! paper's pipeline memories but kept its *depth*: a /24 route still
//! costs up to 24 dependent loads from the root. Hardware IP-lookup
//! engines (DIR-24-8 and its FPGA tilings — see PAPERS.md) spend cheap
//! dense memory on the top of the trie instead: the first address bits
//! index a direct table in **one** load, and only the minority of longer
//! prefixes continue into a deeper structure.
//!
//! [`JumpTrie`] is the software rendition at a 16-bit split (DIR-16):
//!
//! * `root` — 65 536 `u32` entries, indexed by `ip >> 16`. A leaf entry
//!   (high bit set) resolves the lookup immediately with an NHI-slab
//!   slot; an internal entry is the child-base word of the covering
//!   depth-16 trie node, continuing into `words`.
//! * `words` — the depth ≥ 17 remainder of the leaf-pushed trie in the
//!   same breadth-first level-slab layout as [`FlatTrie`] (one `u32` per
//!   node, children adjacent). Because ~90 % of real routes sit at
//!   /16–/24, the remainder is shallow *and small*, so it stays
//!   cache-resident even when a full flat trie would not.
//! * `nhis` — K-wide VNID-indexed NHI vectors shared by both tiers, so
//!   one structure serves single tables (K = 1) and the virtualized
//!   merged scheme (§IV-C).
//!
//! A lookup therefore bottoms out in 1 load for prefixes at /16 or
//! shorter and `1 + (depth − 16)` loads beyond — 2–3 dependent loads for
//! the common /16–/24 band instead of 16–24.
//!
//! The structure is immutable by design: route updates build a fresh
//! `JumpTrie` and publish it atomically (see `vr-engine`'s
//! `LookupService` RCU-style swap), exactly like the hardware reloads a
//! shadow bank while the live bank keeps serving.

use crate::leafpush::LeafPushedTrie;
use crate::merge::MergedLeafPushed;
use crate::multibit::StrideTrie;
use crate::unibit::{NodeId, UnibitTrie};
use serde::{Deserialize, Serialize};
use vr_net::table::{NextHop, RoutingTable};
use vr_net::Ipv4Prefix;

/// High bit of a root entry or node word: set for leaves.
pub const LEAF_BIT: u32 = 1 << 31;
/// Low 31 bits: child base (internal) or NHI-slab slot (leaf).
pub const PAYLOAD_MASK: u32 = LEAF_BIT - 1;

/// Bits resolved by the direct-index root table.
pub const JUMP_BITS: u32 = 16;
/// Number of root-table entries (2^16).
pub const ROOT_ENTRIES: usize = 1 << JUMP_BITS;

/// Encoded `Option<NextHop>`: `0` = no route, `1 + nh` = `Some(nh)`.
pub(crate) type NhiCode = u16;

#[inline]
pub(crate) fn encode_nhi(nhi: Option<NextHop>) -> NhiCode {
    match nhi {
        Some(nh) => 1 + NhiCode::from(nh),
        None => 0,
    }
}

#[inline]
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn decode_nhi(code: NhiCode) -> Option<NextHop> {
    code.checked_sub(1).map(|v| v as NextHop)
}

/// Two-tier lookup structure: direct-indexed first 16 bits, level-slab
/// binary trie for the remainder.
///
/// ```
/// use vr_net::RoutingTable;
/// use vr_trie::JumpTrie;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.1.0/24 2\n".parse().unwrap();
/// let jump = JumpTrie::from_table(&table);
/// assert_eq!(jump.lookup(0x0A01_0103), Some(2)); // 3 loads: root + 2 levels
/// assert_eq!(jump.lookup(0x0A02_0000), Some(1)); // 1 load: root entry is final
///
/// let dsts = [0x0A01_0103, 0x0A02_0000, 0x0B00_0000];
/// let mut out = [None; 3];
/// jump.lookup_batch(&dsts, &mut out);
/// assert_eq!(out, [Some(2), Some(1), None]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JumpTrie {
    /// 2^16 direct-index entries, one per /16 bucket.
    root: Vec<u32>,
    /// Depth ≥ 17 node words, levels concatenated breadth-first
    /// (level 0 holds the depth-17 nodes).
    words: Vec<u32>,
    /// Start of each sub-slab level in `words`, plus one end sentinel.
    level_offsets: Vec<u32>,
    /// Leaf NHI vectors: `k` consecutive codes per leaf, VNID-indexed.
    nhis: Vec<NhiCode>,
    /// NHI vector width (1 for single tries, K for merged).
    k: usize,
}

/// Borrowed view of a [`JumpTrie`]'s raw encoding, consumed by the
/// `vr-audit` structural verifier. Field meanings match the private
/// fields of [`JumpTrie`] one for one.
#[derive(Debug, Clone, Copy)]
pub struct JumpTrieParts<'a> {
    /// 2^16 direct-index entries, one per /16 bucket.
    pub root: &'a [u32],
    /// Depth ≥ 17 node words, levels concatenated breadth-first.
    pub words: &'a [u32],
    /// Start of each sub-slab level in `words`, plus one end sentinel.
    pub level_offsets: &'a [u32],
    /// Leaf NHI vectors, `k` consecutive codes per leaf.
    pub nhis: &'a [u16],
    /// NHI vector width.
    pub k: usize,
}

impl JumpTrie {
    /// The raw encoding, for structural auditing and serialization.
    #[must_use]
    pub fn raw_parts(&self) -> JumpTrieParts<'_> {
        JumpTrieParts {
            root: &self.root,
            words: &self.words,
            level_offsets: &self.level_offsets,
            nhis: &self.nhis,
            k: self.k,
        }
    }

    /// Reassembles a trie from raw encoding parts **without validation** —
    /// the inverse of [`JumpTrie::raw_parts`]. This is the ingestion path
    /// for serialized table artifacts (and for the mutation tests that
    /// feed deliberately corrupt encodings to the verifier): nothing here
    /// proves the words well-formed, so callers must run the `vr-audit`
    /// structural checks before publishing the result to a datapath.
    #[must_use]
    pub fn from_raw_parts(
        root: Vec<u32>,
        words: Vec<u32>,
        level_offsets: Vec<u32>,
        nhis: Vec<u16>,
        k: usize,
    ) -> Self {
        Self {
            root,
            words,
            level_offsets,
            nhis,
            k,
        }
    }

    /// Builds the jump trie from a leaf-pushed trie (`K = 1`).
    #[must_use]
    pub fn from_leaf_pushed(trie: &LeafPushedTrie) -> Self {
        Self::build(
            trie.root(),
            1,
            |id| trie.node_children(id),
            |id, _vn| trie.node_nhi(id),
        )
    }

    /// Leaf-pushes and converts a uni-bit trie (`K = 1`).
    #[must_use]
    pub fn from_unibit(trie: &UnibitTrie) -> Self {
        Self::from_leaf_pushed(&LeafPushedTrie::from_unibit(trie))
    }

    /// Builds directly from a routing table (`K = 1`).
    #[must_use]
    pub fn from_table(table: &RoutingTable) -> Self {
        Self::from_unibit(&UnibitTrie::from_table(table))
    }

    /// Converts a K-way merged leaf-pushed trie; leaves keep their K-wide
    /// VNID-indexed NHI vectors.
    #[must_use]
    pub fn from_merged(trie: &MergedLeafPushed) -> Self {
        Self::build(
            trie.root(),
            trie.arity(),
            |id| trie.node_children(id),
            |id, vn| trie.node_nhi_for(id, vn),
        )
    }

    /// Converts a fixed-stride multi-bit trie (`K = 1`) by re-expressing
    /// its expanded entries as exact-length routes and rebuilding.
    ///
    /// Prefix expansion preserves longest-prefix-match semantics (an
    /// expanded NHI stored at level `l` stems from a route of length
    /// ≤ the level boundary, and deeper entries always win), so the
    /// reconstructed jump trie answers every lookup identically to the
    /// source stride trie.
    #[must_use]
    pub fn from_stride(trie: &StrideTrie) -> Self {
        let strides = trie.strides();
        let mut boundaries = Vec::with_capacity(strides.len());
        let mut acc = 0u8;
        for &s in strides {
            boundaries.push(acc);
            acc += s;
        }
        let mut table = RoutingTable::new();
        // BFS over (node, path-bits) pairs, mirroring the stride layout:
        // every slot with an expanded NHI becomes one exact-length route.
        let mut frontier: Vec<(u32, u32)> = vec![(0, 0)];
        let mut next: Vec<(u32, u32)> = Vec::new();
        let mut level = 0usize;
        while !frontier.is_empty() {
            let stride = strides[level];
            let len = boundaries[level] + stride;
            let shift = 32 - u32::from(len);
            for &(node, path) in &frontier {
                for slot in 0..(1u32 << stride) {
                    let addr = path | (slot << shift);
                    let (nhi, child) = trie.walk_step(node, addr);
                    if let Some(nh) = nhi {
                        table.insert(Ipv4Prefix::must(addr, len), nh);
                    }
                    if let Some(child_id) = child {
                        next.push((child_id, addr));
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        Self::from_table(&table)
    }

    /// Shared construction: descend the full binary trie to depth 16,
    /// writing final entries for leaves met on the way, then flatten the
    /// surviving depth-16 subtrees breadth-first into `words`.
    fn build(
        root: NodeId,
        k: usize,
        children: impl Fn(NodeId) -> Option<(NodeId, NodeId)>,
        nhi: impl Fn(NodeId, usize) -> Option<NextHop>,
    ) -> Self {
        assert!(k >= 1, "NHI vector width must be at least 1");
        let mut table = vec![0u32; ROOT_ENTRIES];
        let mut nhis: Vec<NhiCode> = Vec::new();
        let emit_leaf = |nhis: &mut Vec<NhiCode>, id: NodeId| -> u32 {
            let slot = u32::try_from(nhis.len() / k).expect("NHI slab overflow");
            debug_assert_eq!(slot & LEAF_BIT, 0, "jump trie too large");
            for vn in 0..k {
                nhis.push(encode_nhi(nhi(id, vn)));
            }
            LEAF_BIT | slot
        };

        // Iterative descent to depth 16. `stack` holds (node, index of the
        // first covered /16 bucket, depth); a leaf above the cut covers a
        // whole aligned run of buckets and is emitted once.
        let mut subtrees: Vec<NodeId> = Vec::new(); // depth-16 internal nodes
        let mut subtree_buckets: Vec<usize> = Vec::new(); // their root slots
        let mut stack: Vec<(NodeId, usize, u32)> = vec![(root, 0, 0)];
        while let Some((id, bucket, depth)) = stack.pop() {
            match children(id) {
                None => {
                    let entry = emit_leaf(&mut nhis, id);
                    let run = 1usize << (JUMP_BITS - depth);
                    table[bucket..bucket + run].fill(entry);
                }
                Some((l, r)) if depth < JUMP_BITS => {
                    let half = 1usize << (JUMP_BITS - depth - 1);
                    stack.push((r, bucket + half, depth + 1));
                    stack.push((l, bucket, depth + 1));
                }
                Some(_) => {
                    // Internal node exactly at the cut: its children open
                    // the sub-slab; the entry is patched below once the
                    // child base is known.
                    subtree_buckets.push(bucket);
                    subtrees.push(id);
                }
            }
        }

        // Flatten all surviving subtrees together, level by level: the
        // frontier of depth-17 nodes is the children of every depth-16
        // internal node, emitted adjacently — so a root entry is simply
        // the base index of its two children, the same encoding as an
        // internal FlatTrie word.
        let mut words: Vec<u32> = Vec::new();
        let mut level_offsets = vec![0u32];
        let mut frontier: Vec<NodeId> = Vec::with_capacity(subtrees.len() * 2);
        for (&id, &bucket) in subtrees.iter().zip(&subtree_buckets) {
            let (l, r) = children(id).expect("subtree roots are internal");
            let child_base = u32::try_from(frontier.len()).expect("jump trie too large");
            debug_assert_eq!(child_base & LEAF_BIT, 0, "jump trie too large");
            table[bucket] = child_base;
            frontier.push(l);
            frontier.push(r);
        }
        let mut next: Vec<NodeId> = Vec::new();
        while !frontier.is_empty() {
            let next_offset = u32::try_from(words.len() + frontier.len())
                .expect("jump trie exceeds u32 words");
            for &id in &frontier {
                match children(id) {
                    Some((l, r)) => {
                        let child_base = next_offset + u32::try_from(next.len()).unwrap();
                        debug_assert_eq!(child_base & LEAF_BIT, 0, "jump trie too large");
                        words.push(child_base);
                        next.push(l);
                        next.push(r);
                    }
                    None => words.push(emit_leaf(&mut nhis, id)),
                }
            }
            level_offsets.push(next_offset);
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        Self {
            root: table,
            words,
            level_offsets,
            nhis,
            k,
        }
    }

    /// NHI vector width (1, or K for merged tries).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Node words stored below the jump table (depth ≥ 17 remainder).
    #[must_use]
    pub fn sub_node_count(&self) -> usize {
        self.words.len()
    }

    /// Number of sub-slab levels (the deepest lookup costs one root load
    /// plus this many word loads).
    #[must_use]
    pub fn sub_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Number of NHI vectors stored.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nhis.len() / self.k
    }

    /// Fraction of root entries that resolve in a single load.
    #[must_use]
    pub fn direct_hit_fraction(&self) -> f64 {
        let direct = self.root.iter().filter(|&&e| e & LEAF_BIT != 0).count();
        direct as f64 / ROOT_ENTRIES as f64
    }

    /// Memory footprint in bits `(root, sub-slab pointer words, NHI
    /// entries)`, the Fig. 4-style split extended with the DIR table.
    #[must_use]
    pub fn memory_bits(&self, nhi_bits: u64) -> (u64, u64, u64) {
        (
            self.root.len() as u64 * 32,
            self.words.len() as u64 * 32,
            self.nhis.len() as u64 * nhi_bits,
        )
    }

    /// Longest-prefix match in VN 0 (the only VN for single tries).
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        self.lookup_vn(0, ip)
    }

    /// Longest-prefix match for `ip` in virtual network `vnid`.
    #[must_use]
    pub fn lookup_vn(&self, vnid: usize, ip: u32) -> Option<NextHop> {
        debug_assert!(vnid < self.k);
        let mut word = self.root[(ip >> JUMP_BITS) as usize];
        let mut level = JUMP_BITS;
        while word & LEAF_BIT == 0 {
            debug_assert!(level < 32, "full trie deeper than address width");
            let bit = (ip >> (31 - level)) & 1;
            word = self.words[(word + bit) as usize];
            level += 1;
        }
        let slot = (word & PAYLOAD_MASK) as usize;
        decode_nhi(self.nhis[slot * self.k + vnid])
    }

    /// Batched longest-prefix match in VN 0: element `i` of `out`
    /// receives exactly `self.lookup(dsts[i])`.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        self.lookup_batch_vn(0, dsts, out);
    }

    /// Batched longest-prefix match in one virtual network, via the
    /// lane-interleaved stepper (see [`crate::lane`]): a fixed-width
    /// group of in-flight keys advances one DIR-16 + sub-slab stage per
    /// iteration with each lane's next word prefetched a stage ahead,
    /// retiring and refilling lanes so divergent-depth keys never stall
    /// the group. Allocation-free.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch_vn(&self, vnid: usize, dsts: &[u32], out: &mut [Option<NextHop>]) {
        crate::lane::lookup_lanes_vn::<{ crate::lane::DEFAULT_LANE_WIDTH }>(
            self, vnid, dsts, out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergedTrie;
    use vr_net::synth::TableSpec;

    fn table(text: &str) -> RoutingTable {
        text.parse().unwrap()
    }

    fn probes(table: &RoutingTable) -> Vec<u32> {
        let mut probes: Vec<u32> = table
            .prefixes()
            .flat_map(|p| [p.addr(), p.addr() | 0xFF, p.addr().wrapping_sub(1)])
            .collect();
        probes.extend([0, 1, u32::MAX, 0x8000_0000, 0x0000_FFFF, 0x0001_0000]);
        probes
    }

    #[test]
    fn empty_trie_resolves_everything_to_none() {
        let jump = JumpTrie::from_unibit(&UnibitTrie::new());
        assert_eq!(jump.sub_node_count(), 0);
        assert_eq!(jump.sub_levels(), 0);
        assert_eq!(jump.leaf_count(), 1);
        assert!((jump.direct_hit_fraction() - 1.0).abs() < f64::EPSILON);
        assert_eq!(jump.lookup(0), None);
        assert_eq!(jump.lookup(u32::MAX), None);
        let mut out = [Some(7)];
        jump.lookup_batch(&[123], &mut out);
        assert_eq!(out, [None]);
    }

    #[test]
    fn matches_table_oracle_across_prefix_lengths() {
        let t = table(
            "0.0.0.0/0 9\n10.0.0.0/8 1\n10.1.0.0/16 2\n10.1.1.0/24 3\n\
             10.1.1.1/32 4\n192.168.0.0/17 5\n128.0.0.0/1 6\n",
        );
        let jump = JumpTrie::from_table(&t);
        for ip in probes(&t) {
            assert_eq!(jump.lookup(ip), t.lookup(ip), "ip {ip:#010x}");
        }
    }

    #[test]
    fn short_prefixes_resolve_in_the_root_table() {
        // All routes at /16 or shorter: no sub-slab at all.
        let t = table("10.0.0.0/8 1\n10.1.0.0/16 2\n0.0.0.0/0 3\n");
        let jump = JumpTrie::from_table(&t);
        assert_eq!(jump.sub_node_count(), 0);
        assert!((jump.direct_hit_fraction() - 1.0).abs() < f64::EPSILON);
        for ip in probes(&t) {
            assert_eq!(jump.lookup(ip), t.lookup(ip));
        }
    }

    #[test]
    fn paper_scale_parity_with_flat_and_oracle() {
        let t = TableSpec::paper_worst_case(11).generate().unwrap();
        let flat = crate::FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let jump = JumpTrie::from_table(&t);
        let dsts = probes(&t);
        let mut out = vec![None; dsts.len()];
        jump.lookup_batch(&dsts, &mut out);
        for (i, &ip) in dsts.iter().enumerate() {
            let expect = t.lookup(ip);
            assert_eq!(jump.lookup(ip), expect, "scalar ip {ip:#010x}");
            assert_eq!(flat.lookup(ip), expect, "flat ip {ip:#010x}");
            assert_eq!(out[i], expect, "batch ip {ip:#010x}");
        }
        // The sub-slabs only hold the > /16 remainder.
        assert!(jump.sub_levels() <= 16);
        assert!(jump.sub_node_count() < flat.node_count());
    }

    #[test]
    fn merged_jump_serves_every_vn() {
        let tables = [
            table("10.0.0.0/8 1\n10.1.1.0/24 2\n"),
            table("10.0.0.0/8 7\n172.16.0.0/12 8\n172.16.5.0/26 9\n"),
            table(""),
        ];
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let jump = JumpTrie::from_merged(&merged.leaf_pushed());
        assert_eq!(jump.arity(), 3);
        for (vn, t) in tables.iter().enumerate() {
            for ip in probes(t) {
                assert_eq!(jump.lookup_vn(vn, ip), t.lookup(ip), "vn {vn} ip {ip:#010x}");
            }
            let dsts = probes(t);
            let mut out = vec![None; dsts.len()];
            jump.lookup_batch_vn(vn, &dsts, &mut out);
            for (i, &ip) in dsts.iter().enumerate() {
                assert_eq!(out[i], t.lookup(ip));
            }
        }
    }

    #[test]
    fn from_stride_matches_the_stride_trie() {
        let t = TableSpec::paper_worst_case(5).generate().unwrap();
        for strides in [&[8u8, 8, 8, 8][..], &[4; 8][..], &[6, 6, 6, 6, 4, 4][..]] {
            let stride = StrideTrie::from_table(&t, strides).unwrap();
            let jump = JumpTrie::from_stride(&stride);
            for ip in probes(&t) {
                assert_eq!(jump.lookup(ip), stride.lookup(ip), "ip {ip:#010x}");
                assert_eq!(jump.lookup(ip), t.lookup(ip), "oracle ip {ip:#010x}");
            }
        }
    }

    #[test]
    fn memory_split_accounts_every_word() {
        let t = TableSpec::paper_worst_case(3).generate().unwrap();
        let jump = JumpTrie::from_table(&t);
        let (root_bits, word_bits, nhi_bits) = jump.memory_bits(8);
        assert_eq!(root_bits, (ROOT_ENTRIES as u64) * 32);
        assert_eq!(word_bits, jump.sub_node_count() as u64 * 32);
        assert_eq!(nhi_bits, jump.leaf_count() as u64 * 8);
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let jump = JumpTrie::from_unibit(&UnibitTrie::new());
        jump.lookup_batch(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "batch destination and output slices must match")]
    fn mismatched_batch_lengths_panic() {
        let jump = JumpTrie::from_unibit(&UnibitTrie::new());
        let mut out = [None; 2];
        jump.lookup_batch(&[1, 2, 3], &mut out);
    }
}

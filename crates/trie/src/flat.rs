//! Level-ordered (CSR-style) flat trie storage — the software rendition of
//! the paper's per-stage pipeline BRAMs (§V-D).
//!
//! The pointer tries in this crate ([`UnibitTrie`], [`LeafPushedTrie`],
//! [`MergedLeafPushed`]) allocate nodes in insertion order, so a lookup
//! walking root→leaf hops across unrelated arena slots: every level is a
//! potential cache miss on a line holding mostly foreign nodes. The
//! hardware design has no such problem — stage `i` owns a private BRAM
//! holding *exactly* the level-`i` nodes, addressed by a compact offset
//! from stage `i−1`.
//!
//! [`FlatTrie`] mirrors that layout in memory: nodes are stored
//! breadth-first, one contiguous slab per level, each node packed into a
//! single `u32` word. Internal-node words hold the absolute index of the
//! left child (children of a full binary trie are emitted adjacently, so
//! one offset addresses both); leaf words hold an index into a separate
//! NHI slab, matching the paper's split of pipeline memory into "pointer"
//! and "NHI" words (Fig. 4). The NHI slab is `K` entries wide per leaf so
//! one structure serves both single tries (`K = 1`) and the K-way merged
//! scheme's VNID-indexed vectors (§IV-C).
//!
//! [`FlatStrideTrie`] applies the same discipline to the fixed-stride
//! multi-bit trie: per-level entry slabs, one `u64` word per entry
//! (expanded NHI + child base offset).
//!
//! Both types offer `lookup` (scalar oracle shape) and `lookup_batch`
//! (stage-lockstep software pipelining): a batch of B destinations is
//! advanced one level per pass, so each pass streams through a single
//! level slab with B independent loads in flight instead of B dependent
//! pointer chases — the same trick that lets the hardware keep one lookup
//! per stage per cycle.

use crate::leafpush::LeafPushedTrie;
use crate::merge::MergedLeafPushed;
use crate::multibit::StrideTrie;
use crate::unibit::{NodeId, UnibitTrie};
use serde::{Deserialize, Serialize};
use vr_net::table::NextHop;

/// High bit of a node word: set for leaves.
pub const LEAF_BIT: u32 = 1 << 31;
/// Low 31 bits of a node word: child base (internal) or NHI-slab slot (leaf).
pub const PAYLOAD_MASK: u32 = LEAF_BIT - 1;

/// Encoded `Option<NextHop>`: `0` = no route, `1 + nh` = `Some(nh)`.
type NhiCode = u16;

#[inline]
fn encode_nhi(nhi: Option<NextHop>) -> NhiCode {
    match nhi {
        Some(nh) => 1 + NhiCode::from(nh),
        None => 0,
    }
}

#[inline]
#[allow(clippy::cast_possible_truncation)]
fn decode_nhi(code: NhiCode) -> Option<NextHop> {
    code.checked_sub(1).map(|v| v as NextHop)
}

/// A full binary trie stored level-by-level in contiguous arrays.
///
/// Built from any of the crate's binary-trie representations; lookups are
/// semantically identical to the source structure's (leaf pushing
/// preserves longest-prefix-match results).
///
/// ```
/// use vr_net::RoutingTable;
/// use vr_trie::{FlatTrie, UnibitTrie};
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.0.0/16 2\n".parse().unwrap();
/// let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&table));
/// assert_eq!(flat.lookup(0x0A01_0000), Some(2));
///
/// let dsts = [0x0A01_0000, 0x0A02_0000, 0x0B00_0000];
/// let mut out = [None; 3];
/// flat.lookup_batch(&dsts, &mut out);
/// assert_eq!(out, [Some(2), Some(1), None]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatTrie {
    /// Node words, levels concatenated in breadth-first order.
    words: Vec<u32>,
    /// Start of each level in `words`, plus one end sentinel.
    level_offsets: Vec<u32>,
    /// Leaf NHI vectors: `k` consecutive codes per leaf, indexed by VNID.
    nhis: Vec<NhiCode>,
    /// NHI vector width (1 for single tries, K for merged).
    k: usize,
}

/// Borrowed view of a [`FlatTrie`]'s raw encoding, consumed by the
/// `vr-audit` structural verifier. Field meanings match the private
/// fields of [`FlatTrie`] one for one.
#[derive(Debug, Clone, Copy)]
pub struct FlatTrieParts<'a> {
    /// Node words, levels concatenated breadth-first.
    pub words: &'a [u32],
    /// Start of each level in `words`, plus one end sentinel.
    pub level_offsets: &'a [u32],
    /// Leaf NHI vectors, `k` consecutive codes per leaf.
    pub nhis: &'a [u16],
    /// NHI vector width.
    pub k: usize,
}

impl FlatTrie {
    /// Flattens a leaf-pushed trie (`K = 1`).
    #[must_use]
    pub fn from_leaf_pushed(trie: &LeafPushedTrie) -> Self {
        Self::build(
            trie.root(),
            trie.node_count(),
            1,
            |id| trie.node_children(id),
            |id, _vn| trie.node_nhi(id),
        )
    }

    /// Leaf-pushes and flattens a uni-bit trie (`K = 1`).
    #[must_use]
    pub fn from_unibit(trie: &UnibitTrie) -> Self {
        Self::from_leaf_pushed(&LeafPushedTrie::from_unibit(trie))
    }

    /// Flattens a K-way merged leaf-pushed trie; leaves keep their K-wide
    /// VNID-indexed NHI vectors.
    #[must_use]
    pub fn from_merged(trie: &MergedLeafPushed) -> Self {
        Self::build(
            trie.root(),
            trie.node_count(),
            trie.arity(),
            |id| trie.node_children(id),
            |id, vn| trie.node_nhi_for(id, vn),
        )
    }

    /// Breadth-first flattening over any full-binary node accessor pair.
    fn build(
        root: NodeId,
        node_count: usize,
        k: usize,
        children: impl Fn(NodeId) -> Option<(NodeId, NodeId)>,
        nhi: impl Fn(NodeId, usize) -> Option<NextHop>,
    ) -> Self {
        assert!(k >= 1, "NHI vector width must be at least 1");
        let mut words = Vec::with_capacity(node_count);
        let mut level_offsets = vec![0u32];
        let mut nhis = Vec::new();
        let mut frontier = vec![root];
        let mut next = Vec::new();
        while !frontier.is_empty() {
            // Children of this level are emitted adjacently into the next
            // level's slab, whose absolute start is already known.
            let next_offset = u32::try_from(words.len() + frontier.len())
                .expect("flat trie exceeds u32 words");
            for &id in &frontier {
                match children(id) {
                    Some((l, r)) => {
                        let child_base = next_offset + u32::try_from(next.len()).unwrap();
                        debug_assert_eq!(child_base & LEAF_BIT, 0, "flat trie too large");
                        words.push(child_base);
                        next.push(l);
                        next.push(r);
                    }
                    None => {
                        let slot = u32::try_from(nhis.len() / k).expect("NHI slab overflow");
                        words.push(LEAF_BIT | slot);
                        for vn in 0..k {
                            nhis.push(encode_nhi(nhi(id, vn)));
                        }
                    }
                }
            }
            level_offsets.push(next_offset);
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        Self {
            words,
            level_offsets,
            nhis,
            k,
        }
    }

    /// The raw encoding, for structural auditing and serialization.
    #[must_use]
    pub fn raw_parts(&self) -> FlatTrieParts<'_> {
        FlatTrieParts {
            words: &self.words,
            level_offsets: &self.level_offsets,
            nhis: &self.nhis,
            k: self.k,
        }
    }

    /// Reassembles a trie from raw encoding parts **without validation** —
    /// the inverse of [`FlatTrie::raw_parts`]. Intended for deserialized
    /// artifacts and for the mutation tests that feed deliberately corrupt
    /// encodings to the `vr-audit` verifier. Lookups on malformed parts
    /// may panic or return wrong routes; run the audit first.
    #[must_use]
    pub fn from_raw_parts(
        words: Vec<u32>,
        level_offsets: Vec<u32>,
        nhis: Vec<u16>,
        k: usize,
    ) -> Self {
        Self {
            words,
            level_offsets,
            nhis,
            k,
        }
    }

    /// NHI vector width (1, or K for merged tries).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Total node words.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.words.len()
    }

    /// Number of levels (pipeline stages a lookup can traverse).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Number of leaves (NHI vectors stored).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nhis.len() / self.k
    }

    /// The node words of one level — the contents of that stage's BRAM.
    #[must_use]
    pub fn stage_slab(&self, level: usize) -> &[u32] {
        let lo = self.level_offsets[level] as usize;
        let hi = self.level_offsets[level + 1] as usize;
        &self.words[lo..hi]
    }

    /// Longest-prefix match in VN 0 (the only VN for single tries).
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        self.lookup_vn(0, ip)
    }

    /// Longest-prefix match for `ip` in virtual network `vnid`.
    #[must_use]
    pub fn lookup_vn(&self, vnid: usize, ip: u32) -> Option<NextHop> {
        debug_assert!(vnid < self.k);
        let mut word = self.words[0];
        let mut level = 0u32;
        while word & LEAF_BIT == 0 {
            debug_assert!(level < 32, "full trie deeper than address width");
            let bit = (ip >> (31 - level)) & 1;
            word = self.words[(word + bit) as usize];
            level += 1;
        }
        let slot = (word & PAYLOAD_MASK) as usize;
        decode_nhi(self.nhis[slot * self.k + vnid])
    }

    /// Batched longest-prefix match in VN 0: element `i` of `out` receives
    /// exactly `self.lookup(dsts[i])`.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        self.lookup_batch_vn(0, dsts, out);
    }

    /// Batched longest-prefix match in one virtual network, advancing every
    /// in-flight destination one level per pass (stage lockstep).
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch_vn(&self, vnid: usize, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        debug_assert!(vnid < self.k);
        let root = self.words[0];
        if root & LEAF_BIT != 0 {
            let nh = decode_nhi(self.nhis[(root & PAYLOAD_MASK) as usize * self.k + vnid]);
            out.fill(nh);
            return;
        }
        // `cursor[i]` is the word packet `i` is parked at. Each pass is one
        // linear lane sweep advancing every unresolved packet one level —
        // the loads within a pass are independent, so they overlap instead
        // of forming one long dependency chain per packet. While most lanes
        // are live, resolved lanes keep their leaf word and are skipped by
        // the `LEAF_BIT` test: a dense zip sweep beats maintaining an index
        // list. Once under an eighth of the batch survives, the stragglers
        // finish with plain scalar chases — a handful of lanes gains
        // nothing from lockstep, and this stops a single /32 route from
        // dragging the whole batch through 32 tag-test passes (the cause
        // of the flat batch speedup collapsing to ~1x at paper scale).
        let mut cursor: Vec<u32> = vec![root; dsts.len()];
        let mut remaining = dsts.len();
        let mut level = 0u32;
        while remaining * 8 >= dsts.len() && remaining > 0 {
            debug_assert!(level < 32, "full trie deeper than address width");
            for (cur, (&dst, slot)) in cursor.iter_mut().zip(dsts.iter().zip(out.iter_mut())) {
                let word = *cur;
                if word & LEAF_BIT != 0 {
                    continue;
                }
                let bit = (dst >> (31 - level)) & 1;
                let next = self.words[(word + bit) as usize];
                if next & LEAF_BIT != 0 {
                    *slot = decode_nhi(self.nhis[(next & PAYLOAD_MASK) as usize * self.k + vnid]);
                    remaining -= 1;
                }
                *cur = next;
            }
            level += 1;
        }
        if remaining > 0 {
            for (cur, (&dst, slot)) in cursor.iter().zip(dsts.iter().zip(out.iter_mut())) {
                let mut word = *cur;
                if word & LEAF_BIT != 0 {
                    continue;
                }
                let mut lvl = level;
                while word & LEAF_BIT == 0 {
                    debug_assert!(lvl < 32, "full trie deeper than address width");
                    let bit = (dst >> (31 - lvl)) & 1;
                    word = self.words[(word + bit) as usize];
                    lvl += 1;
                }
                *slot = decode_nhi(self.nhis[(word & PAYLOAD_MASK) as usize * self.k + vnid]);
            }
        }
    }

    /// Pointer-word and NHI-entry memory footprint in bits, mirroring the
    /// paper's Fig. 4 split (pointer words vs NHI words).
    #[must_use]
    pub fn memory_bits(&self, nhi_bits: u64) -> (u64, u64) {
        let pointer_bits = self.words.len() as u64 * 32;
        let nhi_total = self.nhis.len() as u64 * nhi_bits;
        (pointer_bits, nhi_total)
    }
}

/// A fixed-stride multi-bit trie flattened into per-level entry slabs.
///
/// Each entry is one `u64` word packing the expanded NHI with the absolute
/// base offset of the child node's entry block in the next level's slab
/// (`0` = no child; stored offset is `base + 1`).
///
/// ```
/// use vr_net::RoutingTable;
/// use vr_trie::{FlatStrideTrie, StrideTrie};
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.32.0.0/11 2\n".parse().unwrap();
/// let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
/// let flat = FlatStrideTrie::from_stride(&stride);
/// assert_eq!(flat.lookup(0x0A20_0001), Some(2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatStrideTrie {
    /// Entry words, levels concatenated; each node is a `2^stride` run.
    entries: Vec<u64>,
    /// Start of each level in `entries`, plus one end sentinel.
    level_offsets: Vec<u64>,
    /// Stride schedule (bits consumed per level).
    strides: Vec<u8>,
    /// Bits consumed before each level.
    boundaries: Vec<u8>,
}

/// Borrowed view of a [`FlatStrideTrie`]'s raw encoding, consumed by the
/// `vr-audit` structural verifier.
#[derive(Debug, Clone, Copy)]
pub struct FlatStrideParts<'a> {
    /// Entry words, levels concatenated; each node is a `2^stride` run.
    pub entries: &'a [u64],
    /// Start of each level in `entries`, plus one end sentinel.
    pub level_offsets: &'a [u64],
    /// Stride schedule (bits consumed per level).
    pub strides: &'a [u8],
}

/// Bit position of the expanded NHI code inside a stride entry word.
pub const NHI_SHIFT: u32 = 32;

#[inline]
fn pack_entry(nhi: Option<NextHop>, child_base: Option<u64>) -> u64 {
    let child = match child_base {
        Some(base) => base + 1,
        None => 0,
    };
    debug_assert!(child <= u64::from(u32::MAX), "flat stride trie too large");
    (u64::from(encode_nhi(nhi)) << NHI_SHIFT) | child
}

impl FlatStrideTrie {
    /// Flattens a stride trie, preserving its stride schedule.
    #[must_use]
    pub fn from_stride(trie: &StrideTrie) -> Self {
        let strides = trie.strides().to_vec();
        let mut boundaries = Vec::with_capacity(strides.len());
        let mut acc = 0u8;
        for &s in &strides {
            boundaries.push(acc);
            acc += s;
        }

        let mut entries = Vec::with_capacity(trie.entry_count());
        let mut level_offsets = vec![0u64];
        // Frontier of source node ids (root is node 0 by construction).
        let mut frontier: Vec<u32> = vec![0];
        let mut next: Vec<u32> = Vec::new();
        let mut level = 0usize;
        while !frontier.is_empty() {
            let node_width = 1u64 << strides[level];
            let next_width = strides.get(level + 1).map(|&s| 1u64 << s);
            let next_offset = entries.len() as u64 + frontier.len() as u64 * node_width;
            for &node in &frontier {
                for slot in 0..node_width {
                    // Re-read the source entry through the per-stage walk
                    // API by synthesizing an address whose bits at this
                    // level select `slot`.
                    let shift = 32 - boundaries[level] - strides[level];
                    #[allow(clippy::cast_possible_truncation)]
                    let probe = (slot as u32) << shift;
                    let (nhi, child) = trie.walk_step(node, probe);
                    let packed = match child {
                        Some(child_id) => {
                            let width = next_width.expect("child below deepest level");
                            let base = next_offset + next.len() as u64 * width;
                            next.push(child_id);
                            pack_entry(nhi, Some(base))
                        }
                        None => pack_entry(nhi, None),
                    };
                    entries.push(packed);
                }
            }
            level_offsets.push(next_offset);
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        // Levels the table never reached still get (empty) slabs so
        // `level_offsets` always covers the full schedule.
        while level_offsets.len() <= strides.len() {
            level_offsets.push(entries.len() as u64);
        }
        Self {
            entries,
            level_offsets,
            strides,
            boundaries,
        }
    }

    /// The raw encoding, for structural auditing and serialization.
    #[must_use]
    pub fn raw_parts(&self) -> FlatStrideParts<'_> {
        FlatStrideParts {
            entries: &self.entries,
            level_offsets: &self.level_offsets,
            strides: &self.strides,
        }
    }

    /// Reassembles a trie from raw encoding parts **without validation**
    /// (boundaries are recomputed from the stride schedule). Intended for
    /// deserialized artifacts and the `vr-audit` mutation tests; run the
    /// audit before trusting lookups.
    #[must_use]
    pub fn from_raw_parts(entries: Vec<u64>, level_offsets: Vec<u64>, strides: Vec<u8>) -> Self {
        let mut boundaries = Vec::with_capacity(strides.len());
        let mut acc = 0u8;
        for &s in &strides {
            boundaries.push(acc);
            acc = acc.saturating_add(s);
        }
        Self {
            entries,
            level_offsets,
            strides,
            boundaries,
        }
    }

    /// The stride schedule.
    #[must_use]
    pub fn strides(&self) -> &[u8] {
        &self.strides
    }

    /// Total entry words.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The entry words of one level — that stage's BRAM contents.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn stage_slab(&self, level: usize) -> &[u64] {
        let lo = self.level_offsets[level] as usize;
        let hi = self.level_offsets[level + 1] as usize;
        &self.entries[lo..hi]
    }

    #[inline]
    fn slot_bits(&self, ip: u32, level: usize) -> u64 {
        let stride = self.strides[level];
        let shift = 32 - self.boundaries[level] - stride;
        u64::from((ip >> shift) & ((1u32 << stride) - 1))
    }

    /// Longest-prefix match for `ip`.
    ///
    /// Expanded NHIs found deeper always stem from longer prefixes, so the
    /// running result is simply overwritten per level (same argument as
    /// [`StrideTrie::walk_step`]).
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        let mut base = 0u64;
        let mut best = 0u16;
        for level in 0..self.strides.len() {
            #[allow(clippy::cast_possible_truncation)]
            let word = self.entries[(base + self.slot_bits(ip, level)) as usize];
            let nhi = (word >> NHI_SHIFT) as u16;
            if nhi != 0 {
                best = nhi;
            }
            let child = word & u64::from(u32::MAX);
            if child == 0 {
                break;
            }
            base = child - 1;
        }
        decode_nhi(best)
    }

    /// Batched longest-prefix match, stage-lockstep: element `i` of `out`
    /// receives exactly `self.lookup(dsts[i])`.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        // `base[i]` is the node-block base packet `i` reads next level
        // (`DONE` once the walk fell off the trie). A plain lane sweep per
        // level keeps the per-level entry loads independent without the
        // cost of compacting an index list — stride schedules are at most
        // a handful of levels deep, so there is no long tail to trim.
        const DONE: u64 = u64::MAX;
        let mut base: Vec<u64> = vec![0; dsts.len()];
        let mut best: Vec<u16> = vec![0; dsts.len()];
        let mut remaining = dsts.len();
        for level in 0..self.strides.len() {
            if remaining == 0 {
                break;
            }
            for (cur, (&dst, best)) in base.iter_mut().zip(dsts.iter().zip(best.iter_mut())) {
                let node = *cur;
                if node == DONE {
                    continue;
                }
                #[allow(clippy::cast_possible_truncation)]
                let word = self.entries[(node + self.slot_bits(dst, level)) as usize];
                let nhi = (word >> NHI_SHIFT) as u16;
                if nhi != 0 {
                    *best = nhi;
                }
                let child = word & u64::from(u32::MAX);
                if child == 0 {
                    *cur = DONE;
                    remaining -= 1;
                } else {
                    *cur = child - 1;
                }
            }
        }
        for (slot, nhi) in out.iter_mut().zip(best) {
            *slot = decode_nhi(nhi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergedTrie;
    use vr_net::synth::TableSpec;
    use vr_net::RoutingTable;

    fn table(text: &str) -> RoutingTable {
        text.parse().unwrap()
    }

    fn probes(table: &RoutingTable) -> Vec<u32> {
        let mut probes: Vec<u32> = table
            .prefixes()
            .flat_map(|p| [p.addr(), p.addr() | 0xFF, p.addr().wrapping_sub(1)])
            .collect();
        probes.extend([0, 1, u32::MAX, 0x8000_0000]);
        probes
    }

    #[test]
    fn empty_trie_is_a_single_leaf() {
        let flat = FlatTrie::from_unibit(&UnibitTrie::new());
        assert_eq!(flat.node_count(), 1);
        assert_eq!(flat.levels(), 1);
        assert_eq!(flat.leaf_count(), 1);
        assert_eq!(flat.lookup(0), None);
        let mut out = [Some(7)];
        flat.lookup_batch(&[123], &mut out);
        assert_eq!(out, [None]);
    }

    #[test]
    fn flat_matches_source_structures() {
        let t = table("0.0.0.0/0 9\n10.0.0.0/8 1\n10.1.0.0/16 2\n192.168.0.0/24 3\n");
        let unibit = UnibitTrie::from_table(&t);
        let pushed = LeafPushedTrie::from_unibit(&unibit);
        let flat = FlatTrie::from_leaf_pushed(&pushed);
        assert_eq!(flat.node_count(), pushed.node_count());
        for ip in probes(&t) {
            assert_eq!(flat.lookup(ip), t.lookup(ip), "ip {ip:#010x}");
        }
    }

    #[test]
    fn level_offsets_partition_the_words() {
        let t = TableSpec::paper_worst_case(3).generate().unwrap();
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let total: usize = (0..flat.levels()).map(|l| flat.stage_slab(l).len()).sum();
        assert_eq!(total, flat.node_count());
        // Level 0 is exactly the root.
        assert_eq!(flat.stage_slab(0).len(), 1);
    }

    #[test]
    fn batch_matches_scalar_at_paper_scale() {
        let t = TableSpec::paper_worst_case(11).generate().unwrap();
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let dsts = probes(&t);
        let mut out = vec![None; dsts.len()];
        flat.lookup_batch(&dsts, &mut out);
        for (i, &ip) in dsts.iter().enumerate() {
            assert_eq!(out[i], t.lookup(ip), "ip {ip:#010x}");
        }
    }

    #[test]
    fn merged_flat_serves_every_vn() {
        let tables = [
            table("10.0.0.0/8 1\n10.1.0.0/16 2\n"),
            table("10.0.0.0/8 7\n172.16.0.0/12 8\n"),
            table(""),
        ];
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let flat = FlatTrie::from_merged(&merged.leaf_pushed());
        assert_eq!(flat.arity(), 3);
        for (vn, t) in tables.iter().enumerate() {
            for ip in probes(t) {
                assert_eq!(flat.lookup_vn(vn, ip), t.lookup(ip), "vn {vn} ip {ip:#010x}");
            }
            let dsts = probes(t);
            let mut out = vec![None; dsts.len()];
            flat.lookup_batch_vn(vn, &dsts, &mut out);
            for (i, &ip) in dsts.iter().enumerate() {
                assert_eq!(out[i], t.lookup(ip));
            }
        }
    }

    #[test]
    fn flat_stride_matches_source() {
        let t = TableSpec::paper_worst_case(5).generate().unwrap();
        for strides in [&[8u8, 8, 8, 8][..], &[4; 8][..], &[6, 6, 6, 6, 4, 4][..]] {
            let stride = StrideTrie::from_table(&t, strides).unwrap();
            let flat = FlatStrideTrie::from_stride(&stride);
            assert_eq!(flat.entry_count(), stride.entry_count());
            let dsts = probes(&t);
            let mut out = vec![None; dsts.len()];
            flat.lookup_batch(&dsts, &mut out);
            for (i, &ip) in dsts.iter().enumerate() {
                assert_eq!(flat.lookup(ip), t.lookup(ip), "scalar ip {ip:#010x}");
                assert_eq!(out[i], t.lookup(ip), "batch ip {ip:#010x}");
            }
        }
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let flat = FlatTrie::from_unibit(&UnibitTrie::new());
        flat.lookup_batch(&[], &mut []);
        let stride = StrideTrie::from_table(&table(""), &[8, 8, 8, 8]).unwrap();
        let flat = FlatStrideTrie::from_stride(&stride);
        flat.lookup_batch(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "batch destination and output slices must match")]
    fn mismatched_batch_lengths_panic() {
        let flat = FlatTrie::from_unibit(&UnibitTrie::new());
        let mut out = [None; 2];
        flat.lookup_batch(&[1, 2, 3], &mut out);
    }
}

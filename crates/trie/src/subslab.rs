//! Per-bucket sub-slab store for incremental [`JumpTrie`] rebuilds.
//!
//! [`JumpTrie`] is immutable by design: the RCU publish model wants a
//! fresh structure per generation. Rebuilding that structure from
//! scratch after every update batch, however, costs O(K·table) — the
//! paper's §V-B churn assumption (~1 % write rate) makes that the
//! dominant control-plane cost long before the datapath notices.
//!
//! [`JumpSlabs`] keeps the same DIR-16 decomposition as [`JumpTrie`] but
//! stores each /16 bucket's sub-trie *separately*, in bucket-local
//! encoding. A route update only perturbs the buckets its prefix covers
//! ([`DirtyBuckets`] tracks which), so an update batch:
//!
//! 1. applies announce/withdraw to the incremental [`MergedTrie`],
//! 2. re-derives only the dirty buckets with [`JumpSlabs::rebuild_bucket`]
//!    (a 16-bit descent plus a sub-trie typically a handful of nodes),
//! 3. concatenates all buckets level-by-level with [`JumpSlabs::assemble`]
//!    into a publishable [`JumpTrie`] — a straight copy, no trie walks.
//!
//! The assembled trie is bit-compatible with [`JumpTrie`]'s invariants
//! (leaf-push completeness, even child pairs, level-ordered slabs) and is
//! expected to pass the `vr-audit` structural verifier on every publish;
//! property tests in this module and in `tests/` hold it to lookup parity
//! with the from-scratch [`JumpTrie::from_merged`] build.
//!
//! Leaf NHI vectors are interned during assembly (identical K-wide
//! vectors share one slab slot), mirroring the hardware's shared NHI
//! memory, so per-bucket duplication does not inflate the published slab.

use crate::jump::{encode_nhi, NhiCode, JumpTrie, JUMP_BITS, LEAF_BIT, ROOT_ENTRIES};
use crate::merge::MergedTrie;
use crate::unibit::NodeId;
use vr_net::Ipv4Prefix;

/// One /16 bucket's sub-trie in bucket-local level-slab encoding.
///
/// * `levels[0]` holds the bucket's depth-17 node pair; an internal word
///   at level `l` is the *local* index of its left child in
///   `levels[l + 1]`, a leaf word is `LEAF_BIT | local NHI slot`.
/// * A **direct** bucket (resolved wholly by the root table) has no
///   levels and exactly one K-wide NHI vector.
#[derive(Debug, Clone)]
struct Bucket {
    levels: Vec<Vec<u32>>,
    nhis: Vec<NhiCode>,
}

impl Bucket {
    fn direct(nhis: Vec<NhiCode>) -> Self {
        Self {
            levels: Vec::new(),
            nhis,
        }
    }

    fn push_leaf(&mut self, k: usize, vector: &[NhiCode]) -> u32 {
        let slot = u32::try_from(self.nhis.len() / k).expect("bucket NHI slab overflow");
        self.nhis.extend_from_slice(vector);
        slot
    }
}

/// A child position in the leaf-pushed view of the merged trie: either a
/// real merged node (with the NHI vector inherited so far) or a synthetic
/// leaf filling the missing side of an internal node.
enum Virt {
    Node(NodeId, Vec<NhiCode>),
    Leaf(Vec<NhiCode>),
}

/// The full DIR-16 decomposition of a [`MergedTrie`], one [`Bucket`] per
/// root entry, supporting per-bucket rebuild and O(words) assembly into a
/// publishable [`JumpTrie`].
#[derive(Debug, Clone)]
pub struct JumpSlabs {
    k: usize,
    buckets: Vec<Bucket>,
}

impl JumpSlabs {
    /// Decomposes a merged trie into per-bucket sub-slabs (the
    /// incremental counterpart of [`JumpTrie::from_merged`], which
    /// leaf-pushes on the fly instead of materializing
    /// [`crate::MergedLeafPushed`]).
    #[must_use]
    pub fn from_merged(merged: &MergedTrie) -> Self {
        let k = merged.arity();
        let mut slabs = Self {
            k,
            buckets: vec![Bucket::direct(vec![0; k]); ROOT_ENTRIES],
        };
        // Iterative leaf-pushing descent to the 16-bit cut. Each stack
        // entry carries the NHI vector inherited from ancestors; a leaf
        // (or a missing child) above the cut covers an aligned run of
        // buckets with one direct vector.
        let mut stack: Vec<(NodeId, usize, u32, Vec<NhiCode>)> =
            vec![(NodeId::ROOT, 0, 0, vec![0; k])];
        while let Some((id, bucket, depth, inherited)) = stack.pop() {
            let eff = effective(merged, id, &inherited);
            let left = merged.node_child(id, 0);
            let right = merged.node_child(id, 1);
            if left.is_none() && right.is_none() {
                let run = 1usize << (JUMP_BITS - depth);
                for b in bucket..bucket + run {
                    slabs.buckets[b] = Bucket::direct(eff.clone());
                }
            } else if depth < JUMP_BITS {
                let half = 1usize << (JUMP_BITS - depth - 1);
                match right {
                    Some(child) => stack.push((child, bucket + half, depth + 1, eff.clone())),
                    None => {
                        for b in bucket + half..bucket + 2 * half {
                            slabs.buckets[b] = Bucket::direct(eff.clone());
                        }
                    }
                }
                match left {
                    Some(child) => stack.push((child, bucket, depth + 1, eff.clone())),
                    None => {
                        for b in bucket..bucket + half {
                            slabs.buckets[b] = Bucket::direct(eff.clone());
                        }
                    }
                }
            } else {
                slabs.buckets[bucket] = build_bucket(merged, id, &eff);
            }
        }
        slabs
    }

    /// NHI vector width K.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Re-derives one /16 bucket from the (already updated) merged trie:
    /// a 16-bit descent tracking the inherited NHI vector, then a
    /// breadth-first rebuild of the bucket's sub-trie if one survives.
    ///
    /// # Panics
    /// Panics if `bucket ≥ 65536` or `merged` has a different arity.
    pub fn rebuild_bucket(&mut self, merged: &MergedTrie, bucket: usize) {
        assert!(bucket < ROOT_ENTRIES, "bucket index out of range");
        assert_eq!(merged.arity(), self.k, "arity mismatch");
        let mut id = NodeId::ROOT;
        let mut eff = effective(merged, id, &vec![0; self.k]);
        for depth in 0..JUMP_BITS {
            if merged.node_child(id, 0).is_none() && merged.node_child(id, 1).is_none() {
                self.buckets[bucket] = Bucket::direct(eff);
                return;
            }
            let bit = (bucket >> (JUMP_BITS - 1 - depth)) & 1;
            match merged.node_child(id, bit) {
                None => {
                    self.buckets[bucket] = Bucket::direct(eff);
                    return;
                }
                Some(child) => {
                    id = child;
                    eff = effective(merged, id, &eff);
                }
            }
        }
        self.buckets[bucket] =
            if merged.node_child(id, 0).is_none() && merged.node_child(id, 1).is_none() {
                Bucket::direct(eff)
            } else {
                build_bucket(merged, id, &eff)
            };
    }

    /// Concatenates all buckets into a publishable [`JumpTrie`]: one pass
    /// computing per-level totals, then a straight level-major copy with
    /// local→global index translation and NHI-vector interning. No trie
    /// walks — cost is O(total words), independent of K and table size
    /// beyond the structure itself.
    #[must_use]
    pub fn assemble(&self) -> JumpTrie {
        let depth = self.buckets.iter().map(|b| b.levels.len()).max().unwrap_or(0);
        let mut totals = vec![0usize; depth];
        for b in &self.buckets {
            for (l, level) in b.levels.iter().enumerate() {
                totals[l] += level.len();
            }
        }
        let mut level_start = Vec::with_capacity(depth + 1);
        level_start.push(0usize);
        for t in &totals {
            let last = *level_start.last().expect("level_start is non-empty");
            level_start.push(last + t);
        }
        let words_len = *level_start.last().expect("level_start is non-empty");
        let level_offsets: Vec<u32> = level_start
            .iter()
            .map(|&s| u32::try_from(s).expect("assembled jump trie exceeds u32 words"))
            .collect();

        let mut root = vec![0u32; ROOT_ENTRIES];
        let mut words = vec![0u32; words_len];
        let mut cursor = vec![0usize; depth]; // next free local base per level
        let mut interner = NhiInterner::new(self.k);

        let mut bases: Vec<usize> = Vec::with_capacity(depth);
        for (bidx, bucket) in self.buckets.iter().enumerate() {
            if bucket.levels.is_empty() {
                root[bidx] = LEAF_BIT | interner.intern(&bucket.nhis);
                continue;
            }
            // Claim this bucket's contiguous block in every level it uses.
            bases.clear();
            for (l, level) in bucket.levels.iter().enumerate() {
                bases.push(cursor[l]);
                cursor[l] += level.len();
            }
            let entry = level_start[0] + bases[0];
            debug_assert_eq!(entry & LEAF_BIT as usize, 0, "assembled jump trie too large");
            root[bidx] = u32::try_from(entry).expect("assembled jump trie exceeds u32 words");
            for (l, level) in bucket.levels.iter().enumerate() {
                let out = level_start[l] + bases[l];
                for (i, &word) in level.iter().enumerate() {
                    words[out + i] = if word & LEAF_BIT != 0 {
                        let slot = (word & !LEAF_BIT) as usize;
                        let vector = &bucket.nhis[slot * self.k..(slot + 1) * self.k];
                        LEAF_BIT | interner.intern(vector)
                    } else {
                        let target = level_start[l + 1] + bases[l + 1] + word as usize;
                        u32::try_from(target).expect("assembled jump trie exceeds u32 words")
                    };
                }
            }
        }
        JumpTrie::from_raw_parts(root, words, level_offsets, interner.into_slab(), self.k)
    }
}

/// NHI-vector interner for [`JumpSlabs::assemble`]: deduplicates K-wide
/// vectors into the growing NHI slab, returning each vector's slot.
///
/// Assembly interns one vector per direct bucket (up to 65,536) plus one
/// per leaf word, while the distinct-vector count is orders of magnitude
/// smaller — and repeats arrive in long address-space runs (an empty /8
/// is thousands of consecutive identical direct buckets). Two levels
/// exploit that shape:
///
/// * a **last-vector memo** short-circuits consecutive repeats with one
///   slice compare, no hashing;
/// * misses go through an open-addressed table keyed by an FNV-1a hash,
///   with keys stored as slots into the slab itself (no owned `Vec`
///   keys, no `SipHash`) — the per-publish assembly is on the control
///   plane's per-batch path, so constant factors here are throughput.
struct NhiInterner {
    k: usize,
    /// The growing NHI slab (k entries per interned vector).
    slab: Vec<NhiCode>,
    /// Open-addressed table of `(fnv_hash, slot + 1)`; 0 means empty.
    table: Vec<(u64, u32)>,
    /// Live entries, to trigger growth at 1/2 load.
    len: usize,
    /// Memo of the most recently interned vector's slot.
    last: Option<u32>,
}

impl NhiInterner {
    fn new(k: usize) -> Self {
        Self {
            k,
            slab: Vec::new(),
            table: vec![(0, 0); 1024],
            len: 0,
            last: None,
        }
    }

    fn hash(vector: &[NhiCode]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &x in vector {
            h = (h ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn slot_slice(&self, slot: u32) -> &[NhiCode] {
        let start = slot as usize * self.k;
        &self.slab[start..start + self.k]
    }

    fn intern(&mut self, vector: &[NhiCode]) -> u32 {
        debug_assert_eq!(vector.len(), self.k);
        if let Some(slot) = self.last {
            if self.slot_slice(slot) == vector {
                return slot;
            }
        }
        let hash = Self::hash(vector);
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, tagged) = self.table[i];
            if tagged == 0 {
                break;
            }
            let slot = tagged - 1;
            if h == hash && self.slot_slice(slot) == vector {
                self.last = Some(slot);
                return slot;
            }
            i = (i + 1) & mask;
        }
        let slot = u32::try_from(self.slab.len() / self.k).expect("NHI slab overflow");
        debug_assert_eq!(slot & LEAF_BIT, 0, "assembled jump trie too large");
        self.slab.extend_from_slice(vector);
        self.table[i] = (hash, slot + 1);
        self.len += 1;
        self.last = Some(slot);
        if self.len * 2 >= self.table.len() {
            self.grow();
        }
        slot
    }

    fn grow(&mut self) {
        let next = vec![(0u64, 0u32); self.table.len() * 2];
        let old = std::mem::replace(&mut self.table, next);
        let mask = self.table.len() - 1;
        for (h, tagged) in old {
            if tagged == 0 {
                continue;
            }
            let mut i = (h as usize) & mask;
            while self.table[i].1 != 0 {
                i = (i + 1) & mask;
            }
            self.table[i] = (h, tagged);
        }
    }

    fn into_slab(self) -> Vec<NhiCode> {
        self.slab
    }
}

/// NHI vector at `id` after leaf pushing: own entries override inherited.
fn effective(merged: &MergedTrie, id: NodeId, inherited: &[NhiCode]) -> Vec<NhiCode> {
    let own = merged.node_nhis(id);
    let mut eff = inherited.to_vec();
    for (slot, nhi) in eff.iter_mut().zip(own) {
        if nhi.is_some() {
            *slot = encode_nhi(*nhi);
        }
    }
    eff
}

fn virt_child(merged: &MergedTrie, id: NodeId, bit: usize, eff: &[NhiCode]) -> Virt {
    match merged.node_child(id, bit) {
        Some(child) => Virt::Node(child, eff.to_vec()),
        None => Virt::Leaf(eff.to_vec()),
    }
}

/// Breadth-first leaf-pushed build of one bucket's sub-trie, rooted at an
/// internal merged node sitting exactly at the 16-bit cut.
fn build_bucket(merged: &MergedTrie, id: NodeId, eff: &[NhiCode]) -> Bucket {
    let k = merged.arity();
    let mut bucket = Bucket {
        levels: Vec::new(),
        nhis: Vec::new(),
    };
    let mut frontier = vec![
        virt_child(merged, id, 0, eff),
        virt_child(merged, id, 1, eff),
    ];
    while !frontier.is_empty() {
        let mut level = Vec::with_capacity(frontier.len());
        let mut next = Vec::new();
        for virt in frontier {
            match virt {
                Virt::Leaf(vector) => level.push(LEAF_BIT | bucket.push_leaf(k, &vector)),
                Virt::Node(node, inherited) => {
                    let eff = effective(merged, node, &inherited);
                    if merged.node_child(node, 0).is_none()
                        && merged.node_child(node, 1).is_none()
                    {
                        level.push(LEAF_BIT | bucket.push_leaf(k, &eff));
                    } else {
                        let base =
                            u32::try_from(next.len()).expect("bucket sub-trie exceeds u32");
                        debug_assert_eq!(base & LEAF_BIT, 0, "bucket sub-trie too large");
                        level.push(base);
                        next.push(virt_child(merged, node, 0, &eff));
                        next.push(virt_child(merged, node, 1, &eff));
                    }
                }
            }
        }
        bucket.levels.push(level);
        frontier = next;
    }
    bucket
}

/// Bitmap over the 65 536 /16 buckets a batch of updates has touched.
///
/// A prefix of length ≥ 16 dirties the single bucket `addr >> 16`; a
/// shorter prefix dirties its full aligned run of `2^(16 − len)` buckets
/// (its NHI may leaf-push into any of them).
#[derive(Debug, Clone)]
pub struct DirtyBuckets {
    bits: Vec<u64>,
    count: usize,
}

impl Default for DirtyBuckets {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtyBuckets {
    /// An empty (all-clean) bucket set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bits: vec![0u64; ROOT_ENTRIES / 64],
            count: 0,
        }
    }

    /// Marks one bucket dirty.
    ///
    /// # Panics
    /// Panics if `bucket ≥ 65536`.
    pub fn mark(&mut self, bucket: usize) {
        assert!(bucket < ROOT_ENTRIES, "bucket index out of range");
        let (word, bit) = (bucket / 64, 1u64 << (bucket % 64));
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.count += 1;
        }
    }

    /// Marks every bucket whose sub-slab (or direct entry) an update to
    /// `prefix` can perturb.
    pub fn mark_prefix(&mut self, prefix: &Ipv4Prefix) {
        let len = u32::from(prefix.len());
        if len >= JUMP_BITS {
            self.mark((prefix.addr() >> JUMP_BITS) as usize);
        } else {
            let run = 1usize << (JUMP_BITS - len);
            let start = (prefix.addr() >> JUMP_BITS) as usize & !(run - 1);
            for bucket in start..start + run {
                self.mark(bucket);
            }
        }
    }

    /// Number of dirty buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no bucket is dirty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates dirty bucket indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(word * 64 + bit)
            })
        })
    }

    /// Resets every bucket to clean.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::{FamilySpec, PrefixLenDistribution};
    use vr_net::{Ipv4Prefix, RoutingTable};

    fn family(k: usize, n: usize, shared: f64, seed: u64) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: n,
            shared_fraction: shared,
            seed,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 12,
        }
        .generate()
        .unwrap()
    }

    fn probes(tables: &[RoutingTable]) -> Vec<u32> {
        let mut probes: Vec<u32> = tables
            .iter()
            .flat_map(|t| t.prefixes())
            .flat_map(|p| [p.addr(), p.addr() | 0xFF, p.addr().wrapping_sub(1)])
            .collect();
        probes.extend([0, 1, u32::MAX, 0x8000_0000, 0x0000_FFFF, 0x0001_0000]);
        probes
    }

    fn assert_parity(slabs: &JumpSlabs, merged: &MergedTrie, tables: &[RoutingTable]) {
        let assembled = slabs.assemble();
        let oracle = JumpTrie::from_merged(&merged.leaf_pushed());
        for (vn, table) in tables.iter().enumerate() {
            for ip in probes(tables) {
                assert_eq!(
                    assembled.lookup_vn(vn, ip),
                    table.lookup(ip),
                    "vn {vn} ip {ip:#010x} vs table"
                );
                assert_eq!(
                    assembled.lookup_vn(vn, ip),
                    oracle.lookup_vn(vn, ip),
                    "vn {vn} ip {ip:#010x} vs from_merged"
                );
            }
        }
    }

    #[test]
    fn empty_trie_assembles_to_all_none() {
        let merged = MergedTrie::new(2).unwrap();
        let slabs = JumpSlabs::from_merged(&merged);
        let trie = slabs.assemble();
        assert_eq!(trie.sub_node_count(), 0);
        assert_eq!(trie.lookup_vn(0, 0), None);
        assert_eq!(trie.lookup_vn(1, u32::MAX), None);
        // Interning collapses 65536 identical direct vectors to one slot.
        assert_eq!(trie.leaf_count(), 1);
    }

    #[test]
    fn from_merged_matches_jump_trie_at_paper_scale() {
        let tables = family(4, 3725, 0.7, 17);
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let slabs = JumpSlabs::from_merged(&merged);
        assert_parity(&slabs, &merged, &tables);
    }

    #[test]
    fn rebuilt_buckets_track_churn() {
        let mut tables = family(3, 500, 0.6, 23);
        let mut merged = MergedTrie::from_tables(&tables).unwrap();
        let mut slabs = JumpSlabs::from_merged(&merged);
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for round in 0..6 {
            let mut dirty = DirtyBuckets::new();
            for _ in 0..40 {
                let vn = rng.gen_range(0..3usize);
                if rng.gen_bool(0.5) {
                    let prefix = Ipv4Prefix::must(rng.gen(), rng.gen_range(6..=28));
                    let nh = rng.gen_range(0..12u8);
                    merged.insert(vn, prefix, nh);
                    tables[vn].insert(prefix, nh);
                    dirty.mark_prefix(&prefix);
                } else {
                    let nth = rng.gen_range(0..tables[vn].len());
                    let prefix = tables[vn].prefixes().nth(nth);
                    if let Some(prefix) = prefix {
                        merged.remove(vn, &prefix);
                        tables[vn].remove(&prefix);
                        dirty.mark_prefix(&prefix);
                    }
                }
            }
            for bucket in dirty.iter().collect::<Vec<_>>() {
                slabs.rebuild_bucket(&merged, bucket);
            }
            assert!(merged.check_invariants(), "round {round}");
            assert_parity(&slabs, &merged, &tables);
        }
    }

    #[test]
    fn dirty_buckets_cover_prefix_runs() {
        let mut dirty = DirtyBuckets::new();
        dirty.mark_prefix(&"10.1.2.0/24".parse().unwrap());
        assert_eq!(dirty.iter().collect::<Vec<_>>(), vec![0x0A01]);
        // The /14 run covers 4 buckets, one of which was already dirty.
        dirty.mark_prefix(&"10.0.0.0/14".parse().unwrap());
        assert_eq!(dirty.len(), 4);
        assert_eq!(
            dirty.iter().collect::<Vec<_>>(),
            vec![0x0A00, 0x0A01, 0x0A02, 0x0A03]
        );
        dirty.clear();
        assert!(dirty.is_empty());
        dirty.mark_prefix(&"0.0.0.0/0".parse().unwrap());
        assert_eq!(dirty.len(), ROOT_ENTRIES);
    }

    #[test]
    fn duplicate_marks_count_once() {
        let mut dirty = DirtyBuckets::new();
        dirty.mark(42);
        dirty.mark(42);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty.iter().collect::<Vec<_>>(), vec![42]);
    }
}

//! Trie partitioning for multi-way pipelines (paper ref. \[7\]).
//!
//! "Multi-way Pipelining for Power-Efficient IP Lookup" splits the trie by
//! the first `s` destination bits into `2^s` *re-rooted* subtries, each
//! mapped onto its own (much shorter) pipeline. Per lookup only the
//! addressed sub-pipeline activates — the others stay clock-gated — so the
//! per-lookup energy drops with the pipeline depth while aggregate memory
//! stays roughly constant. The `multiway` bench quantifies this inside the
//! reproduction's power models; `vr-engine`'s `MultiwayEngine` simulates it
//! cycle by cycle.
//!
//! Re-rooting: a prefix `addr/len` with `len ≥ s` lands in subtrie
//! `addr >> (32−s)` as `(addr << s)/(len−s)`. Prefixes shorter than the
//! split are expanded (controlled prefix expansion) into the default
//! route of every subtrie they cover, longest original length winning.

use crate::leafpush::LeafPushedTrie;
use crate::unibit::UnibitTrie;
use crate::TrieError;
use vr_net::{Ipv4Prefix, RoutingTable};

/// A table partitioned into `2^split_bits` re-rooted subtries.
#[derive(Debug, Clone)]
pub struct PartitionedTrie {
    split_bits: u8,
    /// One leaf-pushed subtrie per way (index = top `split_bits` bits).
    subtries: Vec<LeafPushedTrie>,
    /// Node count of each subtrie (balance statistics).
    subtrie_nodes: Vec<usize>,
}

impl PartitionedTrie {
    /// Partitions `table` by its first `split_bits` bits.
    ///
    /// # Errors
    /// `split_bits` must be in `0..=8` (up to 256 ways; the paper's
    /// reference design uses small way counts).
    pub fn from_table(table: &RoutingTable, split_bits: u8) -> Result<Self, TrieError> {
        if split_bits > 8 {
            return Err(TrieError::InvalidParameter("split bits must be 0..=8"));
        }
        let ways = 1usize << split_bits;
        let mut subtables = vec![RoutingTable::new(); ways];

        // Prefixes longer than the split re-root into their way.
        for entry in table.iter() {
            if entry.prefix.len() > split_bits {
                let way = way_of(entry.prefix.addr(), split_bits);
                let rerooted = reroot(entry.prefix, split_bits);
                subtables[way].insert(rerooted, entry.next_hop);
            }
        }
        // Prefixes at or above the split expand into the re-rooted default
        // route of every way they cover, applied ascending by length so
        // the longest original wins collisions (CPE priority; a length-s
        // prefix covers exactly one way and is the final word there).
        let mut covering: Vec<_> = table
            .iter()
            .filter(|e| e.prefix.len() <= split_bits)
            .collect();
        covering.sort_by_key(|e| e.prefix.len());
        for entry in covering {
            let span = 1usize << (split_bits - entry.prefix.len());
            let first = way_of(entry.prefix.addr(), split_bits);
            for subtable in &mut subtables[first..first + span] {
                subtable.insert(Ipv4Prefix::DEFAULT_ROUTE, entry.next_hop);
            }
        }

        let tries: Vec<UnibitTrie> = subtables.iter().map(UnibitTrie::from_table).collect();
        let subtrie_nodes = tries.iter().map(UnibitTrie::node_count).collect();
        let subtries = tries.iter().map(LeafPushedTrie::from_unibit).collect();
        Ok(Self {
            split_bits,
            subtries,
            subtrie_nodes,
        })
    }

    /// The split width in bits.
    #[must_use]
    pub fn split_bits(&self) -> u8 {
        self.split_bits
    }

    /// Number of ways (sub-pipelines).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.subtries.len()
    }

    /// The re-rooted subtrie of a way.
    #[must_use]
    pub fn subtrie(&self, way: usize) -> &LeafPushedTrie {
        &self.subtries[way]
    }

    /// Decomposes into `(split_bits, subtries)` — used by the simulator
    /// to take ownership of the per-way tries.
    #[must_use]
    pub fn into_parts(self) -> (u8, Vec<LeafPushedTrie>) {
        (self.split_bits, self.subtries)
    }

    /// The way a destination address selects.
    #[must_use]
    pub fn way_of(&self, ip: u32) -> usize {
        way_of(ip, self.split_bits)
    }

    /// The re-rooted address a sub-pipeline walks (destination bits after
    /// the split consumed by the selector).
    #[must_use]
    pub fn rerooted_addr(&self, ip: u32) -> u32 {
        if self.split_bits == 0 {
            ip
        } else {
            ip << self.split_bits
        }
    }

    /// Longest-prefix match across the partition.
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<vr_net::table::NextHop> {
        self.subtries[self.way_of(ip)].lookup(self.rerooted_addr(ip))
    }

    /// Total leaf-pushed nodes across subtries.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.subtries.iter().map(LeafPushedTrie::node_count).sum()
    }

    /// The deepest subtrie's level count — the length every sub-pipeline
    /// is provisioned for.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.subtries
            .iter()
            .map(|t| t.stats().depth())
            .max()
            .unwrap_or(0)
    }

    /// Memory-balance factor: largest subtrie over mean subtrie (1.0 =
    /// perfectly balanced; ref. \[7\] integrates balancing for this).
    #[must_use]
    pub fn balance_factor(&self) -> f64 {
        let max = *self.subtrie_nodes.iter().max().unwrap_or(&0) as f64;
        let mean = self.subtrie_nodes.iter().sum::<usize>() as f64
            / self.subtrie_nodes.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

fn way_of(addr: u32, split_bits: u8) -> usize {
    if split_bits == 0 {
        0
    } else {
        (addr >> (32 - u32::from(split_bits))) as usize
    }
}

fn reroot(prefix: Ipv4Prefix, split_bits: u8) -> Ipv4Prefix {
    debug_assert!(prefix.len() >= split_bits);
    if split_bits == 0 {
        prefix
    } else {
        Ipv4Prefix::must(prefix.addr() << split_bits, prefix.len() - split_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::RouteEntry;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn split_zero_is_the_plain_trie() {
        let table = TableSpec::paper_worst_case(61).generate().unwrap();
        let part = PartitionedTrie::from_table(&table, 0).unwrap();
        assert_eq!(part.ways(), 1);
        let plain = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        assert_eq!(part.total_nodes(), plain.node_count());
        for q in table.prefixes().take(100) {
            let probe = q.addr() | 1;
            assert_eq!(part.lookup(probe), table.lookup(probe));
        }
    }

    #[test]
    fn rejects_oversized_splits() {
        let table = RoutingTable::new();
        assert!(PartitionedTrie::from_table(&table, 9).is_err());
        assert!(PartitionedTrie::from_table(&table, 8).is_ok());
    }

    #[test]
    fn short_prefixes_expand_with_cpe_priority() {
        // /1 covering the low half, /2 nested inside it: the /2 must win
        // in its ways regardless of table iteration order.
        let table = RoutingTable::from_entries([
            RouteEntry::new(p("0.0.0.0/1"), 1),
            RouteEntry::new(p("64.0.0.0/2"), 2),
        ]);
        let part = PartitionedTrie::from_table(&table, 4).unwrap();
        assert_eq!(part.lookup(0x0000_0001), Some(1)); // way 0: /1 only
        assert_eq!(part.lookup(0x4000_0001), Some(2)); // way 4: /2 wins
        assert_eq!(part.lookup(0x8000_0001), None); // upper half: no route
    }

    #[test]
    fn matches_oracle_across_splits() {
        let table = TableSpec::paper_worst_case(62).generate().unwrap();
        for split in [1u8, 2, 4, 6, 8] {
            let part = PartitionedTrie::from_table(&table, split).unwrap();
            assert_eq!(part.ways(), 1 << split);
            let mut probes: Vec<u32> = table
                .prefixes()
                .map(|q| q.addr().wrapping_add(7))
                .take(400)
                .collect();
            probes.extend([0u32, u32::MAX, 0x8000_0000, 0x7FFF_FFFF]);
            for ip in probes {
                assert_eq!(
                    part.lookup(ip),
                    table.lookup(ip),
                    "split {split} ip {ip:#010x}"
                );
            }
        }
    }

    #[test]
    fn splitting_shortens_the_pipeline() {
        let table = TableSpec::paper_worst_case(63).generate().unwrap();
        let plain = PartitionedTrie::from_table(&table, 0).unwrap();
        let split = PartitionedTrie::from_table(&table, 4).unwrap();
        assert!(
            split.max_depth() + 3 <= plain.max_depth(),
            "split {} vs plain {}",
            split.max_depth(),
            plain.max_depth()
        );
    }

    #[test]
    fn balance_factor_reflects_skew() {
        // All routes in one way: maximal imbalance.
        let table = RoutingTable::from_entries([
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
        ]);
        let part = PartitionedTrie::from_table(&table, 2).unwrap();
        assert!(part.balance_factor() > 1.5);
        // Synthetic clustered tables spread across ways reasonably.
        let big = TableSpec::paper_worst_case(64).generate().unwrap();
        let part = PartitionedTrie::from_table(&big, 2).unwrap();
        assert!(part.balance_factor() < 3.0);
    }

    #[test]
    fn way_selection_and_rerooting() {
        let table = RoutingTable::from_entries([RouteEntry::new(p("192.0.0.0/4"), 9)]);
        let part = PartitionedTrie::from_table(&table, 4).unwrap();
        assert_eq!(part.way_of(0xC123_4567), 0xC);
        assert_eq!(part.rerooted_addr(0xC123_4567), 0x1234_5670);
        assert_eq!(part.lookup(0xC123_4567), Some(9));
    }
}

//! Fixed-stride multi-bit tries with controlled prefix expansion (CPE).
//!
//! The paper's engine is a uni-bit trie (one level per stage, 28+ stages).
//! Its own references explore the depth/memory trade-off: multi-bit tries
//! consume several address bits per stage, shortening the pipeline (fewer
//! logic stages → less logic power, lower latency) at the cost of
//! expanding each node into 2^stride entries (more memory → more BRAM
//! power). Ref. \[8\] ("depth-bounded ... power-efficient IP lookup")
//! exploits exactly this knob; the `ablation_stride` bench quantifies it
//! inside this reproduction's power models.
//!
//! Prefixes whose length falls inside a stride are handled by controlled
//! prefix expansion (ref. \[16\]): the prefix is copied into every entry
//! it covers, with the *longest original length* winning collisions so
//! longest-prefix-match semantics are preserved.

use crate::stats::TrieStats;
use crate::unibit::NodeId;
use crate::TrieError;
use vr_net::table::NextHop;
use vr_net::RoutingTable;

/// One slot of a multi-bit node: the best (longest) expanded prefix
/// covering this slot, plus an optional child for longer prefixes.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    nhi: Option<NextHop>,
    /// Original length of the prefix stored in `nhi` (CPE priority).
    nhi_len: u8,
    child: Option<NodeId>,
}

#[derive(Debug, Clone)]
struct MbNode {
    /// Stride level of this node (index into `strides`).
    level: usize,
    entries: Vec<Entry>,
}

/// A fixed-stride multi-bit trie over IPv4 prefixes.
///
/// ```
/// use vr_net::RoutingTable;
/// use vr_trie::StrideTrie;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.32.0.0/11 2\n".parse().unwrap();
/// // Four 8-bit strides: a 4-stage pipeline instead of a 33-level trie.
/// let trie = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
/// assert_eq!(trie.levels(), 4);
/// assert_eq!(trie.lookup(0x0A20_0001), Some(2)); // CPE kept the /11
/// assert_eq!(trie.lookup(0x0A00_0001), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct StrideTrie {
    strides: Vec<u8>,
    /// Cumulative consumed bits *before* each level (prefix sums).
    boundaries: Vec<u8>,
    nodes: Vec<MbNode>,
    /// Original (pre-expansion) prefixes stored. A CPE-expanded prefix can
    /// be fully shadowed by longer same-node prefixes and leave no visible
    /// slot, so the count cannot be recovered from the entries.
    prefixes: std::collections::HashSet<(u32, u8)>,
}

impl StrideTrie {
    /// Builds an empty trie with the given stride schedule.
    ///
    /// # Errors
    /// Strides must be non-zero, each ≤ 8 (hardware keeps per-stage memory
    /// words addressable), and sum to exactly 32.
    pub fn new(strides: &[u8]) -> Result<Self, TrieError> {
        if strides.is_empty() {
            return Err(TrieError::InvalidParameter("stride schedule is empty"));
        }
        if strides.iter().any(|&s| s == 0 || s > 8) {
            return Err(TrieError::InvalidParameter("each stride must be 1..=8"));
        }
        let total: u32 = strides.iter().map(|&s| u32::from(s)).sum();
        if total != 32 {
            return Err(TrieError::InvalidParameter("strides must sum to 32"));
        }
        let mut boundaries = Vec::with_capacity(strides.len());
        let mut acc = 0u8;
        for &s in strides {
            boundaries.push(acc);
            acc += s;
        }
        let root = MbNode {
            level: 0,
            entries: vec![Entry::default(); 1 << strides[0]],
        };
        Ok(Self {
            strides: strides.to_vec(),
            boundaries,
            nodes: vec![root],
            prefixes: std::collections::HashSet::new(),
        })
    }

    /// A uniform stride schedule (e.g. `uniform(4)` → eight 4-bit levels).
    ///
    /// # Errors
    /// `stride` must be in `1..=8` and divide 32.
    pub fn uniform(stride: u8) -> Result<Self, TrieError> {
        if stride == 0 || stride > 8 || 32 % u32::from(stride) != 0 {
            return Err(TrieError::InvalidParameter(
                "uniform stride must be in 1..=8 and divide 32",
            ));
        }
        let levels = 32 / usize::from(stride);
        Self::new(&vec![stride; levels])
    }

    /// Builds a trie from a routing table.
    ///
    /// # Errors
    /// Same stride-schedule constraints as [`StrideTrie::new`].
    pub fn from_table(table: &RoutingTable, strides: &[u8]) -> Result<Self, TrieError> {
        let mut trie = Self::new(strides)?;
        // Each prefix can materialize at most one node per level beyond the
        // root; in practice sharing keeps it near one node per prefix, so a
        // table-sized reservation absorbs the bulk build without repeated
        // reallocation of the (large, entry-vector-holding) node arena.
        trie.nodes.reserve(table.len());
        trie.prefixes.reserve(table.len());
        for entry in table.iter() {
            trie.insert(entry.prefix, entry.next_hop);
        }
        Ok(trie)
    }

    /// The stride schedule.
    #[must_use]
    pub fn strides(&self) -> &[u8] {
        &self.strides
    }

    /// Number of pipeline stages this trie maps onto (= stride levels).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.strides.len()
    }

    /// Number of multi-bit nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored prefixes (original, pre-expansion).
    #[must_use]
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Total entry slots across nodes (each slot is one memory word).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nodes.iter().map(|n| n.entries.len()).sum()
    }

    /// Inserts (or replaces) a prefix. A prefix of length 0 (default
    /// route) expands into every root entry of length 0.
    pub fn insert(&mut self, prefix: vr_net::Ipv4Prefix, next_hop: NextHop) {
        self.prefixes.insert((prefix.addr(), prefix.len()));
        self.insert_at(0, prefix, next_hop);
    }

    /// Inserts into the subtree rooted at `node`.
    fn insert_at(&mut self, node: usize, prefix: vr_net::Ipv4Prefix, next_hop: NextHop) {
        let level = self.nodes[node].level;
        let consumed = self.boundaries[level];
        let stride = self.strides[level];
        let end = consumed + stride;

        if prefix.len() <= end {
            // Expand within this node: the prefix covers a contiguous run
            // of entries determined by its bits inside the stride.
            let inside = prefix.len() - consumed; // bits the prefix fixes here
            let fixed = if inside == 0 {
                0
            } else {
                extract_bits(prefix.addr(), consumed, inside)
            };
            let free = stride - inside;
            let run_start = (fixed as usize) << free;
            let run_len = 1usize << free;
            for slot in run_start..run_start + run_len {
                let entry = &mut self.nodes[node].entries[slot];
                if entry.nhi.is_none() || entry.nhi_len <= prefix.len() {
                    entry.nhi = Some(next_hop);
                    entry.nhi_len = prefix.len();
                }
            }
        } else {
            // Descend: the slot index is the prefix's next `stride` bits.
            let slot = extract_bits(prefix.addr(), consumed, stride) as usize;
            let child = match self.nodes[node].entries[slot].child {
                Some(c) => c.idx(),
                None => {
                    let next_level = level + 1;
                    let id = NodeId(
                        u32::try_from(self.nodes.len()).expect("stride trie exceeds u32 nodes"),
                    );
                    self.nodes.push(MbNode {
                        level: next_level,
                        entries: vec![Entry::default(); 1 << self.strides[next_level]],
                    });
                    self.nodes[node].entries[slot].child = Some(id);
                    id.idx()
                }
            };
            self.insert_at(child, prefix, next_hop);
        }
    }

    /// Longest-prefix match for `ip`.
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        let mut best: Option<(u8, NextHop)> = None;
        let mut node = 0usize;
        loop {
            let level = self.nodes[node].level;
            let consumed = self.boundaries[level];
            let stride = self.strides[level];
            let slot = extract_bits(ip, consumed, stride) as usize;
            let entry = self.nodes[node].entries[slot];
            if let Some(nh) = entry.nhi {
                if best.is_none_or(|(len, _)| entry.nhi_len >= len) {
                    best = Some((entry.nhi_len, nh));
                }
            }
            match entry.child {
                Some(child) => node = child.idx(),
                None => break,
            }
        }
        best.map(|(_, nh)| nh)
    }

    /// Batched longest-prefix match: element `i` of `out` receives exactly
    /// `self.lookup(dsts[i])`.
    ///
    /// Destinations advance one level per pass over the batch (stage
    /// lockstep) — see [`UnibitTrie::lookup_batch`]. As in [`walk_step`],
    /// an expanded NHI found deeper always stems from a longer prefix, so
    /// the running result is simply overwritten per level.
    ///
    /// [`UnibitTrie::lookup_batch`]: crate::UnibitTrie::lookup_batch
    /// [`walk_step`]: StrideTrie::walk_step
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        out.fill(None);
        let mut cur: Vec<usize> = vec![0; dsts.len()];
        let mut active: Vec<u32> = (0..u32::try_from(dsts.len()).expect("batch too large")).collect();
        let mut survivors: Vec<u32> = Vec::with_capacity(active.len());
        for level in 0..self.strides.len() {
            if active.is_empty() {
                break;
            }
            let consumed = self.boundaries[level];
            let stride = self.strides[level];
            for &i in &active {
                let idx = i as usize;
                let slot = extract_bits(dsts[idx], consumed, stride) as usize;
                let entry = self.nodes[cur[idx]].entries[slot];
                if entry.nhi.is_some() {
                    out[idx] = entry.nhi;
                }
                if let Some(child) = entry.child {
                    cur[idx] = child.idx();
                    survivors.push(i);
                }
            }
            active.clear();
            std::mem::swap(&mut active, &mut survivors);
        }
    }

    /// Per-level statistics: every entry slot is a memory word; a slot
    /// counts as a "prefix node" when it stores an expanded NHI.
    #[must_use]
    pub fn stats(&self) -> TrieStats {
        let mut stats = TrieStats::default();
        for node in &self.nodes {
            for entry in &node.entries {
                stats.record(
                    node.level as u8,
                    entry.child.is_none(),
                    entry.nhi.is_some(),
                );
            }
        }
        stats
    }

    /// One hardware walk step from `node_idx` (the pipeline-stage view):
    /// reads the slot selected by `ip`'s bits for that node's stride and
    /// returns `(expanded NHI stored there, child node to continue at)`.
    /// Deeper NHIs are always longer, so the caller may simply overwrite
    /// its running result.
    #[must_use]
    pub fn walk_step(&self, node_idx: u32, ip: u32) -> (Option<NextHop>, Option<u32>) {
        let node = &self.nodes[node_idx as usize];
        let consumed = self.boundaries[node.level];
        let stride = self.strides[node.level];
        let slot = extract_bits(ip, consumed, stride) as usize;
        let entry = node.entries[slot];
        (entry.nhi, entry.child.map(|c| c.idx() as u32))
    }

    /// Per-stage memory bits: entries × (NHI + original-length tag +
    /// child pointer), one stage per stride level.
    #[must_use]
    pub fn per_stage_memory_bits(&self, entry_bits: u32) -> Vec<u64> {
        let mut per_level = vec![0u64; self.levels()];
        for node in &self.nodes {
            per_level[node.level] += node.entries.len() as u64 * u64::from(entry_bits);
        }
        per_level
    }
}

/// Computes a memory-optimal stride schedule for `trie` under a pipeline
/// depth bound — the classic controlled-prefix-expansion dynamic program
/// (Srinivasan & Varghese; the "depth-bounded" lever of paper ref. \[8\]).
///
/// A stride covering uni-bit levels `[i, j)` expands every level-`i` node
/// into `2^(j−i)` entries, so its memory cost is `nodes(i) × 2^(j−i)`
/// entry words. The DP minimizes total entries over schedules of at most
/// `max_levels` strides, each at most `max_stride` bits wide.
///
/// # Errors
/// Rejects `max_stride` outside `1..=8` and bounds that cannot cover 32
/// bits (`max_levels × max_stride < 32`).
pub fn optimal_strides(
    trie: &crate::unibit::UnibitTrie,
    max_stride: u8,
    max_levels: usize,
) -> Result<Vec<u8>, TrieError> {
    if max_stride == 0 || max_stride > 8 {
        return Err(TrieError::InvalidParameter("max stride must be 1..=8"));
    }
    if max_levels * usize::from(max_stride) < 32 {
        return Err(TrieError::InvalidParameter(
            "depth bound too tight to cover 32 bits",
        ));
    }
    let stats = trie.stats();
    // A multi-bit node is spawned at bit-level i exactly by the uni-bit
    // *internal* nodes there: a prefix ending at i expands inside its
    // parent's node, only strictly-longer prefixes descend across the
    // boundary. The root node always exists.
    let nodes: Vec<u64> = (0..32usize)
        .map(|i| {
            let internal = stats.internal_at_level(i) as u64;
            if i == 0 {
                internal.max(1)
            } else {
                internal
            }
        })
        .collect();

    // dp[r][j] = minimal entries covering bit-levels [0, j) with r strides.
    let inf = u64::MAX;
    let levels_cap = max_levels.min(32);
    let mut dp = vec![vec![inf; 33]; levels_cap + 1];
    let mut choice = vec![vec![0usize; 33]; levels_cap + 1];
    dp[0][0] = 0;
    for r in 1..=levels_cap {
        for j in 1..=32usize {
            let lo = j.saturating_sub(usize::from(max_stride));
            for i in lo..j {
                if dp[r - 1][i] == inf {
                    continue;
                }
                let width = (j - i) as u32;
                let cost = dp[r - 1][i] + nodes[i] * (1u64 << width);
                if cost < dp[r][j] {
                    dp[r][j] = cost;
                    choice[r][j] = i;
                }
            }
        }
    }
    // Best level count within the bound.
    let best_r = (1..=levels_cap)
        .min_by_key(|&r| dp[r][32])
        .expect("at least one level");
    if dp[best_r][32] == inf {
        return Err(TrieError::InvalidParameter(
            "depth bound too tight to cover 32 bits",
        ));
    }
    let mut strides = Vec::with_capacity(best_r);
    let mut j = 32usize;
    let mut r = best_r;
    while r > 0 {
        let i = choice[r][j];
        strides.push((j - i) as u8);
        j = i;
        r -= 1;
    }
    strides.reverse();
    Ok(strides)
}

/// Extracts `count` bits of `addr` starting `offset` bits from the MSB.
fn extract_bits(addr: u32, offset: u8, count: u8) -> u32 {
    debug_assert!(offset + count <= 32 && count > 0);
    let shifted = addr >> (32 - u32::from(offset) - u32::from(count));
    shifted & ((1u64 << count) as u32).wrapping_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::{Ipv4Prefix, RouteEntry};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn schedule_validation() {
        assert!(StrideTrie::new(&[]).is_err());
        assert!(StrideTrie::new(&[0, 32]).is_err());
        assert!(StrideTrie::new(&[16, 16]).is_err()); // stride > 8
        assert!(StrideTrie::new(&[8, 8, 8, 4]).is_err()); // sums to 28
        assert!(StrideTrie::new(&[8, 8, 8, 8]).is_ok());
        assert!(StrideTrie::uniform(4).is_ok());
        assert!(StrideTrie::uniform(5).is_err()); // does not divide 32
        assert!(StrideTrie::uniform(0).is_err());
    }

    #[test]
    fn uniform_levels() {
        assert_eq!(StrideTrie::uniform(1).unwrap().levels(), 32);
        assert_eq!(StrideTrie::uniform(4).unwrap().levels(), 8);
        assert_eq!(StrideTrie::uniform(8).unwrap().levels(), 4);
    }

    #[test]
    fn cpe_expands_mid_stride_prefixes() {
        // /6 prefix inside an 8-bit stride expands into 4 slots.
        let table = RoutingTable::from_entries([RouteEntry::new(p("4.0.0.0/6"), 7)]);
        let trie = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
        assert_eq!(trie.lookup(0x0400_0000), Some(7)); // 4.0.0.0
        assert_eq!(trie.lookup(0x0700_0000), Some(7)); // 7.255... still /6
        assert_eq!(trie.lookup(0x0800_0000), None); // outside
        assert_eq!(trie.node_count(), 1);
    }

    #[test]
    fn cpe_priority_keeps_longest_prefix() {
        // /4 and /6 overlap in the same stride; /6 must win inside its
        // range regardless of insertion order.
        for order in [[0usize, 1], [1, 0]] {
            let entries = [
                RouteEntry::new(p("0.0.0.0/4"), 1),
                RouteEntry::new(p("4.0.0.0/6"), 2),
            ];
            let mut trie = StrideTrie::uniform(8).unwrap();
            for &i in &order {
                trie.insert(entries[i].prefix, entries[i].next_hop);
            }
            assert_eq!(trie.lookup(0x0400_0000), Some(2), "order {order:?}");
            assert_eq!(trie.lookup(0x0100_0000), Some(1), "order {order:?}");
        }
    }

    #[test]
    fn default_route_fills_root() {
        let table = RoutingTable::from_entries([RouteEntry::new(p("0.0.0.0/0"), 9)]);
        let trie = StrideTrie::from_table(&table, &[4, 4, 4, 4, 4, 4, 4, 4]).unwrap();
        assert_eq!(trie.lookup(0xDEAD_BEEF), Some(9));
    }

    #[test]
    fn matches_oracle_on_paper_scale_table() {
        let table = TableSpec::paper_worst_case(33).generate().unwrap();
        for strides in [vec![8u8, 8, 8, 8], vec![4; 8], vec![2; 16], vec![6, 6, 6, 6, 4, 4]] {
            let trie = StrideTrie::from_table(&table, &strides).unwrap();
            assert_eq!(trie.prefix_count(), table.len());
            let mut probes: Vec<u32> =
                table.prefixes().map(|q| q.addr().wrapping_add(5)).collect();
            probes.extend([0u32, u32::MAX, 0x8080_8080]);
            for ip in probes {
                assert_eq!(
                    trie.lookup(ip),
                    table.lookup(ip),
                    "strides {strides:?} ip {ip:#010x}"
                );
            }
        }
    }

    #[test]
    fn wider_strides_trade_depth_for_memory() {
        let table = TableSpec::paper_worst_case(34).generate().unwrap();
        let narrow = StrideTrie::from_table(&table, &[2; 16]).unwrap();
        let wide = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
        assert!(wide.levels() < narrow.levels());
        assert!(
            wide.entry_count() > narrow.entry_count(),
            "wide {} vs narrow {}",
            wide.entry_count(),
            narrow.entry_count()
        );
    }

    #[test]
    fn per_stage_memory_accounts_every_entry() {
        let table = TableSpec::paper_worst_case(35).generate().unwrap();
        let trie = StrideTrie::from_table(&table, &[4; 8]).unwrap();
        let per_stage = trie.per_stage_memory_bits(32);
        assert_eq!(per_stage.len(), 8);
        let total: u64 = per_stage.iter().sum();
        assert_eq!(total, trie.entry_count() as u64 * 32);
    }

    #[test]
    fn stats_cover_all_slots() {
        let table = TableSpec::paper_worst_case(36).generate().unwrap();
        let trie = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
        let stats = trie.stats();
        assert_eq!(stats.total_nodes, trie.entry_count());
        assert!(stats.check_invariants());
        assert!(stats.depth() <= 4);
    }

    #[test]
    fn optimal_strides_beat_uniform_at_equal_depth() {
        let table = TableSpec::paper_worst_case(71).generate().unwrap();
        let unibit = crate::unibit::UnibitTrie::from_table(&table);
        for (uniform, levels) in [(4u8, 8usize), (8, 4)] {
            let optimal = optimal_strides(&unibit, 8, levels).unwrap();
            assert!(optimal.len() <= levels);
            assert_eq!(optimal.iter().map(|&s| u32::from(s)).sum::<u32>(), 32);
            let opt_trie = StrideTrie::from_table(&table, &optimal).unwrap();
            let uni_trie = StrideTrie::from_table(&table, &vec![uniform; levels]).unwrap();
            assert!(
                opt_trie.entry_count() <= uni_trie.entry_count(),
                "depth {levels}: optimal {} vs uniform {}",
                opt_trie.entry_count(),
                uni_trie.entry_count()
            );
            // And of course it still forwards correctly.
            for p in table.prefixes().take(200) {
                let probe = p.addr() | 1;
                assert_eq!(opt_trie.lookup(probe), table.lookup(probe));
            }
        }
    }

    #[test]
    fn looser_depth_bounds_never_cost_more_memory() {
        let table = TableSpec::paper_worst_case(72).generate().unwrap();
        let unibit = crate::unibit::UnibitTrie::from_table(&table);
        let mut prev = u64::MAX;
        for levels in [4usize, 8, 16, 32] {
            let strides = optimal_strides(&unibit, 8, levels).unwrap();
            let trie = StrideTrie::from_table(&table, &strides).unwrap();
            let entries = trie.entry_count() as u64;
            assert!(
                entries <= prev,
                "levels {levels}: {entries} > previous {prev}"
            );
            prev = entries;
        }
    }

    #[test]
    fn optimal_strides_validation() {
        let unibit = crate::unibit::UnibitTrie::new();
        assert!(optimal_strides(&unibit, 0, 32).is_err());
        assert!(optimal_strides(&unibit, 9, 32).is_err());
        assert!(optimal_strides(&unibit, 8, 3).is_err()); // 3×8 < 32
        let strides = optimal_strides(&unibit, 8, 4).unwrap();
        assert_eq!(strides.iter().map(|&s| u32::from(s)).sum::<u32>(), 32);
    }

    #[test]
    fn extract_bits_examples() {
        assert_eq!(extract_bits(0xF000_0000, 0, 4), 0xF);
        assert_eq!(extract_bits(0x0F00_0000, 4, 4), 0xF);
        assert_eq!(extract_bits(0xFFFF_FFFF, 24, 8), 0xFF);
        assert_eq!(extract_bits(0x0000_0001, 31, 1), 1);
    }
}

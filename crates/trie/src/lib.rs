//! # vr-trie — trie structures for pipelined IP lookup
//!
//! The paper's lookup substrate is a **uni-bit binary trie with leaf
//! pushing, mapped level-per-stage onto a linear pipeline** (§V-D). Most
//! router-virtualization solutions it models are trie based, and the merged
//! virtualization scheme overlays K tries into one whose leaves hold K-wide
//! next-hop (NHI) vectors indexed by VNID.
//!
//! This crate implements that whole layer:
//!
//! * [`UnibitTrie`] — arena-based uni-bit trie with longest-prefix match,
//!   incremental insert/withdraw, and per-level statistics;
//! * [`LeafPushedTrie`] — the leaf-pushing transform (Ruiz-Sánchez et al.,
//!   paper ref. \[16\]): a *full* binary trie whose NHI lives only in
//!   leaves, which is what the pipeline stages store;
//! * [`FlatTrie`] / [`FlatStrideTrie`] — level-ordered flat storage: one
//!   contiguous slab per pipeline stage with packed `u32` node words,
//!   plus stage-lockstep `lookup_batch` (software pipelining) to hide
//!   cache-miss latency on the lookup path;
//! * [`JumpTrie`] — DIR-16 jump-table front end: a 2^16-entry
//!   direct-index root resolving the first 16 bits in one load, fused
//!   with level-slab sub-tries for the > /16 remainder;
//! * [`MergedTrie`] / [`MergedLeafPushed`] — the K-way overlay used by the
//!   virtualized-merged scheme, with *measured* merging efficiency α
//!   (Assumption 4) and K-wide leaf vectors;
//! * [`JumpSlabs`] / [`DirtyBuckets`] — per-/16-bucket sub-slab store for
//!   the control plane: route updates re-derive only dirty buckets and
//!   assemble a publishable [`JumpTrie`] without a from-scratch rebuild;
//! * [`lane`] — lane-interleaved batch stepping over [`JumpTrie`]: a
//!   fixed-width group of in-flight keys advanced one stage per
//!   iteration with software prefetch one stage ahead, the in-software
//!   analogue of the paper's stage-overlapped pipeline occupancy;
//! * [`pipeline_map`] — level→stage mapping and per-stage memory sizing
//!   (Mᵢ,ⱼ in the paper's notation), separating pointer memory from NHI
//!   memory exactly as Fig. 4 does;
//! * [`calibrate`] — searches the synthetic family generator's shared
//!   fraction for a target α (the paper sweeps α ∈ {0.2, 0.8}).
//!
//! All structures are index-arena based (no `Box` chains): node identity is
//! a `u32`, which keeps tries compact and traversals cache-friendly — the
//! same reasons the paper's hardware keeps per-stage memories dense.

// `deny`, not `forbid`: the lane module carries the one sanctioned
// `#[allow(unsafe_code)]` in the workspace — the prefetch intrinsic
// behind a bounds-checked wrapper. A `vr-audit` lint rule pins the
// intrinsic to that module; every other crate keeps `forbid`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod braid;
pub mod calibrate;
pub mod flat;
pub mod jump;
pub mod lane;
pub mod leafpush;
pub mod merge;
pub mod multibit;
pub mod partition;
pub mod pipeline_map;
pub mod stats;
pub mod subslab;
pub mod unibit;

pub use braid::BraidedTrie;
pub use flat::{FlatStrideParts, FlatStrideTrie, FlatTrie, FlatTrieParts};
pub use jump::{JumpTrie, JumpTrieParts};
pub use lane::{lookup_lanes, lookup_lanes_vn, DEFAULT_LANE_WIDTH};
pub use leafpush::LeafPushedTrie;
pub use multibit::StrideTrie;
pub use partition::PartitionedTrie;
pub use merge::{MergedLeafPushed, MergedTrie};
pub use pipeline_map::{MemoryLayout, PipelineProfile, StageProfile};
pub use stats::TrieStats;
pub use subslab::{DirtyBuckets, JumpSlabs};
pub use unibit::{NodeId, UnibitTrie};

/// Errors produced by trie construction and mapping.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrieError {
    /// A merge was requested for zero tables or more than 64 tables (the
    /// presence bookkeeping uses a 64-bit mask; the paper evaluates K ≤ 15).
    BadMergeArity(usize),
    /// The pipeline mapping was asked for zero stages.
    ZeroStages,
    /// A calibration search could not reach the target α.
    CalibrationFailed {
        /// Target merging efficiency.
        target: f64,
        /// Closest achieved value.
        achieved: f64,
    },
    /// An invalid parameter was supplied (message explains which).
    InvalidParameter(&'static str),
}

impl std::fmt::Display for TrieError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieError::BadMergeArity(k) => {
                write!(f, "cannot merge {k} tables (supported: 1..=64)")
            }
            TrieError::ZeroStages => write!(f, "pipeline must have at least one stage"),
            TrieError::CalibrationFailed { target, achieved } => write!(
                f,
                "could not calibrate merging efficiency to {target} (closest: {achieved})"
            ),
            TrieError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TrieError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TrieError::BadMergeArity(0).to_string().contains('0'));
        assert!(TrieError::ZeroStages.to_string().contains("stage"));
        let c = TrieError::CalibrationFailed {
            target: 0.8,
            achieved: 0.5,
        };
        assert!(c.to_string().contains("0.8"));
        assert!(TrieError::InvalidParameter("x").to_string().contains('x'));
    }
}

//! Leaf pushing (paper ref. [16], §V-D).
//!
//! Leaf pushing turns a uni-bit trie into a *full* binary trie in which
//! next-hop information (NHI) is stored only at leaves: every internal node
//! with a missing child gets a synthetic leaf inheriting the longest
//! matching prefix seen on the path. The pipeline then stores pointer words
//! for internal nodes and NHI words for leaves, never both — which is why
//! the paper's Fig. 4 can split memory into "pointer" and "NHI" cleanly.
//!
//! For the paper's worst-case table, leaf pushing grows the trie from 9726
//! to 16127 nodes (§V-E); the calibration test in this module keeps our
//! synthetic generator in that growth regime.

use crate::stats::TrieStats;
use crate::unibit::{NodeId, UnibitTrie};
use vr_net::table::NextHop;

#[derive(Debug, Clone)]
struct LpNode {
    /// `Some((left, right))` for internal nodes; `None` for leaves.
    children: Option<(NodeId, NodeId)>,
    /// NHI; meaningful only at leaves (always `None` on internal nodes).
    nhi: Option<NextHop>,
}

/// A leaf-pushed (full) binary trie.
#[derive(Debug, Clone)]
pub struct LeafPushedTrie {
    nodes: Vec<LpNode>,
    root: NodeId,
}

impl LeafPushedTrie {
    /// Applies leaf pushing to `trie`.
    #[must_use]
    pub fn from_unibit(trie: &UnibitTrie) -> Self {
        let mut nodes = Vec::with_capacity(trie.node_count() * 2);
        let root = push(trie, NodeId::ROOT, None, &mut nodes);
        Self { nodes, root }
    }

    /// Total node count (internal + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (NHI words in the pipeline memories).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_none()).count()
    }

    /// Number of internal nodes (pointer words in the pipeline memories).
    #[must_use]
    pub fn internal_count(&self) -> usize {
        self.node_count() - self.leaf_count()
    }

    /// Longest-prefix match: walk destination bits to a leaf and read its
    /// NHI. Exactly the pipeline's per-stage behaviour.
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        let mut cur = self.root;
        let mut depth = 0u8;
        loop {
            let node = &self.nodes[cur.idx()];
            match node.children {
                None => return node.nhi,
                Some((l, r)) => {
                    debug_assert!(depth < 32, "full trie deeper than address width");
                    let bit = (ip >> (31 - depth)) & 1;
                    cur = if bit == 0 { l } else { r };
                    depth += 1;
                }
            }
        }
    }

    /// Batched longest-prefix match: element `i` of `out` receives exactly
    /// `self.lookup(dsts[i])`.
    ///
    /// Destinations advance one level per pass over the batch (stage
    /// lockstep), so a pass issues B independent node reads instead of one
    /// dependent pointer chain — see [`UnibitTrie::lookup_batch`].
    ///
    /// Same dense-sweep + scalar-tail hybrid as [`FlatTrie::lookup_batch`]:
    /// while most lanes are live, each pass is a linear zip sweep with
    /// resolved lanes parked at their leaf and skipped; once under an
    /// eighth of the batch survives, the stragglers finish with plain
    /// scalar chases. The index-list compaction this replaces made batch
    /// mode *slower* than scalar at paper scale (0.68× at width 8): one
    /// /32 route dragged every batch through 32 list-rebuild passes whose
    /// bookkeeping dwarfed the node reads.
    ///
    /// [`UnibitTrie::lookup_batch`]: crate::UnibitTrie::lookup_batch
    /// [`FlatTrie::lookup_batch`]: crate::FlatTrie::lookup_batch
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        let root_node = &self.nodes[self.root.idx()];
        if root_node.children.is_none() {
            out.fill(root_node.nhi);
            return;
        }
        // `cur[i]` is the node packet `i` is parked at; a lane parked at a
        // leaf has already written its result and is skipped by the
        // `children` test.
        let mut cur: Vec<NodeId> = vec![self.root; dsts.len()];
        let mut remaining = dsts.len();
        let mut depth = 0u8;
        while remaining * 8 >= dsts.len() && remaining > 0 {
            debug_assert!(depth < 32, "full trie deeper than address width");
            for (c, (&dst, slot)) in cur.iter_mut().zip(dsts.iter().zip(out.iter_mut())) {
                let Some((l, r)) = self.nodes[c.idx()].children else {
                    continue;
                };
                let bit = (dst >> (31 - depth)) & 1;
                let next = if bit == 0 { l } else { r };
                let node = &self.nodes[next.idx()];
                if node.children.is_none() {
                    *slot = node.nhi;
                    remaining -= 1;
                }
                *c = next;
            }
            depth += 1;
        }
        if remaining > 0 {
            for (c, (&dst, slot)) in cur.iter().zip(dsts.iter().zip(out.iter_mut())) {
                let mut node = &self.nodes[c.idx()];
                if node.children.is_none() {
                    continue;
                }
                let mut lvl = depth;
                while let Some((l, r)) = node.children {
                    debug_assert!(lvl < 32, "full trie deeper than address width");
                    let bit = (dst >> (31 - lvl)) & 1;
                    node = &self.nodes[if bit == 0 { l } else { r }.idx()];
                    lvl += 1;
                }
                *slot = node.nhi;
            }
        }
    }

    /// The root node id (entry point for stage-by-stage traversal in the
    /// pipeline simulator).
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Children of a node: `Some((left, right))` for internal nodes,
    /// `None` for leaves.
    #[must_use]
    pub fn node_children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id.idx()].children
    }

    /// The NHI stored at a node (meaningful only for leaves).
    #[must_use]
    pub fn node_nhi(&self, id: NodeId) -> Option<NextHop> {
        self.nodes[id.idx()].nhi
    }

    /// Whether the trie is full (every internal node has both children) —
    /// structural invariant guaranteed by construction, checked in tests.
    #[must_use]
    pub fn is_full(&self) -> bool {
        // Fullness is encoded in the type (children is a pair); check the
        // complementary leaf/internal count identity instead.
        self.leaf_count() == self.internal_count() + 1
    }

    /// Per-level statistics (prefix nodes = leaves carrying an NHI).
    #[must_use]
    pub fn stats(&self) -> TrieStats {
        let mut stats = TrieStats::default();
        let mut stack = vec![(self.root, 0u8)];
        while let Some((id, depth)) = stack.pop() {
            let node = &self.nodes[id.idx()];
            match node.children {
                None => stats.record(depth, true, node.nhi.is_some()),
                Some((l, r)) => {
                    stats.record(depth, false, false);
                    stack.push((r, depth + 1));
                    stack.push((l, depth + 1));
                }
            }
        }
        stats
    }
}

/// Recursively leaf-pushes the subtree rooted at `id`, carrying the longest
/// matching NHI seen so far. Returns the new node's id in `nodes`.
fn push(
    trie: &UnibitTrie,
    id: NodeId,
    inherited: Option<NextHop>,
    nodes: &mut Vec<LpNode>,
) -> NodeId {
    let effective = trie.node_next_hop(id).or(inherited);
    let children = trie.children(id);
    let slot = NodeId(u32::try_from(nodes.len()).expect("leaf-pushed trie exceeds u32 nodes"));
    nodes.push(LpNode {
        children: None,
        nhi: None,
    });
    if children[0].is_none() && children[1].is_none() {
        nodes[slot.idx()].nhi = effective;
        return slot;
    }
    let left = match children[0] {
        Some(child) => push(trie, child, effective, nodes),
        None => alloc_leaf(nodes, effective),
    };
    let right = match children[1] {
        Some(child) => push(trie, child, effective, nodes),
        None => alloc_leaf(nodes, effective),
    };
    nodes[slot.idx()].children = Some((left, right));
    slot
}

fn alloc_leaf(nodes: &mut Vec<LpNode>, nhi: Option<NextHop>) -> NodeId {
    let id = NodeId(u32::try_from(nodes.len()).expect("leaf-pushed trie exceeds u32 nodes"));
    nodes.push(LpNode {
        children: None,
        nhi,
    });
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::{Ipv4Prefix, RoutingTable};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn trie_of(entries: &[(&str, u8)]) -> UnibitTrie {
        let table = RoutingTable::from_entries(
            entries
                .iter()
                .map(|(s, nh)| vr_net::RouteEntry::new(p(s), *nh)),
        );
        UnibitTrie::from_table(&table)
    }

    #[test]
    fn empty_trie_becomes_single_nhi_less_leaf() {
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::new());
        assert_eq!(lp.node_count(), 1);
        assert_eq!(lp.leaf_count(), 1);
        assert_eq!(lp.lookup(0), None);
        assert!(lp.is_full());
    }

    #[test]
    fn single_prefix_pushes_to_both_sides() {
        let lp = LeafPushedTrie::from_unibit(&trie_of(&[("128.0.0.0/1", 1)]));
        // Root becomes internal with two leaves: left (no match), right (1).
        assert_eq!(lp.node_count(), 3);
        assert_eq!(lp.lookup(0x0000_0000), None);
        assert_eq!(lp.lookup(0x8000_0000), Some(1));
        assert!(lp.is_full());
    }

    #[test]
    fn default_route_fills_every_leaf() {
        let lp = LeafPushedTrie::from_unibit(&trie_of(&[("0.0.0.0/0", 9), ("128.0.0.0/1", 1)]));
        assert_eq!(lp.lookup(0x0000_0000), Some(9));
        assert_eq!(lp.lookup(0x8000_0000), Some(1));
    }

    #[test]
    fn nested_prefixes_push_longest_match() {
        let lp = LeafPushedTrie::from_unibit(&trie_of(&[
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
        ]));
        assert_eq!(lp.lookup(0x0A01_0203), Some(2)); // inside /16
        assert_eq!(lp.lookup(0x0A02_0203), Some(1)); // inside /8 only
        assert_eq!(lp.lookup(0x0B00_0000), None);
        assert!(lp.is_full());
    }

    #[test]
    fn lookup_agrees_with_unibit_on_paper_scale_table() {
        let table = TableSpec::paper_worst_case(77).generate().unwrap();
        let trie = UnibitTrie::from_table(&table);
        let lp = LeafPushedTrie::from_unibit(&trie);
        let mut probes: Vec<u32> = table.prefixes().map(|q| q.addr().wrapping_add(3)).collect();
        probes.extend([0, u32::MAX, 0x7FFF_FFFF]);
        for ip in probes {
            assert_eq!(lp.lookup(ip), trie.lookup(ip), "ip {ip:#010x}");
        }
    }

    #[test]
    fn growth_matches_paper_regime() {
        // §V-E: 9726 -> 16127 nodes, a growth factor of ~1.66.
        let table = TableSpec::paper_worst_case(2012).generate().unwrap();
        let trie = UnibitTrie::from_table(&table);
        let lp = LeafPushedTrie::from_unibit(&trie);
        let factor = lp.node_count() as f64 / trie.node_count() as f64;
        assert!(
            (1.2..=2.0).contains(&factor),
            "leaf-pushing growth factor {factor} outside the paper's regime"
        );
        assert!(lp.is_full());
    }

    #[test]
    fn stats_agree_with_counts() {
        let table = TableSpec::paper_worst_case(5).generate().unwrap();
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let s = lp.stats();
        assert_eq!(s.total_nodes, lp.node_count());
        assert_eq!(s.leaves, lp.leaf_count());
        assert_eq!(s.internal, lp.internal_count());
        assert!(s.check_invariants());
    }
}

//! Calibrating table families to a target merging efficiency α.
//!
//! The paper sweeps α ∈ {0.2, 0.8} as a free parameter (Assumption 4). Our
//! synthetic families control structural overlap through the *shared
//! prefix fraction* `s`, and the realized α is measured on the merged trie.
//! α(s) is monotone non-decreasing, so a bisection over `s` finds the `s`
//! realizing any reachable α.
//!
//! Note the reachable range: even fully disjoint prefix sets share the top
//! trie levels, so α(0) > 0; and α(1) < 1 only when tables are equal. The
//! search reports the closest achievable value when the target lies
//! outside `[α(0), α(1)]`.

use crate::merge::MergedTrie;
use crate::TrieError;
use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_net::RoutingTable;

/// Outcome of a calibration search.
#[derive(Debug, Clone)]
pub struct CalibratedFamily {
    /// The generated tables realizing the α below.
    pub tables: Vec<RoutingTable>,
    /// The shared prefix fraction found by the search.
    pub shared_fraction: f64,
    /// The measured merging efficiency of the merged trie.
    pub achieved_alpha: f64,
}

/// Parameters of the calibration search.
#[derive(Debug, Clone)]
pub struct CalibrationSpec {
    /// Number of virtual networks K.
    pub k: usize,
    /// Prefixes per table.
    pub prefixes_per_table: usize,
    /// Target merging efficiency.
    pub target_alpha: f64,
    /// Acceptable |achieved − target|.
    pub tolerance: f64,
    /// RNG seed for the family generator.
    pub seed: u64,
    /// Maximum bisection iterations.
    pub max_iterations: usize,
}

impl CalibrationSpec {
    /// Sensible defaults: tolerance 0.02, 24 iterations.
    #[must_use]
    pub fn new(k: usize, prefixes_per_table: usize, target_alpha: f64, seed: u64) -> Self {
        Self {
            k,
            prefixes_per_table,
            target_alpha,
            tolerance: 0.02,
            seed,
            max_iterations: 24,
        }
    }

    fn family(&self, shared_fraction: f64) -> Result<Vec<RoutingTable>, TrieError> {
        FamilySpec {
            k: self.k,
            prefixes_per_table: self.prefixes_per_table,
            shared_fraction,
            seed: self.seed,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 16,
        }
        .generate()
        .map_err(|_| TrieError::InvalidParameter("family generation failed"))
    }

    fn alpha_of(&self, tables: &[RoutingTable]) -> Result<f64, TrieError> {
        Ok(MergedTrie::from_tables(tables)?.merging_efficiency())
    }

    /// Runs the bisection.
    ///
    /// # Errors
    /// [`TrieError::CalibrationFailed`] when the target is unreachable
    /// within tolerance (the closest value is reported), or parameter
    /// errors from family generation / merging.
    pub fn run(&self) -> Result<CalibratedFamily, TrieError> {
        if !(0.0..=1.0).contains(&self.target_alpha) {
            return Err(TrieError::InvalidParameter("target alpha must be in [0, 1]"));
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let lo_tables = self.family(lo)?;
        let lo_alpha = self.alpha_of(&lo_tables)?;
        if lo_alpha >= self.target_alpha {
            // Even disjoint tables overlap at least this much; accept the
            // closest end point if within tolerance.
            return if lo_alpha - self.target_alpha <= self.tolerance {
                Ok(CalibratedFamily {
                    tables: lo_tables,
                    shared_fraction: lo,
                    achieved_alpha: lo_alpha,
                })
            } else {
                Err(TrieError::CalibrationFailed {
                    target: self.target_alpha,
                    achieved: lo_alpha,
                })
            };
        }
        let hi_tables = self.family(hi)?;
        let hi_alpha = self.alpha_of(&hi_tables)?;
        if hi_alpha <= self.target_alpha {
            return if self.target_alpha - hi_alpha <= self.tolerance {
                Ok(CalibratedFamily {
                    tables: hi_tables,
                    shared_fraction: hi,
                    achieved_alpha: hi_alpha,
                })
            } else {
                Err(TrieError::CalibrationFailed {
                    target: self.target_alpha,
                    achieved: hi_alpha,
                })
            };
        }

        let mut best: Option<CalibratedFamily> = None;
        for _ in 0..self.max_iterations {
            let mid = (lo + hi) / 2.0;
            let tables = self.family(mid)?;
            let alpha = self.alpha_of(&tables)?;
            let err = (alpha - self.target_alpha).abs();
            if best
                .as_ref()
                .is_none_or(|b| err < (b.achieved_alpha - self.target_alpha).abs())
            {
                best = Some(CalibratedFamily {
                    tables,
                    shared_fraction: mid,
                    achieved_alpha: alpha,
                });
            }
            if err <= self.tolerance {
                break;
            }
            if alpha < self.target_alpha {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let best = best.expect("at least one bisection iteration ran");
        if (best.achieved_alpha - self.target_alpha).abs() <= self.tolerance {
            Ok(best)
        } else {
            Err(TrieError::CalibrationFailed {
                target: self.target_alpha,
                achieved: best.achieved_alpha,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_to_low_alpha() {
        let spec = CalibrationSpec {
            tolerance: 0.05,
            ..CalibrationSpec::new(4, 400, 0.35, 11)
        };
        let fam = spec.run().unwrap();
        assert!((fam.achieved_alpha - 0.35).abs() <= 0.05);
        assert_eq!(fam.tables.len(), 4);
    }

    #[test]
    fn calibrates_to_high_alpha() {
        let spec = CalibrationSpec {
            tolerance: 0.05,
            ..CalibrationSpec::new(4, 400, 0.8, 12)
        };
        let fam = spec.run().unwrap();
        assert!((fam.achieved_alpha - 0.8).abs() <= 0.05);
        assert!(fam.shared_fraction > 0.2);
    }

    #[test]
    fn rejects_out_of_range_targets() {
        assert!(CalibrationSpec::new(3, 200, 1.5, 1).run().is_err());
        assert!(CalibrationSpec::new(3, 200, -0.1, 1).run().is_err());
    }

    #[test]
    fn unreachably_low_target_reports_closest() {
        // α(0) is well above 0 for small K with shared top levels.
        let spec = CalibrationSpec {
            tolerance: 0.001,
            ..CalibrationSpec::new(2, 400, 0.0, 5)
        };
        match spec.run() {
            Err(TrieError::CalibrationFailed { target, achieved }) => {
                assert_eq!(target, 0.0);
                assert!(achieved > 0.0);
            }
            Ok(fam) => {
                // Acceptable only if genuinely within tolerance.
                assert!(fam.achieved_alpha <= 0.001);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn alpha_one_is_reachable_only_with_identical_structures() {
        // shared_fraction = 1 gives identical prefix sets => alpha = 1.
        let spec = CalibrationSpec {
            tolerance: 0.01,
            ..CalibrationSpec::new(3, 300, 1.0, 8)
        };
        let fam = spec.run().unwrap();
        assert!(fam.achieved_alpha >= 0.99);
        assert!((fam.shared_fraction - 1.0).abs() < 1e-9);
    }
}

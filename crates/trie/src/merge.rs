//! K-way trie merging for the virtualized-merged scheme (§IV-C, §V-D).
//!
//! The merged scheme overlays the K virtual networks' tries into one: a
//! merged node exists wherever *any* constituent trie has a node, and a
//! merged leaf stores a K-wide NHI vector indexed by VNID. Structural
//! similarity between tries means merged size ≪ sum of sizes; the paper
//! quantifies this with the **merging efficiency** α (Assumption 4:
//! common nodes / total nodes).
//!
//! We measure α on the built structure as
//! `common nodes (present in all K tries) / mean per-trie node count`,
//! which is 1.0 for identical tries and →0 for structurally disjoint ones,
//! and coincides with the paper's common/total reading for equal-size
//! tables. [`MergedTrie::overlap_ratio`] additionally reports the laxer
//! `shared (≥2 tries) / merged total` metric for comparison.
//!
//! The merged trie is fully **incremental** (the authors' follow-up work,
//! paper ref. \[6\], adds on-the-fly updates to virtualized routers):
//! [`MergedTrie::insert`] and [`MergedTrie::remove`] announce/withdraw one
//! virtual network's route, maintaining per-VN subtree accounting so
//! presence masks, per-VN node counts and pruning stay exact under churn.

use crate::unibit::{NodeId, UnibitTrie};
use crate::TrieError;
use vr_net::table::NextHop;
use vr_net::{Ipv4Prefix, RoutingTable};

/// Maximum number of tables a merge supports (presence mask is 64-bit; the
/// paper evaluates K ≤ 15, Fig. 4 sweeps to 30).
pub const MAX_MERGE_ARITY: usize = 64;

#[derive(Debug, Clone)]
struct MergedNode {
    children: [Option<NodeId>; 2],
    /// Bit k set ⇔ VN k has ≥1 prefix at or below this node — i.e. the
    /// node lies in VN k's own trie.
    presence: u64,
    /// Per-VN prefix NHI stored at this position (pre leaf pushing).
    nhis: Vec<Option<NextHop>>,
    /// Per-VN count of prefixes in this node's subtree (incl. itself);
    /// drives presence maintenance and pruning under withdrawals.
    subtree_prefixes: Vec<u32>,
}

impl MergedNode {
    fn empty(k: usize) -> Self {
        Self {
            children: [None, None],
            presence: 0,
            nhis: vec![None; k],
            subtree_prefixes: vec![0; k],
        }
    }

    fn is_leaf(&self) -> bool {
        self.children[0].is_none() && self.children[1].is_none()
    }
}

/// The K-way overlay of uni-bit tries (before leaf pushing), supporting
/// incremental announce/withdraw per virtual network.
///
/// ```
/// use vr_trie::MergedTrie;
///
/// let mut merged = MergedTrie::new(2).unwrap();
/// let p = "10.0.0.0/8".parse().unwrap();
/// merged.insert(0, p, 7); // VN 0 announces
/// merged.insert(1, p, 9); // VN 1 announces the same prefix, other hop
/// assert_eq!(merged.lookup(0, 0x0A000001), Some(7));
/// assert_eq!(merged.lookup(1, 0x0A000001), Some(9));
/// assert_eq!(merged.merging_efficiency(), 1.0); // identical structures
/// merged.remove(1, &p);
/// assert_eq!(merged.lookup(1, 0x0A000001), None);
/// ```
#[derive(Debug, Clone)]
pub struct MergedTrie {
    nodes: Vec<MergedNode>,
    free: Vec<NodeId>,
    live_nodes: usize,
    k: usize,
    /// Live merged nodes belonging to each VN's trie (presence bit set).
    per_vn_nodes: Vec<usize>,
    /// Live nodes present in *all* K tries (presence == full mask),
    /// maintained incrementally so α reads are O(1) under churn.
    common_nodes: usize,
}

impl MergedTrie {
    /// Creates an empty merged trie for `k` virtual networks.
    ///
    /// # Errors
    /// Rejects arity 0 and arity above [`MAX_MERGE_ARITY`].
    pub fn new(k: usize) -> Result<Self, TrieError> {
        if k == 0 || k > MAX_MERGE_ARITY {
            return Err(TrieError::BadMergeArity(k));
        }
        Ok(Self {
            nodes: vec![MergedNode::empty(k)],
            free: Vec::new(),
            live_nodes: 1,
            k,
            per_vn_nodes: vec![0; k],
            common_nodes: 0,
        })
    }

    /// Merges `tries` (one per virtual network, VNID = index) by
    /// re-announcing every stored route.
    ///
    /// # Errors
    /// Same arity constraints as [`MergedTrie::new`].
    pub fn from_tries(tries: &[UnibitTrie]) -> Result<Self, TrieError> {
        let tables: Vec<RoutingTable> = tries.iter().map(UnibitTrie::to_table).collect();
        Self::from_tables(&tables)
    }

    /// Builds the merged trie from routing tables.
    ///
    /// # Errors
    /// Same arity constraints as [`MergedTrie::new`].
    pub fn from_tables(tables: &[RoutingTable]) -> Result<Self, TrieError> {
        let mut merged = Self::new(tables.len())?;
        // Merging overlays the K tries, so the node count is bounded by the
        // largest member plus the unshared tails of the others; reserve for
        // a typical ~3-nodes-per-prefix fill of the biggest table to avoid
        // repeated arena reallocation during the bulk build.
        let largest = tables.iter().map(RoutingTable::len).max().unwrap_or(0);
        merged.nodes.reserve(largest.saturating_mul(3) + 1);
        for (vnid, table) in tables.iter().enumerate() {
            for entry in table.iter() {
                merged.insert(vnid, entry.prefix, entry.next_hop);
            }
        }
        Ok(merged)
    }

    /// Number of virtual networks merged.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Total live merged node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Live merged nodes belonging to VN `vnid`'s trie.
    #[must_use]
    pub fn vn_node_count(&self, vnid: usize) -> usize {
        self.per_vn_nodes[vnid]
    }

    /// Announces (or replaces) a route for virtual network `vnid`.
    /// Returns the previous next hop, if the prefix was already present.
    ///
    /// # Panics
    /// Panics if `vnid ≥ arity`.
    pub fn insert(&mut self, vnid: usize, prefix: Ipv4Prefix, next_hop: NextHop) -> Option<NextHop> {
        assert!(vnid < self.k, "vnid out of range");
        // Walk/create the path.
        let mut path = Vec::with_capacity(usize::from(prefix.len()) + 1);
        let mut cur = NodeId::ROOT;
        path.push(cur);
        for bit in prefix.bits() {
            let slot = usize::from(bit);
            cur = match self.nodes[cur.idx()].children[slot] {
                Some(child) => child,
                None => {
                    let child = self.alloc();
                    self.nodes[cur.idx()].children[slot] = Some(child);
                    child
                }
            };
            path.push(cur);
        }
        let prev = self.nodes[cur.idx()].nhis[vnid].replace(next_hop);
        if prev.is_none() {
            let bit = 1u64 << vnid;
            let full = full_mask(self.k);
            for id in path {
                let node = &mut self.nodes[id.idx()];
                node.subtree_prefixes[vnid] += 1;
                if node.presence & bit == 0 {
                    node.presence |= bit;
                    self.per_vn_nodes[vnid] += 1;
                    if node.presence == full {
                        self.common_nodes += 1;
                    }
                }
            }
        }
        prev
    }

    /// Withdraws a route for virtual network `vnid`, pruning merged nodes
    /// no VN uses anymore. Returns the removed next hop, if present.
    ///
    /// # Panics
    /// Panics if `vnid ≥ arity`.
    pub fn remove(&mut self, vnid: usize, prefix: &Ipv4Prefix) -> Option<NextHop> {
        assert!(vnid < self.k, "vnid out of range");
        let mut path = Vec::with_capacity(usize::from(prefix.len()) + 1);
        let mut cur = NodeId::ROOT;
        path.push((cur, 0u8));
        for bit in prefix.bits() {
            let slot = usize::from(bit);
            cur = self.nodes[cur.idx()].children[slot]?;
            path.push((cur, slot as u8));
        }
        let removed = self.nodes[cur.idx()].nhis[vnid].take()?;
        let bit = 1u64 << vnid;
        let full = full_mask(self.k);
        for (id, _) in &path {
            let node = &mut self.nodes[id.idx()];
            node.subtree_prefixes[vnid] -= 1;
            if node.subtree_prefixes[vnid] == 0 && node.presence & bit != 0 {
                if node.presence == full {
                    self.common_nodes -= 1;
                }
                node.presence &= !bit;
                self.per_vn_nodes[vnid] -= 1;
            }
        }
        // Prune orphaned nodes bottom-up (never the root). A node with
        // zero presence has no prefixes in its subtree for any VN, hence
        // no live descendants either.
        while path.len() > 1 {
            let (id, slot) = *path.last().expect("path non-empty");
            let node = &self.nodes[id.idx()];
            if node.presence != 0 || !node.is_leaf() {
                break;
            }
            path.pop();
            let (parent, _) = *path.last().expect("root remains");
            self.nodes[parent.idx()].children[usize::from(slot)] = None;
            self.free.push(id);
            self.live_nodes -= 1;
        }
        Some(removed)
    }

    fn alloc(&mut self) -> NodeId {
        self.live_nodes += 1;
        if let Some(id) = self.free.pop() {
            self.nodes[id.idx()] = MergedNode::empty(self.k);
            id
        } else {
            let id =
                NodeId(u32::try_from(self.nodes.len()).expect("merged trie exceeds u32 nodes"));
            self.nodes.push(MergedNode::empty(self.k));
            id
        }
    }

    /// Iterates the live nodes (root first, depth-first).
    fn walk(&self) -> Walk<'_> {
        Walk {
            trie: self,
            stack: vec![NodeId::ROOT],
        }
    }

    /// Nodes present in *all* K constituent tries. O(1): the count is
    /// maintained incrementally by [`MergedTrie::insert`] /
    /// [`MergedTrie::remove`], so α can be sampled after every update
    /// batch without re-walking the arena.
    #[must_use]
    pub fn common_node_count(&self) -> usize {
        self.common_nodes
    }

    /// Nodes present in at least two constituent tries.
    #[must_use]
    pub fn shared_node_count(&self) -> usize {
        self.walk()
            .filter(|id| self.nodes[id.idx()].presence.count_ones() >= 2)
            .count()
    }

    /// Measured merging efficiency α ∈ [0, 1]: nodes common to all K tries
    /// over the mean per-trie node count. 1.0 for identical tries.
    #[must_use]
    pub fn merging_efficiency(&self) -> f64 {
        let mean: f64 =
            self.per_vn_nodes.iter().sum::<usize>() as f64 / self.per_vn_nodes.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        (self.common_node_count() as f64 / mean).min(1.0)
    }

    /// Laxer overlap metric: nodes shared by ≥2 tries over merged total.
    #[must_use]
    pub fn overlap_ratio(&self) -> f64 {
        if self.live_nodes == 0 {
            return 0.0;
        }
        self.shared_node_count() as f64 / self.live_nodes as f64
    }

    /// Node-count saving vs. keeping the K tries separate:
    /// `1 − merged / Σ per-trie`.
    #[must_use]
    pub fn node_saving(&self) -> f64 {
        let total: usize = self.per_vn_nodes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.node_count() as f64 / total as f64
    }

    /// Longest-prefix match for `ip` in virtual network `vnid`.
    ///
    /// Walks the merged structure but only honours NHI entries belonging to
    /// `vnid` — a software rendition of the VNID-indexed lookup (§IV-C).
    #[must_use]
    pub fn lookup(&self, vnid: usize, ip: u32) -> Option<NextHop> {
        debug_assert!(vnid < self.k);
        let mut cur = 0usize;
        let mut best = self.nodes[cur].nhis[vnid];
        for depth in 0..32u8 {
            let bit = ((ip >> (31 - depth)) & 1) as usize;
            match self.nodes[cur].children[bit] {
                Some(child) => {
                    cur = child.idx();
                    if let Some(nh) = self.nodes[cur].nhis[vnid] {
                        best = Some(nh);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Batched longest-prefix match in virtual network `vnid`: element `i`
    /// of `out` receives exactly `self.lookup(vnid, dsts[i])`.
    ///
    /// Destinations advance one level per pass over the batch (stage
    /// lockstep) — see [`UnibitTrie::lookup_batch`].
    ///
    /// [`UnibitTrie::lookup_batch`]: crate::UnibitTrie::lookup_batch
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, vnid: usize, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        debug_assert!(vnid < self.k);
        out.fill(self.nodes[0].nhis[vnid]);
        let mut cur: Vec<usize> = vec![0; dsts.len()];
        let mut active: Vec<u32> = (0..u32::try_from(dsts.len()).expect("batch too large")).collect();
        let mut survivors: Vec<u32> = Vec::with_capacity(active.len());
        for depth in 0..32u8 {
            if active.is_empty() {
                break;
            }
            for &i in &active {
                let idx = i as usize;
                let bit = ((dsts[idx] >> (31 - depth)) & 1) as usize;
                if let Some(child) = self.nodes[cur[idx]].children[bit] {
                    cur[idx] = child.idx();
                    if let Some(nh) = self.nodes[child.idx()].nhis[vnid] {
                        out[idx] = Some(nh);
                    }
                    survivors.push(i);
                }
            }
            active.clear();
            std::mem::swap(&mut active, &mut survivors);
        }
    }

    /// Applies leaf pushing, producing the structure the pipeline stores.
    #[must_use]
    pub fn leaf_pushed(&self) -> MergedLeafPushed {
        MergedLeafPushed::from_merged(self)
    }

    /// Internal-consistency check used by property tests: reachability,
    /// counters and presence/subtree invariants all agree.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut reachable = 0usize;
        let mut per_vn = vec![0usize; self.k];
        let mut prefix_totals = vec![0u64; self.k];
        let mut common = 0usize;
        let full = full_mask(self.k);
        for id in self.walk() {
            reachable += 1;
            let node = &self.nodes[id.idx()];
            if node.presence == full {
                common += 1;
            }
            for vn in 0..self.k {
                let bit_set = node.presence & (1u64 << vn) != 0;
                if bit_set != (node.subtree_prefixes[vn] > 0) {
                    return false;
                }
                if bit_set {
                    per_vn[vn] += 1;
                }
                if node.nhis[vn].is_some() {
                    prefix_totals[vn] += 1;
                }
            }
            // A live non-root node must serve someone.
            if id != NodeId::ROOT && node.presence == 0 && node.is_leaf() {
                return false;
            }
        }
        // Root subtree counters must equal total prefixes per VN.
        let root = &self.nodes[NodeId::ROOT.idx()];
        for (vn, total) in prefix_totals.iter().enumerate() {
            if u64::from(root.subtree_prefixes[vn]) != *total {
                return false;
            }
        }
        reachable == self.live_nodes
            && per_vn == self.per_vn_nodes
            && common == self.common_nodes
            && self.live_nodes + self.free.len() == self.nodes.len()
    }

    /// Child of node `id` along branch `bit` (0 = left, 1 = right).
    ///
    /// Exposes the merged structure read-only so sub-slab builders
    /// ([`crate::subslab::JumpSlabs`]) can descend without cloning.
    ///
    /// # Panics
    /// Panics if `bit > 1` or `id` is not a live node id.
    #[must_use]
    pub fn node_child(&self, id: NodeId, bit: usize) -> Option<NodeId> {
        self.nodes[id.idx()].children[bit]
    }

    /// Per-VN next-hop entries stored at node `id` (pre leaf pushing),
    /// indexed by VNID.
    ///
    /// # Panics
    /// Panics if `id` is not a live node id.
    #[must_use]
    pub fn node_nhis(&self, id: NodeId) -> &[Option<NextHop>] {
        &self.nodes[id.idx()].nhis
    }

    fn node(&self, id: NodeId) -> &MergedNode {
        &self.nodes[id.idx()]
    }
}

struct Walk<'a> {
    trie: &'a MergedTrie,
    stack: Vec<NodeId>,
}

impl Iterator for Walk<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let node = &self.trie.nodes[id.idx()];
        if let Some(r) = node.children[1] {
            self.stack.push(r);
        }
        if let Some(l) = node.children[0] {
            self.stack.push(l);
        }
        Some(id)
    }
}

fn full_mask(k: usize) -> u64 {
    if k == 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

#[derive(Debug, Clone)]
struct MlpNode {
    children: Option<(NodeId, NodeId)>,
    /// K-wide NHI vector; meaningful only at leaves.
    nhis: Vec<Option<NextHop>>,
}

/// Leaf-pushed merged trie: a full binary trie whose leaves store K-wide
/// NHI vectors (one entry per virtual network, indexed by VNID).
#[derive(Debug, Clone)]
pub struct MergedLeafPushed {
    nodes: Vec<MlpNode>,
    root: NodeId,
    k: usize,
}

impl MergedLeafPushed {
    /// Applies leaf pushing to a merged trie.
    #[must_use]
    pub fn from_merged(merged: &MergedTrie) -> Self {
        let mut nodes = Vec::with_capacity(merged.node_count() * 2);
        let inherited = vec![None; merged.k];
        let root = push(merged, NodeId(0), &inherited, &mut nodes);
        Self {
            nodes,
            root,
            k: merged.k,
        }
    }

    /// Number of virtual networks.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Total node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves — each stores a K-wide NHI vector.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_none()).count()
    }

    /// Number of internal (pointer) nodes.
    #[must_use]
    pub fn internal_count(&self) -> usize {
        self.node_count() - self.leaf_count()
    }

    /// Total NHI entries stored (leaves × K): the hardware provisions the
    /// full vector width per leaf regardless of empty entries (§V-D).
    #[must_use]
    pub fn nhi_entries(&self) -> usize {
        self.leaf_count() * self.k
    }

    /// Longest-prefix match for `ip` in virtual network `vnid`: walk to a
    /// leaf, then index the vector by VNID.
    #[must_use]
    pub fn lookup(&self, vnid: usize, ip: u32) -> Option<NextHop> {
        debug_assert!(vnid < self.k);
        let mut cur = self.root;
        let mut depth = 0u8;
        loop {
            let node = &self.nodes[cur.idx()];
            match node.children {
                None => return node.nhis[vnid],
                Some((l, r)) => {
                    debug_assert!(depth < 32);
                    let bit = (ip >> (31 - depth)) & 1;
                    cur = if bit == 0 { l } else { r };
                    depth += 1;
                }
            }
        }
    }

    /// Batched longest-prefix match in virtual network `vnid`: element `i`
    /// of `out` receives exactly `self.lookup(vnid, dsts[i])`.
    ///
    /// Destinations advance one level per pass over the batch (stage
    /// lockstep) — see [`UnibitTrie::lookup_batch`].
    ///
    /// [`UnibitTrie::lookup_batch`]: crate::UnibitTrie::lookup_batch
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, vnid: usize, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        debug_assert!(vnid < self.k);
        let mut cur: Vec<NodeId> = vec![self.root; dsts.len()];
        let mut active: Vec<u32> = (0..u32::try_from(dsts.len()).expect("batch too large")).collect();
        let mut survivors: Vec<u32> = Vec::with_capacity(active.len());
        let mut depth = 0u8;
        while !active.is_empty() {
            debug_assert!(depth <= 32, "full trie deeper than address width");
            for &i in &active {
                let idx = i as usize;
                let node = &self.nodes[cur[idx].idx()];
                match node.children {
                    None => out[idx] = node.nhis[vnid],
                    Some((l, r)) => {
                        let bit = (dsts[idx] >> (31 - depth)) & 1;
                        cur[idx] = if bit == 0 { l } else { r };
                        survivors.push(i);
                    }
                }
            }
            active.clear();
            std::mem::swap(&mut active, &mut survivors);
            depth += 1;
        }
    }

    /// The root node id (entry point for stage-by-stage traversal in the
    /// pipeline simulator).
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Children of a node: `Some((left, right))` for internal nodes,
    /// `None` for leaves.
    #[must_use]
    pub fn node_children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id.idx()].children
    }

    /// The NHI stored at a leaf for virtual network `vnid`.
    #[must_use]
    pub fn node_nhi_for(&self, id: NodeId, vnid: usize) -> Option<NextHop> {
        self.nodes[id.idx()].nhis.get(vnid).copied().flatten()
    }

    /// Full-binary structural invariant (leaves = internal + 1).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.leaf_count() == self.internal_count() + 1
    }

    /// Per-level statistics (prefix nodes = leaves with ≥1 NHI entry).
    #[must_use]
    pub fn stats(&self) -> crate::stats::TrieStats {
        let mut stats = crate::stats::TrieStats::default();
        let mut stack = vec![(self.root, 0u8)];
        while let Some((id, depth)) = stack.pop() {
            let node = &self.nodes[id.idx()];
            match node.children {
                None => stats.record(depth, true, node.nhis.iter().any(Option::is_some)),
                Some((l, r)) => {
                    stats.record(depth, false, false);
                    stack.push((r, depth + 1));
                    stack.push((l, depth + 1));
                }
            }
        }
        stats
    }
}

fn push(
    merged: &MergedTrie,
    id: NodeId,
    inherited: &[Option<NextHop>],
    nodes: &mut Vec<MlpNode>,
) -> NodeId {
    let node = merged.node(id);
    let effective: Vec<Option<NextHop>> = node
        .nhis
        .iter()
        .zip(inherited)
        .map(|(own, inh)| own.or(*inh))
        .collect();
    let slot = NodeId(u32::try_from(nodes.len()).expect("merged leaf-pushed trie exceeds u32"));
    nodes.push(MlpNode {
        children: None,
        nhis: Vec::new(),
    });
    if node.is_leaf() {
        nodes[slot.idx()].nhis = effective;
        return slot;
    }
    let left = match node.children[0] {
        Some(child) => push(merged, child, &effective, nodes),
        None => alloc_leaf(nodes, effective.clone()),
    };
    let right = match node.children[1] {
        Some(child) => push(merged, child, &effective, nodes),
        None => alloc_leaf(nodes, effective.clone()),
    };
    nodes[slot.idx()].children = Some((left, right));
    slot
}

fn alloc_leaf(nodes: &mut Vec<MlpNode>, nhis: Vec<Option<NextHop>>) -> NodeId {
    let id = NodeId(u32::try_from(nodes.len()).expect("merged leaf-pushed trie exceeds u32"));
    nodes.push(MlpNode {
        children: None,
        nhis,
    });
    id
}

/// Convenience: build everything from tables and return both views.
///
/// # Errors
/// Same arity constraints as [`MergedTrie::from_tries`].
pub fn merge_tables(tables: &[RoutingTable]) -> Result<(MergedTrie, MergedLeafPushed), TrieError> {
    let merged = MergedTrie::from_tables(tables)?;
    let pushed = merged.leaf_pushed();
    Ok((merged, pushed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leafpush::LeafPushedTrie;
    use vr_net::synth::{FamilySpec, TableSpec};

    fn family(k: usize, shared: f64, seed: u64) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 400,
            shared_fraction: shared,
            seed,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn arity_bounds_are_enforced() {
        assert!(matches!(
            MergedTrie::from_tables(&[]),
            Err(TrieError::BadMergeArity(0))
        ));
        let too_many = vec![RoutingTable::new(); 65];
        assert!(matches!(
            MergedTrie::from_tables(&too_many),
            Err(TrieError::BadMergeArity(65))
        ));
    }

    #[test]
    fn merging_identical_tables_is_free() {
        let t = TableSpec::paper_worst_case(4).generate().unwrap();
        let single = UnibitTrie::from_table(&t);
        let merged = MergedTrie::from_tables(&[t.clone(), t.clone(), t]).unwrap();
        assert_eq!(merged.node_count(), single.node_count());
        assert!((merged.merging_efficiency() - 1.0).abs() < 1e-12);
        assert!((merged.node_saving() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merging_disjoint_tables_has_low_alpha() {
        let tables = family(4, 0.0, 9);
        let merged = MergedTrie::from_tables(&tables).unwrap();
        // Only top-of-trie nodes coincide by chance.
        assert!(merged.merging_efficiency() < 0.35);
        assert!(merged.node_saving() < 0.45);
    }

    #[test]
    fn alpha_increases_with_shared_fraction() {
        let lo = MergedTrie::from_tables(&family(4, 0.1, 7)).unwrap();
        let hi = MergedTrie::from_tables(&family(4, 0.9, 7)).unwrap();
        assert!(
            hi.merging_efficiency() > lo.merging_efficiency() + 0.2,
            "alpha lo={} hi={}",
            lo.merging_efficiency(),
            hi.merging_efficiency()
        );
    }

    #[test]
    fn merged_lookup_matches_per_table_lookup() {
        let tables = family(3, 0.5, 21);
        let merged = MergedTrie::from_tables(&tables).unwrap();
        for (vnid, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(100) {
                let probe = prefix.addr() | 1;
                assert_eq!(
                    merged.lookup(vnid, probe),
                    table.lookup(probe),
                    "vn {vnid} probe {probe:#010x}"
                );
            }
        }
    }

    #[test]
    fn leaf_pushed_merged_lookup_matches_per_table_lookup() {
        let tables = family(3, 0.5, 22);
        let (_, pushed) = merge_tables(&tables).unwrap();
        assert!(pushed.is_full());
        for (vnid, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(100) {
                let probe = prefix.addr().wrapping_add(2);
                assert_eq!(
                    pushed.lookup(vnid, probe),
                    table.lookup(probe),
                    "vn {vnid} probe {probe:#010x}"
                );
            }
        }
    }

    #[test]
    fn nhi_entries_scale_with_arity() {
        let tables = family(5, 0.8, 3);
        let (_, pushed) = merge_tables(&tables).unwrap();
        assert_eq!(pushed.arity(), 5);
        assert_eq!(pushed.nhi_entries(), pushed.leaf_count() * 5);
    }

    #[test]
    fn single_table_merge_equals_plain_leaf_pushing() {
        let t = TableSpec::paper_worst_case(8).generate().unwrap();
        let (merged, pushed) = merge_tables(std::slice::from_ref(&t)).unwrap();
        let plain = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&t));
        assert_eq!(merged.node_count(), UnibitTrie::from_table(&t).node_count());
        assert_eq!(pushed.node_count(), plain.node_count());
        assert_eq!(pushed.leaf_count(), plain.leaf_count());
        assert!((merged.merging_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_node_count_between_max_and_sum() {
        let tables = family(4, 0.5, 31);
        let tries: Vec<UnibitTrie> = tables.iter().map(UnibitTrie::from_table).collect();
        let merged = MergedTrie::from_tries(&tries).unwrap();
        let max = tries.iter().map(UnibitTrie::node_count).max().unwrap();
        let sum: usize = tries.iter().map(UnibitTrie::node_count).sum();
        assert!(merged.node_count() >= max);
        assert!(merged.node_count() <= sum);
    }

    #[test]
    fn overlap_ratio_is_bounded() {
        let merged = MergedTrie::from_tables(&family(3, 0.4, 2)).unwrap();
        let r = merged.overlap_ratio();
        assert!((0.0..=1.0).contains(&r));
        assert!(merged.shared_node_count() >= merged.common_node_count());
    }

    #[test]
    fn incremental_insert_then_remove_restores_structure() {
        let tables = family(3, 0.5, 41);
        let mut merged = MergedTrie::from_tables(&tables).unwrap();
        assert!(merged.check_invariants());
        let nodes_before = merged.node_count();
        let vn_counts_before: Vec<usize> = (0..3).map(|v| merged.vn_node_count(v)).collect();

        let p: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
        assert_eq!(merged.insert(1, p, 7), None);
        assert!(merged.check_invariants());
        assert_eq!(merged.lookup(1, 0xCB00_7105), Some(7));
        assert!(merged.node_count() > nodes_before);

        assert_eq!(merged.remove(1, &p), Some(7));
        assert!(merged.check_invariants());
        assert_eq!(merged.node_count(), nodes_before);
        let vn_counts_after: Vec<usize> = (0..3).map(|v| merged.vn_node_count(v)).collect();
        assert_eq!(vn_counts_before, vn_counts_after);
    }

    #[test]
    fn withdrawing_one_vn_keeps_shared_paths_for_others() {
        let t = TableSpec::paper_worst_case(43).generate().unwrap();
        // Two identical tables; withdraw every route of VN 1.
        let mut merged = MergedTrie::from_tables(&[t.clone(), t.clone()]).unwrap();
        assert!((merged.merging_efficiency() - 1.0).abs() < 1e-12);
        let nodes = merged.node_count();
        for prefix in t.prefixes() {
            assert!(merged.remove(1, &prefix).is_some());
        }
        assert!(merged.check_invariants());
        // Shared paths survive (VN 0 still uses every node), so the node
        // count is unchanged — the whole point of merging.
        assert_eq!(merged.node_count(), nodes);
        assert_eq!(merged.vn_node_count(1), 0);
        // VN 0 still forwards; VN 1 resolves nothing.
        let probe = t.prefixes().nth(10).unwrap().addr() | 1;
        assert_eq!(merged.lookup(0, probe), t.lookup(probe));
        assert_eq!(merged.lookup(1, probe), None);
        // α collapses: mean per-VN nodes halved, common nodes zero.
        assert_eq!(merged.common_node_count(), 0);
    }

    #[test]
    fn churn_preserves_oracle_equivalence() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut tables = family(3, 0.5, 44);
        let mut merged = MergedTrie::from_tables(&tables).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        // Apply 300 random announce/withdraw operations, mirroring them
        // into the reference tables.
        for _ in 0..300 {
            let vn = rng.gen_range(0..3usize);
            if rng.gen_bool(0.5) {
                let prefix = Ipv4Prefix::must(rng.gen(), rng.gen_range(8..=28));
                let nh = rng.gen_range(0..16u8);
                merged.insert(vn, prefix, nh);
                tables[vn].insert(prefix, nh);
            } else {
                let idx = rng.gen_range(0..tables[vn].len());
                let prefix = tables[vn].prefixes().nth(idx);
                if let Some(prefix) = prefix {
                    assert_eq!(merged.remove(vn, &prefix), tables[vn].remove(&prefix));
                }
            }
        }
        assert!(merged.check_invariants());
        for (vn, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(60) {
                let probe = prefix.addr() | 3;
                assert_eq!(merged.lookup(vn, probe), table.lookup(probe), "vn {vn}");
            }
        }
        // The leaf-pushed view built after churn is equally correct.
        let pushed = merged.leaf_pushed();
        for (vn, table) in tables.iter().enumerate() {
            for prefix in table.prefixes().take(60) {
                let probe = prefix.addr().wrapping_add(9);
                assert_eq!(pushed.lookup(vn, probe), table.lookup(probe), "vn {vn}");
            }
        }
    }

    #[test]
    fn common_node_counter_matches_walk_under_churn() {
        let mut merged = MergedTrie::from_tables(&family(3, 0.7, 51)).unwrap();
        let p: Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
        // Counter transitions both ways: last VN arriving at a node makes
        // it common; first VN leaving makes it non-common again.
        let before = merged.common_node_count();
        merged.insert(0, p, 1);
        merged.insert(1, p, 2);
        assert!(merged.check_invariants());
        merged.insert(2, p, 3);
        assert!(merged.check_invariants());
        assert!(merged.common_node_count() > before);
        merged.remove(2, &p);
        assert!(merged.check_invariants());
        merged.remove(1, &p);
        merged.remove(0, &p);
        assert!(merged.check_invariants());
        assert_eq!(merged.common_node_count(), before);
    }

    #[test]
    fn remove_missing_is_noop() {
        let tables = family(2, 0.5, 45);
        let mut merged = MergedTrie::from_tables(&tables).unwrap();
        let nodes = merged.node_count();
        let absent: Ipv4Prefix = "198.51.100.0/31".parse().unwrap();
        assert_eq!(merged.remove(0, &absent), None);
        assert_eq!(merged.node_count(), nodes);
        assert!(merged.check_invariants());
    }

    #[test]
    fn freed_merged_nodes_are_reused() {
        let mut merged = MergedTrie::new(2).unwrap();
        let p: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
        merged.insert(0, p, 1);
        let arena = merged.nodes.len();
        merged.remove(0, &p);
        merged.insert(1, "172.16.0.0/12".parse().unwrap(), 2);
        assert!(merged.nodes.len() <= arena, "free list must be reused");
        assert!(merged.check_invariants());
    }

    #[test]
    fn stats_of_leaf_pushed_merged_are_consistent() {
        let (_, pushed) = merge_tables(&family(3, 0.6, 13)).unwrap();
        let s = pushed.stats();
        assert_eq!(s.total_nodes, pushed.node_count());
        assert_eq!(s.leaves, pushed.leaf_count());
        assert!(s.check_invariants());
    }
}

//! Arena-based uni-bit binary trie with incremental updates.
//!
//! One trie level per prefix bit: a prefix of length L lives at depth L,
//! the root at depth 0 holds the default route. Lookup walks destination
//! bits MSB-first, remembering the last next-hop seen (longest-prefix
//! match). This is exactly the structure the paper maps onto the lookup
//! pipeline (§V-D), before leaf pushing.

use crate::stats::TrieStats;
use vr_net::table::NextHop;
use vr_net::{Ipv4Prefix, RoutingTable};

/// Index of a node in the trie arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id (always 0 in a live trie).
    pub const ROOT: NodeId = NodeId(0);

    /// Wraps a raw index (for callers holding indices from other node
    /// arenas, e.g. the stride trie's walk interface).
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node {
    children: [Option<NodeId>; 2],
    next_hop: Option<NextHop>,
}

impl Node {
    const EMPTY: Node = Node {
        children: [None, None],
        next_hop: None,
    };

    fn is_leaf(&self) -> bool {
        self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A uni-bit binary trie over IPv4 prefixes.
///
/// Nodes live in a flat arena; removed nodes go on a free list and are
/// reused by later inserts, so long simulation runs with route churn do not
/// grow the arena unboundedly.
///
/// ```
/// use vr_net::RoutingTable;
/// use vr_trie::UnibitTrie;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.0.0/16 2\n".parse().unwrap();
/// let mut trie = UnibitTrie::from_table(&table);
/// assert_eq!(trie.lookup(0x0A01_0000), Some(2));
/// trie.remove(&"10.1.0.0/16".parse().unwrap());
/// assert_eq!(trie.lookup(0x0A01_0000), Some(1)); // falls back to the /8
/// ```
#[derive(Debug, Clone)]
pub struct UnibitTrie {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    live_nodes: usize,
    prefix_count: usize,
}

impl Default for UnibitTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl UnibitTrie {
    /// Creates a trie containing only the (empty) root.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::EMPTY],
            free: Vec::new(),
            live_nodes: 1,
            prefix_count: 0,
        }
    }

    /// Builds a trie from a routing table.
    #[must_use]
    pub fn from_table(table: &RoutingTable) -> Self {
        let mut trie = Self::new();
        // Real tables fill roughly 2–4 nodes per prefix once paths start
        // sharing; reserving up front keeps the bulk build from paying
        // repeated arena reallocation + copy of every node.
        trie.nodes.reserve(table.len().saturating_mul(3) + 1);
        for entry in table.iter() {
            trie.insert(entry.prefix, entry.next_hop);
        }
        trie
    }

    /// Number of live nodes, including the root.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of stored prefixes.
    #[must_use]
    pub fn prefix_count(&self) -> usize {
        self.prefix_count
    }

    /// Whether any prefix is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prefix_count == 0
    }

    fn alloc(&mut self) -> NodeId {
        self.live_nodes += 1;
        if let Some(id) = self.free.pop() {
            self.nodes[id.idx()] = Node::EMPTY;
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("trie exceeds u32 nodes"));
            self.nodes.push(Node::EMPTY);
            id
        }
    }

    /// Inserts (or replaces) a prefix. Returns the previous next hop if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) -> Option<NextHop> {
        let mut cur = NodeId::ROOT;
        for bit in prefix_bits(&prefix) {
            let slot = usize::from(bit);
            cur = match self.nodes[cur.idx()].children[slot] {
                Some(child) => child,
                None => {
                    let child = self.alloc();
                    self.nodes[cur.idx()].children[slot] = Some(child);
                    child
                }
            };
        }
        let prev = self.nodes[cur.idx()].next_hop.replace(next_hop);
        if prev.is_none() {
            self.prefix_count += 1;
        }
        prev
    }

    /// Withdraws a prefix, pruning any nodes left with no prefix and no
    /// children. Returns the removed next hop, or `None` if absent.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<NextHop> {
        // Record the path root→target so pruning can walk back up.
        let mut path = Vec::with_capacity(usize::from(prefix.len()) + 1);
        let mut cur = NodeId::ROOT;
        path.push((cur, 0u8));
        for bit in prefix_bits(prefix) {
            let slot = usize::from(bit);
            cur = self.nodes[cur.idx()].children[slot]?;
            path.push((cur, slot as u8));
        }
        let removed = self.nodes[cur.idx()].next_hop.take()?;
        self.prefix_count -= 1;

        // Prune childless, prefix-less nodes bottom-up (never the root).
        while path.len() > 1 {
            let (id, slot) = *path.last().expect("path non-empty");
            let node = &self.nodes[id.idx()];
            if node.next_hop.is_some() || !node.is_leaf() {
                break;
            }
            path.pop();
            let (parent, _) = *path.last().expect("root remains");
            self.nodes[parent.idx()].children[usize::from(slot)] = None;
            self.free.push(id);
            self.live_nodes -= 1;
        }
        Some(removed)
    }

    /// Longest-prefix match for `ip`.
    #[must_use]
    pub fn lookup(&self, ip: u32) -> Option<NextHop> {
        let mut best = self.nodes[NodeId::ROOT.idx()].next_hop;
        let mut cur = NodeId::ROOT;
        for depth in 0..32u8 {
            let bit = (ip >> (31 - depth)) & 1;
            match self.nodes[cur.idx()].children[bit as usize] {
                Some(child) => {
                    cur = child;
                    if let Some(nh) = self.nodes[cur.idx()].next_hop {
                        best = Some(nh);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Batched longest-prefix match: element `i` of `out` receives exactly
    /// `self.lookup(dsts[i])`.
    ///
    /// Destinations advance through the trie in stage lockstep (one level
    /// per pass over the batch), the software analogue of the paper's
    /// one-packet-per-stage pipeline: each pass issues B independent node
    /// reads instead of chasing one pointer chain at a time, hiding
    /// cache-miss latency.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    pub fn lookup_batch(&self, dsts: &[u32], out: &mut [Option<NextHop>]) {
        assert_eq!(
            dsts.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        let root_nh = self.nodes[NodeId::ROOT.idx()].next_hop;
        out.fill(root_nh);
        let mut cur: Vec<NodeId> = vec![NodeId::ROOT; dsts.len()];
        let mut active: Vec<u32> = (0..u32::try_from(dsts.len()).expect("batch too large")).collect();
        let mut survivors: Vec<u32> = Vec::with_capacity(active.len());
        for depth in 0..32u8 {
            if active.is_empty() {
                break;
            }
            for &i in &active {
                let idx = i as usize;
                let bit = (dsts[idx] >> (31 - depth)) & 1;
                if let Some(child) = self.nodes[cur[idx].idx()].children[bit as usize] {
                    cur[idx] = child;
                    if let Some(nh) = self.nodes[child.idx()].next_hop {
                        out[idx] = Some(nh);
                    }
                    survivors.push(i);
                }
            }
            active.clear();
            std::mem::swap(&mut active, &mut survivors);
        }
    }

    /// Exact-match query: the next hop stored *at* `prefix`, if any.
    #[must_use]
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<NextHop> {
        let mut cur = NodeId::ROOT;
        for bit in prefix_bits(prefix) {
            cur = self.nodes[cur.idx()].children[usize::from(bit)]?;
        }
        self.nodes[cur.idx()].next_hop
    }

    /// Children of a node (used by the leaf-pushing and merge transforms).
    #[must_use]
    pub fn children(&self, id: NodeId) -> [Option<NodeId>; 2] {
        self.nodes[id.idx()].children
    }

    /// The next hop stored at a node.
    #[must_use]
    pub fn node_next_hop(&self, id: NodeId) -> Option<NextHop> {
        self.nodes[id.idx()].next_hop
    }

    /// Depth-first traversal yielding `(node, depth)` pairs, children in
    /// bit order. Root first.
    pub fn walk(&self) -> impl Iterator<Item = (NodeId, u8)> + '_ {
        Walk {
            trie: self,
            stack: vec![(NodeId::ROOT, 0)],
        }
    }

    /// Per-level statistics of the live trie.
    #[must_use]
    pub fn stats(&self) -> TrieStats {
        let mut stats = TrieStats::default();
        for (id, depth) in self.walk() {
            let node = &self.nodes[id.idx()];
            stats.record(depth, node.is_leaf(), node.next_hop.is_some());
        }
        stats
    }

    /// Reconstructs the routing table stored in the trie (canonical order).
    #[must_use]
    pub fn to_table(&self) -> RoutingTable {
        let mut table = RoutingTable::new();
        let mut stack = vec![(NodeId::ROOT, 0u32, 0u8)];
        while let Some((id, addr, depth)) = stack.pop() {
            let node = &self.nodes[id.idx()];
            if let Some(nh) = node.next_hop {
                table.insert(Ipv4Prefix::must(addr, depth), nh);
            }
            for (bit, child) in node.children.iter().enumerate() {
                if let Some(child) = *child {
                    let child_addr = if bit == 1 {
                        addr | (1u32 << (31 - depth))
                    } else {
                        addr
                    };
                    stack.push((child, child_addr, depth + 1));
                }
            }
        }
        table
    }

    /// Internal-consistency check used by property tests: the arena's live
    /// set matches reachability from the root, and counters agree.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut reachable = 0usize;
        let mut prefixes = 0usize;
        for (id, depth) in self.walk() {
            if depth > 32 {
                return false;
            }
            reachable += 1;
            if self.nodes[id.idx()].next_hop.is_some() {
                prefixes += 1;
            }
        }
        reachable == self.live_nodes
            && prefixes == self.prefix_count
            && self.live_nodes + self.free.len() == self.nodes.len()
    }
}

struct Walk<'a> {
    trie: &'a UnibitTrie,
    stack: Vec<(NodeId, u8)>,
}

impl Iterator for Walk<'_> {
    type Item = (NodeId, u8);

    fn next(&mut self) -> Option<Self::Item> {
        let (id, depth) = self.stack.pop()?;
        let node = &self.trie.nodes[id.idx()];
        // Push right then left so left is visited first.
        if let Some(r) = node.children[1] {
            self.stack.push((r, depth + 1));
        }
        if let Some(l) = node.children[0] {
            self.stack.push((l, depth + 1));
        }
        Some((id, depth))
    }
}

fn prefix_bits(prefix: &Ipv4Prefix) -> impl Iterator<Item = bool> + '_ {
    prefix.bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::table::RouteEntry;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_has_only_root() {
        let t = UnibitTrie::new();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.prefix_count(), 0);
        assert!(t.is_empty());
        assert_eq!(t.lookup(0x0A000000), None);
        assert!(t.check_invariants());
    }

    #[test]
    fn insert_creates_path_nodes() {
        let mut t = UnibitTrie::new();
        t.insert(p("128.0.0.0/1"), 1);
        assert_eq!(t.node_count(), 2);
        t.insert(p("192.0.0.0/2"), 2);
        assert_eq!(t.node_count(), 3);
        // Reinsert replaces without new nodes.
        assert_eq!(t.insert(p("192.0.0.0/2"), 3), Some(2));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.prefix_count(), 2);
        assert!(t.check_invariants());
    }

    #[test]
    fn lookup_matches_reference_oracle() {
        let table = TableSpec::paper_worst_case(17).generate().unwrap();
        let trie = UnibitTrie::from_table(&table);
        // Probe addresses derived from table prefixes plus random ones.
        let mut probes: Vec<u32> = table.prefixes().map(|p| p.addr() | 0x1).collect();
        probes.extend([0u32, u32::MAX, 0x8000_0000, 0x0102_0304]);
        for ip in probes {
            assert_eq!(trie.lookup(ip), table.lookup(ip), "ip {ip:#010x}");
        }
    }

    #[test]
    fn default_route_at_root() {
        let mut t = UnibitTrie::new();
        t.insert(Ipv4Prefix::DEFAULT_ROUTE, 7);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.lookup(0xDEAD_BEEF), Some(7));
    }

    #[test]
    fn remove_prunes_chains() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.1.2.0/24"), 1);
        assert_eq!(t.node_count(), 25);
        assert_eq!(t.remove(&p("10.1.2.0/24")), Some(1));
        assert_eq!(t.node_count(), 1);
        assert!(t.is_empty());
        assert!(t.check_invariants());
    }

    #[test]
    fn remove_keeps_shared_path() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let n = t.node_count();
        t.remove(&p("10.1.0.0/16"));
        assert_eq!(t.node_count(), n - 8); // only the /8→/16 tail pruned
        assert_eq!(t.lookup(0x0A01_0000), Some(1));
        assert!(t.check_invariants());
    }

    #[test]
    fn remove_inner_prefix_keeps_descendants() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let n = t.node_count();
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(1));
        assert_eq!(t.node_count(), n); // nothing prunable
        assert_eq!(t.lookup(0x0A01_0000), Some(2));
        assert_eq!(t.lookup(0x0A02_0000), None);
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.remove(&p("11.0.0.0/8")), None);
        assert_eq!(t.remove(&p("10.0.0.0/9")), None);
        assert_eq!(t.node_count(), 9);
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.1.2.0/24"), 1);
        let arena_after_insert = t.nodes.len();
        t.remove(&p("10.1.2.0/24"));
        t.insert(p("172.16.0.0/12"), 2);
        assert!(
            t.nodes.len() <= arena_after_insert,
            "free list must be reused"
        );
        assert!(t.check_invariants());
    }

    #[test]
    fn to_table_round_trips() {
        let table = RoutingTable::from_entries([
            RouteEntry::new(p("0.0.0.0/0"), 9),
            RouteEntry::new(p("10.0.0.0/8"), 1),
            RouteEntry::new(p("10.1.0.0/16"), 2),
            RouteEntry::new(p("192.168.0.0/16"), 3),
        ]);
        let trie = UnibitTrie::from_table(&table);
        assert_eq!(trie.to_table(), table);
    }

    #[test]
    fn get_is_exact_match_only() {
        let mut t = UnibitTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(1));
        assert_eq!(t.get(&p("10.0.0.0/16")), None);
        assert_eq!(t.get(&p("10.0.0.0/4")), None);
    }

    #[test]
    fn stats_count_levels() {
        let mut t = UnibitTrie::new();
        t.insert(p("128.0.0.0/1"), 1);
        t.insert(p("0.0.0.0/1"), 2);
        let s = t.stats();
        assert_eq!(s.total_nodes, 3);
        assert_eq!(s.nodes_at_level(0), 1);
        assert_eq!(s.nodes_at_level(1), 2);
        assert_eq!(s.leaves, 2);
        assert_eq!(s.prefix_nodes, 2);
    }

    #[test]
    fn paper_scale_trie_node_counts_are_in_regime() {
        // §V-E: 3725 prefixes -> 9726 trie nodes (no leaf pushing). The
        // synthetic generator must land in the same order of magnitude.
        let table = TableSpec::paper_worst_case(2012).generate().unwrap();
        let trie = UnibitTrie::from_table(&table);
        let nodes = trie.node_count();
        assert!(
            (6_000..=40_000).contains(&nodes),
            "node count {nodes} out of the paper's regime"
        );
    }

    #[test]
    fn walk_visits_each_node_once() {
        let table = TableSpec::paper_worst_case(3).generate().unwrap();
        let trie = UnibitTrie::from_table(&table);
        let visited: std::collections::HashSet<_> = trie.walk().map(|(id, _)| id).collect();
        assert_eq!(visited.len(), trie.node_count());
    }
}

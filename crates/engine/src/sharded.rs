//! Core-sharded lookup service: per-shard private snapshots behind
//! hash-routed SPSC queues.
//!
//! [`LookupService`](crate::LookupService) fans batches out round-robin
//! and every worker pins the shared snapshot through a vr-sync
//! `Publish` slot — one lock acquisition and one refcount bump per
//! batch, on a cache line all workers share. At millions of batches per
//! second that shared line is the scaling ceiling, not the lookups.
//!
//! [`ShardedService`] removes the sharing entirely, the way the paper's
//! VS organization gives each virtual router its *own* engine instead of
//! arbitrating one: N shard threads each **own** their snapshot
//! (`SyncArc<TableSnapshot>` moved into the thread — no lock, no shared
//! refcount traffic on the read side), and each drains a private SPSC
//! request queue. The dispatcher routes every packet by a cheap
//! multiplicative hash of its destination address, so a given flow
//! always lands on the same shard (order within a flow is preserved) and
//! the queues are genuinely single-producer single-consumer.
//!
//! **Republish is a broadcast, not a swap.** A new generation is sent
//! down each shard's queue as a [`ShardJob::Publish`] message, in FIFO
//! order with the batches. Consequences:
//!
//! * every batch resolves against exactly the snapshot that was current
//!   when it entered its shard's queue — old or new, never a torn mix
//!   (the `service_swap` acceptance tests run against both services);
//! * a publish never stalls the datapath: shards swap their private
//!   `Arc` between batches, and the dispatcher keeps accepting traffic
//!   while the broadcast drains;
//! * the old snapshot is freed when the last shard drops its `SyncArc` —
//!   the same grace-period-by-refcount the RCU path relies on. The
//!   vr-sync model checker replays the wave over every bounded
//!   interleaving (`programs::shard_publish_wave`).
//!
//! Telemetry reuses the `vr_service_*` metric vocabulary on the
//! service's own [`MetricsRegistry`] (counters sharded by shard id), so
//! the bench and exporters read both services identically.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use vr_sync::{
    spsc_bounded, spsc_unbounded, AtomicGen, SpscReceiver, SpscSender, SyncArc, TrySendError,
};
use vr_audit::AuditMetrics;
use vr_net::table::{NextHop, RoutingTable};
use vr_net::VnId;
use vr_obs::{Stage, TraceBuilder, Tracer, DEFAULT_TRACE_CAPACITY};
use vr_telemetry::{
    Counter, EventKind, Gauge, MetricsRegistry, Stopwatch, TelemetrySnapshot,
};
use vr_trie::JumpTrie;

use crate::cache::LpmCache;
use crate::service::{lookup_batch_mixed, CacheMetrics, TableSnapshot, WorkerMetrics};
use crate::{EngineError, LookupService};

/// Tuning knobs of a [`ShardedService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedConfig {
    /// Shard threads. Each owns a private snapshot and an SPSC queue.
    pub shards: usize,
    /// Depth of each shard's request queue, in jobs; the dispatcher
    /// blocks (and counts a stall) once a shard is this far behind.
    pub queue_depth: usize,
    /// Whether to run with a live [`MetricsRegistry`] (per-shard
    /// counters, batch/lookup histograms, the event ring).
    pub telemetry: bool,
    /// Slot count of each shard's private LPM result cache
    /// ([`crate::cache::LpmCache`]); `None` disables caching. Slots are
    /// tagged with the publish generation, so a
    /// [`ShardJob::Publish`] broadcast invalidates every shard's cache
    /// in O(1) the moment the shard adopts the new snapshot.
    pub lookup_cache: Option<usize>,
    /// 1-in-N shard-job trace sampling rate; `None` disables tracing.
    /// Sampled jobs carry an owned [`vr_obs::TraceBuilder`] through
    /// their shard's queue and close the same stage chain as the
    /// channel service, with shard (not worker) attribution.
    pub trace_sample: Option<u32>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_depth: 64,
            telemetry: true,
            lookup_cache: None,
            trace_sample: None,
        }
    }
}

/// Routes a destination address to a shard: one multiplicative hash
/// (Fibonacci constant) and a multiply-shift range reduction — no
/// divide on the per-packet path. Same-flow packets always map to the
/// same shard, preserving per-flow order.
#[inline]
#[must_use]
pub fn shard_of(dst: u32, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = u64::from(dst.wrapping_mul(0x9E37_79B9));
    ((h * shards as u64) >> 32) as usize
}

/// One resolved sub-batch leaving a shard. A dispatcher-level submit is
/// scattered into at most one job per shard; each job resolves against
/// a single snapshot generation.
#[derive(Debug)]
pub struct ShardedBatch {
    /// Submission sequence number (global across shards).
    pub seq: u64,
    /// Shard that served the job.
    pub shard: usize,
    /// Per-packet results, in job order.
    pub results: Vec<Option<NextHop>>,
    /// For each result, the packet's index in the originating submit
    /// call — the scatter map the dispatcher uses to restore input
    /// order.
    pub origins: Vec<u32>,
    /// Generation of the snapshot the whole job resolved against.
    pub generation: u64,
    /// Shard-side wall time resolving the job, in nanoseconds.
    pub elapsed_ns: u64,
    /// The routed packets, retained so the dispatcher can recycle the
    /// buffers without reallocating.
    packets: Vec<(VnId, u32)>,
}

/// A unit of work in a shard's queue: either a routed sub-batch or a
/// new snapshot to adopt. Delivered in FIFO order, which is what makes
/// the never-torn property trivial — a job sees exactly the snapshots
/// published before it was enqueued.
enum ShardJob {
    Batch(Job),
    Publish(SyncArc<TableSnapshot>),
}

/// Reusable job buffers; drained back into the dispatcher's spare pool
/// on the process path so steady state allocates nothing per call.
#[derive(Default)]
struct Job {
    seq: u64,
    packets: Vec<(VnId, u32)>,
    origins: Vec<u32>,
    results: Vec<Option<NextHop>>,
    /// `Some` on sampled jobs: the owned stage recorder riding with the
    /// job (see [`ShardedConfig::trace_sample`]). Always `None` in the
    /// spare pool — the shard takes it before the buffers recycle.
    trace: Option<TraceBuilder>,
}

struct Shard {
    /// `None` once the shard has been disconnected during shutdown.
    job_tx: Option<SpscSender<ShardJob>>,
    done_rx: SpscReceiver<ShardedBatch>,
    handle: Option<JoinHandle<()>>,
}

/// Control-plane registry handles of a [`ShardedService`].
struct ShardedTelemetry {
    registry: Arc<MetricsRegistry>,
    swaps: Counter,
    audit_rejections: Counter,
    queue_stalls: Counter,
    generation: Gauge,
    audit: AuditMetrics,
}

impl ShardedTelemetry {
    fn new(shards: usize) -> Self {
        let registry = Arc::new(MetricsRegistry::new(shards));
        Self {
            swaps: registry.counter("vr_service_swaps_total"),
            audit_rejections: registry.counter("vr_service_audit_rejections_total"),
            queue_stalls: registry.counter("vr_service_queue_stalls_total"),
            generation: registry.gauge("vr_service_generation"),
            audit: AuditMetrics::register(&registry),
            registry,
        }
    }
}

/// Aggregated sharded-service counters, serializable for experiment
/// reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardedReport {
    /// Shard threads the service ran with.
    pub shards: usize,
    /// Lookups resolved.
    pub lookups: u64,
    /// Lookups that matched no route.
    pub misses: u64,
    /// Shard jobs completed.
    pub batches: u64,
    /// Generations published over the service's lifetime.
    pub swaps: u64,
    /// Distinct snapshot generations jobs were observed resolving
    /// against, sorted ascending.
    pub generations_seen: Vec<u64>,
    /// Total shard-side busy time across all jobs, in nanoseconds.
    pub busy_ns: u64,
    /// Dispatcher blocks on a full shard queue.
    pub queue_stalls: u64,
    /// Publishes rejected by the structural audit gate.
    pub audit_rejections: u64,
}

impl ShardedReport {
    fn observe(&mut self, done: &ShardedBatch) {
        let n = done.results.len() as u64;
        self.lookups += n;
        self.misses += done.results.iter().filter(|nh| nh.is_none()).count() as u64;
        self.batches += 1;
        self.busy_ns += done.elapsed_ns;
        if let Err(pos) = self.generations_seen.binary_search(&done.generation) {
            self.generations_seen.insert(pos, done.generation);
        }
    }

    /// Mean shard-side ns per lookup (0 when nothing ran).
    #[must_use]
    pub fn mean_ns_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.lookups as f64
    }
}

/// N-shard lookup service with per-shard private snapshots and
/// hash-routed SPSC request queues.
///
/// ```
/// use vr_engine::{ShardedConfig, ShardedService};
/// use vr_net::RoutingTable;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.1.0/24 2\n".parse().unwrap();
/// let cfg = ShardedConfig { shards: 2, ..ShardedConfig::default() };
/// let mut service = ShardedService::new(vec![table], cfg).unwrap();
///
/// let packets = vec![(0, 0x0A01_0103), (0, 0x0A02_0000), (0, 0x0B00_0000)];
/// assert_eq!(service.process(&packets), vec![Some(2), Some(1), None]);
///
/// // Republish broadcasts to every shard; in-flight jobs keep their
/// // queued-behind snapshot.
/// let updated: RoutingTable = "10.0.0.0/8 5\n".parse().unwrap();
/// service.publish_tables(vec![updated]).unwrap();
/// assert_eq!(service.process(&[(0, 0x0A01_0103)]), vec![Some(5)]);
/// let report = service.shutdown();
/// assert_eq!(report.swaps, 1);
/// ```
pub struct ShardedService {
    shards: Vec<Shard>,
    /// Control-plane mirror of the per-VN tables.
    tables: Vec<RoutingTable>,
    /// Publisher-side master generation (shards learn it by broadcast).
    /// An [`AtomicGen`] so the bump is a release publication by
    /// construction — a `Relaxed` store is inexpressible.
    generation: AtomicGen,
    next_seq: u64,
    /// Jobs submitted but not yet collected, per shard.
    in_flight: Vec<u64>,
    report: ShardedReport,
    /// `None` when [`ShardedConfig::telemetry`] is off.
    telemetry: Option<ShardedTelemetry>,
    /// `None` when [`ShardedConfig::trace_sample`] is off.
    tracer: Option<Tracer>,
    /// Recycled job buffers for the allocation-free process path.
    spare: Vec<Job>,
}

impl ShardedService {
    /// Builds the jump trie from `tables` and spawns the shards.
    ///
    /// # Errors
    /// Rejects an empty table set, zero shards, merge failures, and (in
    /// audited builds) a structurally invalid trie.
    pub fn new(tables: Vec<RoutingTable>, cfg: ShardedConfig) -> Result<Self, EngineError> {
        let trie = LookupService::build_trie(&tables)?;
        Self::with_trie(tables, trie, cfg)
    }

    /// Spawns the shards around an already-built trie (callers that
    /// benchmark multiple services over one table family skip the
    /// rebuild). The trie must serve every VN in `tables`.
    ///
    /// # Errors
    /// Rejects an empty table set, zero shards, a trie whose NHI arity
    /// does not cover the VN count, and (in audited builds) a
    /// structurally invalid trie.
    pub fn with_trie(
        tables: Vec<RoutingTable>,
        trie: JumpTrie,
        cfg: ShardedConfig,
    ) -> Result<Self, EngineError> {
        if tables.is_empty() {
            return Err(EngineError::InvalidParameter("need at least one table"));
        }
        if cfg.shards == 0 {
            return Err(EngineError::InvalidParameter("need at least one shard"));
        }
        if trie.arity() < tables.len() {
            return Err(EngineError::InvalidParameter(
                "trie NHI arity must cover every VN",
            ));
        }
        if cfg.lookup_cache == Some(0) {
            return Err(EngineError::InvalidParameter(
                "cache capacity must be at least 1 slot",
            ));
        }
        if cfg.trace_sample == Some(0) {
            return Err(EngineError::InvalidParameter(
                "trace sample rate must be at least 1",
            ));
        }
        let telemetry = cfg.telemetry.then(|| ShardedTelemetry::new(cfg.shards));
        let tracer = cfg
            .trace_sample
            .map(|sample| Tracer::new(sample, DEFAULT_TRACE_CAPACITY));
        LookupService::audit_snapshot(&trie, telemetry.as_ref().map(|t| &t.audit))?;
        if let Some(t) = &telemetry {
            t.generation.set(0);
        }
        let snapshot = SyncArc::new(TableSnapshot {
            trie,
            generation: 0,
        });
        let shards = (0..cfg.shards)
            .map(|id| {
                Self::spawn_shard(
                    id,
                    snapshot.clone(),
                    cfg.queue_depth,
                    telemetry
                        .as_ref()
                        .map(|t| WorkerMetrics::for_registry(&t.registry)),
                    cfg.lookup_cache,
                    telemetry
                        .as_ref()
                        .map(|t| CacheMetrics::for_registry(&t.registry)),
                    tracer.clone(),
                )
            })
            .collect();
        Ok(Self {
            shards,
            tables,
            generation: AtomicGen::new(0),
            next_seq: 0,
            in_flight: vec![0; cfg.shards],
            report: ShardedReport {
                shards: cfg.shards,
                ..ShardedReport::default()
            },
            telemetry,
            tracer,
            spare: Vec::new(),
        })
    }

    fn spawn_shard(
        id: usize,
        snapshot: SyncArc<TableSnapshot>,
        queue_depth: usize,
        metrics: Option<WorkerMetrics>,
        cache_slots: Option<usize>,
        cache_metrics: Option<CacheMetrics>,
        tracer: Option<Tracer>,
    ) -> Shard {
        let (job_tx, job_rx) = spsc_bounded::<ShardJob>(queue_depth);
        // Results must never backpressure the dispatcher mid-scatter; an
        // unbounded done queue keeps the shard loop send-safe (same
        // reasoning as LookupService::spawn_worker).
        let (done_tx, done_rx) = spsc_unbounded::<ShardedBatch>();
        let handle = std::thread::spawn(move || {
            // The shard OWNS its snapshot: no lock, no shared refcount
            // bump per batch. Publishes arrive as queue messages.
            let mut snapshot = snapshot;
            // Shard-private result cache (capacity validated in
            // `with_trie`): generation tags make a Publish adoption an
            // implicit whole-cache invalidation.
            let mut cache = cache_slots.and_then(|slots| LpmCache::new(slots).ok());
            while let Ok(job) = job_rx.recv() {
                match job {
                    ShardJob::Publish(next) => snapshot = next,
                    ShardJob::Batch(mut job) => {
                        if let Some(tb) = job.trace.as_mut() {
                            tb.mark(Stage::Dequeue);
                        }
                        let watch = Stopwatch::start();
                        job.results.clear();
                        job.results.resize(job.packets.len(), None);
                        match cache.as_mut() {
                            Some(c) => match job.trace.as_mut() {
                                Some(tb) => c.lookup_batch_traced(
                                    &snapshot.trie,
                                    snapshot.generation,
                                    &job.packets,
                                    &mut job.results,
                                    tb,
                                ),
                                None => c.lookup_batch(
                                    &snapshot.trie,
                                    snapshot.generation,
                                    &job.packets,
                                    &mut job.results,
                                ),
                            },
                            None => {
                                lookup_batch_mixed(&snapshot.trie, &job.packets, &mut job.results);
                                if let Some(tb) = job.trace.as_mut() {
                                    tb.mark(Stage::LaneWalk);
                                }
                            }
                        }
                        let elapsed_ns = watch.elapsed_ns();
                        if let Some(m) = &metrics {
                            m.observe_batch(id, &job.results, elapsed_ns);
                        }
                        if let (Some(c), Some(cm)) = (cache.as_mut(), &cache_metrics) {
                            cm.observe(id, c.take_delta(), c.stats());
                        }
                        if let (Some(mut tb), Some(tr)) = (job.trace.take(), tracer.as_ref()) {
                            tb.set_shard(id as u64);
                            tb.set_generation(snapshot.generation);
                            tb.mark(Stage::Complete);
                            tr.record(tb.finish());
                        }
                        let done = ShardedBatch {
                            seq: job.seq,
                            shard: id,
                            results: job.results,
                            origins: job.origins,
                            generation: snapshot.generation,
                            elapsed_ns,
                            packets: job.packets,
                        };
                        if done_tx.send(done).is_err() {
                            break; // service dropped the receiving half
                        }
                    }
                }
            }
        });
        Shard {
            job_tx: Some(job_tx),
            done_rx,
            handle: Some(handle),
        }
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Generation of the most recently published snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load_acquire()
    }

    /// The control-plane view of the per-VN tables.
    #[must_use]
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// Sends one job down a shard's queue, blocking on backpressure;
    /// the stall is counted and ringed first so it is observable while
    /// it is happening.
    fn send_job(&mut self, shard: usize, job: ShardJob) {
        let tx = self.shards[shard]
            .job_tx
            .as_ref()
            .expect("submit after shutdown");
        let blocked = match tx.try_send(job) {
            Ok(()) => None,
            Err(TrySendError::Full(job)) => {
                self.report.queue_stalls += 1;
                if let Some(t) = &self.telemetry {
                    t.queue_stalls.inc(shard);
                    t.registry.events().publish(EventKind::WorkerStall {
                        worker: shard as u64,
                    });
                }
                Some(job)
            }
            // Let the blocking send below surface the disconnect.
            Err(TrySendError::Disconnected(job)) => Some(job),
        };
        if let Some(job) = blocked {
            tx.send(job)
                .expect("shard thread alive while service exists");
        }
    }

    /// Scatters `packets` across the shards by destination hash and
    /// enqueues at most one job per shard. Returns the number of jobs
    /// created (collect that many sub-batches via [`Self::collect_all`],
    /// or use [`Self::process`] for gathered, input-ordered results).
    pub fn submit(&mut self, packets: &[(VnId, u32)]) -> usize {
        let shard_count = self.shards.len();
        let mut jobs: Vec<Job> = (0..shard_count)
            .map(|_| self.spare.pop().unwrap_or_default())
            .collect();
        for (i, &(vn, dst)) in packets.iter().enumerate() {
            let s = shard_of(dst, shard_count);
            jobs[s].packets.push((vn, dst));
            jobs[s]
                .origins
                .push(u32::try_from(i).expect("batch too large"));
        }
        let mut issued = 0;
        for (s, mut job) in jobs.into_iter().enumerate() {
            if job.packets.is_empty() {
                self.spare.push(job);
                continue;
            }
            job.seq = self.next_seq;
            self.next_seq += 1;
            // Sampled jobs get a trace builder; the enqueue span closes
            // just before the send (a backpressured send shows up as
            // queue residency in the dequeue span).
            job.trace = self
                .tracer
                .as_ref()
                .filter(|tr| tr.should_sample(job.seq))
                .map(|tr| {
                    let mut tb = tr.begin(job.seq, job.packets.len());
                    tb.mark(Stage::Enqueue);
                    tb
                });
            self.in_flight[s] += 1;
            issued += 1;
            self.send_job(s, ShardJob::Batch(job));
        }
        issued
    }

    /// Waits for every outstanding job and returns the sub-batches
    /// sorted by submission sequence. The buffers leave the recycle
    /// pool with them; the gathered [`Self::process`] path stays
    /// allocation-free instead.
    pub fn collect_all(&mut self) -> Vec<ShardedBatch> {
        let mut done: Vec<ShardedBatch> = Vec::new();
        for (shard, pending) in self.in_flight.iter_mut().enumerate() {
            while *pending > 0 {
                let batch = self.shards[shard]
                    .done_rx
                    .recv()
                    .expect("shard thread alive while service exists");
                self.report.observe(&batch);
                done.push(batch);
                *pending -= 1;
            }
        }
        done.sort_by_key(|b| b.seq);
        done
    }

    /// Resolves a packet stream end to end: hash-scatters it across the
    /// shards, gathers the sub-batches, and returns per-packet results
    /// in input order. Steady state allocates nothing beyond the output
    /// vector — job buffers are recycled through the spare pool.
    pub fn process(&mut self, packets: &[(VnId, u32)]) -> Vec<Option<NextHop>> {
        let mut out = vec![None; packets.len()];
        self.process_into(packets, &mut out);
        out
    }

    /// [`Self::process`] into a caller-owned output slice (the bench's
    /// steady-state loop reuses one).
    ///
    /// # Panics
    /// If `packets` and `out` differ in length.
    pub fn process_into(&mut self, packets: &[(VnId, u32)], out: &mut [Option<NextHop>]) {
        assert_eq!(
            packets.len(),
            out.len(),
            "batch destination and output slices must match"
        );
        self.submit(packets);
        for (shard, pending) in self.in_flight.iter_mut().enumerate() {
            while *pending > 0 {
                let batch = self.shards[shard]
                    .done_rx
                    .recv()
                    .expect("shard thread alive while service exists");
                self.report.observe(&batch);
                for (&origin, &nh) in batch.origins.iter().zip(batch.results.iter()) {
                    out[origin as usize] = nh;
                }
                *pending -= 1;
                let mut job = Job {
                    seq: 0,
                    packets: batch.packets,
                    origins: batch.origins,
                    results: batch.results,
                    trace: None,
                };
                job.packets.clear();
                job.origins.clear();
                self.spare.push(job);
            }
        }
    }

    /// Publishes a fresh snapshot built from `tables`, replacing the
    /// control-plane mirror. The build runs outside every queue;
    /// in-flight jobs finish on the snapshot queued ahead of the
    /// broadcast. Returns the new generation.
    ///
    /// # Errors
    /// Propagates trie construction failures and audit rejections (the
    /// live generation keeps serving on error). The VN count must not
    /// change — queued jobs carry VN ids that must stay valid.
    pub fn publish_tables(&mut self, tables: Vec<RoutingTable>) -> Result<u64, EngineError> {
        if tables.len() != self.tables.len() {
            return Err(EngineError::InvalidParameter(
                "table count must not change across a swap",
            ));
        }
        let trie = LookupService::build_trie(&tables)?;
        self.tables = tables;
        self.publish_trie(trie)
    }

    /// Broadcasts an already-built trie to every shard (the RCU write
    /// side, as a FIFO message per queue) and returns the new
    /// generation.
    ///
    /// # Errors
    /// In audited builds, rejects a structurally invalid trie with
    /// [`EngineError::AuditRejected`]; no shard sees it.
    pub fn publish_trie(&mut self, trie: JumpTrie) -> Result<u64, EngineError> {
        let _span = self
            .telemetry
            .as_ref()
            .map(|t| t.registry.span("vr_service_publish_ns"));
        let trace_start = self.tracer.as_ref().map(Tracer::now_ns);
        if let Err(err) =
            LookupService::audit_snapshot(&trie, self.telemetry.as_ref().map(|t| &t.audit))
        {
            self.report.audit_rejections += 1;
            if let Some(t) = &self.telemetry {
                t.audit_rejections.inc(0);
                t.registry.events().publish(EventKind::AuditRejected {
                    generation: self.generation.load_acquire() + 1,
                });
            }
            return Err(err);
        }
        let generation = self.generation.bump_release();
        let snapshot = SyncArc::new(TableSnapshot { trie, generation });
        for shard in 0..self.shards.len() {
            self.send_job(shard, ShardJob::Publish(snapshot.clone()));
        }
        self.report.swaps += 1;
        if let Some(t) = &self.telemetry {
            t.swaps.inc(0);
            t.generation.set(generation);
            t.registry
                .events()
                .publish(EventKind::GenerationSwap { generation });
        }
        if let (Some(tr), Some(start)) = (self.tracer.as_ref(), trace_start) {
            tr.record_span(Stage::Publish, start, generation);
        }
        Ok(generation)
    }

    /// The live metrics registry (`None` with telemetry off).
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// The live shard-job tracer (`None` when
    /// [`ShardedConfig::trace_sample`] is off). Clone it to read
    /// completed traces from another thread.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// One coherent pass over every live metric (`None` with telemetry
    /// off).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.as_ref().map(|t| t.registry.snapshot())
    }

    /// Accumulated counters so far (final totals come from
    /// [`Self::shutdown`]).
    #[must_use]
    pub fn report(&self) -> &ShardedReport {
        &self.report
    }

    /// Drains outstanding jobs, stops the shards, and returns the final
    /// report.
    pub fn shutdown(mut self) -> ShardedReport {
        let _ = self.collect_all();
        for shard in &mut self.shards {
            shard.job_tx = None; // disconnect: the shard loop exits
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
        self.report.clone()
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.job_tx = None;
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::table::RouteEntry;
    use vr_net::Ipv4Prefix;

    fn table(text: &str) -> RoutingTable {
        text.parse().unwrap()
    }

    fn cfg(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }

    fn probes(n: u32) -> Vec<(VnId, u32)> {
        (0..n).map(|i| (0, i.wrapping_mul(0x9E37_79B9))).collect()
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in 1..=8 {
            for dst in [0u32, 1, 0xFFFF_FFFF, 0x0A00_0001, 0xC0A8_0101] {
                let s = shard_of(dst, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(dst, shards), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn matches_oracle_across_shard_counts() {
        let t = table("0.0.0.0/0 9\n10.0.0.0/8 1\n10.1.0.0/16 2\n10.1.1.0/24 3\n");
        let packets = probes(512);
        for shards in [1, 2, 4] {
            let mut svc = ShardedService::new(vec![t.clone()], cfg(shards)).unwrap();
            let got = svc.process(&packets);
            for (i, &(_, dst)) in packets.iter().enumerate() {
                assert_eq!(got[i], t.lookup(dst), "shards {shards} dst {dst:#010x}");
            }
            let report = svc.shutdown();
            assert_eq!(report.lookups, packets.len() as u64);
            assert_eq!(report.shards, shards);
        }
    }

    #[test]
    fn mixed_vn_batches_resolve_per_network() {
        let tables = vec![table("10.0.0.0/8 1\n"), table("10.0.0.0/8 7\n")];
        let mut svc = ShardedService::new(tables, cfg(2)).unwrap();
        let packets: Vec<(VnId, u32)> = (0..64u32)
            .map(|i| ((i % 2) as VnId, 0x0A00_0000 | i))
            .collect();
        let got = svc.process(&packets);
        for (i, &(vn, _)) in packets.iter().enumerate() {
            assert_eq!(got[i], Some(if vn == 0 { 1 } else { 7 }));
        }
        let _ = svc.shutdown();
    }

    #[test]
    fn publish_broadcast_reaches_every_shard() {
        let mut svc = ShardedService::new(vec![table("0.0.0.0/0 1\n")], cfg(4)).unwrap();
        assert_eq!(svc.publish_tables(vec![table("0.0.0.0/0 2\n")]).unwrap(), 1);
        // Every destination hashes somewhere; all must see generation 1.
        let got = svc.process(&probes(256));
        assert!(got.iter().all(|nh| *nh == Some(2)));
        let report = svc.shutdown();
        assert_eq!(report.swaps, 1);
        assert!(report.generations_seen.contains(&1));
    }

    #[test]
    fn process_restores_input_order_with_empty_and_tiny_batches() {
        let t = RoutingTable::from_entries(
            (0u32..256).map(|i| RouteEntry::new(Ipv4Prefix::must(i << 24, 8), (i % 250) as u8)),
        );
        let mut svc = ShardedService::new(vec![t.clone()], cfg(3)).unwrap();
        assert!(svc.process(&[]).is_empty());
        for len in [1usize, 2, 3, 7] {
            let packets: Vec<(VnId, u32)> = (0..len as u32)
                .map(|i| (0, i.wrapping_mul(0x01F3_5A7D)))
                .collect();
            let got = svc.process(&packets);
            for (i, &(_, dst)) in packets.iter().enumerate() {
                assert_eq!(got[i], t.lookup(dst), "len {len} lane {i}");
            }
        }
        let _ = svc.shutdown();
    }

    #[test]
    fn rejects_bad_configurations() {
        let t = table("10.0.0.0/8 1\n");
        assert!(ShardedService::new(vec![], cfg(2)).is_err());
        assert!(ShardedService::new(vec![t.clone()], cfg(0)).is_err());
        // A K=1 trie cannot serve a 2-VN table set.
        let trie = JumpTrie::from_table(&t);
        assert!(ShardedService::with_trie(vec![t.clone(), t.clone()], trie, cfg(2)).is_err());
        // VN count is pinned across publishes.
        let mut svc = ShardedService::new(vec![t.clone()], cfg(2)).unwrap();
        assert!(svc.publish_tables(vec![t.clone(), t]).is_err());
        let _ = svc.shutdown();
    }

    #[test]
    fn telemetry_merges_per_shard_counters() {
        let mut svc = ShardedService::new(vec![table("0.0.0.0/0 1\n")], cfg(2)).unwrap();
        let _ = svc.process(&probes(128));
        svc.publish_tables(vec![table("0.0.0.0/0 2\n")]).unwrap();
        let _ = svc.process(&probes(128));
        let snap = svc.telemetry_snapshot().expect("telemetry on");
        let lookups = snap
            .counters
            .iter()
            .find(|c| c.name == "vr_service_lookups_total")
            .expect("lookups counter");
        assert_eq!(lookups.value, 256);
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "vr_service_lookup_ns" && h.count > 0));
        let _ = svc.shutdown();
    }

    #[test]
    fn telemetry_off_still_reports() {
        let mut svc = ShardedService::new(
            vec![table("0.0.0.0/0 1\n")],
            ShardedConfig {
                shards: 2,
                telemetry: false,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert!(svc.metrics().is_none());
        let _ = svc.process(&probes(64));
        let report = svc.shutdown();
        assert_eq!(report.lookups, 64);
    }

    #[test]
    fn cached_shards_match_uncached_across_publishes() {
        let t = || table("10.0.0.0/8 1\n10.1.0.0/16 2\n192.168.0.0/16 3\n");
        let cached_cfg = ShardedConfig {
            lookup_cache: Some(256),
            ..cfg(2)
        };
        let mut cached = ShardedService::new(vec![t()], cached_cfg).unwrap();
        let mut plain = ShardedService::new(vec![t()], cfg(2)).unwrap();
        // Repeating destinations so shard caches see hits on pass 2.
        let packets: Vec<(VnId, u32)> = (0..128)
            .map(|i| (0, [0x0A01_0103u32, 0xC0A8_0101, 0x0A02_0000][i % 3]))
            .collect();
        for _ in 0..2 {
            assert_eq!(cached.process(&packets), plain.process(&packets));
        }
        let snap = cached.metrics().unwrap().snapshot();
        assert!(snap.counter("vr_cache_hits_total").unwrap_or(0) > 0);
        // Publish broadcast: adopted generation invalidates all slots,
        // results stay oracle-identical.
        let updated = table("10.0.0.0/8 7\n192.168.0.0/16 3\n");
        cached.publish_tables(vec![updated.clone()]).unwrap();
        plain.publish_tables(vec![updated]).unwrap();
        assert_eq!(cached.process(&packets), plain.process(&packets));
        assert!(ShardedService::new(
            vec![t()],
            ShardedConfig {
                lookup_cache: Some(0),
                ..cfg(1)
            },
        )
        .is_err());
        let _ = cached.shutdown();
        let _ = plain.shutdown();
    }

    #[test]
    fn traced_shards_record_validating_chains_with_shard_attribution() {
        let t = table("10.0.0.0/8 1\n10.1.0.0/16 2\n");
        for cache in [None, Some(128)] {
            let mut svc = ShardedService::new(
                vec![t.clone()],
                ShardedConfig {
                    trace_sample: Some(1),
                    lookup_cache: cache,
                    ..cfg(2)
                },
            )
            .unwrap();
            let _ = svc.process(&probes(128));
            svc.publish_tables(vec![t.clone()]).unwrap();
            let _ = svc.process(&probes(128));
            let snap = svc.tracer().expect("tracer on").snapshot();
            assert!(snap.recorded > 0);
            for trace in &snap.traces {
                trace.validate().unwrap();
            }
            assert!(snap.traces.iter().any(|tr| tr.shard.is_some()));
            assert!(snap.traces.iter().all(|tr| tr.worker.is_none()));
            assert!(snap
                .traces
                .iter()
                .any(|tr| tr.stages[0].stage == Stage::Publish && tr.generation == 1));
            assert!(snap
                .traces
                .iter()
                .any(|tr| tr.shard.is_some() && tr.generation == 1));
            let _ = svc.shutdown();
        }
        // Zero sample rate is a config error, as for the cache.
        assert!(ShardedService::new(
            vec![t],
            ShardedConfig {
                trace_sample: Some(0),
                ..cfg(1)
            },
        )
        .is_err());
    }

    #[test]
    fn audit_gate_rejects_corrupt_trie_in_debug() {
        // An internal root entry pointing past the (empty) word slab.
        let bad = JumpTrie::from_raw_parts(
            vec![7; vr_trie::jump::ROOT_ENTRIES],
            vec![],
            vec![0],
            vec![0],
            1,
        );
        let mut svc = ShardedService::new(vec![table("10.0.0.0/8 1\n")], cfg(1)).unwrap();
        let result = svc.publish_trie(bad);
        if cfg!(debug_assertions) {
            assert!(matches!(result, Err(EngineError::AuditRejected(_))));
            assert_eq!(svc.report().audit_rejections, 1);
            assert_eq!(svc.generation(), 0);
        }
        let _ = svc.shutdown();
    }
}

//! One linear lookup pipeline, simulated cycle by cycle.
//!
//! A packet enters stage 0, performs one trie-level step per mapped level
//! in each stage, and exits after the last stage with its NHI resolved.
//! Latency is exactly the stage count; throughput is one packet per cycle
//! when the input is saturated — the properties the paper's architecture
//! guarantees by construction and our tests assert.

use serde::{Deserialize, Serialize};
use vr_fpga::bram::BramMode;
use vr_fpga::gating::GatingPolicy;
use vr_fpga::grade::SpeedGrade;
use vr_net::table::NextHop;
use vr_net::VnId;
use vr_trie::unibit::NodeId;
use vr_trie::{LeafPushedTrie, MergedLeafPushed, PipelineProfile, StrideTrie};

use crate::EngineError;

/// Electrical configuration of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Speed grade (selects power coefficients).
    pub grade: SpeedGrade,
    /// BRAM granularity of the stage memories.
    pub bram_mode: BramMode,
    /// Power-management policy.
    pub gating: GatingPolicy,
    /// Operating frequency in MHz (scales power and Gbps, not cycles).
    pub freq_mhz: f64,
}

impl EngineConfig {
    /// The paper's default: -2 grade, 18 Kb blocks, gating on, base clock.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            grade: SpeedGrade::Minus2,
            bram_mode: BramMode::K18,
            gating: GatingPolicy::PAPER,
            freq_mhz: SpeedGrade::Minus2.base_clock_mhz(),
        }
    }
}

/// A finished lookup leaving the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedLookup {
    /// Virtual network of the packet.
    pub vnid: VnId,
    /// Destination address looked up.
    pub dst: u32,
    /// Resolved next hop (None = no matching route).
    pub next_hop: Option<NextHop>,
    /// Pipeline latency in cycles (always the stage count here).
    pub latency_cycles: u64,
}

/// Aggregated counters of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets completed.
    pub completed: u64,
    /// Stage-cycles with a packet present.
    pub occupied_stage_cycles: u64,
    /// Actual stage-memory reads performed.
    pub memory_reads: u64,
    /// Logic energy consumed, in pJ.
    pub logic_energy_pj: f64,
    /// BRAM energy consumed, in pJ.
    pub bram_energy_pj: f64,
    /// Sum of completed-packet latencies, in cycles.
    pub total_latency_cycles: u64,
}

impl EngineStats {
    /// Measured dynamic power in watts at `freq_mhz`:
    /// energy/cycle × cycles/second.
    #[must_use]
    pub fn dynamic_power_w(&self, freq_mhz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.logic_energy_pj + self.bram_energy_pj) * 1e-12 / self.cycles as f64
            * (freq_mhz * 1e6)
    }

    /// Fraction of stage slots occupied over the run.
    #[must_use]
    pub fn occupancy(&self, stages: usize) -> f64 {
        if self.cycles == 0 || stages == 0 {
            return 0.0;
        }
        self.occupied_stage_cycles as f64 / (self.cycles as f64 * stages as f64)
    }

    /// Mean completed-packet latency in cycles.
    #[must_use]
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.total_latency_cycles as f64 / self.completed as f64
    }
}

#[derive(Debug, Clone)]
enum TrieStore {
    Single(LeafPushedTrie),
    Merged(MergedLeafPushed),
    Stride(StrideTrie),
}

impl TrieStore {
    fn root(&self) -> NodeId {
        match self {
            TrieStore::Single(t) => t.root(),
            TrieStore::Merged(t) => t.root(),
            TrieStore::Stride(_) => NodeId::ROOT,
        }
    }

    /// One stage-memory read: returns the NHI found at this step (if any;
    /// deeper finds are always longer matches, so callers overwrite) and
    /// the node to continue at (`None` = walk finished).
    ///
    /// `level` is the trie level being processed — a bit index for the
    /// uni-bit stores, unused for stride nodes (they know their level).
    fn step(
        &self,
        vnid: VnId,
        dst: u32,
        level: u8,
        cursor: NodeId,
    ) -> (Option<NextHop>, Option<NodeId>) {
        match self {
            TrieStore::Single(t) => match t.node_children(cursor) {
                None => (t.node_nhi(cursor), None),
                Some((l, r)) => {
                    let bit = (dst >> (31 - u32::from(level))) & 1;
                    (None, Some(if bit == 0 { l } else { r }))
                }
            },
            TrieStore::Merged(t) => match t.node_children(cursor) {
                None => (t.node_nhi_for(cursor, usize::from(vnid)), None),
                Some((l, r)) => {
                    let bit = (dst >> (31 - u32::from(level))) & 1;
                    (None, Some(if bit == 0 { l } else { r }))
                }
            },
            TrieStore::Stride(t) => {
                let (found, next) = t.walk_step(cursor.raw(), dst);
                (found, next.map(NodeId::from_raw))
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    vnid: VnId,
    dst: u32,
    cursor: NodeId,
    result: Option<NextHop>,
    done: bool,
    entered_cycle: u64,
}

/// One simulated lookup pipeline.
///
/// ```
/// use vr_engine::{EngineConfig, PipelineEngine};
/// use vr_net::RoutingTable;
/// use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile};
/// use vr_trie::{LeafPushedTrie, UnibitTrie};
///
/// let table: RoutingTable = "10.0.0.0/8 1\n".parse().unwrap();
/// let trie = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
/// let profile = PipelineProfile::for_single(&trie, 28, MemoryLayout::default()).unwrap();
/// let mut engine = PipelineEngine::new_single(trie, &profile, EngineConfig::paper_default()).unwrap();
///
/// engine.tick(Some((0, 0x0A00_0001))); // inject a packet for 10.0.0.1
/// let done = engine.drain().pop().unwrap();
/// assert_eq!(done.next_hop, Some(1));
/// assert_eq!(done.latency_cycles, 28); // one cycle per stage
/// ```
#[derive(Debug, Clone)]
pub struct PipelineEngine {
    store: TrieStore,
    /// Trie-level range handled by each stage (`None` = pass-through).
    stage_levels: Vec<Option<(u8, u8)>>,
    /// BRAM blocks backing each stage's memory.
    stage_blocks: Vec<u64>,
    slots: Vec<Option<Slot>>,
    cfg: EngineConfig,
    stats: EngineStats,
}

impl PipelineEngine {
    /// Builds an engine over a single-network trie.
    ///
    /// # Errors
    /// Rejects an empty profile or non-positive frequency.
    pub fn new_single(
        trie: LeafPushedTrie,
        profile: &PipelineProfile,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::build(TrieStore::Single(trie), profile, cfg)
    }

    /// Builds an engine over a merged (K-network) trie.
    ///
    /// # Errors
    /// Rejects an empty profile or non-positive frequency.
    pub fn new_merged(
        trie: MergedLeafPushed,
        profile: &PipelineProfile,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::build(TrieStore::Merged(trie), profile, cfg)
    }

    /// Builds an engine over a fixed-stride multi-bit trie: one pipeline
    /// stage per stride level (the depth-bounded organization of the
    /// paper's refs. [7][8]). `entry_bits` sizes each slot's memory word.
    ///
    /// # Errors
    /// Rejects non-positive frequency.
    pub fn new_stride(
        trie: StrideTrie,
        entry_bits: u32,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        if !cfg.freq_mhz.is_finite() || cfg.freq_mhz <= 0.0 {
            return Err(EngineError::InvalidParameter("frequency must be positive"));
        }
        let levels = trie.levels();
        let stage_levels = (0..levels).map(|l| Some((l as u8, l as u8))).collect();
        let stage_blocks = trie
            .per_stage_memory_bits(entry_bits)
            .iter()
            .map(|&bits| cfg.bram_mode.blocks_for(bits))
            .collect();
        Ok(Self {
            store: TrieStore::Stride(trie),
            stage_levels,
            stage_blocks,
            slots: vec![None; levels],
            cfg,
            stats: EngineStats::default(),
        })
    }

    fn build(
        store: TrieStore,
        profile: &PipelineProfile,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        if profile.stage_count() == 0 {
            return Err(EngineError::InvalidParameter("pipeline needs ≥1 stage"));
        }
        if !cfg.freq_mhz.is_finite() || cfg.freq_mhz <= 0.0 {
            return Err(EngineError::InvalidParameter("frequency must be positive"));
        }
        let stage_levels = profile.stages.iter().map(|s| s.levels).collect();
        let stage_blocks = profile
            .stages
            .iter()
            .map(|s| cfg.bram_mode.blocks_for(s.memory_bits()))
            .collect();
        let n = profile.stage_count();
        Ok(Self {
            store,
            stage_levels,
            stage_blocks,
            slots: vec![None; n],
            cfg,
            stats: EngineStats::default(),
        })
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.slots.len()
    }

    /// The engine's counters so far.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Whether any packet is still in flight.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.slots.iter().any(Option::is_some)
    }

    /// Advances one clock cycle. `input` optionally injects a packet into
    /// stage 0 (at most one per cycle — the hardware has one input port).
    /// Returns the packet leaving the last stage this cycle, if any.
    pub fn tick(&mut self, input: Option<(VnId, u32)>) -> Option<CompletedLookup> {
        let n = self.stage_count();
        self.stats.cycles += 1;

        // Packet leaving the last stage completed all its work last cycle.
        let out = self.slots[n - 1].take().map(|slot| CompletedLookup {
            vnid: slot.vnid,
            dst: slot.dst,
            next_hop: slot.result,
            latency_cycles: self.stats.cycles - slot.entered_cycle,
        });
        if let Some(done) = &out {
            self.stats.completed += 1;
            self.stats.total_latency_cycles += done.latency_cycles;
        }

        // Shift everything forward, performing the destination stage's work.
        for j in (0..n - 1).rev() {
            if let Some(mut slot) = self.slots[j].take() {
                self.process_stage(&mut slot, j + 1);
                self.slots[j + 1] = Some(slot);
            }
        }

        // Inject.
        if let Some((vnid, dst)) = input {
            debug_assert!(self.slots[0].is_none(), "stage 0 must be free after shift");
            let mut slot = Slot {
                vnid,
                dst,
                cursor: self.store.root(),
                result: None,
                done: false,
                entered_cycle: self.stats.cycles,
            };
            self.stats.injected += 1;
            self.process_stage(&mut slot, 0);
            self.slots[0] = Some(slot);
        }

        // Energy accounting for this cycle.
        self.account_energy();
        out
    }

    /// Runs the pipeline with no further input until it drains, returning
    /// the completed lookups in exit order.
    pub fn drain(&mut self) -> Vec<CompletedLookup> {
        let mut out = Vec::new();
        while self.is_draining() {
            if let Some(done) = self.tick(None) {
                out.push(done);
            }
        }
        out
    }

    /// Drives a whole batch through the pipeline at full line rate — one
    /// injection per cycle, then a drain — and returns the completed
    /// lookups in exit order (`inputs.len()` of them).
    ///
    /// Cycle-exact: counters and energy accounting advance exactly as if
    /// the caller had issued `tick(Some(..))` per packet followed by
    /// `drain()`, so saturated-throughput and power figures are unchanged;
    /// this is the batched entry point the experiment sweeps drive.
    pub fn run_batch(&mut self, inputs: &[(VnId, u32)]) -> Vec<CompletedLookup> {
        let mut out = Vec::with_capacity(inputs.len());
        for &(vnid, dst) in inputs {
            if let Some(done) = self.tick(Some((vnid, dst))) {
                out.push(done);
            }
        }
        out.extend(self.drain());
        out
    }

    /// Performs stage `j`'s trie-level steps on `slot`.
    fn process_stage(&mut self, slot: &mut Slot, j: usize) {
        let Some((first, last)) = self.stage_levels[j] else {
            return; // pass-through stage: no memory, no work
        };
        for level in first..=last {
            if slot.done {
                break;
            }
            // One memory read: fetch the current node's word. The cursor
            // is at trie level `level` by construction (levels are walked
            // in order across stages).
            self.stats.memory_reads += 1;
            self.stats.bram_energy_pj +=
                self.stage_blocks[j] as f64 * self.cfg.bram_mode.uw_per_block_mhz(self.cfg.grade);
            let (found, next) = self.store.step(slot.vnid, slot.dst, level, slot.cursor);
            if found.is_some() {
                slot.result = found; // deeper finds are longer matches
            }
            match next {
                Some(node) => slot.cursor = node,
                None => slot.done = true,
            }
        }
    }

    fn account_energy(&mut self) {
        let logic_pj = self.cfg.grade.logic_stage_uw_per_mhz();
        for (j, slot) in self.slots.iter().enumerate() {
            let occupied = slot.is_some();
            if occupied {
                self.stats.occupied_stage_cycles += 1;
            }
            if occupied || !self.cfg.gating.logic_flags {
                self.stats.logic_energy_pj += logic_pj;
            }
            if !occupied && !self.cfg.gating.memory_clock_gating {
                // Ungated idle memories keep toggling: same read energy.
                self.stats.bram_energy_pj += self.stage_blocks[j] as f64
                    * self.cfg.bram_mode.uw_per_block_mhz(self.cfg.grade);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::RoutingTable;
    use vr_trie::pipeline_map::{MemoryLayout, PAPER_PIPELINE_STAGES};
    use vr_trie::UnibitTrie;

    fn build_engine(seed: u64, stages: usize) -> (RoutingTable, PipelineEngine) {
        let table = TableSpec::paper_worst_case(seed).generate().unwrap();
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let profile = PipelineProfile::for_single(&lp, stages, MemoryLayout::default()).unwrap();
        let engine =
            PipelineEngine::new_single(lp, &profile, EngineConfig::paper_default()).unwrap();
        (table, engine)
    }

    #[test]
    fn latency_equals_stage_count() {
        let (_, mut engine) = build_engine(1, PAPER_PIPELINE_STAGES);
        engine.tick(Some((0, 0x0A00_0001)));
        let mut done = None;
        for _ in 0..PAPER_PIPELINE_STAGES {
            done = engine.tick(None);
            if done.is_some() {
                break;
            }
        }
        let done = done.expect("packet must exit after N cycles");
        assert_eq!(done.latency_cycles, PAPER_PIPELINE_STAGES as u64);
    }

    #[test]
    fn saturated_pipeline_completes_one_per_cycle() {
        let (table, mut engine) = build_engine(2, PAPER_PIPELINE_STAGES);
        let probes: Vec<u32> = table.prefixes().map(|p| p.addr() | 7).take(500).collect();
        let mut completed = 0u64;
        for &ip in &probes {
            if engine.tick(Some((0, ip))).is_some() {
                completed += 1;
            }
        }
        completed += engine.drain().len() as u64;
        assert_eq!(completed, probes.len() as u64);
        // Steady-state throughput: cycles ≈ packets + latency.
        assert_eq!(
            engine.stats().cycles,
            probes.len() as u64 + PAPER_PIPELINE_STAGES as u64
        );
    }

    #[test]
    fn results_match_oracle() {
        let (table, mut engine) = build_engine(3, PAPER_PIPELINE_STAGES);
        let probes: Vec<u32> = table
            .prefixes()
            .map(|p| p.addr().wrapping_add(1))
            .take(300)
            .collect();
        let mut outputs = Vec::new();
        for &ip in &probes {
            if let Some(done) = engine.tick(Some((0, ip))) {
                outputs.push(done);
            }
        }
        outputs.extend(engine.drain());
        assert_eq!(outputs.len(), probes.len());
        for done in outputs {
            assert_eq!(
                done.next_hop,
                table.lookup(done.dst),
                "dst {:#010x}",
                done.dst
            );
        }
    }

    #[test]
    fn merged_engine_resolves_per_vnid() {
        use vr_trie::merge::merge_tables;
        let tables = vr_net::synth::FamilySpec {
            k: 3,
            prefixes_per_table: 200,
            shared_fraction: 0.5,
            seed: 4,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let (_, pushed) = merge_tables(&tables).unwrap();
        let profile = PipelineProfile::for_merged(
            &pushed,
            PAPER_PIPELINE_STAGES,
            MemoryLayout::default(),
        )
        .unwrap();
        let mut engine =
            PipelineEngine::new_merged(pushed, &profile, EngineConfig::paper_default()).unwrap();
        let mut inputs = Vec::new();
        for (vnid, table) in tables.iter().enumerate() {
            for p in table.prefixes().take(50) {
                inputs.push((vnid as VnId, p.addr() | 3));
            }
        }
        let mut outputs = Vec::new();
        for &(vnid, dst) in &inputs {
            if let Some(done) = engine.tick(Some((vnid, dst))) {
                outputs.push(done);
            }
        }
        outputs.extend(engine.drain());
        assert_eq!(outputs.len(), inputs.len());
        for done in outputs {
            assert_eq!(
                done.next_hop,
                tables[usize::from(done.vnid)].lookup(done.dst),
                "vn {} dst {:#010x}",
                done.vnid,
                done.dst
            );
        }
    }

    #[test]
    fn stride_engine_matches_oracle_with_short_latency() {
        let table = TableSpec::paper_worst_case(12).generate().unwrap();
        for stride in [2u8, 4, 8] {
            let trie = StrideTrie::from_table(&table, &vec![stride; 32 / usize::from(stride)])
                .unwrap();
            let levels = trie.levels();
            let mut engine =
                PipelineEngine::new_stride(trie, 32, EngineConfig::paper_default()).unwrap();
            assert_eq!(engine.stage_count(), levels);
            let probes: Vec<u32> = table
                .prefixes()
                .map(|p| p.addr().wrapping_add(11))
                .take(300)
                .collect();
            let mut outputs = Vec::new();
            for &ip in &probes {
                if let Some(done) = engine.tick(Some((0, ip))) {
                    outputs.push(done);
                }
            }
            outputs.extend(engine.drain());
            assert_eq!(outputs.len(), probes.len());
            for done in outputs {
                assert_eq!(
                    done.next_hop,
                    table.lookup(done.dst),
                    "stride {stride} dst {:#010x}",
                    done.dst
                );
                // Depth-bounded pipelines: latency = 32/stride cycles.
                assert_eq!(done.latency_cycles, levels as u64);
            }
        }
    }

    #[test]
    fn stride_engine_rejects_bad_frequency() {
        let table = TableSpec::paper_worst_case(13).generate().unwrap();
        let trie = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
        let mut cfg = EngineConfig::paper_default();
        cfg.freq_mhz = 0.0;
        assert!(PipelineEngine::new_stride(trie, 32, cfg).is_err());
    }

    #[test]
    fn gated_idle_engine_burns_no_dynamic_energy() {
        let (_, mut engine) = build_engine(5, PAPER_PIPELINE_STAGES);
        for _ in 0..100 {
            engine.tick(None);
        }
        assert_eq!(engine.stats().logic_energy_pj, 0.0);
        assert_eq!(engine.stats().bram_energy_pj, 0.0);
        assert_eq!(engine.stats().dynamic_power_w(350.0), 0.0);
    }

    #[test]
    fn ungated_idle_engine_burns_full_power() {
        let table = TableSpec::paper_worst_case(6).generate().unwrap();
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let profile =
            PipelineProfile::for_single(&lp, PAPER_PIPELINE_STAGES, MemoryLayout::default())
                .unwrap();
        let mut cfg = EngineConfig::paper_default();
        cfg.gating = GatingPolicy::NONE;
        let mut engine = PipelineEngine::new_single(lp, &profile, cfg).unwrap();
        for _ in 0..100 {
            engine.tick(None);
        }
        let stats = engine.stats();
        assert!(stats.logic_energy_pj > 0.0);
        assert!(stats.bram_energy_pj > 0.0);
        // Idle ungated logic power equals the full-pipeline logic power.
        let expected_logic_w =
            vr_fpga::logic::pipeline_logic_power_w(SpeedGrade::Minus2, PAPER_PIPELINE_STAGES, 350.0);
        let measured_logic_w = stats.logic_energy_pj * 1e-12 / stats.cycles as f64 * 350.0e6;
        assert!((measured_logic_w - expected_logic_w).abs() / expected_logic_w < 1e-9);
    }

    #[test]
    fn occupancy_reflects_duty_cycle() {
        let (table, mut engine) = build_engine(7, PAPER_PIPELINE_STAGES);
        let probes: Vec<u32> = table.prefixes().map(|p| p.addr()).take(200).collect();
        // Inject every 4th cycle: duty 0.25.
        for (i, &ip) in probes.iter().enumerate() {
            engine.tick(Some((0, ip)));
            if i < probes.len() - 1 {
                for _ in 0..3 {
                    engine.tick(None);
                }
            }
        }
        engine.drain();
        let occ = engine.stats().occupancy(PAPER_PIPELINE_STAGES);
        assert!((occ - 0.25).abs() < 0.05, "occupancy {occ}");
    }

    #[test]
    fn rejects_bad_configs() {
        let table = TableSpec::paper_worst_case(8).generate().unwrap();
        let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let profile =
            PipelineProfile::for_single(&lp, 28, MemoryLayout::default()).unwrap();
        let mut cfg = EngineConfig::paper_default();
        cfg.freq_mhz = -1.0;
        assert!(PipelineEngine::new_single(lp, &profile, cfg).is_err());
    }

    #[test]
    fn stats_are_consistent() {
        let (table, mut engine) = build_engine(9, 16);
        for p in table.prefixes().take(100) {
            engine.tick(Some((0, p.addr())));
        }
        engine.drain();
        let s = engine.stats();
        assert_eq!(s.injected, 100);
        assert_eq!(s.completed, 100);
        assert!(s.memory_reads > 0);
        assert!(s.occupancy(16) > 0.0);
        assert_eq!(s.mean_latency_cycles(), 16.0);
    }
}

//! Aggregated simulation reports.

use crate::engine::EngineStats;
use serde::{Deserialize, Serialize};
use vr_fpga::timing;

/// Result of one router-organization simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycles simulated (the longest engine's count).
    pub cycles: u64,
    /// Packets offered by the traffic source.
    pub offered: u64,
    /// Packets that completed the lookup pipeline.
    pub completed: u64,
    /// Completed lookups matching the linear-scan oracle.
    pub correct: u64,
    /// Completed lookups NOT matching the oracle (must be 0).
    pub mismatches: u64,
    /// Number of engines simulated.
    pub engines: usize,
    /// Stages per engine.
    pub stages: usize,
    /// Operating frequency in MHz used for power/throughput conversion.
    pub freq_mhz: f64,
    /// Deepest distributor queue observed (0 when arrivals never collide).
    pub max_queue_depth: usize,
    /// Total cycles packets spent waiting in distributor queues.
    pub total_queue_wait_cycles: u64,
    /// Per-engine counters.
    pub per_engine: Vec<EngineStats>,
}

impl SimReport {
    /// Total measured dynamic power across engines, in watts.
    #[must_use]
    pub fn dynamic_power_w(&self) -> f64 {
        self.per_engine
            .iter()
            .map(|s| s.dynamic_power_w(self.freq_mhz))
            .sum()
    }

    /// Achieved throughput in Gbps at 40-byte packets:
    /// completed packets × 320 bits × f / cycles.
    #[must_use]
    pub fn achieved_throughput_gbps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / self.cycles as f64 * timing::throughput_gbps(self.freq_mhz)
    }

    /// Mean pipeline occupancy across engines.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.per_engine.is_empty() {
            return 0.0;
        }
        self.per_engine
            .iter()
            .map(|s| s.occupancy(self.stages))
            .sum::<f64>()
            / self.per_engine.len() as f64
    }

    /// Mean latency over completed packets, in cycles.
    #[must_use]
    pub fn mean_latency_cycles(&self) -> f64 {
        let completed: u64 = self.per_engine.iter().map(|s| s.completed).sum();
        if completed == 0 {
            return 0.0;
        }
        self.per_engine
            .iter()
            .map(|s| s.total_latency_cycles)
            .sum::<u64>() as f64
            / completed as f64
    }

    /// All completed lookups agreed with the oracle.
    #[must_use]
    pub fn is_fully_correct(&self) -> bool {
        self.mismatches == 0 && self.correct == self.completed
    }

    /// Mean distributor queueing delay per offered packet, in cycles.
    #[must_use]
    pub fn mean_queue_wait_cycles(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.total_queue_wait_cycles as f64 / self.offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, energy_pj: f64) -> EngineStats {
        EngineStats {
            cycles,
            logic_energy_pj: energy_pj,
            ..EngineStats::default()
        }
    }

    #[test]
    fn dynamic_power_sums_engines() {
        let report = SimReport {
            cycles: 100,
            offered: 0,
            completed: 0,
            correct: 0,
            mismatches: 0,
            engines: 2,
            stages: 28,
            freq_mhz: 100.0,
            max_queue_depth: 0,
            total_queue_wait_cycles: 0,
            per_engine: vec![stats(100, 1000.0), stats(100, 1000.0)],
        };
        // Each engine: 1000 pJ / 100 cycles × 100 MHz = 1 µW... in watts:
        // 10 pJ/cycle × 1e8 cycles/s = 1e-3 W.
        assert!((report.dynamic_power_w() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn throughput_formula() {
        let report = SimReport {
            cycles: 1000,
            offered: 500,
            completed: 500,
            correct: 500,
            mismatches: 0,
            engines: 1,
            stages: 28,
            freq_mhz: 350.0,
            max_queue_depth: 0,
            total_queue_wait_cycles: 0,
            per_engine: vec![],
        };
        // Half the line rate: 0.5 × 112 Gbps.
        assert!((report.achieved_throughput_gbps() - 56.0).abs() < 1e-9);
        assert!(report.is_fully_correct());
    }

    #[test]
    fn zero_cycles_edge_cases() {
        let report = SimReport {
            cycles: 0,
            offered: 0,
            completed: 0,
            correct: 0,
            mismatches: 0,
            engines: 0,
            stages: 0,
            freq_mhz: 350.0,
            max_queue_depth: 0,
            total_queue_wait_cycles: 0,
            per_engine: vec![],
        };
        assert_eq!(report.achieved_throughput_gbps(), 0.0);
        assert_eq!(report.dynamic_power_w(), 0.0);
        assert_eq!(report.mean_occupancy(), 0.0);
        assert_eq!(report.mean_latency_cycles(), 0.0);
    }

    #[test]
    fn mismatches_break_correctness() {
        let report = SimReport {
            cycles: 10,
            offered: 2,
            completed: 2,
            correct: 1,
            mismatches: 1,
            engines: 1,
            stages: 4,
            freq_mhz: 100.0,
            max_queue_depth: 0,
            total_queue_wait_cycles: 0,
            per_engine: vec![],
        };
        assert!(!report.is_fully_correct());
    }
}

//! The rest of the router data path: parse → lookup → edit → schedule.
//!
//! The paper isolates the lookup engine and notes (§VI-A) that "in a
//! complete router implementation (parsing, lookup, editing, scheduling,
//! etc.)" the feasible number of separate engines "may become even less
//! when other inputs and outputs are considered". This module builds
//! those surrounding stages so that remark can be evaluated, not assumed:
//!
//! * [`parse_frame`] — Ethernet II + IPv4 header parsing with full
//!   validation (version, IHL, header checksum);
//! * [`forward_edit`] — the per-hop IPv4 edit: TTL decrement with the
//!   RFC 1624 incremental checksum update (no full recompute);
//! * [`OutputScheduler`] — round-robin egress scheduling across the K
//!   engines' result queues onto one merged output port (Fig. 1, top);
//! * [`full_router_pins`] — the widened per-engine pin budget of a
//!   complete data path, quantifying the §VI-A remark.

use crate::EngineError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vr_fpga::device::Device;
use vr_net::VnId;
use vr_telemetry::{Counter, Histogram, MetricsRegistry, Stopwatch};

/// Minimum parseable frame: 14-byte Ethernet II header + 20-byte IPv4
/// header (no options).
pub const MIN_FRAME_BYTES: usize = 34;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Why a frame was rejected by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseError {
    /// Frame shorter than Ethernet + minimal IPv4.
    TooShort,
    /// EtherType is not IPv4.
    NotIpv4,
    /// IP version field is not 4.
    BadVersion,
    /// IHL below 5 (20 bytes) or beyond the frame.
    BadIhl,
    /// Header checksum verification failed.
    BadChecksum,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseError::TooShort => "frame too short",
            ParseError::NotIpv4 => "not an IPv4 frame",
            ParseError::BadVersion => "IP version is not 4",
            ParseError::BadIhl => "bad IHL",
            ParseError::BadChecksum => "IPv4 header checksum mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseError {}

/// The parsed fields the lookup/edit stages need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedPacket {
    /// Destination IPv4 address (the lookup key).
    pub dst_ip: u32,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Time-to-live as received.
    pub ttl: u8,
    /// Header checksum as received (host byte order).
    pub checksum: u16,
    /// Header length in bytes (IHL × 4).
    pub header_len: usize,
    /// Total frame length.
    pub frame_len: usize,
}

/// Parses and validates an Ethernet II / IPv4 frame.
///
/// # Errors
/// Every malformed input maps to a specific [`ParseError`]; nothing
/// panics on arbitrary bytes (fuzzed in the property tests).
pub fn parse_frame(frame: &[u8]) -> Result<ParsedPacket, ParseError> {
    if frame.len() < MIN_FRAME_BYTES {
        return Err(ParseError::TooShort);
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::NotIpv4);
    }
    let ip = &frame[14..];
    let version = ip[0] >> 4;
    if version != 4 {
        return Err(ParseError::BadVersion);
    }
    let ihl = usize::from(ip[0] & 0x0F);
    let header_len = ihl * 4;
    if ihl < 5 || ip.len() < header_len {
        return Err(ParseError::BadIhl);
    }
    if internet_checksum(&ip[..header_len]) != 0 {
        return Err(ParseError::BadChecksum);
    }
    Ok(ParsedPacket {
        dst_ip: u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]),
        src_ip: u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]),
        ttl: ip[8],
        checksum: u16::from_be_bytes([ip[10], ip[11]]),
        header_len,
        frame_len: frame.len(),
    })
}

/// Builds a valid minimal frame for a destination (test/traffic helper).
#[must_use]
pub fn build_frame(dst_ip: u32, src_ip: u32, ttl: u8) -> Vec<u8> {
    let mut frame = vec![0u8; MIN_FRAME_BYTES];
    frame[12] = 0x08; // EtherType IPv4
    let ip = &mut frame[14..];
    ip[0] = 0x45; // version 4, IHL 5
    ip[2] = 0; // total length high (unused by the parser)
    ip[3] = 20;
    ip[8] = ttl;
    ip[9] = 17; // UDP, arbitrary
    ip[12..16].copy_from_slice(&src_ip.to_be_bytes());
    ip[16..20].copy_from_slice(&dst_ip.to_be_bytes());
    // With the checksum field zeroed, `internet_checksum` returns exactly
    // the value to store: header-sum + value = 0xFFFF ⇒ verification = 0.
    let fixed = internet_checksum(&ip[..20]);
    ip[10..12].copy_from_slice(&fixed.to_be_bytes());
    debug_assert_eq!(internet_checksum(&ip[..20]), 0);
    frame
}

/// Result of the forwarding edit stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EditOutcome {
    /// Packet forwarded: new TTL and incrementally updated checksum.
    Forwarded {
        /// TTL after decrement.
        ttl: u8,
        /// Checksum after the RFC 1624 incremental update.
        checksum: u16,
    },
    /// TTL reached zero: the packet must be dropped (ICMP time exceeded
    /// is control-plane work, out of the data-path's scope).
    TtlExpired,
}

/// The per-hop IPv4 edit: decrement TTL and update the header checksum
/// incrementally (RFC 1624 eqn. 3) — the hardware never recomputes the
/// full sum.
#[must_use]
pub fn forward_edit(packet: &ParsedPacket) -> EditOutcome {
    if packet.ttl <= 1 {
        return EditOutcome::TtlExpired;
    }
    let new_ttl = packet.ttl - 1;
    // TTL lives in the high byte of the 16-bit word at offset 8 (with the
    // protocol in the low byte). HC' = ~(~HC + ~m + m').
    let old_word = u16::from(packet.ttl) << 8;
    let new_word = u16::from(new_ttl) << 8;
    let hc = !packet.checksum;
    let sum = add_ones_complement(add_ones_complement(hc, !old_word), new_word);
    EditOutcome::Forwarded {
        ttl: new_ttl,
        checksum: !sum,
    }
}

/// One's-complement 16-bit addition with end-around carry.
fn add_ones_complement(a: u16, b: u16) -> u16 {
    let sum = u32::from(a) + u32::from(b);
    ((sum & 0xFFFF) + (sum >> 16)) as u16
}

/// The internet checksum (RFC 1071) over `data`; a valid IPv4 header
/// (checksum field included) sums to zero.
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(*last) << 8;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Round-robin egress scheduler: K per-engine result queues drain onto
/// one merged output port, one packet per cycle (Fig. 1's "merged flow
/// out"). Round robin gives each engine equal egress share regardless of
/// its offered load — the fairness the paper's transparent-consolidation
/// requirement implies.
#[derive(Debug, Clone)]
pub struct OutputScheduler {
    queues: Vec<VecDeque<(VnId, u32)>>,
    next: usize,
    emitted: Vec<u64>,
    max_depth: usize,
}

impl OutputScheduler {
    /// Creates a scheduler for `k` engines.
    ///
    /// # Errors
    /// Rejects `k == 0`.
    pub fn new(k: usize) -> Result<Self, EngineError> {
        if k == 0 {
            return Err(EngineError::InvalidParameter("scheduler needs ≥1 queue"));
        }
        Ok(Self {
            queues: vec![VecDeque::new(); k],
            next: 0,
            emitted: vec![0; k],
            max_depth: 0,
        })
    }

    /// Enqueues a completed lookup result from engine `engine_idx`.
    ///
    /// # Panics
    /// Panics if `engine_idx` is out of range.
    pub fn push(&mut self, engine_idx: usize, vnid: VnId, dst: u32) {
        self.queues[engine_idx].push_back((vnid, dst));
        self.max_depth = self.max_depth.max(self.queues[engine_idx].len());
    }

    /// Emits at most one packet this cycle, round-robin over non-empty
    /// queues starting after the last served engine.
    pub fn tick(&mut self) -> Option<(VnId, u32)> {
        let k = self.queues.len();
        for offset in 0..k {
            let idx = (self.next + offset) % k;
            if let Some(out) = self.queues[idx].pop_front() {
                self.next = (idx + 1) % k;
                self.emitted[idx] += 1;
                return Some(out);
            }
        }
        None
    }

    /// Packets emitted per engine so far.
    #[must_use]
    pub fn emitted(&self) -> &[u64] {
        &self.emitted
    }

    /// Deepest egress queue observed.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Whether any result is still queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Batch-granular telemetry over the non-lookup stages: parse → edit →
/// schedule. Each `*_batch` wrapper runs the plain per-packet function
/// over a whole batch and records one histogram sample (`vr_datapath_*`)
/// for the batch, so the per-packet path stays allocation- and
/// timing-free exactly as before.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    frames: Counter,
    parse_errors: Counter,
    ttl_expired: Counter,
    parse_ns: Histogram,
    edit_ns: Histogram,
    schedule_ns: Histogram,
}

impl StageMetrics {
    /// Registers (or re-attaches to) the datapath stage metrics.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            frames: registry.counter("vr_datapath_frames_total"),
            parse_errors: registry.counter("vr_datapath_parse_errors_total"),
            ttl_expired: registry.counter("vr_datapath_ttl_expired_total"),
            parse_ns: registry.histogram("vr_datapath_parse_ns"),
            edit_ns: registry.histogram("vr_datapath_edit_ns"),
            schedule_ns: registry.histogram("vr_datapath_schedule_ns"),
        }
    }

    /// Parses a batch of frames, counting frames and rejects and timing
    /// the whole batch into `vr_datapath_parse_ns`.
    pub fn parse_batch(
        &self,
        shard: usize,
        frames: &[&[u8]],
    ) -> Vec<Result<ParsedPacket, ParseError>> {
        let watch = Stopwatch::start();
        let out: Vec<Result<ParsedPacket, ParseError>> =
            frames.iter().map(|f| parse_frame(f)).collect();
        self.parse_ns.record(watch.elapsed_ns());
        self.frames.add(shard, frames.len() as u64);
        self.parse_errors
            .add(shard, out.iter().filter(|r| r.is_err()).count() as u64);
        out
    }

    /// Applies the forwarding edit to a batch, counting TTL drops and
    /// timing the batch into `vr_datapath_edit_ns`.
    pub fn edit_batch(&self, shard: usize, packets: &[ParsedPacket]) -> Vec<EditOutcome> {
        let watch = Stopwatch::start();
        let out: Vec<EditOutcome> = packets.iter().map(forward_edit).collect();
        self.edit_ns.record(watch.elapsed_ns());
        self.ttl_expired.add(
            shard,
            out.iter()
                .filter(|o| matches!(o, EditOutcome::TtlExpired))
                .count() as u64,
        );
        out
    }

    /// Drains the scheduler to empty, timing the drain into
    /// `vr_datapath_schedule_ns` and returning the emission order.
    pub fn drain_scheduler(&self, scheduler: &mut OutputScheduler) -> Vec<(VnId, u32)> {
        let watch = Stopwatch::start();
        let mut out = Vec::new();
        while let Some(emitted) = scheduler.tick() {
            out.push(emitted);
        }
        self.schedule_ns.record(watch.elapsed_ns());
        out
    }
}

/// Per-engine pins of a *complete* router data path: the lookup-only 72
/// pins (address/VNID/NHI/handshake) plus a 64-bit packet-data bus in and
/// out with qualifiers — what §VI-A means by "other inputs and outputs".
pub const FULL_ROUTER_PINS_PER_ENGINE: u64 = 72 + 64 + 64 + 8;

/// Shared pins of a complete router (clocking/config plus the merged
/// egress port).
pub const FULL_ROUTER_SHARED_PINS: u64 = 60 + 72;

/// Largest engine count a device's pins admit for the complete data path.
#[must_use]
pub fn full_router_max_engines(device: &Device) -> usize {
    if device.io_pins < FULL_ROUTER_SHARED_PINS {
        return 0;
    }
    ((device.io_pins - FULL_ROUTER_SHARED_PINS) / FULL_ROUTER_PINS_PER_ENGINE) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_frames_parse_and_verify() {
        let frame = build_frame(0x0A01_0203, 0xC0A8_0001, 64);
        let packet = parse_frame(&frame).unwrap();
        assert_eq!(packet.dst_ip, 0x0A01_0203);
        assert_eq!(packet.src_ip, 0xC0A8_0001);
        assert_eq!(packet.ttl, 64);
        assert_eq!(packet.header_len, 20);
    }

    #[test]
    fn parser_rejects_malformed_frames() {
        assert_eq!(parse_frame(&[]), Err(ParseError::TooShort));
        assert_eq!(
            parse_frame(&[0u8; MIN_FRAME_BYTES - 1]),
            Err(ParseError::TooShort)
        );
        let mut not_ip = build_frame(1, 2, 64);
        not_ip[12] = 0x86; // IPv6 ethertype high byte
        assert_eq!(parse_frame(&not_ip), Err(ParseError::NotIpv4));
        let mut bad_version = build_frame(1, 2, 64);
        bad_version[14] = 0x65; // version 6
        assert_eq!(parse_frame(&bad_version), Err(ParseError::BadVersion));
        let mut bad_ihl = build_frame(1, 2, 64);
        bad_ihl[14] = 0x44; // IHL 4 < 5
        assert_eq!(parse_frame(&bad_ihl), Err(ParseError::BadIhl));
        let mut corrupted = build_frame(1, 2, 64);
        corrupted[30] ^= 0xFF; // flip a dst-ip byte: checksum must catch it
        assert_eq!(parse_frame(&corrupted), Err(ParseError::BadChecksum));
    }

    #[test]
    fn incremental_checksum_matches_full_recompute() {
        for ttl in [2u8, 3, 64, 255] {
            let frame = build_frame(0xDEAD_BEEF, 0x0102_0304, ttl);
            let packet = parse_frame(&frame).unwrap();
            let EditOutcome::Forwarded { ttl: new_ttl, checksum } = forward_edit(&packet)
            else {
                panic!("ttl {ttl} must forward");
            };
            assert_eq!(new_ttl, ttl - 1);
            // Rebuild the edited header and verify it sums to zero.
            let mut edited = frame.clone();
            edited[22] = new_ttl;
            edited[24..26].copy_from_slice(&checksum.to_be_bytes());
            assert_eq!(
                internet_checksum(&edited[14..34]),
                0,
                "ttl {ttl}: incremental update diverged from recompute"
            );
        }
    }

    #[test]
    fn ttl_expiry_drops() {
        for ttl in [0u8, 1] {
            let frame = build_frame(1, 2, ttl.max(1));
            let mut packet = parse_frame(&frame).unwrap();
            packet.ttl = ttl;
            assert_eq!(forward_edit(&packet), EditOutcome::TtlExpired);
        }
    }

    #[test]
    fn scheduler_is_round_robin_fair() {
        let mut sched = OutputScheduler::new(3).unwrap();
        // Saturate all queues, then drain: emissions must stay balanced.
        for round in 0..30u32 {
            for engine in 0..3 {
                sched.push(engine, engine as VnId, round);
            }
        }
        let mut emitted = 0;
        while sched.tick().is_some() {
            emitted += 1;
        }
        assert_eq!(emitted, 90);
        assert_eq!(sched.emitted(), &[30, 30, 30]);
        assert!(sched.is_empty());
        assert!(sched.max_depth() <= 30);
    }

    #[test]
    fn scheduler_skips_empty_queues() {
        let mut sched = OutputScheduler::new(4).unwrap();
        sched.push(2, 2, 7);
        assert_eq!(sched.tick(), Some((2, 7)));
        assert_eq!(sched.tick(), None);
        assert!(OutputScheduler::new(0).is_err());
    }

    #[test]
    fn full_router_pins_shrink_the_engine_budget() {
        // §VI-A: "this number may become even less" — the lookup-only
        // budget admits 15 engines, the full data path far fewer.
        let device = Device::xc6vlx760();
        let lookup_only = vr_fpga::io::max_engines(&device);
        let full = full_router_max_engines(&device);
        assert_eq!(lookup_only, 15);
        assert!(full < lookup_only);
        assert!(full >= 4, "a useful router still fits: {full}");
        let mut tiny = device;
        tiny.io_pins = 50;
        assert_eq!(full_router_max_engines(&tiny), 0);
    }

    #[test]
    fn stage_metrics_count_frames_errors_and_drops() {
        let registry = MetricsRegistry::new(2);
        let metrics = StageMetrics::register(&registry);
        let good = build_frame(0x0A01_0203, 0xC0A8_0001, 64);
        let expiring = build_frame(0x0A01_0204, 0xC0A8_0001, 1);
        let bad = vec![0u8; 4];
        let parsed = metrics.parse_batch(0, &[&good, &expiring, &bad]);
        assert_eq!(parsed.iter().filter(|r| r.is_ok()).count(), 2);
        let packets: Vec<ParsedPacket> = parsed.into_iter().flatten().collect();
        let edited = metrics.edit_batch(0, &packets);
        assert!(matches!(edited[0], EditOutcome::Forwarded { ttl: 63, .. }));
        assert_eq!(edited[1], EditOutcome::TtlExpired);
        let mut sched = OutputScheduler::new(2).unwrap();
        sched.push(0, 0, 1);
        sched.push(1, 1, 2);
        let emitted = metrics.drain_scheduler(&mut sched);
        assert_eq!(emitted.len(), 2);
        assert!(sched.is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("vr_datapath_frames_total"), Some(3));
        assert_eq!(snap.counter("vr_datapath_parse_errors_total"), Some(1));
        assert_eq!(snap.counter("vr_datapath_ttl_expired_total"), Some(1));
        assert_eq!(snap.histogram("vr_datapath_parse_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("vr_datapath_edit_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("vr_datapath_schedule_ns").unwrap().count, 1);
    }

    #[test]
    fn internet_checksum_reference_vector() {
        // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 → sum 0xddf2,
        // checksum ~sum = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
        // Odd-length tail is padded with a zero byte.
        let odd = [0x01u8, 0x02, 0x03];
        assert_eq!(internet_checksum(&odd), !add_ones_complement(0x0102, 0x0300));
    }
}

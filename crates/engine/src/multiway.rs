//! Multi-way pipelined lookup engine (paper ref. \[7\]).
//!
//! `2^s` short sub-pipelines, one per re-rooted subtrie; a selector on the
//! first `s` destination bits steers each packet into exactly one
//! sub-pipeline while the others stay clock-gated. Per-lookup energy drops
//! with the pipeline depth — the power lever of "Multi-way Pipelining for
//! Power-Efficient IP Lookup" — which the `multiway` bench measures
//! against the monolithic 28-stage engine using this simulator.

use crate::engine::{CompletedLookup, EngineConfig, EngineStats, PipelineEngine};
use crate::EngineError;
use std::collections::VecDeque;
use vr_net::VnId;
use vr_telemetry::{Counter, Histogram, MetricsRegistry, Stopwatch};
use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile};
use vr_trie::PartitionedTrie;

/// Registry handles for batch-stage timing, attached with
/// [`MultiwayEngine::attach_telemetry`]. Recording happens once per
/// [`MultiwayEngine::run_batch`] call (inject phase and drain phase
/// timed separately), so the per-cycle simulation loop stays untouched.
#[derive(Debug, Clone)]
struct MultiwayMetrics {
    batches: Counter,
    lookups: Counter,
    inject_ns: Histogram,
    drain_ns: Histogram,
}

/// A bank of `2^s` sub-pipelines behind a split-bit selector.
#[derive(Debug, Clone)]
pub struct MultiwayEngine {
    split_bits: u8,
    pipelines: Vec<PipelineEngine>,
    /// Original destinations in flight per way (sub-pipelines walk
    /// re-rooted addresses; completions are translated back, in order).
    in_flight: Vec<VecDeque<u32>>,
    cycles: u64,
    metrics: Option<MultiwayMetrics>,
}

impl MultiwayEngine {
    /// Builds the bank from a partitioned trie. Every sub-pipeline is
    /// provisioned for the deepest subtrie so the ways stay in lockstep.
    ///
    /// # Errors
    /// Propagates profile/engine construction errors.
    pub fn new(partition: PartitionedTrie, cfg: EngineConfig) -> Result<Self, EngineError> {
        let stages = partition.max_depth().max(1);
        let (split_bits, subtries) = partition.into_parts();
        let layout = MemoryLayout::default();
        let pipelines = subtries
            .into_iter()
            .map(|trie| {
                let profile = PipelineProfile::for_single(&trie, stages, layout)?;
                PipelineEngine::new_single(trie, &profile, cfg)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ways = pipelines.len();
        Ok(Self {
            split_bits,
            pipelines,
            in_flight: vec![VecDeque::new(); ways],
            cycles: 0,
            metrics: None,
        })
    }

    /// Attaches batch-stage telemetry (`vr_multiway_*`) from `registry`.
    /// Only [`Self::run_batch`] records; `tick`/`drain` driven by hand
    /// stay metric-free.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(MultiwayMetrics {
            batches: registry.counter("vr_multiway_batches_total"),
            lookups: registry.counter("vr_multiway_lookups_total"),
            inject_ns: registry.histogram("vr_multiway_inject_ns"),
            drain_ns: registry.histogram("vr_multiway_drain_ns"),
        });
    }

    /// Number of ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.pipelines.len()
    }

    /// Stages per sub-pipeline.
    #[must_use]
    pub fn stages_per_way(&self) -> usize {
        self.pipelines.first().map_or(0, PipelineEngine::stage_count)
    }

    /// Cycles simulated.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether any packet is still in flight.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.pipelines.iter().any(PipelineEngine::is_draining)
    }

    fn way_of(&self, ip: u32) -> usize {
        if self.split_bits == 0 {
            0
        } else {
            (ip >> (32 - u32::from(self.split_bits))) as usize
        }
    }

    fn rerooted(&self, ip: u32) -> u32 {
        if self.split_bits == 0 {
            ip
        } else {
            ip << self.split_bits
        }
    }

    /// Advances one cycle; `input` enters its addressed way, all other
    /// ways tick idle (gated). Returns completions with their *original*
    /// destination addresses restored.
    pub fn tick(&mut self, input: Option<(VnId, u32)>) -> Vec<CompletedLookup> {
        self.cycles += 1;
        let target = input.map(|(vnid, dst)| {
            let way = self.way_of(dst);
            self.in_flight[way].push_back(dst);
            (way, vnid, self.rerooted(dst))
        });
        let mut out = Vec::new();
        for (way, pipeline) in self.pipelines.iter_mut().enumerate() {
            let inject = match target {
                Some((w, vnid, rerooted)) if w == way => Some((vnid, rerooted)),
                _ => None,
            };
            if let Some(mut done) = pipeline.tick(inject) {
                done.dst = self.in_flight[way]
                    .pop_front()
                    .expect("completion without a tracked injection");
                out.push(done);
            }
        }
        out
    }

    /// Drains all ways, returning remaining completions in exit order.
    pub fn drain(&mut self) -> Vec<CompletedLookup> {
        let mut out = Vec::new();
        while self.is_draining() {
            out.extend(self.tick(None));
        }
        out
    }

    /// Drives a whole batch at one injection per cycle, then drains —
    /// the multi-way counterpart of [`PipelineEngine::run_batch`].
    /// Cycle-exact with a hand-rolled `tick`/`drain` loop.
    pub fn run_batch(&mut self, inputs: &[(VnId, u32)]) -> Vec<CompletedLookup> {
        let mut watch = Stopwatch::start();
        let mut out = Vec::with_capacity(inputs.len());
        for &(vnid, dst) in inputs {
            out.extend(self.tick(Some((vnid, dst))));
        }
        let inject_ns = watch.lap_ns();
        out.extend(self.drain());
        if let Some(m) = &self.metrics {
            m.batches.inc(0);
            m.lookups.add(0, inputs.len() as u64);
            m.inject_ns.record(inject_ns);
            m.drain_ns.record(watch.elapsed_ns());
        }
        out
    }

    /// Aggregated counters across ways (cycles = this bank's cycle count:
    /// the ways run in lockstep off one clock).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for p in &self.pipelines {
            let s = p.stats();
            total.injected += s.injected;
            total.completed += s.completed;
            total.occupied_stage_cycles += s.occupied_stage_cycles;
            total.memory_reads += s.memory_reads;
            total.logic_energy_pj += s.logic_energy_pj;
            total.bram_energy_pj += s.bram_energy_pj;
            total.total_latency_cycles += s.total_latency_cycles;
        }
        total.cycles = self.cycles;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;
    use vr_net::RoutingTable;

    fn engine(seed: u64, split: u8) -> (RoutingTable, MultiwayEngine) {
        let table = TableSpec::paper_worst_case(seed).generate().unwrap();
        let part = PartitionedTrie::from_table(&table, split).unwrap();
        let engine = MultiwayEngine::new(part, EngineConfig::paper_default()).unwrap();
        (table, engine)
    }

    #[test]
    fn matches_oracle_across_ways() {
        let (table, mut engine) = engine(21, 3);
        assert_eq!(engine.ways(), 8);
        let probes: Vec<u32> = table
            .prefixes()
            .map(|p| p.addr().wrapping_add(13))
            .take(400)
            .collect();
        let mut outputs = Vec::new();
        for &ip in &probes {
            outputs.extend(engine.tick(Some((0, ip))));
        }
        outputs.extend(engine.drain());
        assert_eq!(outputs.len(), probes.len());
        for done in outputs {
            assert_eq!(
                done.next_hop,
                table.lookup(done.dst),
                "dst {:#010x}",
                done.dst
            );
        }
    }

    #[test]
    fn splitting_cuts_latency_and_energy_per_lookup() {
        let (table, mut mono) = engine(22, 0);
        let (_, mut split) = engine(22, 4);
        assert!(split.stages_per_way() < mono.stages_per_way());
        let probes: Vec<u32> = table.prefixes().map(|p| p.addr() | 1).take(500).collect();
        for &ip in &probes {
            mono.tick(Some((0, ip)));
            split.tick(Some((0, ip)));
        }
        mono.drain();
        split.drain();
        let mono_stats = mono.stats();
        let split_stats = split.stats();
        assert_eq!(mono_stats.completed, split_stats.completed);
        // Latency: sub-pipelines are shorter.
        assert!(split_stats.mean_latency_cycles() < mono_stats.mean_latency_cycles());
        // Energy per lookup: fewer occupied stage-cycles and fewer reads.
        let per_lookup =
            |s: &EngineStats| (s.logic_energy_pj + s.bram_energy_pj) / s.completed as f64;
        assert!(
            per_lookup(&split_stats) < per_lookup(&mono_stats),
            "split {} vs mono {}",
            per_lookup(&split_stats),
            per_lookup(&mono_stats)
        );
    }

    #[test]
    fn only_the_addressed_way_burns_energy() {
        // Route every probe into way 0; the other ways must stay at zero
        // dynamic energy (clock-gated idle).
        let (_, mut engine) = engine(23, 2);
        for i in 0..200u32 {
            engine.tick(Some((0, i))); // top bits 00 → way 0
        }
        engine.drain();
        let idle_ways_energy: f64 = engine.pipelines[1..]
            .iter()
            .map(|p| p.stats().logic_energy_pj + p.stats().bram_energy_pj)
            .sum();
        assert_eq!(idle_ways_energy, 0.0);
        let active = engine.pipelines[0].stats();
        assert!(active.logic_energy_pj > 0.0);
    }

    #[test]
    fn run_batch_records_stage_timings_when_attached() {
        let registry = MetricsRegistry::new(1);
        let (table, mut engine) = engine(25, 2);
        engine.attach_telemetry(&registry);
        let probes: Vec<(VnId, u32)> = table
            .prefixes()
            .map(|p| (0, p.addr()))
            .take(50)
            .collect();
        let done = engine.run_batch(&probes);
        assert_eq!(done.len(), 50);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("vr_multiway_batches_total"), Some(1));
        assert_eq!(snap.counter("vr_multiway_lookups_total"), Some(50));
        assert_eq!(snap.histogram("vr_multiway_inject_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("vr_multiway_drain_ns").unwrap().count, 1);
    }

    #[test]
    fn stats_aggregate_and_cycles_are_bankwide() {
        let (table, mut engine) = engine(24, 2);
        for p in table.prefixes().take(100) {
            engine.tick(Some((0, p.addr())));
        }
        engine.drain();
        let stats = engine.stats();
        assert_eq!(stats.injected, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.cycles, engine.cycles());
        assert!(stats.cycles >= 100);
    }
}

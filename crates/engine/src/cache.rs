//! Hot-path LPM result cache with generation invalidation.
//!
//! Real router traffic is heavily skewed: a small set of hot destinations
//! dominates, yet every lookup still pays the full DIR-16 root load plus
//! sub-slab chase (and, for mixed-VN batches, the per-VN group/scatter of
//! `lookup_batch_mixed`). This module short-circuits the repeat lookups
//! with a per-worker **result cache** in front of the lane stepper:
//!
//! * **Direct-mapped, fixed-size, power-of-two** slot array keyed by
//!   `(dst_addr, vnid)` and storing the encoded next-hop result — 16
//!   bytes per slot, probed with one Fibonacci multiply and one load.
//! * **Generation-tagged invalidation.** Every slot carries the RCU
//!   publish generation it was filled under as a vr-sync [`GenTag`]. A
//!   probe hits only when the
//!   slot's tag equals the *current* snapshot generation, so
//!   `publish_tables` / `apply_updates` invalidate the whole cache in
//!   O(1) by construction: the generation bump makes every existing tag
//!   mismatch. No flush loop, no epochs, no atomics.
//! * **Private per worker.** Each `LookupService` worker and each
//!   `ShardedService` shard thread owns its own cache; nothing is shared,
//!   so the probe/fill path is plain single-threaded loads and stores.
//! * **Allocation-free batch flow.** [`LpmCache::lookup_batch`] probes
//!   the whole batch (prefetching slots [`SLOT_AHEAD`] packets ahead),
//!   compacts the misses into a dense sub-batch, walks *only the misses*
//!   through the trie's batched lane path, then scatters the results back
//!   into submission order and fills the slots. The miss scratch buffers
//!   live in the cache and are reused across batches.
//!
//! Negative results are cached too: "no route" is as deterministic a
//! function of `(table generation, dst, vnid)` as any next hop.
//!
//! Reading a slot's stored result is only legal through the
//! generation-checked probe API in this module — vr-audit lint rule 7
//! (`no-raw-cache-slot`) enforces that no other engine module touches a
//! `.nhi` slot field directly.

use vr_net::table::NextHop;
use vr_net::VnId;
use vr_obs::{Stage, TraceBuilder};
use vr_sync::GenTag;
use vr_trie::lane::prefetch_index;
use vr_trie::JumpTrie;

use crate::service::lookup_batch_mixed;
use crate::EngineError;

/// Default slot count for service caches when the caller asks for "a
/// cache" without sizing it: 2^16 slots × 16 B = 1 MiB per worker, which
/// at paper scale (K=15 × 3725 prefixes ≈ 56 K distinct covered
/// destinations) holds the bulk of the working set.
pub const DEFAULT_CACHE_SLOTS: usize = 1 << 16;

/// How many packets ahead of the probe cursor the slot line is
/// prefetched, mirroring the lane stepper's root-sweep lookahead.
const SLOT_AHEAD: usize = 8;

/// Fibonacci hashing constant (2^64 / φ) spreading the packed
/// `(vnid, dst)` key across the slot array.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Encoded cached result: 0 = no route, `1 + nh` = `Some(nh)`. Same
/// scheme as the trie's NHI slab encoding, kept local so the cache does
/// not reach into `vr-trie` internals.
type CacheCode = u16;

#[inline]
fn encode(nh: Option<NextHop>) -> CacheCode {
    match nh {
        None => 0,
        Some(n) => 1 + CacheCode::from(n),
    }
}

#[inline]
#[allow(clippy::cast_possible_truncation)]
fn decode(code: CacheCode) -> Option<NextHop> {
    if code == 0 {
        None
    } else {
        Some((code - 1) as NextHop)
    }
}

/// One direct-mapped cache slot: the key it holds, the publish
/// generation the result was computed under (a [`GenTag`], whose `EMPTY`
/// sentinel can never match a live generation), and the encoded result.
#[derive(Debug, Clone, Copy)]
struct Slot {
    dst: u32,
    vnid: VnId,
    nhi: CacheCode,
    generation: GenTag,
}

const EMPTY_SLOT: Slot = Slot {
    dst: 0,
    vnid: 0,
    nhi: 0,
    generation: GenTag::EMPTY,
};

/// Cumulative probe/fill counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from a slot (generation and key matched).
    pub hits: u64,
    /// Probes that fell through to the trie walk.
    pub misses: u64,
    /// Slots written after a miss walk.
    pub fills: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was probed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-worker, allocation-free LPM result cache (see the module docs
/// for the design).
///
/// ```
/// use vr_engine::cache::LpmCache;
/// use vr_net::RoutingTable;
/// use vr_trie::JumpTrie;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.1.0/24 2\n".parse().unwrap();
/// let trie = JumpTrie::from_table(&table);
/// let mut cache = LpmCache::new(1024).unwrap();
///
/// let packets = vec![(0, 0x0A01_0103u32), (0, 0x0A02_0000), (0, 0x0B00_0000)];
/// let mut out = vec![None; 3];
/// cache.lookup_batch(&trie, 0, &packets, &mut out);
/// assert_eq!(out, vec![Some(2), Some(1), None]);
/// // Same batch again: all three (including the negative result) hit.
/// cache.lookup_batch(&trie, 0, &packets, &mut out);
/// assert_eq!(cache.stats().hits, 3);
/// // A generation bump invalidates everything without touching a slot.
/// cache.lookup_batch(&trie, 1, &packets, &mut out);
/// assert_eq!(cache.stats().misses, 6);
/// ```
#[derive(Debug)]
pub struct LpmCache {
    slots: Box<[Slot]>,
    mask: usize,
    stats: CacheStats,
    /// Stats accumulated since the last [`Self::take_delta`], flushed to
    /// telemetry counters once per batch.
    delta: CacheStats,
    /// Miss-compaction scratch, reused across batches.
    miss_idx: Vec<u32>,
    miss_packets: Vec<(VnId, u32)>,
    miss_out: Vec<Option<NextHop>>,
}

impl LpmCache {
    /// Builds a cache with `capacity` slots, rounded up to a power of
    /// two.
    ///
    /// # Errors
    /// Rejects a zero capacity and capacities beyond 2^32 slots.
    pub fn new(capacity: usize) -> Result<Self, EngineError> {
        if capacity == 0 {
            return Err(EngineError::InvalidParameter(
                "cache capacity must be at least 1 slot",
            ));
        }
        if capacity > (1 << 32) {
            return Err(EngineError::InvalidParameter(
                "cache capacity beyond 2^32 slots",
            ));
        }
        let cap = capacity.next_power_of_two();
        Ok(Self {
            slots: vec![EMPTY_SLOT; cap].into_boxed_slice(),
            mask: cap - 1,
            stats: CacheStats::default(),
            delta: CacheStats::default(),
            miss_idx: Vec::new(),
            miss_packets: Vec::new(),
            miss_out: Vec::new(),
        })
    }

    /// Slot count (always a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative probe/fill counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the cumulative and delta counters (slots are untouched —
    /// used by benchmarks to measure steady-state hit rates after a
    /// warmup pass).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.delta = CacheStats::default();
    }

    /// Returns and clears the counters accumulated since the last call;
    /// the worker loop flushes this into its telemetry counters once per
    /// batch.
    pub fn take_delta(&mut self) -> CacheStats {
        std::mem::take(&mut self.delta)
    }

    /// Slot index of a key: Fibonacci hash of the packed `(vnid, dst)`
    /// key, taking bits from the upper half of the product.
    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn index(&self, vnid: VnId, dst: u32) -> usize {
        let key = (u64::from(vnid) << 32) | u64::from(dst);
        (key.wrapping_mul(FIB) >> 32) as usize & self.mask
    }

    /// Generation-checked single probe: `Some(result)` when the slot
    /// holds `(vnid, dst)` filled under exactly `generation`, `None`
    /// otherwise. This (and [`Self::lookup_batch`]) is the only legal way
    /// to read a cached result — lint rule 7 pins raw slot access to this
    /// module.
    pub fn probe(&mut self, generation: u64, vnid: VnId, dst: u32) -> Option<Option<NextHop>> {
        let slot = self.slots[self.index(vnid, dst)];
        if slot.generation.matches(generation) && slot.dst == dst && slot.vnid == vnid {
            self.stats.hits += 1;
            self.delta.hits += 1;
            Some(decode(slot.nhi))
        } else {
            self.stats.misses += 1;
            self.delta.misses += 1;
            None
        }
    }

    /// Stores `result` for `(vnid, dst)` under `generation`, evicting
    /// whatever occupied the slot.
    pub fn fill(&mut self, generation: u64, vnid: VnId, dst: u32, result: Option<NextHop>) {
        let idx = self.index(vnid, dst);
        self.slots[idx] = Slot {
            dst,
            vnid,
            nhi: encode(result),
            generation: GenTag::of(generation),
        };
        self.stats.fills += 1;
        self.delta.fills += 1;
    }

    /// Resolves a possibly mixed-VN batch against `trie` at `generation`,
    /// answering repeats from the cache: probe all packets (slots
    /// prefetched [`SLOT_AHEAD`] ahead), compact the misses, batch-walk
    /// only the misses through the lane stepper, scatter the results back
    /// into submission order, and fill the freshly walked slots.
    ///
    /// Results are bit-identical to an uncached
    /// `lookup_batch_mixed(trie, packets, out)` — the cache-parity
    /// proptests hold this to arbitrary traffic/churn interleavings.
    #[allow(clippy::cast_possible_truncation)]
    pub fn lookup_batch(
        &mut self,
        trie: &JumpTrie,
        generation: u64,
        packets: &[(VnId, u32)],
        out: &mut [Option<NextHop>],
    ) {
        let misses = self.probe_phase(generation, packets, out);
        if misses == 0 {
            return;
        }
        self.walk_phase(trie);
        self.scatter_phase(generation, out);
    }

    /// [`Self::lookup_batch`] with per-phase trace spans: closes
    /// `CacheProbe`, `LaneWalk`, and `Scatter` marks on `trace` around
    /// the three phases. An all-hit batch still closes all three spans
    /// (the walk and scatter come out zero-duration), so the stage
    /// chain has one shape regardless of hit rate. Results are
    /// bit-identical to the untraced path.
    pub fn lookup_batch_traced(
        &mut self,
        trie: &JumpTrie,
        generation: u64,
        packets: &[(VnId, u32)],
        out: &mut [Option<NextHop>],
        trace: &mut TraceBuilder,
    ) {
        let misses = self.probe_phase(generation, packets, out);
        trace.mark(Stage::CacheProbe);
        if misses > 0 {
            self.walk_phase(trie);
        }
        trace.mark(Stage::LaneWalk);
        if misses > 0 {
            self.scatter_phase(generation, out);
        }
        trace.mark(Stage::Scatter);
    }

    /// Probe phase: answers hits in place, compacts misses into the
    /// scratch buffers, and accounts probe stats. Returns the miss
    /// count.
    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn probe_phase(
        &mut self,
        generation: u64,
        packets: &[(VnId, u32)],
        out: &mut [Option<NextHop>],
    ) -> usize {
        debug_assert_eq!(packets.len(), out.len());
        let n = packets.len().min(out.len());
        self.miss_idx.clear();
        self.miss_packets.clear();
        for i in 0..n {
            if let Some(&(vn_a, dst_a)) = packets.get(i + SLOT_AHEAD) {
                prefetch_index(&self.slots, self.index(vn_a, dst_a) as u32);
            }
            let (vnid, dst) = packets[i];
            let slot = self.slots[self.index(vnid, dst)];
            if slot.generation.matches(generation) && slot.dst == dst && slot.vnid == vnid {
                out[i] = decode(slot.nhi);
            } else {
                self.miss_idx.push(i as u32);
                self.miss_packets.push((vnid, dst));
            }
        }
        let m = self.miss_packets.len();
        self.stats.hits += (n - m) as u64;
        self.delta.hits += (n - m) as u64;
        self.stats.misses += m as u64;
        self.delta.misses += m as u64;
        m
    }

    /// Walk phase: resolves the compacted misses through the trie's
    /// batched lane path into the miss scratch.
    #[inline]
    fn walk_phase(&mut self, trie: &JumpTrie) {
        let m = self.miss_packets.len();
        self.miss_out.clear();
        self.miss_out.resize(m, None);
        lookup_batch_mixed(trie, &self.miss_packets, &mut self.miss_out);
    }

    /// Scatter phase: restores submission order and fills the freshly
    /// walked slots under `generation`.
    #[inline]
    fn scatter_phase(&mut self, generation: u64, out: &mut [Option<NextHop>]) {
        let m = self.miss_packets.len();
        for j in 0..m {
            let i = self.miss_idx[j] as usize;
            let result = self.miss_out[j];
            out[i] = result;
            let (vnid, dst) = self.miss_packets[j];
            let idx = self.index(vnid, dst);
            self.slots[idx] = Slot {
                dst,
                vnid,
                nhi: encode(result),
                generation: GenTag::of(generation),
            };
        }
        self.stats.fills += m as u64;
        self.delta.fills += m as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::RoutingTable;

    fn trie() -> JumpTrie {
        let table: RoutingTable = "10.0.0.0/8 1\n10.1.0.0/16 2\n192.168.0.0/16 3\n"
            .parse()
            .unwrap();
        JumpTrie::from_table(&table)
    }

    #[test]
    fn new_rejects_zero_and_rounds_to_power_of_two() {
        assert!(LpmCache::new(0).is_err());
        assert_eq!(LpmCache::new(1).unwrap().capacity(), 1);
        assert_eq!(LpmCache::new(3).unwrap().capacity(), 4);
        assert_eq!(LpmCache::new(1000).unwrap().capacity(), 1024);
    }

    #[test]
    fn probe_fill_roundtrip_including_negative_results() {
        let mut c = LpmCache::new(64).unwrap();
        assert_eq!(c.probe(0, 1, 0x0A00_0001), None);
        c.fill(0, 1, 0x0A00_0001, Some(7));
        assert_eq!(c.probe(0, 1, 0x0A00_0001), Some(Some(7)));
        c.fill(0, 2, 0x0B00_0001, None);
        assert_eq!(c.probe(0, 2, 0x0B00_0001), Some(None));
        // Key mismatch in an occupied slot is a miss, not a wrong answer.
        assert_eq!(c.probe(0, 1, 0x0A00_0002), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (2, 2, 2));
    }

    #[test]
    fn generation_bump_invalidates_without_touching_slots() {
        let mut c = LpmCache::new(64).unwrap();
        c.fill(5, 0, 0xC0A8_0001, Some(3));
        assert_eq!(c.probe(5, 0, 0xC0A8_0001), Some(Some(3)));
        // The new generation sees a miss — O(1) invalidation...
        assert_eq!(c.probe(6, 0, 0xC0A8_0001), None);
        // ...and the slot itself was not modified by that probe: the old
        // generation still hits, proving invalidation wrote nothing.
        assert_eq!(c.probe(5, 0, 0xC0A8_0001), Some(Some(3)));
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn batch_matches_uncached_and_second_pass_hits() {
        let t = trie();
        let mut c = LpmCache::new(256).unwrap();
        let packets: Vec<(VnId, u32)> = vec![
            (0, 0x0A01_0001),
            (0, 0x0A02_0000),
            (0, 0xC0A8_0101),
            (0, 0x7F00_0001),
            (0, 0x0A01_0001),
        ];
        let mut cached = vec![None; packets.len()];
        let mut uncached = vec![None; packets.len()];
        c.lookup_batch(&t, 0, &packets, &mut cached);
        lookup_batch_mixed(&t, &packets, &mut uncached);
        assert_eq!(cached, uncached);
        // In-batch duplicates are both walked (all probes happen before
        // any fill of the same batch), so pass 1 is all misses.
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().fills, 5);
        // Pass 2 is all hits, duplicate included.
        c.lookup_batch(&t, 0, &packets, &mut cached);
        assert_eq!(cached, uncached);
        assert_eq!(c.stats().hits, 5);
    }

    #[test]
    fn take_delta_drains_and_reset_clears() {
        let t = trie();
        let mut c = LpmCache::new(16).unwrap();
        let packets: Vec<(VnId, u32)> = vec![(0, 0x0A01_0001), (0, 0x0A01_0001)];
        let mut out = vec![None; 2];
        c.lookup_batch(&t, 0, &packets, &mut out);
        let d = c.take_delta();
        assert_eq!(d.misses, 2);
        assert_eq!(c.take_delta(), CacheStats::default());
        c.lookup_batch(&t, 0, &packets, &mut out);
        assert_eq!(c.take_delta().hits, 2);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn delta_accounting_across_a_generation_bump() {
        let t = trie();
        let mut c = LpmCache::new(64).unwrap();
        let packets: Vec<(VnId, u32)> = vec![(0, 0x0A01_0001), (0, 0xC0A8_0101)];
        let mut out = vec![None; 2];
        c.lookup_batch(&t, 0, &packets, &mut out);
        let _ = c.take_delta(); // flush the cold-start misses
        // Steady state at generation 0: all hits.
        c.lookup_batch(&t, 0, &packets, &mut out);
        let warm = c.take_delta();
        assert_eq!((warm.hits, warm.misses, warm.fills), (2, 0, 0));
        // Generation bump: the same traffic is all misses + refills, and
        // the per-batch delta shows exactly that — the invalidation cost
        // is observable batch by batch, not smeared into cumulative
        // stats (what the telemetry counters flush per batch).
        c.lookup_batch(&t, 1, &packets, &mut out);
        let bumped = c.take_delta();
        assert_eq!((bumped.hits, bumped.misses, bumped.fills), (0, 2, 2));
        // The next pass at the new generation hits again...
        c.lookup_batch(&t, 1, &packets, &mut out);
        assert_eq!(c.take_delta().hits, 2);
        // ...and the cumulative stats aggregate the whole history.
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().fills, 4);
    }

    #[test]
    fn traced_batch_matches_untraced_and_closes_all_phases() {
        use vr_obs::Tracer;
        let t = trie();
        let mut traced = LpmCache::new(256).unwrap();
        let mut plain = LpmCache::new(256).unwrap();
        let tracer = Tracer::new(1, 8);
        let packets: Vec<(VnId, u32)> =
            vec![(0, 0x0A01_0001), (0, 0xC0A8_0101), (0, 0x7F00_0001)];
        let mut a = vec![None; 3];
        let mut b = vec![None; 3];
        // Pass 1 walks everything; pass 2 is all hits, where the walk
        // and scatter spans must still close (zero-duration).
        for pass in 0..2u64 {
            let mut tb = tracer.begin(pass, packets.len());
            tb.mark(Stage::Enqueue);
            tb.mark(Stage::Dequeue);
            traced.lookup_batch_traced(&t, 0, &packets, &mut a, &mut tb);
            tb.set_worker(0);
            tb.mark(Stage::Complete);
            plain.lookup_batch(&t, 0, &packets, &mut b);
            assert_eq!(a, b);
            let trace = tb.finish();
            trace.validate().unwrap();
            assert_eq!(trace.stages.len(), 6, "all phases span, hit or miss");
        }
        assert_eq!(traced.stats(), plain.stats());
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 9,
            misses: 1,
            fills: 1,
        };
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn vnid_disambiguates_identical_destinations() {
        let mut c = LpmCache::new(64).unwrap();
        c.fill(0, 0, 0x0A00_0001, Some(1));
        c.fill(0, 1, 0x0A00_0001, Some(2));
        assert_eq!(c.probe(0, 0, 0x0A00_0001), Some(Some(1)));
        assert_eq!(c.probe(0, 1, 0x0A00_0001), Some(Some(2)));
    }
}

//! Concurrent sharded lookup service with RCU-style table swap.
//!
//! The cycle-level [`PipelineEngine`](crate::PipelineEngine) models the
//! paper's hardware; this module is the *production* datapath the ROADMAP
//! asks for: N worker threads, each draining packet batches from its own
//! order-preserving FIFO channel and resolving them against an
//! [`Arc`]-shared immutable [`JumpTrie`].
//!
//! **Route updates publish incrementally.** [`LookupService::apply_updates`]
//! keeps an incremental plant — the live [`MergedTrie`] plus its per-/16
//! [`JumpSlabs`] decomposition — applies announce/withdraw deltas in
//! place, re-derives only the dirty buckets, and assembles a fresh
//! [`JumpTrie`] for the RCU swap. Past
//! [`ServiceConfig::dirty_rebuild_threshold`] dirty buckets (or with
//! [`ServiceConfig::full_rebuild`] set for A/B comparison) it falls back
//! to the from-scratch clone-and-rebuild path.
//!
//! **Reconfiguration never stalls the datapath.** Virtualized platforms
//! (the Terabit hybrid FPGA-ASIC switch-virtualization work in PAPERS.md)
//! pair a fast lookup plane with non-blocking table reloads; we reproduce
//! that with an RCU-style swap. The live table sits in a vr-sync
//! [`Publish`] slot: workers pin the current snapshot — one lock + one
//! refcount increment — **once per batch**, then resolve the whole batch
//! against that pinned [`SyncArc`]. A route update builds a complete new
//! [`JumpTrie`] *outside* the slot and publishes it with
//! [`Publish::update`], deriving `generation + 1` atomically with the
//! swap. Consequences, which the integration tests assert and the
//! `vr-sync` model checker proves over every bounded interleaving
//! (`programs::publish_vs_lookup`):
//!
//! * readers never block on writers (the slot is held for a handle clone
//!   or a handle store, never across a lookup or a rebuild);
//! * every batch resolves against exactly one generation — old or new,
//!   never a torn mix;
//! * the old table is freed by the last reader's refcount drop, the
//!   grace period RCU gets from epochs and we get from `SyncArc`.
//!
//! Per-worker counters (lookups, misses, batch latencies, generations
//! observed) ride back with each completed batch and aggregate into a
//! [`ServiceReport`].
//!
//! **Publishing is audited.** In debug builds (and in release with the
//! `audit-on-publish` feature) every candidate snapshot runs through
//! `vr-audit`'s structural verifier *before* the swap: a trie with a
//! corrupt tag, an out-of-slab child base, or a truncated NHI vector is
//! rejected with [`EngineError::AuditRejected`] and the live generation
//! keeps serving. A malformed table misroutes silently — the only cheap
//! place to catch it is the publish boundary.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use vr_sync::{
    spsc_bounded, spsc_unbounded, Publish, SpscReceiver, SpscSender, SyncArc, TrySendError,
};
use vr_audit::AuditMetrics;
use vr_net::table::{NextHop, RoutingTable};
use vr_net::{RouteUpdate, VnId};
use vr_net::Ipv4Prefix;
use vr_obs::{Stage, TraceBuilder, Tracer, DEFAULT_TRACE_CAPACITY};
use vr_telemetry::{Counter, EventKind, Gauge, Histogram, MetricsRegistry, Stopwatch, TelemetrySnapshot};
use vr_trie::{DirtyBuckets, JumpSlabs, JumpTrie, MergedTrie};

use crate::cache::{CacheStats, LpmCache};
use crate::EngineError;

/// An immutable routing snapshot: one [`JumpTrie`] plus the generation
/// that published it. Workers pin a snapshot per batch; publishers swap
/// whole snapshots, so trie and generation can never tear apart.
#[derive(Debug)]
pub struct TableSnapshot {
    /// The lookup structure (K-wide for merged virtual networks).
    pub trie: JumpTrie,
    /// Monotonic publish counter; 0 is the table the service started with.
    pub generation: u64,
}

/// Batch widths tried by the construction-time sweep when
/// [`ServiceConfig::batch_width`] is `None`. PR 1 hardcoded 8 and paid
/// for it (paper-scale speedup ~1.0x); the sweet spot is machine- and
/// table-dependent, so we measure instead of guessing.
pub const BATCH_WIDTH_CANDIDATES: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// Tuning knobs of a [`LookupService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Worker threads (shards). Each owns an order-preserving input FIFO.
    pub workers: usize,
    /// Lookup batch width; `None` picks one by sweeping
    /// [`BATCH_WIDTH_CANDIDATES`] against the freshly built table.
    pub batch_width: Option<usize>,
    /// Depth of each worker's input queue, in batches; producers block
    /// (backpressure) once a shard is this far behind.
    pub queue_depth: usize,
    /// Whether to run the service with a live [`MetricsRegistry`]:
    /// per-worker sharded counters, batch/lookup latency histograms, the
    /// structured-event ring, and publish/audit spans. The record path
    /// is a handful of relaxed atomics per *batch*, so this defaults on;
    /// `false` drops the service back to report-only accounting (used by
    /// the bench to measure the overhead delta).
    pub telemetry: bool,
    /// Route updates rebuild the whole table family from a clone instead
    /// of patching dirty sub-slabs. Off by default; kept as the A/B
    /// baseline for the `control_churn` study and as the semantics
    /// oracle for the incremental path.
    pub full_rebuild: bool,
    /// Dirty-bucket count beyond which an incremental update batch stops
    /// patching per-bucket and re-derives every sub-slab from the merged
    /// trie in one pass. 4096 of 65536 buckets (~6 %) keeps the patch
    /// path ahead of a full decomposition on edge-style tables.
    pub dirty_rebuild_threshold: usize,
    /// Slot count of the per-worker LPM result cache
    /// ([`crate::cache::LpmCache`]), rounded up to a power of two;
    /// `None` disables caching. Every worker owns its own private
    /// cache; slots are tagged with the publish generation, so route
    /// updates invalidate them in O(1) without any flush. Worth turning
    /// on whenever traffic repeats destinations (skewed/Zipf mixes);
    /// pure one-shot random traffic pays a small probe+fill overhead
    /// for no hits, which is why the default is off.
    pub lookup_cache: Option<usize>,
    /// 1-in-N batch-trace sampling rate (`Some(64)` traces every 64th
    /// submitted batch); `None` disables tracing entirely. Sampled
    /// batches carry an owned [`vr_obs::TraceBuilder`] through the
    /// queue and close stage spans (enqueue → dequeue → cache probe →
    /// lane walk → scatter → complete) into the service's
    /// [`vr_obs::Tracer`] ring; unsampled batches pay one modulo on
    /// submit and an `Option` check per stage. The
    /// `service_jump_traced` bench row holds the sampled hot path
    /// within 5% of the untraced one at the default 1-in-64.
    pub trace_sample: Option<u32>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            batch_width: None,
            queue_depth: 64,
            telemetry: true,
            full_rebuild: false,
            dirty_rebuild_threshold: 4096,
            lookup_cache: None,
            trace_sample: None,
        }
    }
}

/// One resolved batch leaving a worker.
#[derive(Debug, Clone)]
pub struct CompletedBatch {
    /// Submission sequence number (global, monotonically increasing).
    pub seq: u64,
    /// Per-packet results, in submission order.
    pub results: Vec<Option<NextHop>>,
    /// Generation of the snapshot the whole batch resolved against.
    pub generation: u64,
    /// Wall time the worker spent resolving the batch, in nanoseconds.
    pub elapsed_ns: u64,
    /// Worker (shard) that served the batch.
    pub worker: usize,
}

struct Job {
    seq: u64,
    packets: Vec<(VnId, u32)>,
    /// `Some` on sampled batches: the owned stage recorder riding with
    /// the job (see [`ServiceConfig::trace_sample`]).
    trace: Option<TraceBuilder>,
}

/// Registry handles owned by the service's control plane. Workers get
/// their own cloned [`WorkerMetrics`]; these cover publish/audit/tuning
/// paths that run on the caller's thread.
struct ServiceTelemetry {
    registry: Arc<MetricsRegistry>,
    swaps: Counter,
    audit_rejections: Counter,
    queue_stalls: Counter,
    updates: Counter,
    incremental_publishes: Counter,
    full_rebuilds: Counter,
    update_ns: Histogram,
    generation: Gauge,
    generation_lag: Gauge,
    batch_width: Gauge,
    dirty_buckets: Gauge,
    audit: AuditMetrics,
}

impl ServiceTelemetry {
    fn new(workers: usize) -> Self {
        let registry = Arc::new(MetricsRegistry::new(workers));
        Self {
            swaps: registry.counter("vr_service_swaps_total"),
            audit_rejections: registry.counter("vr_service_audit_rejections_total"),
            queue_stalls: registry.counter("vr_service_queue_stalls_total"),
            updates: registry.counter("vr_service_updates_total"),
            incremental_publishes: registry.counter("vr_service_incremental_publishes_total"),
            full_rebuilds: registry.counter("vr_service_full_rebuilds_total"),
            update_ns: registry.histogram("vr_service_update_ns"),
            generation: registry.gauge("vr_service_generation"),
            generation_lag: registry.gauge("vr_service_generation_lag"),
            batch_width: registry.gauge("vr_service_batch_width"),
            dirty_buckets: registry.gauge("vr_service_dirty_buckets"),
            audit: AuditMetrics::register(&registry),
            registry,
        }
    }

    fn worker_metrics(&self) -> WorkerMetrics {
        WorkerMetrics::for_registry(&self.registry)
    }
}

/// Per-worker handles cloned into each shard's thread. Counters are
/// sharded by worker id, so the hot path never contends on a cache
/// line; histograms record once per *batch* (batch wall time and mean
/// ns/lookup at batch granularity), keeping the per-packet overhead at
/// a fraction of an atomic op.
#[derive(Clone)]
pub(crate) struct WorkerMetrics {
    lookups: Counter,
    misses: Counter,
    batches: Counter,
    batch_ns: Histogram,
    lookup_ns: Histogram,
}

impl WorkerMetrics {
    /// Binds the standard worker metric names against `registry`; the
    /// sharded service reuses the exact `vr_service_*` names so
    /// dashboards and the bench read one vocabulary.
    pub(crate) fn for_registry(registry: &MetricsRegistry) -> Self {
        Self {
            lookups: registry.counter("vr_service_lookups_total"),
            misses: registry.counter("vr_service_misses_total"),
            batches: registry.counter("vr_service_batches_total"),
            batch_ns: registry.histogram("vr_service_batch_ns"),
            lookup_ns: registry.histogram("vr_service_lookup_ns"),
        }
    }

    pub(crate) fn observe_batch(&self, worker: usize, results: &[Option<NextHop>], elapsed_ns: u64) {
        let n = results.len() as u64;
        self.lookups.add(worker, n);
        self.misses
            .add(worker, results.iter().filter(|nh| nh.is_none()).count() as u64);
        self.batches.inc(worker);
        self.batch_ns.record(elapsed_ns);
        self.lookup_ns.record(elapsed_ns / n.max(1));
    }
}

/// Per-worker handles for the LPM result-cache counters, cloned into
/// each worker/shard thread alongside [`WorkerMetrics`]. The worker
/// flushes its cache's stat delta once per batch — a few sharded
/// `add`s, never per packet. The hit-rate gauge is set from the
/// worker's *cumulative* stats in per-mille; workers overwrite each
/// other, but under steady traffic every worker converges on the same
/// rate, so the gauge reads as the service-wide figure.
#[derive(Clone)]
pub(crate) struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    fills: Counter,
    hit_rate_permille: Gauge,
}

impl CacheMetrics {
    /// Binds the cache metric names against `registry`; the sharded
    /// service reuses the same `vr_cache_*` vocabulary.
    pub(crate) fn for_registry(registry: &MetricsRegistry) -> Self {
        Self {
            hits: registry.counter("vr_cache_hits_total"),
            misses: registry.counter("vr_cache_misses_total"),
            fills: registry.counter("vr_cache_fills_total"),
            hit_rate_permille: registry.gauge("vr_cache_hit_rate_permille"),
        }
    }

    pub(crate) fn observe(&self, worker: usize, delta: CacheStats, cumulative: CacheStats) {
        if delta.hits == 0 && delta.misses == 0 && delta.fills == 0 {
            return;
        }
        self.hits.add(worker, delta.hits);
        self.misses.add(worker, delta.misses);
        self.fills.add(worker, delta.fills);
        let probes = cumulative.hits + cumulative.misses;
        if let Some(permille) = (cumulative.hits * 1000).checked_div(probes) {
            self.hit_rate_permille.set(permille);
        }
    }
}

struct Worker {
    /// `None` once the shard has been disconnected during shutdown.
    job_tx: Option<SpscSender<Job>>,
    done_rx: SpscReceiver<CompletedBatch>,
    handle: Option<JoinHandle<()>>,
}

/// Aggregated service counters, serializable for experiment reports.
///
/// `Deserialize` is hand-written so artifacts produced before the
/// telemetry fields existed (`generation_min`, `generation_max`,
/// `audit_rejections`) still parse — missing fields default to zero.
/// `generations_seen` is retained as the legacy alias of the
/// generations-observed span.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServiceReport {
    /// Worker threads the service ran with.
    pub workers: usize,
    /// Batch width in effect (post-sweep).
    pub batch_width: usize,
    /// Lookups resolved.
    pub lookups: u64,
    /// Lookups that matched no route.
    pub misses: u64,
    /// Batches completed.
    pub batches: u64,
    /// Tables published over the service's lifetime (generation swaps).
    pub swaps: u64,
    /// Distinct snapshot generations batches were observed resolving
    /// against, sorted ascending.
    pub generations_seen: Vec<u64>,
    /// Histogram of per-lookup worker latency: bucket `i` counts batches
    /// whose mean ns/lookup fell in `[2^i, 2^(i+1))`.
    pub latency_histogram_ns: Vec<u64>,
    /// Total worker-side busy time across all batches, in nanoseconds.
    pub busy_ns: u64,
    /// Lowest snapshot generation any collected batch resolved against.
    pub generation_min: u64,
    /// Highest snapshot generation any collected batch resolved against.
    pub generation_max: u64,
    /// Publishes rejected by the structural audit gate. With telemetry
    /// enabled this is read back from the registry's
    /// `vr_service_audit_rejections_total` counter rather than threaded
    /// by hand.
    pub audit_rejections: u64,
    /// Route updates applied through [`LookupService::apply_updates`].
    pub updates_applied: u64,
    /// Publishes that went through the incremental dirty-bucket patch
    /// path.
    pub incremental_publishes: u64,
    /// Publishes that rebuilt the whole structure: the
    /// [`ServiceConfig::full_rebuild`] baseline plus dirty-threshold
    /// fallbacks of the incremental path.
    pub full_rebuilds: u64,
}

impl<'de> Deserialize<'de> for ServiceReport {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        fn field_or_default<'de, T, E>(
            map: &mut Vec<(String, serde::Value)>,
            field: &str,
        ) -> Result<T, E>
        where
            T: Deserialize<'de> + Default,
            E: serde::de::Error,
        {
            match map.iter().position(|(k, _)| k == field) {
                Some(idx) => serde::de::from_value(map.swap_remove(idx).1),
                None => Ok(T::default()),
            }
        }
        let mut map =
            serde::__priv::expect_map::<D::Error>(deserializer.take_value()?, "ServiceReport")?;
        let ty = "ServiceReport";
        Ok(Self {
            workers: serde::__priv::take_field(&mut map, ty, "workers")?,
            batch_width: serde::__priv::take_field(&mut map, ty, "batch_width")?,
            lookups: serde::__priv::take_field(&mut map, ty, "lookups")?,
            misses: serde::__priv::take_field(&mut map, ty, "misses")?,
            batches: serde::__priv::take_field(&mut map, ty, "batches")?,
            swaps: serde::__priv::take_field(&mut map, ty, "swaps")?,
            generations_seen: serde::__priv::take_field(&mut map, ty, "generations_seen")?,
            latency_histogram_ns: serde::__priv::take_field(&mut map, ty, "latency_histogram_ns")?,
            busy_ns: serde::__priv::take_field(&mut map, ty, "busy_ns")?,
            generation_min: field_or_default(&mut map, "generation_min")?,
            generation_max: field_or_default(&mut map, "generation_max")?,
            audit_rejections: field_or_default(&mut map, "audit_rejections")?,
            updates_applied: field_or_default(&mut map, "updates_applied")?,
            incremental_publishes: field_or_default(&mut map, "incremental_publishes")?,
            full_rebuilds: field_or_default(&mut map, "full_rebuilds")?,
        })
    }
}

impl ServiceReport {
    fn new(workers: usize, batch_width: usize) -> Self {
        Self {
            workers,
            batch_width,
            latency_histogram_ns: vec![0; 32],
            ..Self::default()
        }
    }

    fn observe(&mut self, done: &CompletedBatch) {
        let n = done.results.len() as u64;
        self.lookups += n;
        self.misses += done.results.iter().filter(|nh| nh.is_none()).count() as u64;
        self.batches += 1;
        if let Some(per_lookup) = done.elapsed_ns.checked_div(n) {
            let bucket = (63 - u64::leading_zeros(per_lookup.max(1))).min(31) as usize;
            self.latency_histogram_ns[bucket] += 1;
        }
        self.busy_ns += done.elapsed_ns;
        if let Err(pos) = self.generations_seen.binary_search(&done.generation) {
            self.generations_seen.insert(pos, done.generation);
        }
        self.generation_min = self.generations_seen.first().copied().unwrap_or(0);
        self.generation_max = self.generations_seen.last().copied().unwrap_or(0);
    }

    /// Mean worker-side ns per lookup (0 when nothing ran).
    #[must_use]
    pub fn mean_ns_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.lookups as f64
    }
}

/// The incremental update plant: the live [`MergedTrie`] and its
/// per-/16-bucket [`JumpSlabs`] decomposition, kept in lockstep with the
/// mirrored tables. Dropped (and lazily rebuilt) whenever the tables are
/// replaced wholesale via [`LookupService::publish_tables`].
struct IncrementalPlant {
    merged: MergedTrie,
    slabs: JumpSlabs,
}

/// Per-call bookkeeping entry of [`LookupService::apply_updates`]: which
/// generation the batch published and through which path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct UpdateRecord {
    /// Generation the batch published.
    pub generation: u64,
    /// Updates in the batch (pre-coalescing — the service applies what
    /// it is given).
    pub updates: usize,
    /// True when the publish went through the dirty-bucket patch path.
    pub incremental: bool,
    /// Buckets the batch dirtied (0 on the full-rebuild baseline path).
    pub dirty_buckets: usize,
}

/// Resolves a possibly mixed-VN batch against one trie, preserving
/// per-packet output positions. Uniform-VN batches (the common case —
/// the dispatcher shards by flow) take the direct stage-lockstep path;
/// mixed batches are grouped per VN and scattered back. Public so the
/// bench can measure it as the uncached baseline the result cache is
/// compared against.
pub fn lookup_batch_mixed(
    trie: &JumpTrie,
    packets: &[(VnId, u32)],
    out: &mut [Option<NextHop>],
) {
    debug_assert_eq!(packets.len(), out.len());
    let Some(&(first_vn, _)) = packets.first() else {
        return;
    };
    if packets.iter().all(|&(vn, _)| vn == first_vn) {
        let dsts: Vec<u32> = packets.iter().map(|&(_, d)| d).collect();
        trie.lookup_batch_vn(usize::from(first_vn), &dsts, out);
        return;
    }
    // Group lanes by VN; K ≤ 64 so a flat scan of small groups is fine.
    let mut groups: Vec<(VnId, Vec<u32>, Vec<u32>)> = Vec::new();
    for (i, &(vn, dst)) in packets.iter().enumerate() {
        let group = match groups.iter_mut().find(|(v, _, _)| *v == vn) {
            Some(g) => g,
            None => {
                groups.push((vn, Vec::new(), Vec::new()));
                groups.last_mut().expect("just pushed")
            }
        };
        group.1.push(dst);
        group.2.push(u32::try_from(i).expect("batch too large"));
    }
    let mut scratch: Vec<Option<NextHop>> = Vec::new();
    for (vn, dsts, idxs) in &groups {
        scratch.clear();
        scratch.resize(dsts.len(), None);
        trie.lookup_batch_vn(usize::from(*vn), dsts, &mut scratch);
        for (&idx, &nh) in idxs.iter().zip(scratch.iter()) {
            out[idx as usize] = nh;
        }
    }
}

/// Measures each candidate width against the trie and returns the one
/// with the lowest ns/lookup. Cheap (one pass per candidate) and run
/// once at service construction.
#[must_use]
pub fn tune_batch_width(trie: &JumpTrie, probes: &[u32], candidates: &[usize]) -> usize {
    assert!(!candidates.is_empty(), "need at least one candidate width");
    if probes.is_empty() {
        return candidates[0];
    }
    let mut best = (candidates[0], f64::INFINITY);
    let mut out = vec![None; probes.len()];
    for &width in candidates {
        // One untimed pass warms the slabs so the first candidate is not
        // penalized for faulting pages in.
        for chunk_start in (0..probes.len()).step_by(width) {
            let chunk = &probes[chunk_start..(chunk_start + width).min(probes.len())];
            trie.lookup_batch(chunk, &mut out[..chunk.len()]);
        }
        let watch = Stopwatch::start();
        for chunk_start in (0..probes.len()).step_by(width) {
            let chunk = &probes[chunk_start..(chunk_start + width).min(probes.len())];
            trie.lookup_batch(chunk, &mut out[..chunk.len()]);
        }
        let ns = watch.elapsed_ns() as f64 / probes.len() as f64;
        if ns < best.1 {
            best = (width, ns);
        }
    }
    best.0
}

/// N-shard concurrent lookup service over an immutable, atomically
/// swappable [`JumpTrie`].
///
/// ```
/// use vr_engine::service::{LookupService, ServiceConfig};
/// use vr_net::RoutingTable;
///
/// let table: RoutingTable = "10.0.0.0/8 1\n10.1.1.0/24 2\n".parse().unwrap();
/// let cfg = ServiceConfig { workers: 2, ..ServiceConfig::default() };
/// let mut service = LookupService::new(vec![table], cfg).unwrap();
///
/// let packets = vec![(0, 0x0A01_0103), (0, 0x0A02_0000), (0, 0x0B00_0000)];
/// assert_eq!(service.process(&packets), vec![Some(2), Some(1), None]);
///
/// // Publish a route change: in-flight lookups keep their snapshot.
/// let updated: RoutingTable = "10.0.0.0/8 5\n".parse().unwrap();
/// service.publish_tables(vec![updated]).unwrap();
/// assert_eq!(service.process(&[(0, 0x0A01_0103)]), vec![Some(5)]);
/// let report = service.shutdown();
/// assert_eq!(report.swaps, 1);
/// ```
pub struct LookupService {
    current: Publish<TableSnapshot>,
    /// Control-plane mirror of the per-VN tables, fed by
    /// [`apply_updates`](Self::apply_updates).
    tables: Vec<RoutingTable>,
    workers: Vec<Worker>,
    batch_width: usize,
    next_seq: u64,
    /// Batches submitted but not yet collected, per worker.
    in_flight: Vec<u64>,
    report: ServiceReport,
    /// `None` when [`ServiceConfig::telemetry`] is off.
    telemetry: Option<ServiceTelemetry>,
    /// `None` when [`ServiceConfig::trace_sample`] is off.
    tracer: Option<Tracer>,
    /// Route updates clone-and-rebuild instead of patching sub-slabs.
    full_rebuild: bool,
    /// Dirty-bucket fallback threshold of the incremental path.
    dirty_threshold: usize,
    /// Lazily materialized incremental update state.
    plant: Option<IncrementalPlant>,
    /// One entry per `apply_updates` call, oldest first.
    update_log: Vec<UpdateRecord>,
}

impl LookupService {
    /// Builds the jump trie and spawns the worker shards.
    ///
    /// # Errors
    /// Rejects an empty table set, zero workers, and merge failures
    /// (more than 64 virtual networks).
    pub fn new(tables: Vec<RoutingTable>, cfg: ServiceConfig) -> Result<Self, EngineError> {
        if tables.is_empty() {
            return Err(EngineError::InvalidParameter("need at least one table"));
        }
        if cfg.workers == 0 {
            return Err(EngineError::InvalidParameter("need at least one worker"));
        }
        if cfg.lookup_cache == Some(0) {
            return Err(EngineError::InvalidParameter(
                "cache capacity must be at least 1 slot",
            ));
        }
        if cfg.trace_sample == Some(0) {
            return Err(EngineError::InvalidParameter(
                "trace sample rate must be at least 1",
            ));
        }
        let telemetry = cfg.telemetry.then(|| ServiceTelemetry::new(cfg.workers));
        let tracer = cfg
            .trace_sample
            .map(|sample| Tracer::new(sample, DEFAULT_TRACE_CAPACITY));
        let trie = Self::build_trie(&tables)?;
        Self::audit_snapshot(&trie, telemetry.as_ref().map(|t| &t.audit))?;
        let batch_width = match cfg.batch_width {
            Some(0) => {
                return Err(EngineError::InvalidParameter("batch width must be positive"))
            }
            Some(w) => w,
            None => {
                let probes: Vec<u32> = tables
                    .iter()
                    .flat_map(|t| t.prefixes().map(|p| p.addr() | 0x7F))
                    .take(4096)
                    .collect();
                let width = tune_batch_width(&trie, &probes, &BATCH_WIDTH_CANDIDATES);
                if let Some(t) = &telemetry {
                    t.registry.events().publish(EventKind::BatchRetune {
                        width: width as u64,
                    });
                }
                width
            }
        };
        if let Some(t) = &telemetry {
            t.batch_width.set(batch_width as u64);
            t.generation.set(0);
        }
        let current = Publish::new(TableSnapshot {
            trie,
            generation: 0,
        });
        let workers = (0..cfg.workers)
            .map(|id| {
                Self::spawn_worker(
                    id,
                    &current,
                    cfg.queue_depth,
                    telemetry.as_ref().map(ServiceTelemetry::worker_metrics),
                    cfg.lookup_cache,
                    telemetry
                        .as_ref()
                        .map(|t| CacheMetrics::for_registry(&t.registry)),
                    tracer.clone(),
                )
            })
            .collect();
        Ok(Self {
            current,
            tables,
            workers,
            batch_width,
            next_seq: 0,
            in_flight: vec![0; cfg.workers],
            report: ServiceReport::new(cfg.workers, batch_width),
            telemetry,
            tracer,
            full_rebuild: cfg.full_rebuild,
            dirty_threshold: cfg.dirty_rebuild_threshold,
            plant: None,
            update_log: Vec::new(),
        })
    }

    pub(crate) fn build_trie(tables: &[RoutingTable]) -> Result<JumpTrie, EngineError> {
        if tables.len() == 1 {
            Ok(JumpTrie::from_table(&tables[0]))
        } else {
            Ok(JumpTrie::from_merged(
                &MergedTrie::from_tables(tables)?.leaf_pushed(),
            ))
        }
    }

    /// Structural audit gate for candidate snapshots: active in debug
    /// builds and under the `audit-on-publish` feature, a no-op otherwise.
    /// With `metrics` attached, each run's duration and violation count
    /// land in the registry (`vr_audit_*`).
    #[cfg(any(debug_assertions, feature = "audit-on-publish"))]
    pub(crate) fn audit_snapshot(
        trie: &JumpTrie,
        metrics: Option<&AuditMetrics>,
    ) -> Result<(), EngineError> {
        let watch = Stopwatch::start();
        let report = vr_audit::audit_jump(trie);
        if let Some(m) = metrics {
            m.observe(&report, watch.elapsed_ns());
        }
        if report.is_clean() {
            Ok(())
        } else {
            Err(EngineError::AuditRejected(report.summary()))
        }
    }

    #[cfg(not(any(debug_assertions, feature = "audit-on-publish")))]
    #[allow(clippy::unnecessary_wraps)]
    pub(crate) fn audit_snapshot(
        _trie: &JumpTrie,
        _metrics: Option<&AuditMetrics>,
    ) -> Result<(), EngineError> {
        Ok(())
    }

    fn spawn_worker(
        id: usize,
        current: &Publish<TableSnapshot>,
        queue_depth: usize,
        metrics: Option<WorkerMetrics>,
        cache_slots: Option<usize>,
        cache_metrics: Option<CacheMetrics>,
        tracer: Option<Tracer>,
    ) -> Worker {
        let (job_tx, job_rx) = spsc_bounded::<Job>(queue_depth);
        // Results must never backpressure the submitter: a bounded done
        // queue would let a worker block mid-send while the dispatcher is
        // still fanning out jobs — a submit/drain deadlock.
        let (done_tx, done_rx) = spsc_unbounded::<CompletedBatch>();
        let current = current.clone();
        let handle = std::thread::spawn(move || {
            // Worker-private result cache (capacity validated in `new`);
            // nothing about it is shared, so probes and fills are plain
            // loads and stores.
            let mut cache = cache_slots.and_then(|slots| LpmCache::new(slots).ok());
            while let Ok(mut job) = job_rx.recv() {
                // Close the queue-residency span the moment the job is
                // picked up (sampled batches only).
                if let Some(tb) = job.trace.as_mut() {
                    tb.mark(Stage::Dequeue);
                }
                // RCU read-side critical section: pin the snapshot with
                // one refcount bump; the slot is never held across the
                // lookups themselves.
                let snapshot: SyncArc<TableSnapshot> = current.read();
                let watch = Stopwatch::start();
                let mut results = vec![None; job.packets.len()];
                match cache.as_mut() {
                    // Cached path: probe, batch-walk only the misses,
                    // scatter + fill. The snapshot's generation doubles
                    // as the slot tag, so a publish that happened since
                    // the last batch invalidates every slot for free.
                    Some(c) => match job.trace.as_mut() {
                        Some(tb) => c.lookup_batch_traced(
                            &snapshot.trie,
                            snapshot.generation,
                            &job.packets,
                            &mut results,
                            tb,
                        ),
                        None => c.lookup_batch(
                            &snapshot.trie,
                            snapshot.generation,
                            &job.packets,
                            &mut results,
                        ),
                    },
                    None => {
                        lookup_batch_mixed(&snapshot.trie, &job.packets, &mut results);
                        if let Some(tb) = job.trace.as_mut() {
                            tb.mark(Stage::LaneWalk);
                        }
                    }
                }
                let elapsed_ns = watch.elapsed_ns();
                if let Some(m) = &metrics {
                    m.observe_batch(id, &results, elapsed_ns);
                }
                if let (Some(c), Some(cm)) = (cache.as_mut(), &cache_metrics) {
                    cm.observe(id, c.take_delta(), c.stats());
                }
                if let (Some(mut tb), Some(tr)) = (job.trace.take(), tracer.as_ref()) {
                    tb.set_worker(id as u64);
                    tb.set_generation(snapshot.generation);
                    tb.mark(Stage::Complete);
                    tr.record(tb.finish());
                }
                let done = CompletedBatch {
                    seq: job.seq,
                    results,
                    generation: snapshot.generation,
                    elapsed_ns,
                    worker: id,
                };
                if done_tx.send(done).is_err() {
                    break; // service dropped the receiving half
                }
            }
        });
        Worker {
            job_tx: Some(job_tx),
            done_rx,
            handle: Some(handle),
        }
    }

    /// Worker shard count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Batch width in effect (configured or sweep-selected).
    #[must_use]
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    /// Generation of the currently published snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.current.peek(|s| s.generation)
    }

    /// The control-plane view of the per-VN tables.
    #[must_use]
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// Enqueues one batch on the next shard (round-robin) and returns its
    /// sequence number. Blocks only when that shard's queue is full; the
    /// stall is counted (`vr_service_queue_stalls_total`) and ringed as a
    /// [`EventKind::WorkerStall`] before the blocking send, so
    /// backpressure is observable while it is happening.
    pub fn submit(&mut self, packets: Vec<(VnId, u32)>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let worker = (seq % self.workers.len() as u64) as usize;
        self.in_flight[worker] += 1;
        // Sampled batches get a trace builder; the enqueue span closes
        // just before the send, so a blocking (backpressured) send shows
        // up as queue residency in the dequeue span.
        let mut trace = self
            .tracer
            .as_ref()
            .filter(|tr| tr.should_sample(seq))
            .map(|tr| tr.begin(seq, packets.len()));
        if let Some(tb) = trace.as_mut() {
            tb.mark(Stage::Enqueue);
        }
        let tx = self.workers[worker]
            .job_tx
            .as_ref()
            .expect("submit after shutdown");
        let blocked = match tx.try_send(Job { seq, packets, trace }) {
            Ok(()) => None,
            Err(TrySendError::Full(job)) => {
                if let Some(t) = &self.telemetry {
                    t.queue_stalls.inc(worker);
                    t.registry.events().publish(EventKind::WorkerStall {
                        worker: worker as u64,
                    });
                }
                Some(job)
            }
            // Let the blocking send below surface the disconnect.
            Err(TrySendError::Disconnected(job)) => Some(job),
        };
        if let Some(job) = blocked {
            tx.send(job)
                .expect("worker thread alive while service exists");
        }
        seq
    }

    /// Waits for every submitted batch, aggregates counters, and returns
    /// the batches sorted by submission sequence. Updates the
    /// `vr_service_generation_lag` gauge to the widest gap between the
    /// published generation and a collected batch's pinned generation —
    /// the software analogue of table-reload latency: how far behind the
    /// freshest table the datapath was still serving.
    pub fn collect_all(&mut self) -> Vec<CompletedBatch> {
        let published = self.current.peek(|s| s.generation);
        let mut max_lag = 0u64;
        let mut done: Vec<CompletedBatch> = Vec::new();
        for (worker, pending) in self.in_flight.iter_mut().enumerate() {
            while *pending > 0 {
                let batch = self.workers[worker]
                    .done_rx
                    .recv()
                    .expect("worker thread alive while service exists");
                self.report.observe(&batch);
                max_lag = max_lag.max(published.saturating_sub(batch.generation));
                done.push(batch);
                *pending -= 1;
            }
        }
        if let Some(t) = &self.telemetry {
            if !done.is_empty() {
                t.generation_lag.set(max_lag);
            }
        }
        done.sort_by_key(|b| b.seq);
        done
    }

    /// Resolves a packet stream end to end: shards it into batches of the
    /// service width, fans them out, and returns per-packet results in
    /// input order.
    pub fn process(&mut self, packets: &[(VnId, u32)]) -> Vec<Option<NextHop>> {
        let first_seq = self.next_seq;
        for chunk in packets.chunks(self.batch_width) {
            self.submit(chunk.to_vec());
        }
        let mut out = Vec::with_capacity(packets.len());
        for batch in self.collect_all() {
            debug_assert!(batch.seq >= first_seq, "stale batch left uncollected");
            out.extend(batch.results);
        }
        out
    }

    /// Publishes a fresh snapshot built from `tables`, replacing the
    /// control-plane mirror. The build runs outside the swap lock;
    /// in-flight batches finish on their pinned snapshot. Returns the new
    /// generation.
    ///
    /// # Errors
    /// Propagates trie construction failures (the live table is untouched
    /// on error). The VN count must not change — workers' batches carry
    /// VN ids that must stay valid across swaps.
    pub fn publish_tables(&mut self, tables: Vec<RoutingTable>) -> Result<u64, EngineError> {
        if tables.len() != self.tables.len() {
            return Err(EngineError::InvalidParameter(
                "table count must not change across a swap",
            ));
        }
        let trie = Self::build_trie(&tables)?;
        self.tables = tables;
        // The wholesale replacement invalidates the incremental plant; it
        // is rebuilt lazily on the next incremental update or α read.
        self.plant = None;
        self.publish_trie(trie)
    }

    /// Atomically swaps in an already-built trie (the RCU write side) and
    /// returns the new generation.
    ///
    /// # Errors
    /// In audited builds (debug, or release with `audit-on-publish`),
    /// rejects a structurally invalid trie with
    /// [`EngineError::AuditRejected`]; the live snapshot is untouched.
    pub fn publish_trie(&mut self, trie: JumpTrie) -> Result<u64, EngineError> {
        // Guard-style span: audit + swap both land in vr_service_publish_ns
        // (recorded on every exit path, including the rejection return).
        let _span = self
            .telemetry
            .as_ref()
            .map(|t| t.registry.span("vr_service_publish_ns"));
        let trace_start = self.tracer.as_ref().map(Tracer::now_ns);
        if let Err(err) = Self::audit_snapshot(&trie, self.telemetry.as_ref().map(|t| &t.audit)) {
            if let Some(t) = &self.telemetry {
                t.audit_rejections.inc(0);
                let generation = self.current.peek(|s| s.generation) + 1;
                t.registry
                    .events()
                    .publish(EventKind::AuditRejected { generation });
                // Report field sourced from the registry, per contract.
                self.report.audit_rejections = t.audit_rejections.value();
            } else {
                self.report.audit_rejections += 1;
            }
            return Err(err);
        }
        // Read-modify-publish in one critical section: the new generation
        // is derived from the outgoing snapshot atomically with the swap.
        let generation = self.current.update(|cur| {
            let generation = cur.generation + 1;
            (SyncArc::new(TableSnapshot { trie, generation }), generation)
        });
        self.report.swaps += 1;
        if let Some(t) = &self.telemetry {
            t.swaps.inc(0);
            t.generation.set(generation);
            t.registry
                .events()
                .publish(EventKind::GenerationSwap { generation });
        }
        if let (Some(tr), Some(start)) = (self.tracer.as_ref(), trace_start) {
            tr.record_span(Stage::Publish, start, generation);
        }
        Ok(generation)
    }

    /// Applies a route-update stream (`vr_net::update`) to the mirrored
    /// tables and publishes a fresh snapshot — announce/withdraw never
    /// stalls in-flight lookups. Returns the new generation.
    ///
    /// Updates are applied in slice order, so a batch carrying several
    /// updates for the same (VN, prefix) resolves last-writer-wins (the
    /// `vr-control` coalescer enforces this deterministically upstream).
    /// By default the batch goes through the incremental path: deltas
    /// land in the live [`MergedTrie`], only the dirty /16 buckets are
    /// re-derived, and the publishable [`JumpTrie`] is assembled by a
    /// straight copy. Past [`ServiceConfig::dirty_rebuild_threshold`]
    /// dirty buckets every sub-slab is re-derived in one pass; with
    /// [`ServiceConfig::full_rebuild`] set the legacy clone-and-rebuild
    /// baseline runs instead. If the audit gate rejects the assembled
    /// snapshot, the batch is rolled back and the mirrored tables, the
    /// plant, and the live generation are all left untouched.
    ///
    /// # Errors
    /// Rejects updates addressing a VN the service does not host (checked
    /// up front — nothing is applied), and propagates
    /// [`EngineError::AuditRejected`] from the publish gate.
    pub fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<u64, EngineError> {
        let watch = Stopwatch::start();
        let trace_start = self.tracer.as_ref().map(Tracer::now_ns);
        for update in updates {
            if usize::from(update.vnid()) >= self.tables.len() {
                return Err(EngineError::InvalidParameter("update for unknown VN"));
            }
        }
        let (generation, dirty, patched) = if self.full_rebuild {
            (self.apply_updates_full(updates)?, 0, false)
        } else {
            self.apply_updates_incremental(updates)?
        };
        self.report.updates_applied += updates.len() as u64;
        if patched {
            self.report.incremental_publishes += 1;
        } else {
            self.report.full_rebuilds += 1;
        }
        self.update_log.push(UpdateRecord {
            generation,
            updates: updates.len(),
            incremental: patched,
            dirty_buckets: dirty,
        });
        if let Some(t) = &self.telemetry {
            t.updates.add(0, updates.len() as u64);
            if patched {
                t.incremental_publishes.inc(0);
            } else {
                t.full_rebuilds.inc(0);
            }
            t.dirty_buckets.set(dirty as u64);
            t.update_ns.record(watch.elapsed_ns());
        }
        if let (Some(tr), Some(start)) = (self.tracer.as_ref(), trace_start) {
            tr.record_span(Stage::ApplyUpdates, start, generation);
        }
        Ok(generation)
    }

    /// Legacy baseline: clone the table family, apply the batch, rebuild
    /// everything. Kept behind [`ServiceConfig::full_rebuild`] for A/B
    /// benchmarking and as the semantics oracle of the incremental path.
    fn apply_updates_full(&mut self, updates: &[RouteUpdate]) -> Result<u64, EngineError> {
        // Sanctioned full-rebuild fallback — the one clone of the table
        // family the `no-tables-clone` lint permits in this file.
        let mut staged = self.tables.clone();
        for update in updates {
            match *update {
                RouteUpdate::Announce {
                    vnid,
                    prefix,
                    next_hop,
                } => {
                    staged[usize::from(vnid)].insert(prefix, next_hop);
                }
                RouteUpdate::Withdraw { vnid, prefix } => {
                    staged[usize::from(vnid)].remove(&prefix);
                }
            }
        }
        self.publish_tables(staged)
    }

    /// Incremental path: delta-apply to the merged trie, patch dirty
    /// buckets (or re-derive all sub-slabs past the threshold), assemble,
    /// publish. Returns `(generation, dirty buckets, patched?)`; on a
    /// publish rejection the deltas are rolled back in reverse order.
    fn apply_updates_incremental(
        &mut self,
        updates: &[RouteUpdate],
    ) -> Result<(u64, usize, bool), EngineError> {
        self.ensure_plant()?;
        let Some(mut plant) = self.plant.take() else {
            return Err(EngineError::InvalidParameter("incremental plant missing"));
        };
        let mut dirty = DirtyBuckets::new();
        // Undo log: pre-update next hop per (VN, prefix), in apply order.
        let mut applied: Vec<(usize, Ipv4Prefix, Option<NextHop>)> =
            Vec::with_capacity(updates.len());
        for update in updates {
            match *update {
                RouteUpdate::Announce {
                    vnid,
                    prefix,
                    next_hop,
                } => {
                    let vn = usize::from(vnid);
                    let prev = plant.merged.insert(vn, prefix, next_hop);
                    self.tables[vn].insert(prefix, next_hop);
                    applied.push((vn, prefix, prev));
                    dirty.mark_prefix(&prefix);
                }
                RouteUpdate::Withdraw { vnid, prefix } => {
                    let vn = usize::from(vnid);
                    let prev = plant.merged.remove(vn, &prefix);
                    self.tables[vn].remove(&prefix);
                    applied.push((vn, prefix, prev));
                    dirty.mark_prefix(&prefix);
                }
            }
        }
        let patched = dirty.len() <= self.dirty_threshold;
        if patched {
            for bucket in dirty.iter() {
                plant.slabs.rebuild_bucket(&plant.merged, bucket);
            }
        } else {
            plant.slabs = JumpSlabs::from_merged(&plant.merged);
        }
        let trie = plant.slabs.assemble();
        match self.publish_trie(trie) {
            Ok(generation) => {
                self.plant = Some(plant);
                Ok((generation, dirty.len(), patched))
            }
            Err(err) => {
                // Restore tables and merged trie to the pre-batch state
                // (reverse order handles repeated keys), then re-derive
                // the touched buckets so the plant matches again.
                for (vn, prefix, prev) in applied.into_iter().rev() {
                    match prev {
                        Some(nh) => {
                            plant.merged.insert(vn, prefix, nh);
                            self.tables[vn].insert(prefix, nh);
                        }
                        None => {
                            plant.merged.remove(vn, &prefix);
                            self.tables[vn].remove(&prefix);
                        }
                    }
                }
                for bucket in dirty.iter() {
                    plant.slabs.rebuild_bucket(&plant.merged, bucket);
                }
                self.plant = Some(plant);
                Err(err)
            }
        }
    }

    /// Materializes the incremental plant from the mirrored tables if it
    /// is not already live.
    fn ensure_plant(&mut self) -> Result<(), EngineError> {
        if self.plant.is_none() {
            let merged = MergedTrie::from_tables(&self.tables)?;
            let slabs = JumpSlabs::from_merged(&merged);
            self.plant = Some(IncrementalPlant { merged, slabs });
        }
        Ok(())
    }

    /// Rebuilds the canonical merged structure from the mirrored tables,
    /// publishes it, and replaces the incremental plant — the re-merge
    /// endpoint `vr-control` triggers on α drift. Returns the new
    /// generation; on rejection the old plant and generation stay live.
    ///
    /// # Errors
    /// Propagates merge failures and audit rejections.
    pub fn remerge_publish(&mut self) -> Result<u64, EngineError> {
        let merged = MergedTrie::from_tables(&self.tables)?;
        let slabs = JumpSlabs::from_merged(&merged);
        let trie = slabs.assemble();
        let generation = self.publish_trie(trie)?;
        self.plant = Some(IncrementalPlant { merged, slabs });
        Ok(generation)
    }

    /// Measured merging efficiency α of the live table family, O(1) when
    /// the incremental plant is warm (it is materialized on first use).
    ///
    /// # Errors
    /// Propagates merge failures when the plant must be (re)built.
    pub fn alpha(&mut self) -> Result<f64, EngineError> {
        self.ensure_plant()?;
        Ok(self
            .plant
            .as_ref()
            .map_or(0.0, |p| p.merged.merging_efficiency()))
    }

    /// The currently published snapshot (one refcount bump) — lets the
    /// control plane size the live structure without re-building it.
    #[must_use]
    pub fn snapshot(&self) -> SyncArc<TableSnapshot> {
        self.current.read()
    }

    /// Per-call bookkeeping of [`LookupService::apply_updates`], oldest
    /// first: which generation each batch published and via which path.
    #[must_use]
    pub fn update_log(&self) -> &[UpdateRecord] {
        &self.update_log
    }

    /// Counters aggregated from every batch collected so far.
    #[must_use]
    pub fn report(&self) -> &ServiceReport {
        &self.report
    }

    /// The live metrics registry, when the service was configured with
    /// [`ServiceConfig::telemetry`]. Clone the `Arc` to scrape from
    /// another thread while the service keeps running.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// The live batch tracer, when the service was configured with
    /// [`ServiceConfig::trace_sample`]. Clone it to read completed
    /// traces (or export them over the vr-obs HTTP plane) from another
    /// thread while the service keeps running.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Captures a [`TelemetrySnapshot`] of every registered metric plus
    /// the event ring; `None` with telemetry off.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.as_ref().map(|t| t.registry.snapshot())
    }

    /// Drains outstanding batches, stops the workers, and returns the
    /// final report.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceReport {
        let _ = self.collect_all();
        for worker in &mut self.workers {
            // Dropping the sender disconnects the shard's FIFO; the
            // worker exits its recv loop.
            drop(worker.job_tx.take());
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
        std::mem::take(&mut self.report)
    }
}

impl std::fmt::Debug for LookupService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupService")
            .field("workers", &self.workers.len())
            .field("batch_width", &self.batch_width)
            .field("generation", &self.generation())
            .field("tables", &self.tables.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;

    fn table(text: &str) -> RoutingTable {
        text.parse().unwrap()
    }

    fn small_cfg(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            batch_width: Some(16),
            queue_depth: 8,
            telemetry: true,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn resolves_like_the_oracle_across_shards() {
        let t = TableSpec::paper_worst_case(21).generate().unwrap();
        let packets: Vec<(VnId, u32)> = t
            .prefixes()
            .flat_map(|p| [(0, p.addr()), (0, p.addr() | 0xFF)])
            .collect();
        for workers in [1, 2, 4] {
            let mut service = LookupService::new(vec![t.clone()], small_cfg(workers)).unwrap();
            let results = service.process(&packets);
            assert_eq!(results.len(), packets.len());
            for (&(_, dst), nh) in packets.iter().zip(&results) {
                assert_eq!(*nh, t.lookup(dst), "dst {dst:#010x}");
            }
            let report = service.shutdown();
            assert_eq!(report.lookups, packets.len() as u64);
            assert_eq!(report.generations_seen, vec![0]);
            assert_eq!(report.workers, workers);
        }
    }

    #[test]
    fn serves_merged_vns_and_mixed_batches() {
        let tables = vec![
            table("10.0.0.0/8 1\n10.1.1.0/24 2\n"),
            table("10.0.0.0/8 7\n172.16.0.0/12 8\n"),
        ];
        let mut service = LookupService::new(tables.clone(), small_cfg(2)).unwrap();
        // Deliberately interleave VNs inside each batch.
        let packets: Vec<(VnId, u32)> = (0..200)
            .map(|i| {
                let vn = (i % 2) as VnId;
                let dst = if i % 3 == 0 { 0x0A01_0103 } else { 0xAC10_0001 };
                (vn, dst)
            })
            .collect();
        let results = service.process(&packets);
        for (&(vn, dst), nh) in packets.iter().zip(&results) {
            assert_eq!(*nh, tables[usize::from(vn)].lookup(dst), "vn {vn} dst {dst:#010x}");
        }
        let _ = service.shutdown();
    }

    #[test]
    fn cached_service_matches_uncached_and_counts_hits() {
        let tables = vec![
            table("10.0.0.0/8 1\n10.1.0.0/16 2\n"),
            table("172.16.0.0/12 3\n"),
        ];
        let cached_cfg = ServiceConfig {
            lookup_cache: Some(512),
            ..small_cfg(2)
        };
        let mut cached = LookupService::new(tables.clone(), cached_cfg).unwrap();
        let mut plain = LookupService::new(tables, small_cfg(2)).unwrap();
        let packets: Vec<(VnId, u32)> = (0..256)
            .map(|i| {
                let vn = (i % 2) as VnId;
                let dst = if i % 4 == 0 { 0x0A01_0103 } else { 0xAC10_0001 };
                (vn, dst)
            })
            .collect();
        // Two passes: pass 2 is answered almost entirely from the cache
        // and must still be bit-identical.
        for _ in 0..2 {
            assert_eq!(cached.process(&packets), plain.process(&packets));
        }
        let snap = cached.telemetry_snapshot().unwrap();
        let hits = snap.counter("vr_cache_hits_total").unwrap_or(0);
        let misses = snap.counter("vr_cache_misses_total").unwrap_or(0);
        let fills = snap.counter("vr_cache_fills_total").unwrap_or(0);
        assert_eq!(hits + misses, 512, "every probe counted");
        assert!(hits > 0, "repeat traffic must hit");
        assert_eq!(misses, fills, "every miss walk fills its slot");
        // A publish bumps the generation; the next pass must re-walk
        // (no stale hits) yet still agree with the uncached service.
        let new_tables = vec![
            table("10.0.0.0/8 9\n10.1.0.0/16 2\n"),
            table("172.16.0.0/12 3\n"),
        ];
        cached.publish_tables(new_tables.clone()).unwrap();
        plain.publish_tables(new_tables).unwrap();
        assert_eq!(cached.process(&packets), plain.process(&packets));
        let _ = cached.shutdown();
        let _ = plain.shutdown();
    }

    #[test]
    fn traced_service_records_validating_stage_chains() {
        let tables = vec![table("10.0.0.0/8 1\n10.1.0.0/16 2\n")];
        // Sample every batch so this test is deterministic; exercise
        // both the cached and uncached worker paths.
        for cache in [None, Some(256)] {
            let cfg = ServiceConfig {
                trace_sample: Some(1),
                lookup_cache: cache,
                ..small_cfg(2)
            };
            let mut service = LookupService::new(tables.clone(), cfg).unwrap();
            let packets: Vec<(VnId, u32)> =
                (0..64u32).map(|i| (0, 0x0A01_0000 | i)).collect();
            let _ = service.process(&packets);
            let _ = service
                .apply_updates(&[RouteUpdate::Announce {
                    vnid: 0,
                    prefix: "10.2.0.0/16".parse().unwrap(),
                    next_hop: 5,
                }])
                .unwrap();
            let _ = service.process(&packets);
            let snap = service.tracer().expect("tracer on").snapshot();
            assert!(snap.recorded >= 8, "every batch sampled");
            assert_eq!(snap.sample, 1);
            for trace in &snap.traces {
                trace.validate().unwrap();
            }
            // The worker batches carry worker attribution and the
            // post-publish ones observed the bumped generation.
            assert!(snap.traces.iter().any(|t| t.worker.is_some()));
            assert!(snap
                .traces
                .iter()
                .any(|t| t.worker.is_some() && t.generation == 1));
            // Control-plane spans: the apply_updates call plus the
            // publish nested inside it.
            assert!(snap
                .traces
                .iter()
                .any(|t| t.stages[0].stage == Stage::Publish && t.generation == 1));
            assert!(snap
                .traces
                .iter()
                .any(|t| t.stages[0].stage == Stage::ApplyUpdates));
            let _ = service.shutdown();
        }
    }

    #[test]
    fn trace_sampling_is_one_in_n_and_zero_rate_is_rejected() {
        let cfg = ServiceConfig {
            trace_sample: Some(4),
            ..small_cfg(1)
        };
        let mut service = LookupService::new(vec![table("10.0.0.0/8 1\n")], cfg).unwrap();
        let packets: Vec<(VnId, u32)> = (0..16u32).map(|i| (0, 0x0A00_0000 | i)).collect();
        for _ in 0..16 {
            service.submit(packets.clone());
        }
        let _ = service.collect_all();
        let snap = service.tracer().unwrap().snapshot();
        assert_eq!(snap.recorded, 4, "every 4th of 16 batches");
        assert!(snap.traces.iter().all(|t| t.seq % 4 == 0));
        let _ = service.shutdown();

        let bad = ServiceConfig {
            trace_sample: Some(0),
            ..small_cfg(1)
        };
        assert!(LookupService::new(vec![table("10.0.0.0/8 1\n")], bad).is_err());
    }

    #[test]
    fn cache_config_rejects_zero_slots() {
        let cfg = ServiceConfig {
            lookup_cache: Some(0),
            ..small_cfg(1)
        };
        assert!(LookupService::new(vec![table("10.0.0.0/8 1\n")], cfg).is_err());
    }

    #[test]
    fn updates_swap_without_changing_vn_count() {
        let mut service =
            LookupService::new(vec![table("10.0.0.0/8 1\n")], small_cfg(2)).unwrap();
        assert_eq!(service.generation(), 0);
        let gen = service
            .apply_updates(&[
                RouteUpdate::Announce {
                    vnid: 0,
                    prefix: "10.1.1.0/24".parse().unwrap(),
                    next_hop: 9,
                },
                RouteUpdate::Withdraw {
                    vnid: 0,
                    prefix: "10.0.0.0/8".parse().unwrap(),
                },
            ])
            .unwrap();
        assert_eq!(gen, 1);
        assert_eq!(service.generation(), 1);
        assert_eq!(
            service.process(&[(0, 0x0A01_0101), (0, 0x0A02_0000)]),
            vec![Some(9), None]
        );
        // Updates for a VN we do not host are rejected, table untouched.
        assert!(service
            .apply_updates(&[RouteUpdate::Withdraw {
                vnid: 7,
                prefix: "10.1.1.0/24".parse().unwrap(),
            }])
            .is_err());
        assert_eq!(service.generation(), 1);
        let report = service.shutdown();
        assert_eq!(report.swaps, 1);
        assert!(report.generations_seen.contains(&1));
    }

    #[test]
    fn audit_gate_rejects_corrupt_trie_and_keeps_serving() {
        let t = table("10.0.0.0/8 1\n");
        let mut service = LookupService::new(vec![t], small_cfg(1)).unwrap();
        // A structurally corrupt trie: NHI slab truncated to nothing while
        // the root still points leaf entries at vector slot 1.
        let good = JumpTrie::from_table(&table("10.0.0.0/8 1\n"));
        let p = good.raw_parts();
        let corrupt = JumpTrie::from_raw_parts(
            p.root.to_vec(),
            p.words.to_vec(),
            p.level_offsets.to_vec(),
            Vec::new(),
            p.k,
        );
        let err = service.publish_trie(corrupt).unwrap_err();
        assert!(matches!(err, EngineError::AuditRejected(_)));
        assert!(err.to_string().contains("structural audit"));
        // The rejected generation never went live; lookups still resolve.
        assert_eq!(service.generation(), 0);
        assert_eq!(service.process(&[(0, 0x0A00_0001)]), vec![Some(1)]);
        let report = service.shutdown();
        assert_eq!(report.swaps, 0);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(LookupService::new(vec![], small_cfg(1)).is_err());
        let t = table("10.0.0.0/8 1\n");
        assert!(LookupService::new(vec![t.clone()], small_cfg(0)).is_err());
        let zero_width = ServiceConfig {
            workers: 1,
            batch_width: Some(0),
            queue_depth: 4,
            ..ServiceConfig::default()
        };
        assert!(LookupService::new(vec![t.clone()], zero_width).is_err());
        let mut service = LookupService::new(vec![t], small_cfg(1)).unwrap();
        assert!(service
            .publish_tables(vec![RoutingTable::new(), RoutingTable::new()])
            .is_err());
        let _ = service.shutdown();
    }

    #[test]
    fn auto_tuned_width_comes_from_the_candidate_sweep() {
        let t = TableSpec::paper_worst_case(5).generate().unwrap();
        let cfg = ServiceConfig {
            workers: 1,
            batch_width: None,
            queue_depth: 4,
            ..ServiceConfig::default()
        };
        let service = LookupService::new(vec![t], cfg).unwrap();
        assert!(BATCH_WIDTH_CANDIDATES.contains(&service.batch_width()));
        let _ = service.shutdown();
    }

    #[test]
    fn tune_batch_width_handles_degenerate_probes() {
        let trie = JumpTrie::from_table(&table("10.0.0.0/8 1\n"));
        assert_eq!(tune_batch_width(&trie, &[], &[8, 32]), 8);
        let picked = tune_batch_width(&trie, &[0x0A00_0001; 64], &[8, 32]);
        assert!([8, 32].contains(&picked));
    }

    #[test]
    fn registry_counters_match_the_report() {
        let t = TableSpec::paper_worst_case(31).generate().unwrap();
        let packets: Vec<(VnId, u32)> = t.prefixes().map(|p| (0, p.addr())).take(320).collect();
        let mut service = LookupService::new(vec![t], small_cfg(2)).unwrap();
        let _ = service.process(&packets);
        let snap = service.telemetry_snapshot().unwrap();
        let report = service.report().clone();
        assert_eq!(snap.counter("vr_service_lookups_total"), Some(report.lookups));
        assert_eq!(snap.counter("vr_service_misses_total"), Some(report.misses));
        assert_eq!(snap.counter("vr_service_batches_total"), Some(report.batches));
        assert_eq!(snap.gauge("vr_service_batch_width"), Some(16));
        assert_eq!(snap.gauge("vr_service_generation"), Some(0));
        let batch_hist = snap.histogram("vr_service_batch_ns").unwrap();
        assert_eq!(batch_hist.count, report.batches);
        assert_eq!(
            snap.histogram("vr_service_lookup_ns").unwrap().count,
            report.batches
        );
        assert_eq!(report.generation_min, 0);
        assert_eq!(report.generation_max, 0);
        let _ = service.shutdown();
    }

    #[test]
    fn telemetry_off_disables_the_registry() {
        let t = table("10.0.0.0/8 1\n");
        let cfg = ServiceConfig {
            telemetry: false,
            ..small_cfg(1)
        };
        let mut service = LookupService::new(vec![t], cfg).unwrap();
        assert!(service.metrics().is_none());
        assert!(service.telemetry_snapshot().is_none());
        assert_eq!(service.process(&[(0, 0x0A00_0001)]), vec![Some(1)]);
        let _ = service.shutdown();
    }

    #[test]
    fn swaps_and_rejections_reach_events_and_counters() {
        let t = table("10.0.0.0/8 1\n");
        let mut service = LookupService::new(vec![t.clone()], small_cfg(1)).unwrap();
        service
            .publish_tables(vec![table("10.0.0.0/8 2\n")])
            .unwrap();
        // A corrupt candidate: rejected, counted, ringed.
        let good = JumpTrie::from_table(&t);
        let p = good.raw_parts();
        let corrupt = JumpTrie::from_raw_parts(
            p.root.to_vec(),
            p.words.to_vec(),
            p.level_offsets.to_vec(),
            Vec::new(),
            p.k,
        );
        assert!(service.publish_trie(corrupt).is_err());
        let snap = service.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter("vr_service_swaps_total"), Some(1));
        assert_eq!(snap.counter("vr_service_audit_rejections_total"), Some(1));
        assert_eq!(snap.gauge("vr_service_generation"), Some(1));
        // Debug builds audit on construction + both publishes.
        assert!(snap.counter("vr_audit_runs_total").unwrap() >= 2);
        assert!(snap.counter("vr_audit_violations_total").unwrap() > 0);
        assert!(snap.histogram("vr_service_publish_ns").unwrap().count >= 2);
        let kinds: Vec<&EventKind> = snap.events.events.iter().map(|e| &e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, EventKind::GenerationSwap { generation: 1 })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, EventKind::AuditRejected { generation: 2 })));
        let report = service.shutdown();
        assert_eq!(report.audit_rejections, 1);
        assert_eq!(report.swaps, 1);
    }

    #[test]
    fn queue_stalls_are_counted_when_a_shard_backs_up() {
        let t = TableSpec::paper_worst_case(17).generate().unwrap();
        let cfg = ServiceConfig {
            workers: 1,
            batch_width: Some(64),
            queue_depth: 1,
            ..ServiceConfig::default()
        };
        let base: Vec<(VnId, u32)> = t.prefixes().map(|p| (0, p.addr())).collect();
        let packets: Vec<(VnId, u32)> = base.iter().copied().cycle().take(64 * 256).collect();
        let mut service = LookupService::new(vec![t], cfg).unwrap();
        let _ = service.process(&packets);
        let snap = service.telemetry_snapshot().unwrap();
        // With one worker, depth-1 queue, and 256 batches, the submitter
        // must have outrun the worker at least once.
        assert!(snap.counter("vr_service_queue_stalls_total").unwrap() > 0);
        assert!(snap
            .events
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerStall { worker: 0 })));
        let _ = service.shutdown();
    }

    #[test]
    fn old_report_json_without_telemetry_fields_still_parses() {
        let report = ServiceReport {
            workers: 2,
            batch_width: 16,
            lookups: 100,
            misses: 3,
            batches: 7,
            swaps: 1,
            generations_seen: vec![0, 1],
            latency_histogram_ns: vec![0; 32],
            busy_ns: 12345,
            generation_min: 0,
            generation_max: 1,
            audit_rejections: 0,
            updates_applied: 0,
            incremental_publishes: 0,
            full_rebuilds: 0,
        };
        let mut json = serde_json::to_string(&report).unwrap();
        // Simulate a pre-telemetry artifact: strip every later-added field.
        for field in [
            "generation_min",
            "generation_max",
            "audit_rejections",
            "updates_applied",
            "incremental_publishes",
            "full_rebuilds",
        ] {
            json = json.replace(&format!(",\"{field}\":0"), "");
            json = json.replace(&format!(",\"{field}\":1"), "");
        }
        assert!(!json.contains("generation_min"), "{json}");
        let parsed: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.lookups, 100);
        assert_eq!(parsed.generations_seen, vec![0, 1]);
        assert_eq!(parsed.generation_min, 0);
        assert_eq!(parsed.generation_max, 0); // defaulted, not present
        assert_eq!(parsed.audit_rejections, 0);
        // A current round trip is lossless.
        let full: ServiceReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(full, report);
    }

    fn churn_family(seed: u64, k: usize) -> Vec<vr_net::RoutingTable> {
        vr_net::synth::FamilySpec {
            k,
            prefixes_per_table: 300,
            shared_fraction: 0.6,
            seed,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 12,
        }
        .generate()
        .unwrap()
    }

    fn churn_batches(
        tables: Vec<vr_net::RoutingTable>,
        seed: u64,
        batches: usize,
        per_batch: usize,
    ) -> Vec<Vec<RouteUpdate>> {
        let mut stream = vr_net::update::UpdateStream::new(
            tables,
            vr_net::update::UpdateMix::default(),
            12,
            seed ^ 0xABCD,
        )
        .unwrap();
        (0..batches).map(|_| stream.batch(per_batch)).collect()
    }

    #[test]
    fn incremental_updates_match_the_full_rebuild_baseline() {
        let tables = churn_family(61, 3);
        let mut inc = LookupService::new(tables.clone(), small_cfg(1)).unwrap();
        let full_cfg = ServiceConfig {
            full_rebuild: true,
            ..small_cfg(1)
        };
        let mut full = LookupService::new(tables.clone(), full_cfg).unwrap();
        for batch in churn_batches(tables, 61, 6, 40) {
            let g1 = inc.apply_updates(&batch).unwrap();
            let g2 = full.apply_updates(&batch).unwrap();
            assert_eq!(g1, g2);
            assert_eq!(inc.tables(), full.tables());
            // Interleaved mid-churn lookups resolve identically.
            let probes: Vec<(VnId, u32)> = inc
                .tables()
                .iter()
                .enumerate()
                .flat_map(|(vn, t)| {
                    t.prefixes()
                        .take(40)
                        .map(move |p| (vn as VnId, p.addr() | 1))
                })
                .collect();
            assert_eq!(inc.process(&probes), full.process(&probes));
        }
        let inc_report = inc.shutdown();
        assert_eq!(inc_report.updates_applied, 6 * 40);
        assert_eq!(inc_report.incremental_publishes, 6);
        assert_eq!(inc_report.full_rebuilds, 0);
        let full_report = full.shutdown();
        assert_eq!(full_report.full_rebuilds, 6);
        assert_eq!(full_report.incremental_publishes, 0);
    }

    #[test]
    fn zero_dirty_threshold_falls_back_to_full_slab_rebuild() {
        let t = table("10.0.0.0/8 1\n10.1.1.0/24 2\n");
        let cfg = ServiceConfig {
            dirty_rebuild_threshold: 0,
            ..small_cfg(1)
        };
        let mut service = LookupService::new(vec![t], cfg).unwrap();
        service
            .apply_updates(&[RouteUpdate::Announce {
                vnid: 0,
                prefix: "192.0.2.0/24".parse().unwrap(),
                next_hop: 5,
            }])
            .unwrap();
        assert_eq!(service.process(&[(0, 0xC000_0201)]), vec![Some(5)]);
        let log = service.update_log().to_vec();
        assert_eq!(log.len(), 1);
        assert!(!log[0].incremental);
        assert_eq!(log[0].dirty_buckets, 1);
        let report = service.shutdown();
        assert_eq!(report.full_rebuilds, 1);
    }

    #[test]
    fn update_telemetry_and_log_track_each_batch() {
        let t = table("10.0.0.0/8 1\n");
        let mut service = LookupService::new(vec![t], small_cfg(1)).unwrap();
        let updates = [
            RouteUpdate::Announce {
                vnid: 0,
                prefix: "10.1.1.0/24".parse().unwrap(),
                next_hop: 9,
            },
            RouteUpdate::Withdraw {
                vnid: 0,
                prefix: "10.0.0.0/8".parse().unwrap(),
            },
        ];
        let generation = service.apply_updates(&updates).unwrap();
        assert_eq!(
            service.update_log(),
            &[UpdateRecord {
                generation,
                updates: 2,
                incremental: true,
                // Withdrawing the /8 dirties its whole 256-bucket run; the
                // announced /24 falls inside it and dedupes.
                dirty_buckets: 256,
            }]
        );
        let snap = service.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter("vr_service_updates_total"), Some(2));
        assert_eq!(snap.counter("vr_service_incremental_publishes_total"), Some(1));
        assert_eq!(snap.counter("vr_service_full_rebuilds_total"), Some(0));
        assert_eq!(snap.gauge("vr_service_dirty_buckets"), Some(256));
        assert_eq!(snap.histogram("vr_service_update_ns").unwrap().count, 1);
        let _ = service.shutdown();
    }

    #[test]
    fn remerge_publish_bumps_generation_and_keeps_lookups() {
        let tables = vec![
            table("10.0.0.0/8 1\n10.1.1.0/24 2\n"),
            table("10.0.0.0/8 7\n172.16.0.0/12 8\n"),
        ];
        let mut service = LookupService::new(tables.clone(), small_cfg(1)).unwrap();
        let generation = service.remerge_publish().unwrap();
        assert_eq!(generation, 1);
        for (vn, t) in tables.iter().enumerate() {
            for probe in [0x0A01_0103u32, 0xAC10_0001, 0x0B00_0000] {
                assert_eq!(
                    service.process(&[(vn as VnId, probe)]),
                    vec![t.lookup(probe)]
                );
            }
        }
        let _ = service.shutdown();
    }

    #[test]
    fn alpha_is_live_and_survives_publish_tables() {
        let t = table("10.0.0.0/8 1\n10.1.1.0/24 2\n");
        let mut service =
            LookupService::new(vec![t.clone(), t.clone()], small_cfg(1)).unwrap();
        assert!((service.alpha().unwrap() - 1.0).abs() < 1e-12);
        // Withdrawing everything from VN 1 collapses the common set.
        let withdrawals: Vec<RouteUpdate> = t
            .prefixes()
            .map(|prefix| RouteUpdate::Withdraw { vnid: 1, prefix })
            .collect();
        service.apply_updates(&withdrawals).unwrap();
        assert!(service.alpha().unwrap() < 1e-12);
        // publish_tables invalidates the plant; α rebuilds lazily.
        service.publish_tables(vec![t.clone(), t]).unwrap();
        assert!((service.alpha().unwrap() - 1.0).abs() < 1e-12);
        let _ = service.shutdown();
    }

    #[test]
    fn report_histogram_buckets_every_batch() {
        let t = TableSpec::paper_worst_case(9).generate().unwrap();
        let packets: Vec<(VnId, u32)> = t.prefixes().map(|p| (0, p.addr())).take(640).collect();
        let mut service = LookupService::new(vec![t], small_cfg(2)).unwrap();
        let _ = service.process(&packets);
        let report = service.shutdown();
        assert_eq!(report.batches, 640 / 16);
        let bucketed: u64 = report.latency_histogram_ns.iter().sum();
        assert_eq!(bucketed, report.batches);
        assert!(report.mean_ns_per_lookup() > 0.0);
    }
}

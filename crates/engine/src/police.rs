//! Per-VN ingress policing for the time-shared merged engine.
//!
//! §I demands that virtualization be transparent: each network keeps "the
//! throughput and latency requirements guaranteed originally". The merged
//! engine time-shares one pipeline (§IV-C), so without policing an
//! aggressive network can crowd the shared ingress and starve the others.
//! A per-VN token bucket at the distributor restores the isolation: each
//! network is admitted at its contracted rate (µᵢ of the line rate) plus
//! a bounded burst, and excess is dropped at ingress before it can occupy
//! shared cycles.

use crate::EngineError;
use serde::{Deserialize, Serialize};
use vr_net::VnId;

/// A classic token bucket: `rate` tokens accrue per cycle up to `burst`;
/// admitting a packet costs one token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate_per_cycle: f64,
    burst: f64,
    tokens: f64,
    last_cycle: u64,
}

impl TokenBucket {
    /// Creates a bucket admitting `rate_per_cycle` packets per cycle on
    /// average, with `burst` packets of depth. Starts full.
    ///
    /// # Errors
    /// Rejects non-finite or negative rates and bursts below 1 (a bucket
    /// that can never admit anything is a configuration error).
    pub fn new(rate_per_cycle: f64, burst: f64) -> Result<Self, EngineError> {
        if !rate_per_cycle.is_finite() || rate_per_cycle < 0.0 {
            return Err(EngineError::InvalidParameter(
                "token rate must be finite and non-negative",
            ));
        }
        if !burst.is_finite() || burst < 1.0 {
            return Err(EngineError::InvalidParameter("burst must be at least 1"));
        }
        Ok(Self {
            rate_per_cycle,
            burst,
            tokens: burst,
            last_cycle: 0,
        })
    }

    /// Tries to admit one packet at `cycle`. Refills lazily.
    pub fn try_admit(&mut self, cycle: u64) -> bool {
        let elapsed = cycle.saturating_sub(self.last_cycle) as f64;
        self.tokens = (self.tokens + elapsed * self.rate_per_cycle).min(self.burst);
        self.last_cycle = cycle;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The configured mean admission rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate_per_cycle
    }
}

/// Per-VN admission statistics of a policer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicerStats {
    /// Packets offered by the network.
    pub offered: u64,
    /// Packets admitted into the shared engine.
    pub admitted: u64,
    /// Packets dropped at ingress (rate exceeded).
    pub dropped: u64,
}

/// The distributor-side policer: one token bucket per virtual network.
#[derive(Debug, Clone)]
pub struct QosPolicer {
    buckets: Vec<TokenBucket>,
    stats: Vec<PolicerStats>,
}

impl QosPolicer {
    /// Builds a policer from per-VN contracted rates (fractions of the
    /// line rate) with a common burst depth.
    ///
    /// # Errors
    /// Propagates bucket validation; rejects an empty rate vector.
    pub fn new(rates: &[f64], burst: f64) -> Result<Self, EngineError> {
        if rates.is_empty() {
            return Err(EngineError::InvalidParameter("policer needs ≥1 network"));
        }
        let buckets = rates
            .iter()
            .map(|&r| TokenBucket::new(r, burst))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            stats: vec![PolicerStats::default(); buckets.len()],
            buckets,
        })
    }

    /// Uniform contracts: each of `k` networks gets `1/k` of the line.
    ///
    /// # Errors
    /// Rejects `k == 0`.
    pub fn uniform(k: usize, burst: f64) -> Result<Self, EngineError> {
        if k == 0 {
            return Err(EngineError::InvalidParameter("policer needs ≥1 network"));
        }
        Self::new(&vec![1.0 / k as f64; k], burst)
    }

    /// Offers one packet from `vnid` at `cycle`; returns whether it is
    /// admitted into the shared engine.
    ///
    /// # Panics
    /// Panics if `vnid` is out of range.
    pub fn offer(&mut self, vnid: VnId, cycle: u64) -> bool {
        let idx = usize::from(vnid);
        self.stats[idx].offered += 1;
        if self.buckets[idx].try_admit(cycle) {
            self.stats[idx].admitted += 1;
            true
        } else {
            self.stats[idx].dropped += 1;
            false
        }
    }

    /// Per-VN statistics so far.
    #[must_use]
    pub fn stats(&self) -> &[PolicerStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, PipelineEngine};
    use vr_net::synth::FamilySpec;
    use vr_trie::merge::merge_tables;
    use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile, PAPER_PIPELINE_STAGES};

    #[test]
    fn bucket_validation() {
        assert!(TokenBucket::new(-0.1, 4.0).is_err());
        assert!(TokenBucket::new(f64::NAN, 4.0).is_err());
        assert!(TokenBucket::new(0.5, 0.5).is_err());
        assert!(TokenBucket::new(0.5, 1.0).is_ok());
    }

    #[test]
    fn bucket_enforces_mean_rate() {
        let mut bucket = TokenBucket::new(0.25, 4.0).unwrap();
        let mut admitted = 0u32;
        for cycle in 0..1000 {
            if bucket.try_admit(cycle) {
                admitted += 1;
            }
        }
        // 250 sustained + up to 4 of initial burst.
        assert!((250..=254).contains(&admitted), "{admitted}");
    }

    #[test]
    fn bucket_allows_bounded_bursts() {
        let mut bucket = TokenBucket::new(0.1, 8.0).unwrap();
        // Idle accrual caps at the burst depth.
        let mut burst = 0;
        while bucket.try_admit(1000) {
            burst += 1;
        }
        assert_eq!(burst, 8);
    }

    #[test]
    fn policer_isolates_a_victim_from_an_aggressor() {
        // Two networks contracted 50/50 on the merged engine. The
        // aggressor offers 0.9 of the line; the victim offers its
        // contracted 0.45. With policing, the victim's admitted rate is
        // its full offer — aggression is absorbed by the aggressor's own
        // drops, not the victim's throughput.
        let tables = FamilySpec {
            k: 2,
            prefixes_per_table: 150,
            shared_fraction: 0.5,
            seed: 17,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let (_, pushed) = merge_tables(&tables).unwrap();
        let profile =
            PipelineProfile::for_merged(&pushed, PAPER_PIPELINE_STAGES, MemoryLayout::default())
                .unwrap();
        let mut engine =
            PipelineEngine::new_merged(pushed, &profile, EngineConfig::paper_default()).unwrap();
        let mut policer = QosPolicer::uniform(2, 8.0).unwrap();

        let probe = tables[0].prefixes().next().unwrap().addr() | 1;
        let cycles = 4000u64;
        let mut admitted_backlog: std::collections::VecDeque<(VnId, u32)> =
            std::collections::VecDeque::new();
        for cycle in 0..cycles {
            // Aggressor (VN 0) offers 9 packets every 10 cycles; the
            // victim (VN 1) offers its contracted 45 %.
            if cycle % 10 != 0 && policer.offer(0, cycle) {
                admitted_backlog.push_back((0, probe));
            }
            if cycle % 20 < 9 && policer.offer(1, cycle) {
                admitted_backlog.push_back((1, probe));
            }
            engine.tick(admitted_backlog.pop_front());
        }
        engine.drain();
        let stats = policer.stats();
        // The victim loses (almost) nothing: everything it offered within
        // contract is admitted.
        let victim_loss = stats[1].dropped as f64 / stats[1].offered as f64;
        assert!(victim_loss < 0.02, "victim drop rate {victim_loss}");
        // The aggressor is clipped to its contract (~0.5 admitted of 0.9
        // offered → ≈44 % drop rate).
        let aggressor_loss = stats[0].dropped as f64 / stats[0].offered as f64;
        assert!(
            (0.3..0.6).contains(&aggressor_loss),
            "aggressor drop rate {aggressor_loss}"
        );
        // And the shared engine was never oversubscribed: admitted total
        // ≤ one packet per cycle.
        let admitted_total = stats[0].admitted + stats[1].admitted;
        assert!(admitted_total <= cycles);
    }

    #[test]
    fn policer_rejects_bad_configs() {
        assert!(QosPolicer::new(&[], 4.0).is_err());
        assert!(QosPolicer::uniform(0, 4.0).is_err());
        assert!(QosPolicer::new(&[0.5, -0.1], 4.0).is_err());
    }
}

//! The three router organizations, driven by a shared traffic source.
//!
//! * **NV**: K single-table engines, each on its own device; packets are
//!   pre-distributed per network (Assumption 3: distributor energy is
//!   negligible and not modeled).
//! * **VS**: K single-table engines space-sharing one device behind a
//!   VNID distributor — structurally identical traffic handling to NV;
//!   the difference is electrical (one device's static power) and is
//!   accounted in `vr-fpga`/`vr-power`, not here.
//! * **VM**: one merged engine; the merged stream enters directly and the
//!   leaf NHI vector is indexed by VNID.

use crate::engine::{EngineConfig, PipelineEngine};
use crate::report::SimReport;
use crate::EngineError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vr_fpga::SchemeKind;
use vr_net::{RoutingTable, TrafficGenerator};
use vr_trie::merge::merge_tables;
use vr_trie::pipeline_map::MemoryLayout;
use vr_trie::{LeafPushedTrie, PipelineProfile, UnibitTrie};

/// How packets arrive at the router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// One shared line: at most one packet per cycle arrives with the
    /// given probability (1.0 = saturated line). This is the paper's
    /// setting — the K networks *share* the offered load (µᵢ weights live
    /// in the traffic generator).
    SharedLine {
        /// Per-cycle arrival probability in `[0, 1]`.
        offered_load: f64,
    },
    /// Bursty shared line: with the given probability a whole burst
    /// arrives in one cycle. Consecutive packets of a burst can address
    /// the same engine, so the VNID distributor (Fig. 1) must queue —
    /// this is the arrival model that exercises queueing delay.
    Bursty {
        /// Per-cycle burst-arrival probability in `[0, 1]`.
        burst_probability: f64,
        /// Packets per burst (≥ 1).
        burst_len: usize,
    },
    /// Every engine receives its own packet every cycle — measures
    /// aggregate capacity (the separate scheme's K× line rate).
    PerEngineSaturation,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which organization to simulate.
    pub organization: SchemeKind,
    /// Pipeline stages per engine (the paper uses 28).
    pub stages: usize,
    /// Engine electrical configuration.
    pub engine: EngineConfig,
    /// Arrival model.
    pub arrivals: ArrivalModel,
    /// Seed for the arrival process.
    pub arrival_seed: u64,
}

/// A router organization under simulation.
pub struct VirtualRouterSim {
    organization: SchemeKind,
    engines: Vec<PipelineEngine>,
    tables: Vec<RoutingTable>,
    cfg: SimConfig,
}

impl VirtualRouterSim {
    /// Builds the organization for `tables` (one per virtual network).
    ///
    /// # Errors
    /// Propagates trie/merge construction errors and rejects empty input
    /// or zero stages.
    pub fn new(tables: Vec<RoutingTable>, cfg: SimConfig) -> Result<Self, EngineError> {
        if tables.is_empty() {
            return Err(EngineError::InvalidParameter("need at least one table"));
        }
        let layout = MemoryLayout::default();
        let engines = match cfg.organization {
            SchemeKind::NonVirtualized | SchemeKind::Separate => tables
                .iter()
                .map(|t| {
                    let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(t));
                    let profile = PipelineProfile::for_single(&lp, cfg.stages, layout)?;
                    PipelineEngine::new_single(lp, &profile, cfg.engine)
                })
                .collect::<Result<Vec<_>, _>>()?,
            SchemeKind::Merged => {
                let (_, pushed) = merge_tables(&tables)?;
                let profile = PipelineProfile::for_merged(&pushed, cfg.stages, layout)?;
                vec![PipelineEngine::new_merged(pushed, &profile, cfg.engine)?]
            }
        };
        Ok(Self {
            organization: cfg.organization,
            engines,
            tables,
            cfg,
        })
    }

    /// Number of engines instantiated (K for NV/VS, 1 for VM).
    #[must_use]
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// The organization being simulated.
    #[must_use]
    pub fn organization(&self) -> SchemeKind {
        self.organization
    }

    /// Applies a routing update to the *oracle tables only*. The engines
    /// keep forwarding from their build-time snapshot — exactly the
    /// stale-data-plane window between a control-plane update and the
    /// hardware write-back (the problem paper ref. [6] attacks). Runs
    /// after this will count oracle mismatches until
    /// [`VirtualRouterSim::rebuild_engines`] is called.
    pub fn apply_update(&mut self, update: &vr_net::RouteUpdate) {
        match *update {
            vr_net::RouteUpdate::Announce {
                vnid,
                prefix,
                next_hop,
            } => {
                self.tables[usize::from(vnid)].insert(prefix, next_hop);
            }
            vr_net::RouteUpdate::Withdraw { vnid, prefix } => {
                self.tables[usize::from(vnid)].remove(&prefix);
            }
        }
    }

    /// Rebuilds the lookup engines from the current (updated) tables —
    /// the hardware write-back ending the staleness window. Engine
    /// counters restart; in-flight packets are discarded.
    ///
    /// # Errors
    /// Propagates trie/engine construction errors.
    pub fn rebuild_engines(&mut self) -> Result<(), EngineError> {
        let rebuilt = Self::new(self.tables.clone(), self.cfg)?;
        self.engines = rebuilt.engines;
        Ok(())
    }

    /// Runs the simulation for `packets` offered packets drawn from
    /// `traffic`, then drains the pipelines. Every completed lookup is
    /// checked against the linear-scan oracle.
    ///
    /// # Errors
    /// Rejects an invalid offered load or a traffic source whose VNID
    /// range exceeds the table count.
    pub fn run(
        &mut self,
        traffic: &mut TrafficGenerator,
        packets: u64,
    ) -> Result<SimReport, EngineError> {
        match self.cfg.arrivals {
            ArrivalModel::SharedLine { offered_load } => {
                if !(0.0..=1.0).contains(&offered_load) || !offered_load.is_finite() {
                    return Err(EngineError::InvalidParameter(
                        "offered load must be in [0, 1]",
                    ));
                }
                if offered_load == 0.0 && packets > 0 {
                    return Err(EngineError::InvalidParameter(
                        "zero offered load can never deliver packets",
                    ));
                }
            }
            ArrivalModel::Bursty {
                burst_probability,
                burst_len,
            } => {
                if !(0.0..=1.0).contains(&burst_probability) || !burst_probability.is_finite() {
                    return Err(EngineError::InvalidParameter(
                        "burst probability must be in [0, 1]",
                    ));
                }
                if burst_len == 0 {
                    return Err(EngineError::InvalidParameter("burst length must be ≥ 1"));
                }
                if burst_probability == 0.0 && packets > 0 {
                    return Err(EngineError::InvalidParameter(
                        "zero burst probability can never deliver packets",
                    ));
                }
            }
            ArrivalModel::PerEngineSaturation => {}
        }
        let mut rng = SmallRng::seed_from_u64(self.cfg.arrival_seed);
        let mut offered = 0u64;
        let (mut correct, mut mismatches) = (0u64, 0u64);
        // Engines accumulate across runs (energy accounting is lifetime-
        // based); the report's packet/cycle counts are per-run deltas.
        let completed_before: u64 = self.engines.iter().map(|e| e.stats().completed).sum();
        let cycles_before = self
            .engines
            .iter()
            .map(|e| e.stats().cycles)
            .max()
            .unwrap_or(0);
        // The VNID distributor's per-engine queues (Fig. 1). Entries carry
        // their enqueue cycle for queueing-delay accounting.
        let mut queues: Vec<VecDeque<(vr_net::VnId, u32, u64)>> =
            vec![VecDeque::new(); self.engines.len()];
        let mut cycle = 0u64;
        let mut max_queue_depth = 0usize;
        let mut total_queue_wait = 0u64;

        let enqueue = |queues: &mut Vec<VecDeque<(vr_net::VnId, u32, u64)>>,
                           organization: SchemeKind,
                           p: vr_net::Packet,
                           cycle: u64|
         -> Result<(), EngineError> {
            let engine_idx = match organization {
                SchemeKind::Merged => 0,
                _ => usize::from(p.vnid),
            };
            if engine_idx >= queues.len() {
                return Err(EngineError::InvalidParameter(
                    "traffic VNID exceeds table count",
                ));
            }
            queues[engine_idx].push_back((p.vnid, p.dst, cycle));
            Ok(())
        };

        loop {
            let arrivals_open = offered < packets;
            // Decide this cycle's arrivals into the distributor queues.
            if arrivals_open {
                match self.cfg.arrivals {
                    ArrivalModel::SharedLine { offered_load } => {
                        if rng.gen_range(0.0..1.0) < offered_load {
                            let p = traffic.next_packet();
                            offered += 1;
                            enqueue(&mut queues, self.organization, p, cycle)?;
                        }
                    }
                    ArrivalModel::Bursty {
                        burst_probability,
                        burst_len,
                    } => {
                        if rng.gen_range(0.0..1.0) < burst_probability {
                            for _ in 0..burst_len {
                                if offered >= packets {
                                    break;
                                }
                                let p = traffic.next_packet();
                                offered += 1;
                                enqueue(&mut queues, self.organization, p, cycle)?;
                            }
                        }
                    }
                    ArrivalModel::PerEngineSaturation => {
                        for (engine_idx, queue) in queues.iter_mut().enumerate() {
                            if offered >= packets {
                                break;
                            }
                            let p = match self.organization {
                                // The merged engine carries the whole
                                // mixed stream; NV/VS engines each stay
                                // busy with their own network's traffic.
                                SchemeKind::Merged => traffic.next_packet(),
                                _ => traffic.packet_for(engine_idx as vr_net::VnId),
                            };
                            offered += 1;
                            queue.push_back((p.vnid, p.dst, cycle));
                        }
                    }
                }
            }
            max_queue_depth = max_queue_depth.max(queues.iter().map(VecDeque::len).max().unwrap_or(0));

            // Each engine accepts one queued packet per cycle.
            let inputs: Vec<Option<(vr_net::VnId, u32)>> = queues
                .iter_mut()
                .map(|q| {
                    q.pop_front().map(|(vnid, dst, enq)| {
                        total_queue_wait += cycle - enq;
                        (vnid, dst)
                    })
                })
                .collect();
            self.step(&inputs, &mut correct, &mut mismatches);
            cycle += 1;

            if offered >= packets
                && queues.iter().all(VecDeque::is_empty)
                && !self.engines.iter().any(PipelineEngine::is_draining)
            {
                break;
            }
        }

        let cycles = self
            .engines
            .iter()
            .map(|e| e.stats().cycles)
            .max()
            .unwrap_or(0)
            - cycles_before;
        let completed: u64 = self
            .engines
            .iter()
            .map(|e| e.stats().completed)
            .sum::<u64>()
            - completed_before;
        Ok(SimReport {
            cycles,
            offered,
            completed,
            correct,
            mismatches,
            engines: self.engines.len(),
            stages: self.cfg.stages,
            freq_mhz: self.cfg.engine.freq_mhz,
            max_queue_depth,
            total_queue_wait_cycles: total_queue_wait,
            per_engine: self.engines.iter().map(|e| *e.stats()).collect(),
        })
    }

    fn step(
        &mut self,
        inputs: &[Option<(vr_net::VnId, u32)>],
        correct: &mut u64,
        mismatches: &mut u64,
    ) {
        for (engine, input) in self.engines.iter_mut().zip(inputs) {
            if let Some(done) = engine.tick(*input) {
                let expected = self.tables[usize::from(done.vnid)].lookup(done.dst);
                if done.next_hop == expected {
                    *correct += 1;
                } else {
                    *mismatches += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::FamilySpec;
    use vr_net::TrafficSpec;
    use vr_trie::pipeline_map::PAPER_PIPELINE_STAGES;

    fn family(k: usize, seed: u64) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 200,
            shared_fraction: 0.5,
            seed,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    fn config(org: SchemeKind, arrivals: ArrivalModel) -> SimConfig {
        SimConfig {
            organization: org,
            stages: PAPER_PIPELINE_STAGES,
            engine: EngineConfig::paper_default(),
            arrivals,
            arrival_seed: 99,
        }
    }

    fn run(org: SchemeKind, k: usize, arrivals: ArrivalModel, packets: u64) -> SimReport {
        let tables = family(k, 7);
        let mut traffic =
            TrafficGenerator::new(TrafficSpec::uniform(k, 3), &tables).unwrap();
        let mut sim = VirtualRouterSim::new(tables, config(org, arrivals)).unwrap();
        sim.run(&mut traffic, packets).unwrap()
    }

    #[test]
    fn all_organizations_are_fully_correct() {
        for org in SchemeKind::ALL {
            let report = run(org, 3, ArrivalModel::SharedLine { offered_load: 1.0 }, 400);
            assert_eq!(report.completed, 400, "{org}");
            assert!(report.is_fully_correct(), "{org}");
        }
    }

    #[test]
    fn engine_counts_match_organization() {
        let tables = family(4, 1);
        let sep = VirtualRouterSim::new(
            tables.clone(),
            config(SchemeKind::Separate, ArrivalModel::PerEngineSaturation),
        )
        .unwrap();
        assert_eq!(sep.engine_count(), 4);
        assert_eq!(sep.organization(), SchemeKind::Separate);
        let merged = VirtualRouterSim::new(
            tables,
            config(SchemeKind::Merged, ArrivalModel::PerEngineSaturation),
        )
        .unwrap();
        assert_eq!(merged.engine_count(), 1);
    }

    #[test]
    fn shared_line_splits_load_across_separate_engines() {
        let report = run(
            SchemeKind::Separate,
            4,
            ArrivalModel::SharedLine { offered_load: 1.0 },
            2000,
        );
        // Each of the 4 engines sees ~1/4 of the occupancy of a saturated
        // pipeline.
        let occ = report.mean_occupancy();
        assert!((occ - 0.25).abs() < 0.08, "occupancy {occ}");
    }

    #[test]
    fn saturation_mode_fills_every_engine() {
        let report = run(
            SchemeKind::Separate,
            4,
            ArrivalModel::PerEngineSaturation,
            4000,
        );
        assert!(report.is_fully_correct());
        let occ = report.mean_occupancy();
        assert!(occ > 0.9, "occupancy {occ}");
        // Aggregate throughput approaches K × line rate.
        let agg = report.achieved_throughput_gbps();
        let line = vr_fpga::timing::throughput_gbps(report.freq_mhz);
        assert!(agg > 3.5 * line, "aggregate {agg} vs line {line}");
    }

    #[test]
    fn merged_engine_handles_mixed_stream_at_line_rate() {
        let report = run(
            SchemeKind::Merged,
            3,
            ArrivalModel::SharedLine { offered_load: 1.0 },
            1000,
        );
        assert!(report.is_fully_correct());
        let occ = report.mean_occupancy();
        assert!(occ > 0.9, "merged occupancy {occ}");
    }

    #[test]
    fn low_offered_load_reduces_dynamic_power() {
        let busy = run(
            SchemeKind::Merged,
            2,
            ArrivalModel::SharedLine { offered_load: 1.0 },
            1000,
        );
        let idle = run(
            SchemeKind::Merged,
            2,
            ArrivalModel::SharedLine { offered_load: 0.2 },
            1000,
        );
        assert!(idle.dynamic_power_w() < 0.4 * busy.dynamic_power_w());
    }

    #[test]
    fn bursty_arrivals_queue_in_the_distributor() {
        let report = run(
            SchemeKind::Separate,
            2,
            ArrivalModel::Bursty {
                burst_probability: 0.5,
                burst_len: 8,
            },
            2000,
        );
        assert!(report.is_fully_correct());
        // Bursts of 8 over 2 engines: same-engine collisions are certain,
        // so queues must have built and packets must have waited.
        assert!(report.max_queue_depth >= 2, "depth {}", report.max_queue_depth);
        assert!(report.mean_queue_wait_cycles() > 0.0);
    }

    #[test]
    fn smooth_arrivals_do_not_queue() {
        let report = run(
            SchemeKind::Separate,
            3,
            ArrivalModel::SharedLine { offered_load: 1.0 },
            1000,
        );
        // One arrival per cycle, drained the same cycle: nothing waits.
        assert_eq!(report.total_queue_wait_cycles, 0);
        assert!(report.max_queue_depth <= 1);
    }

    #[test]
    fn bursty_merged_engine_throttles_to_line_rate() {
        // A burst of B packets into the single merged engine takes B
        // cycles to admit: throughput stays at one per cycle and the
        // last packet of a burst waits B−1 cycles.
        let report = run(
            SchemeKind::Merged,
            2,
            ArrivalModel::Bursty {
                burst_probability: 1.0,
                burst_len: 4,
            },
            1000,
        );
        assert!(report.is_fully_correct());
        assert!(report.max_queue_depth >= 3);
        // Every burst cycle admits 1 of 4: average wait ≥ 1 cycle.
        assert!(report.mean_queue_wait_cycles() >= 1.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let tables = family(2, 2);
        assert!(VirtualRouterSim::new(
            Vec::new(),
            config(SchemeKind::Merged, ArrivalModel::PerEngineSaturation)
        )
        .is_err());
        let mut sim = VirtualRouterSim::new(
            tables.clone(),
            config(
                SchemeKind::Separate,
                ArrivalModel::SharedLine { offered_load: 1.5 },
            ),
        )
        .unwrap();
        let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(2, 3), &tables).unwrap();
        assert!(sim.run(&mut traffic, 10).is_err());
        let mut sim = VirtualRouterSim::new(
            tables.clone(),
            config(
                SchemeKind::Separate,
                ArrivalModel::SharedLine { offered_load: 0.0 },
            ),
        )
        .unwrap();
        assert!(sim.run(&mut traffic, 10).is_err());
    }
}

//! # vr-engine — cycle-level pipelined lookup-engine simulator
//!
//! The paper measures its architectures post place-and-route; this crate
//! is the behavioural half of that substitute (see DESIGN.md): a
//! cycle-accurate model of the linear lookup pipeline (§V-D) and of the
//! three router organizations built from it (§IV):
//!
//! * **NV** — K devices, each with one dedicated engine;
//! * **VS** — K engines space-sharing one device behind a VNID
//!   distributor (Assumption 3 makes the distributor itself free);
//! * **VM** — one engine time-shared by the merged packet stream, leaves
//!   holding K-wide NHI vectors indexed by VNID.
//!
//! Each pipeline stage performs one memory read per in-flight packet per
//! cycle. Energy is accounted per stage-cycle using the *same* coefficients
//! the analytical models use (`vr-fpga`): a Table III µW/MHz coefficient
//! is numerically a pJ/cycle energy, so the simulator's measured dynamic
//! power converges to the model's µ-scaled prediction as utilization
//! settles — the cross-validation exercised by the integration tests.
//!
//! Correctness is checked against the `vr-net` linear-scan oracle: every
//! completed lookup is compared with `RoutingTable::lookup`.
//!
//! Beyond the cycle-level model, [`service`] hosts the production-shaped
//! datapath: a concurrent sharded [`LookupService`] resolving packet
//! batches against an immutable `JumpTrie` behind an RCU-style
//! generation-counted snapshot swap, so route updates never stall
//! in-flight lookups. [`cache`] adds the per-worker LPM result cache in
//! front of that walk — direct-mapped, generation-tagged so every publish
//! invalidates it in O(1) — which skewed (Zipf) traffic turns into a
//! multiple of the uncached throughput. With
//! [`ServiceConfig::trace_sample`](service::ServiceConfig::trace_sample)
//! set, both services thread a sampled `vr-obs` [`Tracer`] through the
//! hot path: 1-in-N batches carry an owned stage recorder through the
//! queue (enqueue → dequeue → cache probe → lane walk → scatter →
//! complete), and publishes / update batches land as control-plane
//! spans on the same timeline — exportable as Chrome trace JSON and
//! servable over the vr-obs HTTP plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod datapath;
pub mod engine;
pub mod multiway;
pub mod police;
pub mod report;
pub mod router;
pub mod service;
pub mod sharded;

pub use cache::{CacheStats, LpmCache, DEFAULT_CACHE_SLOTS};
pub use datapath::StageMetrics;
pub use engine::{CompletedLookup, EngineConfig, EngineStats, PipelineEngine};
pub use multiway::MultiwayEngine;
pub use report::SimReport;
pub use router::{ArrivalModel, SimConfig, VirtualRouterSim};
pub use service::{
    CompletedBatch, LookupService, ServiceConfig, ServiceReport, TableSnapshot, UpdateRecord,
};
pub use sharded::{shard_of, ShardedBatch, ShardedConfig, ShardedReport, ShardedService};
// Re-exported so service users can consume traces without naming the
// observability crate themselves.
pub use vr_obs::{BatchTrace, Stage, TraceSnapshot, Tracer};

/// Errors from simulator construction and runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A parameter was out of its valid domain.
    InvalidParameter(&'static str),
    /// Underlying trie construction failed.
    Trie(vr_trie::TrieError),
    /// Underlying traffic generation failed.
    Net(vr_net::NetError),
    /// The structural audit rejected a table before it could be published
    /// to the datapath (the message is the violation summary).
    AuditRejected(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EngineError::Trie(e) => write!(f, "trie error: {e}"),
            EngineError::Net(e) => write!(f, "net error: {e}"),
            EngineError::AuditRejected(summary) => {
                write!(f, "table rejected by structural audit: {summary}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<vr_trie::TrieError> for EngineError {
    fn from(e: vr_trie::TrieError) -> Self {
        EngineError::Trie(e)
    }
}

impl From<vr_net::NetError> for EngineError {
    fn from(e: vr_net::NetError) -> Self {
        EngineError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        let e: EngineError = vr_trie::TrieError::ZeroStages.into();
        assert!(e.to_string().contains("trie error"));
        let e: EngineError = vr_net::NetError::InvalidPrefixLen(40).into();
        assert!(e.to_string().contains("net error"));
        assert!(EngineError::InvalidParameter("x").to_string().contains('x'));
    }
}

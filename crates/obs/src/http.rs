//! Minimal blocking HTTP/1.1 observability server.
//!
//! A vendored-style server over [`std::net`] — no dependencies, no
//! async runtime: one accept thread, one short-lived thread per
//! connection, and a bounded in-flight connection count (the "accept
//! queue") past which new connections get an immediate `503` instead
//! of piling onto the box. That shape is deliberately boring: the
//! observability plane must stay up and cheap precisely when the
//! service is struggling, which is when a clever server would be
//! competing with the datapath for cores.
//!
//! Routes are supplied as boxed closures ([`ObsRoutes`]), not engine
//! types, so this crate never depends on `vr-engine`:
//!
//! | Route            | Content-Type                          | Body |
//! |------------------|---------------------------------------|------|
//! | `/metrics`       | `text/plain; version=0.0.4`           | Prometheus exposition (`to_prometheus`) |
//! | `/healthz`       | `text/plain`                          | `ok\n` |
//! | `/snapshot.json` | `application/json`                    | full `TelemetrySnapshot` |
//! | `/traces.json`   | `application/json`                    | Chrome trace object of the tracer ring |
//! | `/flight`        | `application/json`                    | [`crate::FlightStatus`] |
//!
//! Only `GET` is served (`405` otherwise); unknown paths get `404`.
//! Every response closes the connection (`Connection: close`), which
//! keeps the protocol surface to exactly what a Prometheus scraper or
//! `curl` needs.

use crate::accept::{shed_with, AcceptGate};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Maximum concurrently served connections before new ones are shed
/// with `503` (the bounded accept queue).
pub const DEFAULT_MAX_CONNECTIONS: usize = 8;

/// Per-connection socket read/write budget: a scraper that stalls past
/// this holds no thread hostage.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on the request head (request line + headers) we will
/// buffer before giving up on a client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Route table of the observability plane: each entry renders one
/// endpoint's body on demand. Closures run on the connection thread,
/// so they should read snapshots (a mutex bounded by ring copies), not
/// do work.
pub struct ObsRoutes {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Box<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /snapshot.json` (telemetry snapshot JSON).
    pub snapshot: Box<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /traces.json` (Chrome trace-event JSON).
    pub traces: Box<dyn Fn() -> String + Send + Sync>,
    /// Body of `GET /flight` (flight-recorder status JSON).
    pub flight: Box<dyn Fn() -> String + Send + Sync>,
}

struct ServerShared {
    routes: ObsRoutes,
    gate: Arc<AcceptGate>,
    stopping: Mutex<bool>,
}

/// Handle to a running observability server. Dropping the handle stops
/// the accept loop (see [`ObsServer::stop`]).
pub struct ObsServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (use port 0 to let the OS pick — tests do) and
    /// starts the accept loop with the default connection bound.
    ///
    /// # Errors
    /// Returns a description of the bind failure.
    pub fn start(addr: &str, routes: ObsRoutes) -> Result<Self, String> {
        Self::start_bounded(addr, routes, DEFAULT_MAX_CONNECTIONS)
    }

    /// [`Self::start`] with an explicit in-flight connection bound.
    ///
    /// # Errors
    /// Returns a description of the bind failure.
    pub fn start_bounded(
        addr: &str,
        routes: ObsRoutes,
        max_connections: usize,
    ) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let shared = Arc::new(ServerShared {
            routes,
            gate: AcceptGate::new(max_connections),
            stopping: Mutex::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("vr-obs-http".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|e| format!("spawn accept thread: {e}"))?;
        Ok(Self {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the OS-chosen port when bound to `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread. In-flight
    /// connection threads finish their one response and exit.
    pub fn stop(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        *self.shared.stopping.lock() = true;
        // The accept loop is blocked in accept(); poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .field("max_connections", &self.shared.gate.max_connections())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshake);
            // only a stop request ends the loop.
            if *shared.stopping.lock() {
                return;
            }
            continue;
        };
        if *shared.stopping.lock() {
            return;
        }
        let Some(permit) = shared.gate.try_admit() else {
            // Immediate 503 for connections past the bound — cheaper
            // than queueing them, and an honest signal to the scraper.
            // The shared helper half-closes and drains so the 503
            // survives long enough to be read.
            shed_with(
                stream,
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                IO_TIMEOUT,
            );
            continue;
        };
        let conn_shared = Arc::clone(shared);
        // The permit rides into the connection thread and frees its
        // admission slot on drop (spawn failure included).
        let _ = std::thread::Builder::new()
            .name("vr-obs-conn".into())
            .spawn(move || {
                let _permit = permit;
                serve_connection(stream, &conn_shared);
            });
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some((method, path)) = read_request_head(&mut stream) else {
        let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    if method != "GET" {
        let _ = write_response(&mut stream, 405, "text/plain", "method not allowed\n");
        return;
    }
    // Ignore any query string: `/metrics?x=1` is still `/metrics`.
    let path = path.split('?').next().unwrap_or(&path).to_string();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            (shared.routes.metrics)(),
        ),
        "/healthz" => (200, "text/plain", "ok\n".to_string()),
        "/snapshot.json" => (200, "application/json", (shared.routes.snapshot)()),
        "/traces.json" => (200, "application/json", (shared.routes.traces)()),
        "/flight" => (200, "application/json", (shared.routes.flight)()),
        _ => (404, "text/plain", "not found\n".to_string()),
    };
    let _ = write_response(&mut stream, status, content_type, &body);
}

/// Reads until the blank line ending the request head and returns
/// `(method, path)` from the request line. Returns `None` on malformed
/// or oversized requests.
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_REQUEST_BYTES {
            return None;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    // The third token must look like an HTTP version.
    if !parts.next()?.starts_with("HTTP/") {
        return None;
    }
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Service Unavailable",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_routes() -> ObsRoutes {
        ObsRoutes {
            metrics: Box::new(|| "# TYPE vr_up gauge\nvr_up 1\n".to_string()),
            snapshot: Box::new(|| "{\"counters\": []}".to_string()),
            traces: Box::new(|| "{\"traceEvents\": []}".to_string()),
            flight: Box::new(|| "{\"armed\": true}".to_string()),
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        // Tolerate a mid-read reset (a raced shed) and keep whatever
        // arrived; callers polling for a status simply retry.
        let mut bytes = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&buf[..n]),
            }
        }
        let response = String::from_utf8_lossy(&bytes).into_owned();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let (head, body) = response.split_once("\r\n\r\n").unwrap_or(("", ""));
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn routes_serve_their_bodies_with_content_types() {
        let server = ObsServer::start("127.0.0.1:0", test_routes()).unwrap();
        let addr = server.addr();

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("vr_up 1"));

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, head, body) = get(addr, "/snapshot.json");
        assert_eq!(status, 200);
        assert!(head.contains("application/json"));
        assert!(body.contains("counters"));

        let (status, _, body) = get(addr, "/traces.json");
        assert_eq!(status, 200);
        assert!(body.contains("traceEvents"));

        let (status, _, body) = get(addr, "/flight");
        assert_eq!(status, 200);
        assert!(body.contains("armed"));

        // Query strings are ignored, unknown paths 404, non-GET 405.
        let (status, _, _) = get(addr, "/metrics?scrape=1");
        assert_eq!(status, 200);
        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 405);
    }

    #[test]
    fn content_length_matches_body() {
        let server = ObsServer::start("127.0.0.1:0", test_routes()).unwrap();
        let (_, head, body) = get(server.addr(), "/metrics");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = ObsServer::start("127.0.0.1:0", test_routes()).unwrap();
        let (status, _, _) = request(server.addr(), "GARBAGE\r\n\r\n");
        assert_eq!(status, 400);
    }

    #[test]
    fn connection_bound_sheds_with_503() {
        // One admitted connection at a time; hold it open while a
        // second one arrives — the second must be shed immediately.
        // Admission and slot release happen on server threads, so both
        // phases poll with a bounded retry instead of a fixed sleep
        // (a loaded CI box can delay either far past any one sleep).
        let server = ObsServer::start_bounded("127.0.0.1:0", test_routes(), 1).unwrap();
        let addr = server.addr();
        let held = TcpStream::connect(addr).unwrap();
        // Until the accept thread admits the held connection (it sends
        // no bytes, so its thread then blocks in read), probes may
        // still see 200; once admitted, they must see 503.
        let mut shed = false;
        for _ in 0..100 {
            let (status, _, _) = get(addr, "/healthz");
            if status == 503 {
                shed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(shed, "second connection past the bound was never shed");
        drop(held);
        // The held slot frees once its read errors on close; a fresh
        // request must eventually succeed again.
        let mut recovered = false;
        for _ in 0..100 {
            let (status, _, _) = get(addr, "/healthz");
            if status == 200 {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered, "slot never freed after the held connection closed");
    }

    #[test]
    fn stop_terminates_the_accept_loop() {
        let mut server = ObsServer::start("127.0.0.1:0", test_routes()).unwrap();
        let addr = server.addr();
        server.stop();
        // Idempotent.
        server.stop();
        // After stop, connections are refused or never served.
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = s.read_to_string(&mut out);
                out.is_empty()
            })
            .unwrap_or(true);
        assert!(refused, "stopped server must not serve");
    }
}

//! Anomaly flight recorder.
//!
//! Keeps a bounded pre-window of recent sampled [`BatchTrace`]s plus
//! the tail of the service's [`EventRing`]. When an anomaly trigger
//! fires — a `WorkerStall` or `AuditRejected` event, a generation lag
//! past the configured threshold, or the live p99 spiking past its
//! EWMA — the recorder freezes the pre-window, keeps capturing a
//! post-window of traces, and dumps the whole episode to
//! `results/flightrec_*.json` in Chrome trace-event object format: the
//! dump opens in `about:tracing`/Perfetto *and* carries the trigger
//! metadata and event tail as extra top-level keys.
//!
//! The recorder is driven at control-plane rate (after `collect_all` /
//! `apply_batch`), never from the per-packet hot path; callers hold it
//! behind a mutex. Timestamps come in from the caller's [`Tracer`]
//! epoch — this module never reads a clock of its own (the vr-audit
//! `no-raw-instant` lint covers it).

use crate::chrome::chrome_trace_value;
use crate::trace::BatchTrace;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use vr_telemetry::{EventKind, EventRecord, EventRing};

/// Flight-recorder tuning knobs. (Not serde-derived: the vendored
/// serde stand-in has no `PathBuf` impl, and nothing round-trips the
/// config anyway.)
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Sampled traces retained before a trigger.
    pub pre_window: usize,
    /// Sampled traces captured after a trigger before dumping.
    pub post_window: usize,
    /// `GenerationLag` trigger threshold (publishes the oldest
    /// in-flight batch is behind by).
    pub generation_lag_threshold: u64,
    /// `LatencySpike` fires when an observed p99 exceeds this multiple
    /// of its EWMA.
    pub spike_factor: f64,
    /// EWMA smoothing factor for the p99 baseline (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// p99 observations required before the spike trigger arms (a cold
    /// EWMA would otherwise fire on warmup noise).
    pub min_samples: u64,
    /// Dumps after which the recorder disarms (spam guard).
    pub max_dumps: usize,
    /// Directory the `flightrec_*.json` dumps are written to.
    pub dir: PathBuf,
}

impl FlightConfig {
    /// Default tuning, dumping into `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            pre_window: 64,
            post_window: 16,
            generation_lag_threshold: 8,
            spike_factor: 4.0,
            ewma_alpha: 0.2,
            min_samples: 32,
            max_dumps: 8,
            dir: dir.into(),
        }
    }
}

/// What tripped a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightTrigger {
    /// A `WorkerStall` event (bounded job queue full).
    WorkerStall,
    /// An `AuditRejected` event (publish refused by the audit gate).
    AuditRejected,
    /// Generation lag at or past the configured threshold.
    GenerationLag,
    /// Observed p99 exceeded `spike_factor` × its EWMA.
    LatencySpike,
}

impl FlightTrigger {
    /// Stable name used in dump metadata and file contents.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlightTrigger::WorkerStall => "WorkerStall",
            FlightTrigger::AuditRejected => "AuditRejected",
            FlightTrigger::GenerationLag => "GenerationLag",
            FlightTrigger::LatencySpike => "LatencySpike",
        }
    }
}

/// An in-progress frozen episode.
struct Capture {
    trigger: FlightTrigger,
    trigger_ns: u64,
    pre: Vec<BatchTrace>,
    post: Vec<BatchTrace>,
    events: Vec<EventRecord>,
    missed_events: u64,
}

/// Bounded pre/post-window recorder with trigger-driven dumps.
pub struct FlightRecorder {
    cfg: FlightConfig,
    pre: VecDeque<BatchTrace>,
    recent_events: VecDeque<EventRecord>,
    missed_events: u64,
    capture: Option<Capture>,
    event_cursor: u64,
    ewma_p99_ns: f64,
    p99_samples: u64,
    dump_counter: u64,
    dumps: Vec<PathBuf>,
}

/// Events kept for dump context (independent of the trace windows).
const RECENT_EVENTS: usize = 256;

impl FlightRecorder {
    /// Creates a disarmed-on-nothing recorder: it arms immediately and
    /// stays armed until `max_dumps` episodes have been written.
    #[must_use]
    pub fn new(cfg: FlightConfig) -> Self {
        Self {
            pre: VecDeque::with_capacity(cfg.pre_window.max(1)),
            recent_events: VecDeque::with_capacity(RECENT_EVENTS),
            missed_events: 0,
            capture: None,
            event_cursor: 0,
            ewma_p99_ns: 0.0,
            p99_samples: 0,
            dump_counter: 0,
            dumps: Vec::new(),
            cfg,
        }
    }

    /// Whether the recorder still arms new captures.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.capture.is_none() && self.dumps.len() < self.cfg.max_dumps
    }

    /// Paths of every dump written so far.
    #[must_use]
    pub fn dumps(&self) -> &[PathBuf] {
        &self.dumps
    }

    /// Feeds one completed sampled trace. Outside a capture it joins
    /// the bounded pre-window; during a capture it fills the
    /// post-window, and a full post-window flushes the dump.
    pub fn observe_trace(&mut self, trace: &BatchTrace) {
        if let Some(capture) = &mut self.capture {
            capture.post.push(trace.clone());
            if capture.post.len() >= self.cfg.post_window {
                self.flush();
            }
            return;
        }
        if self.pre.len() >= self.cfg.pre_window.max(1) {
            self.pre.pop_front();
        }
        self.pre.push_back(trace.clone());
    }

    /// Feeds a live p99 reading (ns) against the EWMA baseline; fires
    /// `LatencySpike` on a `spike_factor`-fold excursion once
    /// `min_samples` readings have warmed the baseline. The spike
    /// reading itself is excluded from the EWMA so one excursion does
    /// not drag the baseline up after it.
    pub fn observe_p99(&mut self, p99_ns: u64, now_ns: u64) {
        let p99 = p99_ns as f64;
        let warmed = self.p99_samples >= self.cfg.min_samples;
        if warmed && self.capture.is_none() && p99 > self.ewma_p99_ns * self.cfg.spike_factor {
            self.trigger(FlightTrigger::LatencySpike, now_ns);
            return;
        }
        self.p99_samples += 1;
        if self.p99_samples == 1 {
            self.ewma_p99_ns = p99;
        } else {
            let a = self.cfg.ewma_alpha.clamp(0.0, 1.0);
            self.ewma_p99_ns = a * p99 + (1.0 - a) * self.ewma_p99_ns;
        }
    }

    /// Drains new events from the ring (cursor-based, so each scan sees
    /// each event exactly once), keeps the tail for dump context, and
    /// fires the event-driven triggers: `WorkerStall`, `AuditRejected`,
    /// and — when `generation_lag` is supplied and at/past threshold —
    /// `GenerationLag`.
    pub fn scan_events(&mut self, ring: &EventRing, generation_lag: Option<u64>, now_ns: u64) {
        let drain = ring.drain_since(self.event_cursor);
        self.event_cursor = drain.next_seq;
        self.missed_events += drain.missed;
        for record in drain.events {
            let trigger = match record.kind {
                EventKind::WorkerStall { .. } => Some(FlightTrigger::WorkerStall),
                EventKind::AuditRejected { .. } => Some(FlightTrigger::AuditRejected),
                _ => None,
            };
            if self.recent_events.len() >= RECENT_EVENTS {
                self.recent_events.pop_front();
            }
            self.recent_events.push_back(record);
            if let Some(t) = trigger {
                self.trigger(t, now_ns);
            }
        }
        if let Some(lag) = generation_lag {
            if lag >= self.cfg.generation_lag_threshold {
                self.trigger(FlightTrigger::GenerationLag, now_ns);
            }
        }
    }

    /// Freezes the pre-window and starts the post-window capture.
    /// Ignored while a capture is already in flight or after
    /// `max_dumps` episodes — one anomaly produces exactly one dump, a
    /// storm produces at most `max_dumps`.
    pub fn trigger(&mut self, trigger: FlightTrigger, now_ns: u64) {
        if !self.armed() {
            return;
        }
        self.capture = Some(Capture {
            trigger,
            trigger_ns: now_ns,
            pre: self.pre.iter().cloned().collect(),
            post: Vec::with_capacity(self.cfg.post_window),
            events: self.recent_events.iter().cloned().collect(),
            missed_events: self.missed_events,
        });
        self.pre.clear();
    }

    /// Flushes an in-flight capture immediately (shutdown path) even if
    /// the post-window is not full. No-op when idle.
    pub fn force_flush(&mut self) {
        if self.capture.is_some() {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let Some(capture) = self.capture.take() else {
            return;
        };
        let path = self.write_dump(&capture);
        match path {
            Ok(path) => self.dumps.push(path),
            Err(e) => eprintln!("[vr-obs] flight recorder could not write dump: {e}"),
        }
    }

    fn write_dump(&mut self, capture: &Capture) -> Result<PathBuf, String> {
        std::fs::create_dir_all(&self.cfg.dir)
            .map_err(|e| format!("create {}: {e}", self.cfg.dir.display()))?;
        let name = format!("flightrec_{:04}.json", self.dump_counter);
        self.dump_counter += 1;
        let path = self.cfg.dir.join(name);

        let mut traces: Vec<BatchTrace> = capture.pre.clone();
        traces.extend(capture.post.iter().cloned());
        let extra = vec![
            (
                "flightRecorder".into(),
                Value::Map(vec![
                    ("trigger".into(), Value::Str(capture.trigger.name().into())),
                    ("trigger_ns".into(), Value::U64(capture.trigger_ns)),
                    ("pre_traces".into(), Value::U64(capture.pre.len() as u64)),
                    ("post_traces".into(), Value::U64(capture.post.len() as u64)),
                    ("missed_events".into(), Value::U64(capture.missed_events)),
                    ("events".into(), serde::to_value(&capture.events)),
                ]),
            ),
        ];
        let mut value = chrome_trace_value(&traces, extra);
        // Mark the trigger instant on the control row so the episode's
        // cause is visible right in the Perfetto timeline.
        if let Value::Map(top) = &mut value {
            if let Some((_, Value::Seq(events))) =
                top.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                events.push(Value::Map(vec![
                    ("name".into(), Value::Str(capture.trigger.name().into())),
                    ("cat".into(), Value::Str("flight".into())),
                    ("ph".into(), Value::Str("i".into())),
                    (
                        "ts".into(),
                        Value::F64(capture.trigger_ns as f64 / 1000.0),
                    ),
                    ("pid".into(), Value::U64(1)),
                    ("tid".into(), Value::U64(0)),
                    ("s".into(), Value::Str("g".into())),
                ]));
            }
        }
        let json = serde_json::to_string_pretty(&value)
            .map_err(|e| format!("serialize dump: {e:?}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Serializable status for the HTTP plane's `/flight` route.
    #[must_use]
    pub fn status(&self) -> FlightStatus {
        FlightStatus {
            armed: self.armed(),
            capturing: self.capture.is_some(),
            active_trigger: self.capture.as_ref().map(|c| c.trigger),
            pre_traces: self.pre.len() as u64,
            p99_samples: self.p99_samples,
            ewma_p99_ns: self.ewma_p99_ns,
            event_cursor: self.event_cursor,
            missed_events: self.missed_events,
            dumps: self
                .dumps
                .iter()
                .map(|p| p.display().to_string())
                .collect(),
        }
    }

    /// Removes stale `flightrec_*.json` files from `dir`. The CI obs
    /// job runs this before seeding an anomaly so "exactly one dump"
    /// is checkable against a clean slate.
    pub fn clean_dir(dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("flightrec_") && name.ends_with(".json") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("armed", &self.armed())
            .field("capturing", &self.capture.is_some())
            .field("pre_traces", &self.pre.len())
            .field("dumps", &self.dumps.len())
            .finish()
    }
}

/// Snapshot of the recorder for `/flight`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightStatus {
    /// Whether a new trigger would start a capture.
    pub armed: bool,
    /// Whether a capture is currently filling its post-window.
    pub capturing: bool,
    /// Trigger of the in-flight capture, if any.
    pub active_trigger: Option<FlightTrigger>,
    /// Traces currently in the pre-window.
    pub pre_traces: u64,
    /// p99 readings folded into the EWMA baseline.
    pub p99_samples: u64,
    /// Current EWMA of the observed p99, in nanoseconds.
    pub ewma_p99_ns: f64,
    /// Event-ring cursor (next sequence this recorder will read).
    pub event_cursor: u64,
    /// Events lost to ring eviction across all scans.
    pub missed_events: u64,
    /// Paths of the dumps written so far.
    pub dumps: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::check_chrome_trace;
    use crate::trace::{Stage, Tracer};
    use vr_telemetry::EventRing;

    fn trace(tracer: &Tracer, seq: u64) -> BatchTrace {
        let mut b = tracer.begin(seq, 8);
        b.mark(Stage::Enqueue);
        b.mark(Stage::Dequeue);
        b.mark(Stage::LaneWalk);
        b.set_worker(0);
        b.mark(Stage::Complete);
        b.finish()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vr_obs_flight_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seeded_stall_produces_exactly_one_valid_dump() {
        let dir = temp_dir("stall");
        let mut rec = FlightRecorder::new(FlightConfig {
            pre_window: 4,
            post_window: 2,
            ..FlightConfig::new(&dir)
        });
        let tracer = Tracer::new(1, 64);
        let ring = EventRing::new(64);

        for seq in 0..6 {
            rec.observe_trace(&trace(&tracer, seq));
        }
        // Two stalls in one scan: the first arms the capture, the
        // second is absorbed by it — exactly one episode.
        ring.publish(vr_telemetry::EventKind::WorkerStall { worker: 1 });
        ring.publish(vr_telemetry::EventKind::WorkerStall { worker: 1 });
        rec.scan_events(&ring, None, tracer.now_ns());
        assert!(rec.status().capturing);
        assert_eq!(rec.status().active_trigger, Some(FlightTrigger::WorkerStall));

        for seq in 6..8 {
            rec.observe_trace(&trace(&tracer, seq));
        }
        assert_eq!(rec.dumps().len(), 1, "post-window full => one dump");
        assert!(!rec.status().capturing);

        let text = std::fs::read_to_string(&rec.dumps()[0]).unwrap();
        let n = check_chrome_trace(&text).unwrap();
        // 4 pre + 2 post traces × 4 spans each, plus the trigger marker.
        assert_eq!(n, 6 * 4 + 1);
        assert!(text.contains("\"WorkerStall\""));
        assert!(text.contains("\"flightRecorder\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_spike_fires_only_after_warmup_and_respects_max_dumps() {
        let dir = temp_dir("spike");
        let mut rec = FlightRecorder::new(FlightConfig {
            post_window: 1,
            min_samples: 8,
            max_dumps: 1,
            ..FlightConfig::new(&dir)
        });
        let tracer = Tracer::new(1, 64);
        // A huge excursion during warmup must NOT fire.
        rec.observe_p99(1_000_000, tracer.now_ns());
        assert!(!rec.status().capturing);
        for _ in 0..8 {
            rec.observe_p99(1_000, tracer.now_ns());
        }
        // Baseline ≈ warmup values; a 4x+ excursion fires.
        rec.observe_p99(10_000_000, tracer.now_ns());
        assert!(rec.status().capturing);
        rec.observe_trace(&trace(&tracer, 0));
        assert_eq!(rec.dumps().len(), 1);
        check_chrome_trace(&std::fs::read_to_string(&rec.dumps()[0]).unwrap()).unwrap();

        // max_dumps reached: the recorder disarms.
        assert!(!rec.armed());
        rec.trigger(FlightTrigger::GenerationLag, tracer.now_ns());
        assert!(!rec.status().capturing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_lag_threshold_gates_the_trigger() {
        let dir = temp_dir("lag");
        let mut rec = FlightRecorder::new(FlightConfig {
            generation_lag_threshold: 3,
            ..FlightConfig::new(&dir)
        });
        let ring = EventRing::new(8);
        rec.scan_events(&ring, Some(2), 0);
        assert!(!rec.status().capturing, "below threshold");
        rec.scan_events(&ring, Some(3), 0);
        assert!(rec.status().capturing, "at threshold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_flush_writes_a_partial_episode() {
        let dir = temp_dir("flush");
        let mut rec = FlightRecorder::new(FlightConfig::new(&dir));
        let tracer = Tracer::new(1, 64);
        rec.observe_trace(&trace(&tracer, 0));
        rec.trigger(FlightTrigger::AuditRejected, tracer.now_ns());
        rec.force_flush();
        assert_eq!(rec.dumps().len(), 1);
        let text = std::fs::read_to_string(&rec.dumps()[0]).unwrap();
        check_chrome_trace(&text).unwrap();
        assert!(text.contains("\"AuditRejected\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_dir_removes_only_flight_dumps() {
        let dir = temp_dir("clean");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("flightrec_0000.json"), "{}").unwrap();
        std::fs::write(dir.join("keep.json"), "{}").unwrap();
        FlightRecorder::clean_dir(&dir);
        assert!(!dir.join("flightrec_0000.json").exists());
        assert!(dir.join("keep.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # vr-obs — observability plane for the lookup service
//!
//! The paper argues its power story per-lookup and per-update; the
//! rest of the workspace measures aggregates (vr-telemetry counters
//! and histograms). This crate records *where a batch spent its
//! nanoseconds* and captures state around anomalies:
//!
//! * [`trace`] — sampled per-batch stage tracing. A [`Tracer`] mints a
//!   `TraceId` at enqueue for 1-in-N batches; an owned
//!   [`TraceBuilder`] rides inside the job through the queue and the
//!   worker closes contiguous stage spans (enqueue → dequeue → cache
//!   probe → lane walk → scatter → complete) with no shared hot-path
//!   state. Control-plane publishes and `apply_updates` land as
//!   standalone spans on the same epoch timeline.
//! * [`chrome`] — exports traces as Chrome trace-event JSON (the
//!   object format), so a dump opens directly in `about:tracing` or
//!   Perfetto; [`check_chrome_trace`] is the structural validator CI
//!   runs over dumps.
//! * [`flight`] — the anomaly flight recorder: a bounded pre/post
//!   window of sampled traces plus the service's event tail, frozen
//!   and dumped to `results/flightrec_*.json` when a `WorkerStall`,
//!   `AuditRejected`, generation-lag, or p99-vs-EWMA latency spike
//!   trigger fires.
//! * [`http`] — a minimal blocking HTTP/1.1 server over `std::net`
//!   (thread-per-connection, bounded accept queue, no dependencies)
//!   exposing `GET /metrics` (Prometheus text), `/healthz`,
//!   `/snapshot.json`, `/traces.json`, and `/flight` — the workspace's
//!   first network-facing surface and the bridge toward the ROADMAP's
//!   serving tier.
//! * [`accept`] — the shared bounded-accept-queue ([`AcceptGate`]) and
//!   half-close-drain shed ([`shed_with`]) used by both this crate's
//!   HTTP plane and the vr-wire binary data-plane server, so the
//!   admission/shed idiom exists exactly once.
//!
//! The crate deliberately depends only on `vr-telemetry` (clock +
//! event ring) and the vendored serde stand-ins — never on
//! `vr-engine` — so the engine can depend on it without a cycle. The
//! HTTP plane consumes boxed closures, not engine types, for the same
//! reason. All timing goes through `vr_telemetry::Stopwatch`: the
//! vr-audit `no-raw-instant` lint extends to this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accept;
pub mod chrome;
pub mod flight;
pub mod http;
pub mod trace;

pub use accept::{shed_with, AcceptGate, AcceptPermit, ShedStream};
pub use chrome::{check_chrome_trace, chrome_trace_json, chrome_trace_value};
pub use flight::{FlightConfig, FlightRecorder, FlightStatus, FlightTrigger};
pub use http::{ObsRoutes, ObsServer};
pub use trace::{
    BatchTrace, Stage, StageSpan, TraceBuilder, TraceDrain, TraceSnapshot, Tracer, DEFAULT_SAMPLE,
    DEFAULT_TRACE_CAPACITY,
};

//! Chrome trace-event JSON export.
//!
//! Renders [`BatchTrace`] stage chains in the Chrome trace-event
//! *object* format (`{"traceEvents": [...]}`), the shape both
//! `about:tracing` and Perfetto open directly. Each stage span becomes
//! one complete (`"ph": "X"`) event; timestamps are microseconds since
//! the tracer epoch, kept fractional so nanosecond spans survive.
//! Batches are laid out one thread-row per worker/shard (`tid`), with
//! the dispatcher/control plane on `tid` 0, so a dump reads like the
//! service's actual thread structure.
//!
//! The object format tolerates unknown top-level keys, which is what
//! lets the flight recorder attach its trigger metadata
//! ([`chrome_trace_value`]'s `extra` map) while the dump still
//! validates as a Chrome trace.

use crate::trace::{BatchTrace, Stage};
use serde::Value;

/// `tid` assigned to spans with no worker/shard attribution (the
/// dispatcher and control-plane rows).
const CONTROL_TID: u64 = 0;

fn event(trace: &BatchTrace, stage: Stage, start_ns: u64, dur_ns: u64) -> Value {
    let tid = match (trace.worker, trace.shard) {
        (Some(w), _) => w + 1,
        (None, Some(s)) => s + 1,
        (None, None) => CONTROL_TID,
    };
    // Enqueue happens on the dispatcher thread regardless of which
    // worker later ran the batch; pin it to the control row.
    let tid = if matches!(stage, Stage::Enqueue | Stage::Publish | Stage::ApplyUpdates) {
        CONTROL_TID
    } else {
        tid
    };
    Value::Map(vec![
        ("name".into(), Value::Str(stage.name().into())),
        ("cat".into(), Value::Str("batch".into())),
        ("ph".into(), Value::Str("X".into())),
        ("ts".into(), Value::F64(start_ns as f64 / 1000.0)),
        ("dur".into(), Value::F64(dur_ns as f64 / 1000.0)),
        ("pid".into(), Value::U64(1)),
        ("tid".into(), Value::U64(tid)),
        (
            "args".into(),
            Value::Map(vec![
                ("trace_id".into(), Value::U64(trace.trace_id)),
                ("seq".into(), Value::U64(trace.seq)),
                ("generation".into(), Value::U64(trace.generation)),
                ("packets".into(), Value::U64(trace.packets)),
            ]),
        ),
    ])
}

/// Builds the Chrome trace object as a [`serde::Value`] tree, with
/// `extra` entries appended as additional top-level keys.
#[must_use]
pub fn chrome_trace_value(traces: &[BatchTrace], extra: Vec<(String, Value)>) -> Value {
    let mut events = Vec::new();
    for trace in traces {
        for span in &trace.stages {
            events.push(event(trace, span.stage, span.start_ns, span.dur_ns));
        }
    }
    let mut top = vec![
        ("traceEvents".into(), Value::Seq(events)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
    ];
    top.extend(extra);
    Value::Map(top)
}

/// Renders traces as a Chrome trace-event JSON document.
#[must_use]
pub fn chrome_trace_json(traces: &[BatchTrace]) -> String {
    serde_json::to_string_pretty(&chrome_trace_value(traces, Vec::new()))
        .unwrap_or_else(|_| String::from("{\"traceEvents\": []}"))
}

/// Structurally validates a Chrome trace-event JSON document: the top
/// level must be an object whose `traceEvents` key holds a sequence of
/// event objects, each carrying `name`/`ph`/`ts`/`pid`/`tid`. This is
/// what the CI obs job runs over flight-recorder dumps.
///
/// # Errors
/// Returns a description of the first violation found.
pub fn check_chrome_trace(text: &str) -> Result<usize, String> {
    let value = serde_json::parse(text).map_err(|e| format!("not JSON: {e:?}"))?;
    let Value::Map(top) = value else {
        return Err("top level is not an object".into());
    };
    let Some((_, Value::Seq(events))) = top.iter().find(|(k, _)| k == "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Value::Map(fields) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if !fields.iter().any(|(k, _)| k == key) {
                return Err(format!("traceEvents[{i}] missing {key:?}"));
            }
        }
        let ph_ok = fields
            .iter()
            .any(|(k, v)| k == "ph" && matches!(v, Value::Str(s) if s == "X" || s == "i" || s == "I"));
        if !ph_ok {
            return Err(format!("traceEvents[{i}] has unsupported ph"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Stage, Tracer};

    fn sample_trace() -> BatchTrace {
        let tracer = Tracer::new(1, 8);
        let mut b = tracer.begin(64, 32);
        b.mark(Stage::Enqueue);
        b.mark(Stage::Dequeue);
        b.mark(Stage::LaneWalk);
        b.set_worker(2);
        b.mark(Stage::Complete);
        b.finish()
    }

    #[test]
    fn export_round_trips_through_the_checker() {
        let t = sample_trace();
        let json = chrome_trace_json(std::slice::from_ref(&t));
        let n = check_chrome_trace(&json).unwrap();
        assert_eq!(n, 4, "one event per stage span");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"lane_walk\""));
        // Worker spans land on the worker row, enqueue on the control row.
        let value = serde_json::parse(&json).unwrap();
        let Value::Map(top) = value else { unreachable!() };
        let Value::Seq(events) = &top[0].1 else { unreachable!() };
        let tid_of = |name: &str| {
            events.iter().find_map(|e| {
                let Value::Map(f) = e else { return None };
                let matches = f.iter().any(
                    |(k, v)| k == "name" && matches!(v, Value::Str(s) if s == name),
                );
                if !matches {
                    return None;
                }
                f.iter().find_map(|(k, v)| {
                    (k == "tid").then_some(match v {
                        Value::U64(t) => *t,
                        _ => u64::MAX,
                    })
                })
            })
        };
        assert_eq!(tid_of("enqueue"), Some(0));
        assert_eq!(tid_of("dequeue"), Some(3), "worker 2 -> tid 3");
    }

    #[test]
    fn extra_top_level_keys_do_not_break_validation() {
        let value = chrome_trace_value(
            &[sample_trace()],
            vec![("trigger".into(), Value::Str("WorkerStall".into()))],
        );
        let json = serde_json::to_string_pretty(&value).unwrap();
        assert!(check_chrome_trace(&json).is_ok());
        assert!(json.contains("\"trigger\""));
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        assert!(check_chrome_trace("[1, 2]").is_err());
        assert!(check_chrome_trace("{\"events\": []}").is_err());
        assert!(check_chrome_trace("{\"traceEvents\": [{\"name\": \"x\"}]}").is_err());
        assert!(check_chrome_trace("not json").is_err());
    }
}

//! Shared bounded-accept-queue and shed helpers for the workspace's
//! blocking socket servers.
//!
//! Both network-facing tiers — the vr-obs HTTP plane ([`crate::http`])
//! and the vr-wire binary data plane — run the same deliberately boring
//! shape: one accept thread, one short-lived thread per connection, and
//! a bounded in-flight connection count past which new connections are
//! *shed* with an immediate, protocol-appropriate refusal instead of
//! piling onto the box. This module is the single implementation of the
//! two pieces that shape shares:
//!
//! * [`AcceptGate`] — the bounded accept queue. `try_admit` hands out an
//!   RAII [`AcceptPermit`] while slots remain; the permit's `Drop`
//!   releases the slot, so a panicking connection thread can never leak
//!   admission capacity.
//! * [`shed_with`] — the half-close-drain shed: write the refusal bytes
//!   (an HTTP `503`, a wire `Overloaded` frame), half-close the write
//!   side, then drain whatever request the client was mid-sending.
//!   Dropping the socket with unread bytes would RST the connection and
//!   can destroy the refusal before the client reads it — the drain is
//!   what makes the shed an honest signal rather than a mystery reset.
//!
//! Servers keep their own accept loops (listener types and per-protocol
//! framing differ) but admission accounting and shedding live here once.

use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Bounded admission counter shared by an accept loop and its
/// connection threads. Clone the [`Arc`] into the accept thread; every
/// admitted connection holds an [`AcceptPermit`] for its lifetime.
#[derive(Debug)]
pub struct AcceptGate {
    active: Mutex<usize>,
    max: usize,
}

impl AcceptGate {
    /// A gate admitting at most `max` concurrent connections (clamped
    /// to at least 1 — a gate that admits nothing serves nothing).
    #[must_use]
    pub fn new(max: usize) -> Arc<Self> {
        Arc::new(Self {
            active: Mutex::new(0),
            max: max.max(1),
        })
    }

    /// Claims an admission slot. `None` means the gate is full and the
    /// connection should be shed.
    #[must_use]
    pub fn try_admit(self: &Arc<Self>) -> Option<AcceptPermit> {
        let mut active = self.active.lock();
        if *active < self.max {
            *active += 1;
            Some(AcceptPermit(Arc::clone(self)))
        } else {
            None
        }
    }

    /// Connections currently admitted.
    #[must_use]
    pub fn active(&self) -> usize {
        *self.active.lock()
    }

    /// The admission bound.
    #[must_use]
    pub fn max_connections(&self) -> usize {
        self.max
    }
}

/// RAII admission slot: dropping it (normally, or by unwinding) frees
/// the slot in its [`AcceptGate`].
#[derive(Debug)]
pub struct AcceptPermit(Arc<AcceptGate>);

impl Drop for AcceptPermit {
    fn drop(&mut self) {
        *self.0.active.lock() -= 1;
    }
}

/// Socket surface the shed helper needs beyond `Read + Write`:
/// timeouts (so a stalled client holds no thread hostage) and a
/// write-side half-close. Implemented for TCP and Unix-domain streams.
pub trait ShedStream: Read + Write {
    /// Applies `timeout` to both socket directions (best effort).
    fn set_io_timeouts(&self, timeout: Duration);
    /// Half-closes the write side (best effort).
    fn shutdown_write(&self);
}

impl ShedStream for TcpStream {
    fn set_io_timeouts(&self, timeout: Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }

    fn shutdown_write(&self) {
        let _ = self.shutdown(std::net::Shutdown::Write);
    }
}

#[cfg(unix)]
impl ShedStream for std::os::unix::net::UnixStream {
    fn set_io_timeouts(&self, timeout: Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }

    fn shutdown_write(&self) {
        let _ = self.shutdown(std::net::Shutdown::Write);
    }
}

/// Sheds a connection past the bound: writes `refusal` (a complete,
/// protocol-level refusal — an HTTP `503` response, a wire `Overloaded`
/// frame), half-closes the write side, then drains the client's pending
/// request bytes so the refusal survives long enough to be read.
pub fn shed_with<S: ShedStream>(mut stream: S, refusal: &[u8], io_timeout: Duration) {
    stream.set_io_timeouts(io_timeout);
    let _ = stream.write_all(refusal);
    stream.shutdown_write();
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_max_and_permits_release() {
        let gate = AcceptGate::new(2);
        let a = gate.try_admit().expect("first slot");
        let b = gate.try_admit().expect("second slot");
        assert!(gate.try_admit().is_none(), "third must be refused");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert_eq!(gate.active(), 1);
        let c = gate.try_admit().expect("slot freed by drop");
        drop((b, c));
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn gate_clamps_zero_to_one() {
        let gate = AcceptGate::new(0);
        assert_eq!(gate.max_connections(), 1);
        let only = gate.try_admit().expect("one slot");
        assert!(gate.try_admit().is_none());
        drop(only);
    }

    #[test]
    fn permit_released_on_unwind() {
        let gate = AcceptGate::new(1);
        let gate2 = Arc::clone(&gate);
        let _ = std::panic::catch_unwind(move || {
            let _permit = gate2.try_admit().expect("slot");
            panic!("connection thread dies");
        });
        assert_eq!(gate.active(), 0, "unwound permit must free its slot");
    }

    #[test]
    fn shed_writes_refusal_and_drains() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Client is mid-sending a request when the shed happens.
            s.write_all(b"some half-sent request bytes").unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            out
        });
        let (stream, _) = listener.accept().unwrap();
        shed_with(stream, b"BUSY", Duration::from_secs(2));
        let got = client.join().unwrap();
        assert_eq!(got, b"BUSY", "refusal must reach the client intact");
    }
}

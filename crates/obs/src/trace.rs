//! Sampled per-batch stage tracing.
//!
//! A [`Tracer`] mints a `trace_id` for every sampled batch at enqueue
//! time and hands the dispatcher a [`TraceBuilder`] — a small owned
//! recorder that travels *with the job* through the channel, so the
//! worker appends stage spans without ever touching a shared structure
//! on the hot path. The builder keeps one running mark; each
//! [`TraceBuilder::mark`] call closes the span that started at the
//! previous mark, which makes the stage chain contiguous and
//! monotonic by construction (enqueue → dequeue → cache probe → lane
//! walk → scatter → complete). Completed traces return to the tracer's
//! bounded ring, where the HTTP plane and the flight recorder read
//! them at control-plane rate behind a short mutex.
//!
//! All timing goes through [`vr_telemetry::Stopwatch`] — the vr-audit
//! `no-raw-instant` lint extends to this module, so there is exactly
//! one sanctioned clock. Timestamps are nanoseconds since the tracer's
//! epoch (the `Stopwatch` started at construction), which keeps every
//! span of one service on a single comparable timeline.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use vr_telemetry::Stopwatch;

/// Default 1-in-N sampling rate: batch sequence numbers divisible by
/// 64 are traced. At the bench's 512-packet batches this records one
/// trace per ~32k packets — far below the 5% overhead budget the
/// `service_jump_traced` bench row enforces.
pub const DEFAULT_SAMPLE: u32 = 64;

/// Default bounded-ring capacity for completed traces.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// The stages a batch moves through. `Publish` and `ApplyUpdates` are
/// control-plane spans recorded as standalone single-span traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Dispatcher-side: from trace start to the job entering the queue.
    Enqueue,
    /// Worker-side: queue residency, closed when the worker picks the
    /// job up.
    Dequeue,
    /// LPM result-cache probe loop over the batch.
    CacheProbe,
    /// Trie lane walk (all packets when uncached, misses when cached).
    LaneWalk,
    /// Scatter of walk results back into batch order + cache fill.
    Scatter,
    /// Result hand-back: from end of lookup to the completion send.
    Complete,
    /// An RCU table publish (audit + snapshot swap).
    Publish,
    /// A control-plane `apply_updates` call.
    ApplyUpdates,
}

impl Stage {
    /// Stable lowercase name used in exported trace events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::Dequeue => "dequeue",
            Stage::CacheProbe => "cache_probe",
            Stage::LaneWalk => "lane_walk",
            Stage::Scatter => "scatter",
            Stage::Complete => "complete",
            Stage::Publish => "publish",
            Stage::ApplyUpdates => "apply_updates",
        }
    }
}

/// One closed stage interval on the tracer's epoch timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Which stage the interval covers.
    pub stage: Stage,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for skipped stages, e.g. a lane walk
    /// with zero cache misses).
    pub dur_ns: u64,
}

/// A completed per-batch trace: the stage chain plus attribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchTrace {
    /// Tracer-unique id minted at enqueue.
    pub trace_id: u64,
    /// The service's batch sequence number.
    pub seq: u64,
    /// Worker that ran the batch (channel service), if any.
    pub worker: Option<u64>,
    /// Shard that ran the batch (sharded service), if any.
    pub shard: Option<u64>,
    /// Table generation the batch was looked up against.
    pub generation: u64,
    /// Packets in the batch.
    pub packets: u64,
    /// Contiguous stage spans, oldest first.
    pub stages: Vec<StageSpan>,
}

impl BatchTrace {
    /// Epoch-nanosecond start of the trace (0 if it has no spans).
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.stages.first().map_or(0, |s| s.start_ns)
    }

    /// Epoch-nanosecond end of the last span.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.stages
            .last()
            .map_or(0, |s| s.start_ns.saturating_add(s.dur_ns))
    }

    /// Total wall time covered by the stage chain.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.end_ns().saturating_sub(self.start_ns())
    }

    /// Structural causality check used by tests and the proptest suite:
    /// a worker/shard batch trace must open with `Enqueue`, close with
    /// `Complete`, have contiguous monotonic spans, and carry exactly
    /// one of worker/shard attribution. Control-plane span traces
    /// (`Publish` / `ApplyUpdates`) must be single-span and unattributed.
    ///
    /// # Errors
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let Some(first) = self.stages.first() else {
            return Err(format!("trace {} has no stages", self.trace_id));
        };
        if matches!(first.stage, Stage::Publish | Stage::ApplyUpdates) {
            if self.stages.len() != 1 {
                return Err(format!(
                    "control span trace {} has {} stages",
                    self.trace_id,
                    self.stages.len()
                ));
            }
            if self.worker.is_some() || self.shard.is_some() {
                return Err(format!(
                    "control span trace {} claims worker/shard attribution",
                    self.trace_id
                ));
            }
            return Ok(());
        }
        if first.stage != Stage::Enqueue {
            return Err(format!(
                "trace {} opens with {:?}, not Enqueue",
                self.trace_id, first.stage
            ));
        }
        let last = self.stages.last().expect("non-empty");
        if last.stage != Stage::Complete {
            return Err(format!(
                "trace {} closes with {:?}, not Complete",
                self.trace_id, last.stage
            ));
        }
        let mut cursor = first.start_ns;
        for span in &self.stages {
            if span.start_ns != cursor {
                return Err(format!(
                    "trace {}: span {} starts at {} but previous ended at {}",
                    self.trace_id,
                    span.stage.name(),
                    span.start_ns,
                    cursor
                ));
            }
            cursor = span.start_ns.saturating_add(span.dur_ns);
        }
        match (self.worker, self.shard) {
            (Some(_), None) | (None, Some(_)) => Ok(()),
            (None, None) => Err(format!(
                "trace {} finished without worker/shard attribution",
                self.trace_id
            )),
            (Some(_), Some(_)) => Err(format!(
                "trace {} claims both worker and shard attribution",
                self.trace_id
            )),
        }
    }
}

/// Owned per-batch recorder that rides inside the job through the
/// queue. Creation and completion touch the tracer's mutex; every
/// `mark` in between is plain arithmetic on owned memory.
#[derive(Debug)]
pub struct TraceBuilder {
    epoch: Stopwatch,
    mark_ns: u64,
    trace: BatchTrace,
}

impl TraceBuilder {
    /// Closes the span running since the previous mark (or since
    /// `begin`) and labels it `stage`. Clamped monotonic: a span can
    /// never start before the previous one ended, even if the OS clock
    /// resolution rounds two marks to the same nanosecond.
    pub fn mark(&mut self, stage: Stage) {
        let now = self.epoch.elapsed_ns().max(self.mark_ns);
        self.trace.stages.push(StageSpan {
            stage,
            start_ns: self.mark_ns,
            dur_ns: now - self.mark_ns,
        });
        self.mark_ns = now;
    }

    /// Records which channel-service worker ran the batch.
    pub fn set_worker(&mut self, worker: u64) {
        self.trace.worker = Some(worker);
    }

    /// Records which shard ran the batch.
    pub fn set_shard(&mut self, shard: u64) {
        self.trace.shard = Some(shard);
    }

    /// Records the table generation the batch was served against.
    pub fn set_generation(&mut self, generation: u64) {
        self.trace.generation = generation;
    }

    /// Finalizes the stage chain and returns the completed trace.
    #[must_use]
    pub fn finish(self) -> BatchTrace {
        self.trace
    }
}

struct TraceRing {
    traces: VecDeque<BatchTrace>,
    /// Completed traces ever recorded (ring sequence numbering: the
    /// retained window is `[recorded - len, recorded)`).
    recorded: u64,
    dropped: u64,
    next_trace_id: u64,
}

struct TracerInner {
    epoch: Stopwatch,
    sample: u32,
    capacity: usize,
    ring: Mutex<TraceRing>,
}

/// Shared handle to the sampling state and the completed-trace ring.
/// Clones share one epoch, so spans from the dispatcher, every worker,
/// and the control plane land on a single timeline.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates a tracer sampling 1-in-`sample` batches (min 1) into a
    /// ring retaining `capacity` completed traces (min 1).
    #[must_use]
    pub fn new(sample: u32, capacity: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                epoch: Stopwatch::start(),
                sample: sample.max(1),
                capacity: capacity.max(1),
                ring: Mutex::new(TraceRing {
                    traces: VecDeque::new(),
                    recorded: 0,
                    dropped: 0,
                    next_trace_id: 0,
                }),
            }),
        }
    }

    /// Tracer with the default 1-in-64 sampling and default capacity.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_SAMPLE, DEFAULT_TRACE_CAPACITY)
    }

    /// The configured 1-in-N sampling rate.
    #[must_use]
    pub fn sample(&self) -> u32 {
        self.inner.sample
    }

    /// Nanoseconds since this tracer's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed_ns()
    }

    /// Whether batch `seq` is in the sample (every `sample`-th batch).
    /// The decision is deterministic in the sequence number so paired
    /// A/B runs trace the same batches.
    #[must_use]
    pub fn should_sample(&self, seq: u64) -> bool {
        seq.is_multiple_of(u64::from(self.inner.sample))
    }

    /// Mints a trace id and opens a builder for batch `seq`. The
    /// builder's first mark should be [`Stage::Enqueue`].
    #[must_use]
    pub fn begin(&self, seq: u64, packets: usize) -> TraceBuilder {
        let trace_id = {
            let mut ring = self.inner.ring.lock();
            let id = ring.next_trace_id;
            ring.next_trace_id += 1;
            id
        };
        let mark_ns = self.now_ns();
        TraceBuilder {
            epoch: self.inner.epoch,
            mark_ns,
            trace: BatchTrace {
                trace_id,
                seq,
                worker: None,
                shard: None,
                generation: 0,
                packets: packets as u64,
                stages: Vec::with_capacity(8),
            },
        }
    }

    /// Deposits a completed trace into the bounded ring.
    pub fn record(&self, trace: BatchTrace) {
        let mut ring = self.inner.ring.lock();
        if ring.traces.len() == self.inner.capacity {
            ring.traces.pop_front();
            ring.dropped += 1;
        }
        ring.traces.push_back(trace);
        ring.recorded += 1;
    }

    /// Records a standalone control-plane span (`Publish` /
    /// `ApplyUpdates`) that started at `start_ns` (from [`Self::now_ns`])
    /// and ends now.
    pub fn record_span(&self, stage: Stage, start_ns: u64, generation: u64) {
        let end = self.now_ns().max(start_ns);
        let trace_id = {
            let mut ring = self.inner.ring.lock();
            let id = ring.next_trace_id;
            ring.next_trace_id += 1;
            id
        };
        self.record(BatchTrace {
            trace_id,
            seq: trace_id,
            worker: None,
            shard: None,
            generation,
            packets: 0,
            stages: vec![StageSpan {
                stage,
                start_ns,
                dur_ns: end - start_ns,
            }],
        });
    }

    /// Copies the retained traces out, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.inner.ring.lock();
        TraceSnapshot {
            sample: self.inner.sample,
            recorded: ring.recorded,
            dropped: ring.dropped,
            traces: ring.traces.iter().cloned().collect(),
        }
    }

    /// Cursor-based incremental read over ring sequence numbers (the
    /// `recorded` counter), mirroring `EventRing::drain_since`: returns
    /// retained traces with ring-seq `>= cursor` plus the exact count
    /// the cursor missed to eviction. Feed `next_seq` back as the next
    /// cursor.
    #[must_use]
    pub fn drain_since(&self, cursor: u64) -> TraceDrain {
        let ring = self.inner.ring.lock();
        let len = ring.traces.len() as u64;
        let first_retained = ring.recorded - len;
        let missed = first_retained.saturating_sub(cursor);
        let skip = cursor.saturating_sub(first_retained) as usize;
        TraceDrain {
            traces: ring.traces.iter().skip(skip).cloned().collect(),
            missed,
            next_seq: ring.recorded,
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.inner.ring.lock();
        f.debug_struct("Tracer")
            .field("sample", &self.inner.sample)
            .field("capacity", &self.inner.capacity)
            .field("recorded", &ring.recorded)
            .field("dropped", &ring.dropped)
            .finish()
    }
}

/// A serializable copy of the completed-trace ring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// The tracer's 1-in-N sampling rate.
    pub sample: u32,
    /// Completed traces ever recorded.
    pub recorded: u64,
    /// Traces evicted to stay within capacity.
    pub dropped: u64,
    /// Retained traces, oldest first.
    pub traces: Vec<BatchTrace>,
}

/// Result of an incremental [`Tracer::drain_since`] read.
#[derive(Debug, Clone)]
pub struct TraceDrain {
    /// Retained traces at or past the cursor, oldest first.
    pub traces: Vec<BatchTrace>,
    /// Traces the cursor asked for that were already evicted.
    pub missed: u64,
    /// Cursor to pass to the next `drain_since` call.
    pub next_seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(tracer: &Tracer, seq: u64) -> BatchTrace {
        let mut b = tracer.begin(seq, 16);
        b.mark(Stage::Enqueue);
        b.mark(Stage::Dequeue);
        b.mark(Stage::CacheProbe);
        b.mark(Stage::LaneWalk);
        b.mark(Stage::Scatter);
        b.set_worker(3);
        b.set_generation(7);
        b.mark(Stage::Complete);
        b.finish()
    }

    #[test]
    fn builder_produces_contiguous_monotonic_chain() {
        let tracer = Tracer::new(1, 8);
        let t = finished(&tracer, 5);
        t.validate().unwrap();
        assert_eq!(t.seq, 5);
        assert_eq!(t.worker, Some(3));
        assert_eq!(t.generation, 7);
        assert_eq!(t.packets, 16);
        assert_eq!(t.stages.len(), 6);
        assert_eq!(t.stages[0].stage, Stage::Enqueue);
        assert_eq!(t.stages[5].stage, Stage::Complete);
        for w in t.stages.windows(2) {
            assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
        }
        assert_eq!(t.total_ns(), t.end_ns() - t.start_ns());
    }

    #[test]
    fn validate_rejects_malformed_chains() {
        let tracer = Tracer::new(1, 8);
        let good = finished(&tracer, 0);

        let mut no_stages = good.clone();
        no_stages.stages.clear();
        assert!(no_stages.validate().is_err());

        let mut wrong_open = good.clone();
        wrong_open.stages[0].stage = Stage::Dequeue;
        assert!(wrong_open.validate().is_err());

        let mut wrong_close = good.clone();
        wrong_close.stages.last_mut().unwrap().stage = Stage::Scatter;
        assert!(wrong_close.validate().is_err());

        let mut gap = good.clone();
        gap.stages[2].start_ns += 1;
        assert!(gap.validate().is_err());

        let mut both = good.clone();
        both.shard = Some(1);
        assert!(both.validate().is_err());

        let mut neither = good;
        neither.worker = None;
        assert!(neither.validate().is_err());
    }

    #[test]
    fn sampling_is_deterministic_in_seq() {
        let tracer = Tracer::new(64, 8);
        assert!(tracer.should_sample(0));
        assert!(!tracer.should_sample(1));
        assert!(!tracer.should_sample(63));
        assert!(tracer.should_sample(64));
        assert!(tracer.should_sample(128));
        let every = Tracer::new(1, 8);
        assert!((0..10).all(|s| every.should_sample(s)));
    }

    #[test]
    fn ring_evicts_oldest_and_drain_since_reports_gaps() {
        let tracer = Tracer::new(1, 4);
        for seq in 0..10 {
            tracer.record(finished(&tracer, seq));
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.recorded, 10);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.traces.len(), 4);
        assert_eq!(snap.traces[0].seq, 6, "oldest retained");

        let d = tracer.drain_since(0);
        assert_eq!(d.missed, 6);
        assert_eq!(d.traces.len(), 4);
        assert_eq!(d.next_seq, 10);
        // Cursor inside the window: partial read, no gap.
        let d2 = tracer.drain_since(8);
        assert_eq!(d2.missed, 0);
        assert_eq!(d2.traces.len(), 2);
        // Caught up: empty, no gap.
        let d3 = tracer.drain_since(d.next_seq);
        assert_eq!((d3.traces.len(), d3.missed), (0, 0));
    }

    #[test]
    fn control_spans_are_single_span_traces() {
        let tracer = Tracer::new(64, 8);
        let start = tracer.now_ns();
        tracer.record_span(Stage::Publish, start, 42);
        let snap = tracer.snapshot();
        assert_eq!(snap.traces.len(), 1);
        let t = &snap.traces[0];
        t.validate().unwrap();
        assert_eq!(t.stages[0].stage, Stage::Publish);
        assert_eq!(t.generation, 42);
    }
}
